(* Experiment harness: regenerates every figure/claim of the paper
   (see DESIGN.md section 4 and EXPERIMENTS.md) and then runs Bechamel
   micro-benchmarks of the core kernels.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe E3         # one experiment
     dune exec bench/main.exe micro      # only the micro-benchmarks *)

open Rt_core
module Prng = Rt_graph.Prng

let section title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

let row fmt = Printf.printf (fmt ^^ "\n%!")

let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* Wall-clock timer for the parallel experiments: [Sys.time] is CPU
   time summed over domains, which cannot show a speedup. *)
let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let speedup seq par = if par > 0.0 then seq /. par else 0.0

(* Timing-only repetition loops (best-of bursts, interleaved rounds)
   re-run solves a machine-speed-dependent number of times.  Restoring
   the perf counters around them keeps the counters block snapshotted by
   [write_json] deterministic at RTSYN_JOBS=1, where CI diffs it against
   bench/baseline/ at tolerance 0. *)
let perf_cells =
  Rt_par.Perf.
    [
      windows_checked; cache_hits; cache_misses; dfs_nodes; schedules_built;
      game_states; table_hits; table_misses; dominance_kills;
      decompose_components; decompose_component_solves;
      decompose_component_reuses;
    ]

let counters_preserved f =
  let before = List.map Rt_par.Perf.value perf_cells in
  let r = f () in
  List.iter2
    (fun c v0 -> Rt_par.Perf.add c (v0 - Rt_par.Perf.value c))
    perf_cells before;
  r

(* --json support: experiments record rows into per-file sinks — E14
   into BENCH_synthesis.json (the default), E15 into BENCH_exact.json —
   and the driver writes every non-empty sink after the selected
   experiments ran, each with a snapshot of the perf counters. *)
let json_sinks : (string * string list ref) list =
  [
    ("BENCH_synthesis.json", ref []); ("BENCH_exact.json", ref []);
    ("BENCH_daemon.json", ref []); ("BENCH_decompose.json", ref []);
  ]

let json_bench ?(file = "BENCH_synthesis.json") ~name ~baseline ~optimized
    ~jobs ~extra () =
  let extras =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", \"%s\": %d" k v) extra)
  in
  let rows = List.assoc file json_sinks in
  rows :=
    Printf.sprintf
      "    { \"name\": \"%s\", \"baseline_seconds\": %.6f, \
       \"optimized_seconds\": %.6f, \"speedup\": %.3f, \"jobs\": %d%s }"
      name baseline optimized (speedup baseline optimized) jobs extras
    :: !rows

let write_json () =
  List.iter
    (fun (path, rows) ->
      if !rows <> [] then begin
        let oc = open_out path in
        Printf.fprintf oc
          "{\n  \"benchmarks\": [\n%s\n  ],\n  \"counters\": {\n%s\n  }\n}\n"
          (String.concat ",\n" (List.rev !rows))
          (String.concat ",\n"
             (List.map
                (fun (k, v) -> Printf.sprintf "    \"%s\": %d" k v)
                (Rt_par.Perf.snapshot ())));
        close_out oc;
        Printf.printf "\nwrote %s\n%!" path
      end)
    json_sinks

(* ------------------------------------------------------------------ *)
(* E1: the example control system (Figures 1 and 2)                    *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section
    "E1  Example control system (Figures 1 & 2): synthesis across \
     parameterizations";
  row "%-16s %5s %4s %6s %5s %6s %10s %6s" "(p_x,p_y,d_z)" "util" "ok"
    "hyper" "load" "lat_z" "resp(per)" "misses";
  let base = Rt_workload.Suite.default_params in
  let configs =
    [
      (10, 20, 15); (10, 20, 8); (10, 20, 5); (10, 10, 15); (8, 16, 12);
      (12, 24, 20); (6, 12, 10); (10, 40, 25);
    ]
  in
  List.iter
    (fun (p_x, p_y, d_z) ->
      let m =
        Rt_workload.Suite.control_system
          { base with p_x; d_x = p_x; p_y; d_y = p_y; d_z }
      in
      match Synthesis.synthesize m with
      | Error _ ->
          row "%-16s %5.2f %4s %6s %5s %6s %10s %6s"
            (Printf.sprintf "(%d,%d,%d)" p_x p_y d_z)
            (Model.utilization m) "NO" "-" "-" "-" "-" "-"
      | Ok plan ->
          let show v =
            match v.Latency.achieved with
            | Some k -> string_of_int k
            | None -> "inf"
          in
          let lat_z =
            show
              (List.find
                 (fun v -> v.Latency.kind = Timing.Asynchronous)
                 plan.Synthesis.verdicts)
          in
          let resp =
            String.concat "/"
              (List.filter_map
                 (fun v ->
                   if v.Latency.kind = Timing.Periodic then Some (show v)
                   else None)
                 plan.Synthesis.verdicts)
          in
          let prng = Prng.create (p_x + p_y + d_z) in
          let mu = plan.Synthesis.model_used in
          let arr =
            Rt_sim.Arrivals.adversarial_phases prng ~horizon:600 ~separation:50
          in
          let report =
            Rt_sim.Runtime.run mu plan.Synthesis.schedule ~horizon:600
              ~arrivals:[ ("pz", arr) ]
          in
          row "%-16s %5.2f %4s %6d %5.2f %6s %10s %6d"
            (Printf.sprintf "(%d,%d,%d)" p_x p_y d_z)
            (Model.utilization m) "yes" plan.Synthesis.hyperperiod
            (Schedule.load plan.Synthesis.schedule)
            lat_z resp report.Rt_sim.Runtime.misses)
    configs

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1 — the simulation game always yields a finite          *)
(*     feasible static schedule when a feasible trace exists           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section
    "E2  Theorem 1: feasible trace <=> finite feasible static schedule \
     (simulation game)";
  row "%-12s %6s %9s %11s %9s %10s %8s" "ratio band" "n" "feasible"
    "infeasible" "unknown" "verified" "avg |L|";
  let prng = Prng.create 20260704 in
  List.iter
    (fun target ->
      let n = 60 in
      let feas = ref 0 and infeas = ref 0 and unknown = ref 0 in
      let verified = ref 0 and total_len = ref 0 in
      for _ = 1 to n do
        let nc = 1 + Prng.int prng 3 in
        let m =
          Rt_workload.Model_gen.single_op_model prng ~n_constraints:nc
            ~max_weight:3 ~target_ratio_sum:target
        in
        match (Exact.solve_single_ops ~max_states:300_000 m).Exact.outcome with
        | Exact.Feasible sched ->
            incr feas;
            total_len := !total_len + Schedule.length sched;
            if Latency.all_ok (Latency.verify m sched) then incr verified
        | Exact.Infeasible -> incr infeas
        | Exact.Timeout _ | Exact.Unknown _ -> incr unknown
      done;
      row "%-12s %6d %9d %11d %9d %10s %8s"
        (Printf.sprintf "%.2f" target)
        n !feas !infeas !unknown
        (Printf.sprintf "%d/%d" !verified !feas)
        (if !feas > 0 then string_of_int (!total_len / !feas) else "-"))
    [ 0.4; 0.7; 0.9; 1.1; 1.4 ]

(* ------------------------------------------------------------------ *)
(* E3: Theorem 2 — exponential cost of exact decision                  *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  Theorem 2: exact solver cost on NP-hardness instance families";
  Printf.printf
    "(a) 3-PARTITION reduction (case ii shape: single ops, all-but-one \
     deadlines equal)\n";
  row "%-10s %8s %10s %12s %10s" "m x b" "ops" "states" "time(s)" "outcome";
  let prng = Prng.create 42 in
  List.iter
    (fun (m_, b) ->
      let items = Rt_workload.Npc.three_partition_yes prng ~m:m_ ~b in
      let model = Rt_workload.Npc.reduction_model items ~b in
      let (stats : Exact.stats), dt =
        time_it (fun () -> Exact.solve_single_ops ~max_states:400_000 model)
      in
      row "%-10s %8d %10d %12.4f %10s"
        (Printf.sprintf "%dx%d" m_ b)
        (List.length model.Model.constraints)
        stats.Exact.explored dt
        (match stats.Exact.outcome with
        | Exact.Feasible _ -> "feasible"
        | Exact.Infeasible -> "infeasible"
        | Exact.Timeout _ -> "timeout"
        | Exact.Unknown _ -> "budget"))
    [ (1, 13); (1, 17); (1, 21); (1, 25); (2, 13); (2, 17) ];
  Printf.printf
    "\n(b) unit-weight chains of length 1 or 3 (case i shape), bounded \
     enumeration\n";
  row "%-12s %10s %12s %10s" "constraints" "leaves" "time(s)" "outcome";
  let prng = Prng.create 7 in
  List.iter
    (fun nc ->
      let m =
        Rt_workload.Model_gen.unit_chain_model prng ~n_constraints:nc
          ~n_elements:4 ~max_deadline:8
      in
      let (stats : Exact.stats), dt =
        time_it (fun () -> Exact.enumerate ~engine:`Dfs ~max_len:6 m)
      in
      row "%-12d %10d %12.4f %10s" nc stats.Exact.explored dt
        (match stats.Exact.outcome with
        | Exact.Feasible _ -> "feasible"
        | Exact.Infeasible -> "infeasible"
        | Exact.Timeout _ -> "timeout"
        | Exact.Unknown _ -> "none<=6"))
    [ 1; 2; 3; 4 ];
  Printf.printf "\n(c) the source problems themselves (brute-force deciders)\n";
  row "%-22s %10s %12s" "instance" "size" "time(s)";
  let prng = Prng.create 11 in
  List.iter
    (fun m_ ->
      let items = Rt_workload.Npc.three_partition_yes prng ~m:m_ ~b:29 in
      let _, dt =
        time_it (fun () -> Rt_workload.Npc.three_partition_solve items ~b:29)
      in
      row "%-22s %10d %12.4f" (Printf.sprintf "3-PARTITION m=%d" m_) (3 * m_) dt)
    [ 2; 4; 6; 8 ];
  List.iter
    (fun n ->
      let triples =
        Rt_workload.Npc.cyclic_ordering_yes prng ~n ~n_triples:(2 * n)
      in
      let _, dt =
        time_it (fun () -> Rt_workload.Npc.cyclic_ordering_solve ~n triples)
      in
      row "%-22s %10d %12.4f" (Printf.sprintf "CYCLIC-ORDERING n=%d" n) n dt)
    [ 5; 7; 9 ]

(* ------------------------------------------------------------------ *)
(* E4: Theorem 3 — the sufficient condition                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section
    "E4  Theorem 3: constructive scheduler success under / beyond the \
     premises";
  row "%-36s %6s %10s %10s" "family" "n" "construct" "heuristic";
  let trials = 40 in
  let prng = Prng.create 99 in
  let ok_c = ref 0 and ok_h = ref 0 in
  for _ = 1 to trials do
    let m =
      Rt_workload.Model_gen.theorem3_model prng ~n_constraints:3 ~max_weight:3
    in
    (match Theorem3.schedule m with Ok _ -> incr ok_c | Error _ -> ());
    match Synthesis.synthesize ~max_hyperperiod:4096 m with
    | Ok _ -> incr ok_h
    | Error _ -> ()
  done;
  row "%-36s %6d %10s %10s" "premises hold (sum w/d <= 0.5)" trials
    (Printf.sprintf "%d/%d" !ok_c trials)
    (Printf.sprintf "%d/%d" !ok_h trials);
  (* Single-operation models with harmonic (power-of-two) deadlines so
     the heuristic's hyperperiods stay small; elements are pipelinable
     here so only premise (i) is at stake. *)
  let harmonic_single_op prng ~n ~max_weight ~ratio =
    let shares = Rt_workload.Model_gen.uunifast prng ~n ~total:ratio in
    let weights = Array.init n (fun _ -> 1 + Prng.int prng max_weight) in
    let elements =
      List.init n (fun i -> (Printf.sprintf "op%d" i, weights.(i), true))
    in
    let comm = Comm_graph.create ~elements ~edges:[] in
    let constraints =
      List.init n (fun i ->
          let w = weights.(i) in
          let raw =
            max w
              (int_of_float (ceil (float_of_int w /. max 1e-6 shares.(i))))
          in
          (* Round UP to a power of two: the realized ratio sum is at
             most the target, and hyperperiods stay harmonic. *)
          let d =
            min 64
              (if raw <= 1 then 1
               else 2 * Rt_graph.Intmath.pow2_floor (raw - 1))
          in
          let d = max w d in
          Timing.make
            ~name:(Printf.sprintf "c%d" i)
            ~graph:(Task_graph.singleton i) ~period:d ~deadline:d
            ~kind:Timing.Asynchronous)
    in
    Model.make ~comm ~constraints
  in
  List.iter
    (fun ratio ->
      let ok_c = ref 0 and ok_h = ref 0 in
      for _ = 1 to trials do
        (* Power-of-two rounding lowers the realized ratio sum, so
           resample until premise (i) genuinely fails. *)
        let rec violating tries =
          let m = harmonic_single_op prng ~n:3 ~max_weight:3 ~ratio in
          if tries = 0 || not (Theorem3.premises_hold m) then m
          else violating (tries - 1)
        in
        let m = violating 50 in
        (match Theorem3.schedule m with Ok _ -> incr ok_c | Error _ -> ());
        match Synthesis.synthesize ~max_hyperperiod:4096 m with
        | Ok _ -> incr ok_h
        | Error _ -> ()
      done;
      row "%-36s %6d %10s %10s"
        (Printf.sprintf "premise (i) violated, sum w/d ~ %.1f" ratio)
        trials
        (Printf.sprintf "%d/%d" !ok_c trials)
        (Printf.sprintf "%d/%d" !ok_h trials))
    [ 0.7; 0.9; 1.1 ]

(* ------------------------------------------------------------------ *)
(* E5: shared operations — process model vs latency scheduling         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section
    "E5  Shared operations: \"no reason why f_S should be executed twice \
     per period\"";
  row "%-18s %8s %9s %9s %9s %10s %10s" "pairs x w, p" "U(proc)" "U(merged)"
    "saved/hp" "proc EDF" "merged ok" "crossover";
  let prng = Prng.create 5 in
  List.iter
    (fun (n_pairs, shared_weight, period) ->
      let m =
        Rt_workload.Model_gen.shared_block_model prng ~n_pairs ~shared_weight
          ~private_weight:1 ~period
      in
      let tr = Rt_process.From_model.translate m in
      let u_proc = Model.utilization m in
      let merged, _rep = Merge.apply m in
      let u_merged = Model.utilization merged in
      let saved = Rt_process.From_model.redundant_work m tr in
      let proc_ok = Rt_process.From_model.edf_schedulable tr in
      let merged_ok =
        match Synthesis.synthesize m with Ok _ -> true | Error _ -> false
      in
      row "%-18s %8.3f %9.3f %9d %9b %10b %10s"
        (Printf.sprintf "%dx%d p=%d" n_pairs shared_weight period)
        u_proc u_merged saved proc_ok merged_ok
        (if (not proc_ok) && merged_ok then "<== yes" else ""))
    [
      (* pairs, shared weight, period — chosen so several rows land in
         the band U(merged) <= 1 < U(process): the crossover where only
         the graph-based implementation fits the processor. *)
      (2, 2, 12); (2, 2, 10); (3, 2, 15); (3, 2, 12); (4, 2, 20); (3, 3, 21);
      (4, 3, 28); (2, 4, 16); (4, 4, 32); (4, 2, 12);
    ]

(* ------------------------------------------------------------------ *)
(* E6: the [MOK 83] substrate — acceptance ratio vs utilization        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section
    "E6  Scheduling substrate: acceptance ratio vs utilization (EDF / RM / \
     LLF, 40 sets per point)";
  row "%-6s %8s %8s %8s" "U" "EDF" "RM" "LLF";
  let prng = Prng.create 17 in
  let trials = 40 in
  List.iter
    (fun u100 ->
      let u = float_of_int u100 /. 100.0 in
      let accept = Array.make 3 0 in
      for _ = 1 to trials do
        let m =
          Rt_workload.Model_gen.periodic_chain_model prng ~n_constraints:4
            ~utilization:u ~periods:[ 8; 12; 16; 24 ]
        in
        let procs =
          (Rt_process.From_model.translate m).Rt_process.From_model.processes
        in
        let policies =
          [|
            Rt_sim.Proc_sim.Edf;
            Rt_sim.Proc_sim.Fixed Rt_process.Fixed_priority.Rate_monotonic;
            Rt_sim.Proc_sim.Llf;
          |]
        in
        Array.iteri
          (fun i pol ->
            if Rt_sim.Proc_sim.schedulable_by_simulation pol procs then
              accept.(i) <- accept.(i) + 1)
          policies
      done;
      row "%-6.2f %8.2f %8.2f %8.2f" u
        (float_of_int accept.(0) /. float_of_int trials)
        (float_of_int accept.(1) /. float_of_int trials)
        (float_of_int accept.(2) /. float_of_int trials))
    [ 50; 60; 70; 75; 80; 85; 90; 95; 98; 100 ]

(* ------------------------------------------------------------------ *)
(* E7: software pipelining — smaller critical sections                 *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  Software pipelining: blocking and schedulability impact";
  row "%-18s %10s %10s %10s %10s %10s" "shared weight" "blk(raw)" "blk(pipe)"
    "DM(raw)" "DM(pipe)" "synth ok";
  let prng = Prng.create 23 in
  List.iter
    (fun shared_weight ->
      let m =
        Rt_workload.Model_gen.shared_block_model prng ~n_pairs:3 ~shared_weight
          ~private_weight:1
          ~period:(8 * shared_weight)
      in
      let raw = Rt_process.Monitor.of_model m in
      let piped = Rt_process.Monitor.of_model ~pipelined:true m in
      let tr_raw = Rt_process.From_model.translate m in
      let tr_piped = Rt_process.From_model.translate ~pipelined:true m in
      let synth_ok =
        match Synthesis.synthesize m with Ok _ -> true | Error _ -> false
      in
      row "%-18d %10d %10d %10b %10b %10b" shared_weight
        (Rt_process.Monitor.max_critical_section raw)
        (Rt_process.Monitor.max_critical_section piped)
        (Rt_process.From_model.fixed_priority_schedulable tr_raw)
        (Rt_process.From_model.fixed_priority_schedulable tr_piped)
        synth_ok)
    [ 1; 2; 3; 4; 6; 8 ];
  Printf.printf
    "\nblocker/tight-task family: one atomic-unless-pipelined operation of \
     weight W\n(period 4W) next to unit tasks with period and deadline W/2:\n";
  row "%-10s %12s %12s" "W" "pipelined" "raw";
  List.iter
    (fun w ->
      let comm =
        Comm_graph.create
          ~elements:[ ("blocker", w, true); ("tick", 1, true) ]
          ~edges:[]
      in
      let m =
        Model.make ~comm
          ~constraints:
            [
              Timing.make ~name:"heavy" ~graph:(Task_graph.singleton 0)
                ~period:(4 * w) ~deadline:(4 * w) ~kind:Timing.Periodic;
              Timing.make ~name:"tight" ~graph:(Task_graph.singleton 1)
                ~period:(w / 2) ~deadline:(w / 2) ~kind:Timing.Periodic;
            ]
      in
      let ok pipeline =
        match Synthesis.synthesize ~pipeline m with
        | Ok _ -> true
        | Error _ -> false
      in
      row "%-10d %12b %12b" w (ok true) (ok false))
    [ 4; 8; 16; 32 ];
  Printf.printf
    "\n(process route on the same family: preemptive EDF needs pipelining; \
     the\nkernelized-monitor alternative [MOK 83] with quantum W blocks the \
     tight task)\n";
  row "%-10s %14s %16s" "W" "EDF preempt" "kernelized q=W";
  List.iter
    (fun w ->
      let tight =
        Rt_process.Process.make ~name:"tight" ~c:1 ~p:(w / 2) ~d:(w / 2)
          ~kind:Rt_process.Process.Periodic_process
      in
      let heavy =
        Rt_process.Process.make ~name:"heavy" ~c:w ~p:(4 * w) ~d:(4 * w)
          ~kind:Rt_process.Process.Periodic_process
      in
      let ok policy =
        Rt_sim.Proc_sim.schedulable_by_simulation policy [ tight; heavy ]
      in
      row "%-10d %14b %16b" w
        (ok Rt_sim.Proc_sim.Edf)
        (ok (Rt_sim.Proc_sim.Kernelized w)))
    [ 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* E8: multiprocessor decomposition                                    *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  Multiprocessor decomposition (announced follow-up work)";
  row "%-8s %9s %9s %9s %8s %8s" "procs" "feasible" "max load" "bus load"
    "cut" "hyper";
  let model =
    let comm =
      Comm_graph.create
        ~elements:
          [
            ("adc", 2, true); ("fir1", 4, true); ("fir2", 4, true);
            ("fft", 6, true); ("detect", 3, true); ("track", 3, true);
            ("report", 1, true);
          ]
        ~edges:
          [
            ("adc", "fir1"); ("adc", "fir2"); ("fir1", "fft"); ("fir2", "fft");
            ("fft", "detect"); ("detect", "track"); ("track", "report");
          ]
    in
    let id = Comm_graph.id_of_name comm in
    let chain names = Task_graph.of_chain (List.map id names) in
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"front"
            ~graph:(chain [ "adc"; "fir1"; "fft" ])
            ~period:32 ~deadline:32 ~kind:Timing.Periodic;
          Timing.make ~name:"alt"
            ~graph:(chain [ "adc"; "fir2"; "fft" ])
            ~period:32 ~deadline:32 ~kind:Timing.Periodic;
          Timing.make ~name:"back"
            ~graph:(chain [ "detect"; "track"; "report" ])
            ~period:32 ~deadline:32 ~kind:Timing.Periodic;
        ]
  in
  List.iter
    (fun n_procs ->
      match Rt_multiproc.Msched.synthesize ~n_procs ~msg_cost:1 model with
      | Error _ -> row "%-8d %9s %9s %9s %8s %8s" n_procs "no" "-" "-" "-" "-"
      | Ok r ->
          let max_load =
            Array.fold_left max 0.0 r.Rt_multiproc.Msched.proc_loads
          in
          row "%-8d %9s %9.3f %9.3f %8d %8d" n_procs "yes" max_load
            r.Rt_multiproc.Msched.bus_load r.Rt_multiproc.Msched.cut
            r.Rt_multiproc.Msched.hyperperiod)
    [ 1; 2; 3; 4; 6 ];
  Printf.printf
    "\nrandom models (util 0.8 each), feasibility by processor count:\n";
  row "%-8s %12s %12s %12s" "procs" "feasible" "avg cut" "avg bus";
  let master = Prng.create 31 in
  List.iter
    (fun n_procs ->
      let trials = 20 in
      let ok = ref 0 and cut = ref 0 and bus = ref 0.0 in
      let prng = Prng.copy master in
      for _ = 1 to trials do
        let m =
          Rt_workload.Model_gen.periodic_chain_model prng ~n_constraints:6
            ~utilization:0.8 ~periods:[ 16; 32 ]
        in
        match Rt_multiproc.Msched.synthesize ~n_procs ~msg_cost:1 m with
        | Ok r ->
            incr ok;
            cut := !cut + r.Rt_multiproc.Msched.cut;
            bus := !bus +. r.Rt_multiproc.Msched.bus_load
        | Error _ -> ()
      done;
      row "%-8d %12s %12s %12s" n_procs
        (Printf.sprintf "%d/%d" !ok trials)
        (if !ok > 0 then
           Printf.sprintf "%.1f" (float_of_int !cut /. float_of_int !ok)
         else "-")
        (if !ok > 0 then Printf.sprintf "%.3f" (!bus /. float_of_int !ok)
         else "-"))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* E9: ablation of the synthesis design choices                        *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section
    "E9  Ablation: merging, software pipelining and idle trimming \
     (design choices)";
  Printf.printf "(a) the example control system under each configuration\n";
  row "%-22s %4s %7s %6s %6s %9s" "configuration" "ok" "hyper" "load"
    "idle" "trimmed";
  let example =
    Rt_workload.Suite.control_system Rt_workload.Suite.default_params
  in
  List.iter
    (fun (label, merge, pipeline) ->
      match Synthesis.synthesize ~merge ~pipeline example with
      | Error _ -> row "%-22s %4s %7s %6s %6s %9s" label "NO" "-" "-" "-" "-"
      | Ok plan ->
          let mu = plan.Synthesis.model_used in
          let trimmed, _ = Optimize.trim_idle mu plan.Synthesis.schedule in
          row "%-22s %4s %7d %6.2f %6d %9d" label "yes"
            plan.Synthesis.hyperperiod
            (Schedule.load plan.Synthesis.schedule)
            (Schedule.idle_slots plan.Synthesis.schedule)
            (Schedule.length trimmed))
    [
      ("full", true, true);
      ("no merge", false, true);
      ("no pipeline", true, false);
      ("neither", false, false);
    ];
  Printf.printf
    "\n(b) success rate on shared-element workloads (20 models per row)\n";
  row "%-22s %10s" "configuration" "feasible";
  let prng = Prng.create 4242 in
  let models =
    List.init 20 (fun _ ->
        Rt_workload.Model_gen.shared_block_model prng
          ~n_pairs:(2 + Prng.int prng 3)
          ~shared_weight:(2 + Prng.int prng 2)
          ~private_weight:1
          ~period:(14 + (2 * Prng.int prng 6)))
  in
  (* The 20 models are independent, so each row's sweep fans out over
     the domain pool; parallel_map preserves order, so the counts are
     identical to the sequential fold at any job count. *)
  let marr = Array.of_list models in
  Rt_par.Pool.with_pool (fun pool ->
      List.iter
        (fun (label, merge, pipeline) ->
          let feasible =
            Rt_par.Pool.parallel_map pool
              (fun m ->
                match Synthesis.synthesize ~merge ~pipeline m with
                | Ok _ -> true
                | Error _ -> false)
              marr
          in
          let ok =
            Array.fold_left (fun n b -> if b then n + 1 else n) 0 feasible
          in
          row "%-22s %10s" label (Printf.sprintf "%d/20" ok))
        [
          ("full", true, true);
          ("no merge", false, true);
          ("no pipeline", true, false);
          ("neither", false, false);
        ]);
  Printf.printf
    "\n(c) admission-test coverage on the same models (fast analytic path)\n";
  let counts = Hashtbl.create 4 in
  List.iter
    (fun m ->
      let key =
        match Admission.admit m with
        | Admission.Guaranteed why -> "guaranteed:" ^ why
        | Admission.Impossible _ -> "impossible"
        | Admission.Inconclusive -> "inconclusive"
      in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    models;
  Hashtbl.iter (fun k v -> row "  %-22s %d/20" k v) counts;
  Printf.printf
    "\n(d) dispatcher backend: EDF vs deadline-monotonic on mixed workloads\n";
  row "%-14s %10s %10s" "utilization" "EDF" "DM";
  let prng2 = Prng.create 777 in
  List.iter
    (fun u100 ->
      let u = float_of_int u100 /. 100.0 in
      let models =
        List.init 20 (fun _ ->
            Rt_workload.Model_gen.periodic_chain_model prng2 ~n_constraints:4
              ~utilization:u ~periods:[ 8; 12; 16; 24 ])
      in
      let count backend =
        List.length
          (List.filter
             (fun m ->
               match Synthesis.synthesize ~backend m with
               | Ok _ -> true
               | Error _ -> false)
             models)
      in
      row "%-14.2f %10s %10s" u
        (Printf.sprintf "%d/20" (count Edf_cyclic.Edf))
        (Printf.sprintf "%d/20" (count Edf_cyclic.Dm)))
    [ 70; 85; 95; 100 ]

(* ------------------------------------------------------------------ *)
(* E10: release offsets — phasing as a schedulability lever            *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section
    "E10 Release offsets: phased vs synchronous releases (tight half-period \
     deadlines)";
  row "%-10s %6s %14s %12s" "bursts" "U" "synchronous" "phased";
  let prng = Prng.create 1010 in
  (* k bursts of weight w, period k*w*2, each with deadline w*2: released
     together they contend; evenly phased they fit exactly. *)
  List.iter
    (fun k ->
      let trials = 20 in
      let sync_ok = ref 0 and phased_ok = ref 0 in
      for _ = 1 to trials do
        let w = 2 + Prng.int prng 3 in
        let period = 2 * w * k in
        let comm =
          Comm_graph.create
            ~elements:(List.init k (fun i -> (Printf.sprintf "b%d" i, w, true)))
            ~edges:[]
        in
        let mk offset i =
          let c =
            Timing.make
              ~name:(Printf.sprintf "c%d" i)
              ~graph:(Task_graph.singleton i) ~period ~deadline:(2 * w)
              ~kind:Timing.Periodic
          in
          if offset = 0 then c else Timing.with_offset c offset
        in
        let sync =
          Model.make ~comm ~constraints:(List.init k (mk 0))
        in
        let phased =
          Model.make ~comm
            ~constraints:(List.init k (fun i -> mk (2 * w * i) i))
        in
        (match Synthesis.synthesize sync with
        | Ok _ -> incr sync_ok
        | Error _ -> ());
        match Synthesis.synthesize phased with
        | Ok _ -> incr phased_ok
        | Error _ -> ()
      done;
      row "%-10d %6.2f %14s %12s" k 0.5
        (Printf.sprintf "%d/%d" !sync_ok trials)
        (Printf.sprintf "%d/%d" !phased_ok trials))
    [ 2; 3; 4; 6 ]

(* ------------------------------------------------------------------ *)
(* E11: how conservative is the heuristic?                             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section
    "E11 Heuristic vs exact: polling synthesis against the simulation game \
     (single-operation instances)";
  row "%-12s %6s %9s %11s %10s" "ratio band" "n" "exact" "heuristic"
    "recovered";
  let prng = Prng.create 1111 in
  List.iter
    (fun target ->
      let n = 40 in
      let exact_ok = ref 0 and heur_ok = ref 0 in
      for _ = 1 to n do
        let m =
          Rt_workload.Model_gen.single_op_model ~max_deadline:32 prng
            ~n_constraints:(1 + Prng.int prng 3)
            ~max_weight:3 ~target_ratio_sum:target
        in
        let exact =
          match (Exact.solve_single_ops ~max_states:300_000 m).Exact.outcome with
          | Exact.Feasible _ -> true
          | _ -> false
        in
        let heur =
          match Synthesis.synthesize ~max_hyperperiod:50_000 m with
          | Ok _ -> true
          | Error _ -> false
        in
        if exact then incr exact_ok;
        if heur then begin
          incr heur_ok;
          if not exact then
            (* Should be impossible: the heuristic's schedules verify,
               so exact feasibility must hold. *)
            row "!! heuristic succeeded on an exactly-infeasible instance"
        end
      done;
      row "%-12.2f %6d %9d %11d %10s" target n !exact_ok !heur_ok
        (if !exact_ok > 0 then
           Printf.sprintf "%.0f%%"
             (100.0 *. float_of_int !heur_ok /. float_of_int !exact_ok)
         else "-"))
    [ 0.3; 0.5; 0.7; 0.9 ]

(* ------------------------------------------------------------------ *)
(* E12: fault-tolerant runtime — recovery policies across fault rates  *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section
    "E12 Overrun-aware runtime: miss ratio and detection/recovery latency \
     per policy across fault rates";
  (* The degraded-modes flight-control fixture (see
     examples/degraded_modes.ml): a high-criticality attitude chain, a
     medium navigation filter, a low telemetry formatter. *)
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("gyro", 1, true); ("ctl", 2, true); ("act", 1, true);
          ("nav", 2, true); ("tlm", 2, true);
        ]
      ~edges:[ ("gyro", "ctl"); ("ctl", "act") ]
  in
  let id = Comm_graph.id_of_name comm in
  let model =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"attitude"
            ~graph:
              (Task_graph.of_chain [ id "gyro"; id "ctl"; id "act" ])
            ~period:12 ~deadline:12 ~kind:Timing.Periodic;
          Timing.make ~name:"navigation"
            ~graph:(Task_graph.singleton (id "nav"))
            ~period:24 ~deadline:24 ~kind:Timing.Periodic;
          Timing.make ~name:"telemetry"
            ~graph:(Task_graph.singleton (id "tlm"))
            ~period:12 ~deadline:12 ~kind:Timing.Periodic;
        ]
  in
  let crit =
    match
      Criticality.make model
        [
          ("attitude", Criticality.High);
          ("navigation", Criticality.Medium);
          ("telemetry", Criticality.Low);
        ]
    with
    | Ok a -> a
    | Error e -> failwith (String.concat ";" e)
  in
  let modes =
    match
      Modes.derive
        ~derivation:{ Modes.stretch = 2; max_hyperperiod = 10_000 }
        model crit
    with
    | Ok ms -> ms
    | Error e -> failwith e
  in
  let watchdog = { Rt_sim.Watchdog.check_period = 4; stall_limit = 16 } in
  let horizon = 2400 in
  let prng = Prng.create 1212 in
  (* A fault plan at rate r: each 60-slot epoch carries, with
     probability r, one 30-slot overrun window on the telemetry or
     navigation element. *)
  let gen_faults rate =
    List.filter_map
      (fun k ->
        if Prng.chance prng rate then begin
          let from = (k * 60) + Prng.int prng 30 in
          let elem = if Prng.bool prng then id "tlm" else id "nav" in
          Some
            (Rt_sim.Timing_fault.overrun ~elem ~from ~until:(from + 30)
               ~extra:(4 + Prng.int prng 5))
        end
        else None)
      (List.init (horizon / 60) Fun.id)
  in
  let policies =
    [
      ("abort", Rt_sim.Robust_runtime.Abort_job);
      ("skip-next", Rt_sim.Robust_runtime.Skip_next);
      ( "retry(2,2)",
        Rt_sim.Robust_runtime.Retry { max_attempts = 2; backoff = 2 } );
      ("degrade", Rt_sim.Robust_runtime.Degrade_to "degraded-high");
    ]
  in
  row "%-6s %-11s %4s %9s %7s %7s %7s %5s %4s %6s" "rate" "policy" "det"
    "lat(m/mx)" "miss_hi" "miss_md" "miss_lo" "shed" "sw" "degr";
  List.iter
    (fun rate ->
      let faults = gen_faults rate in
      List.iter
        (fun (pname, policy) ->
          let r =
            Rt_sim.Robust_runtime.run ~crit ~faults ~policy ~watchdog
              ~readmit_after:24 ~horizon ~arrivals:[] modes
          in
          let ds = r.Rt_sim.Robust_runtime.detections in
          let lat_mean, lat_max =
            match ds with
            | [] -> (0.0, 0)
            | _ ->
                let ls = List.map (fun d -> d.Rt_sim.Watchdog.latency) ds in
                ( float_of_int (List.fold_left ( + ) 0 ls)
                  /. float_of_int (List.length ls),
                  List.fold_left max 0 ls )
          in
          let miss_of lvl =
            let c =
              List.find
                (fun c -> c.Rt_sim.Stats.level = lvl)
                (Rt_sim.Stats.by_criticality r)
            in
            Printf.sprintf "%d/%d" c.Rt_sim.Stats.level_misses
              c.Rt_sim.Stats.served
          in
          row "%-6.2f %-11s %4d %4.1f/%-4d %7s %7s %7s %5d %4d %6d" rate
            pname (List.length ds) lat_mean lat_max
            (miss_of Criticality.High)
            (miss_of Criticality.Medium)
            (miss_of Criticality.Low)
            r.Rt_sim.Robust_runtime.shed
            r.Rt_sim.Robust_runtime.mode_switches
            r.Rt_sim.Robust_runtime.degraded_slots)
        policies)
    [ 0.0; 0.1; 0.25; 0.5 ];
  row "(lat = detection latency, analyzed bound %d; miss = misses/served \
       per criticality; degr = slots in a degraded mode)"
    (Rt_sim.Watchdog.detection_bound watchdog)

(* ------------------------------------------------------------------ *)
(* E13: distributed failover — crashes and bus faults per regime       *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section
    "E13 Distributed failover: processor crash + lossy bus, no-failover vs \
     contingency vs degraded-mode failover";
  (* A two-processor workload sized so that a single survivor cannot
     carry full service (utilization 1.25) but can carry the High
     constraints alone (0.75): the criticality-blind contingency table
     has no feasible scenario, while the criticality-aware one sheds
     the Low constraint and keeps the High ones on schedule. *)
  let comm =
    Comm_graph.create
      ~elements:
        [ ("a", 3, true); ("b", 3, true); ("c", 2, true); ("d", 2, true) ]
      ~edges:[ ("c", "d") ]
  in
  let id = Comm_graph.id_of_name comm in
  let model =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"hi1"
            ~graph:(Task_graph.singleton (id "a"))
            ~period:8 ~deadline:8 ~kind:Timing.Periodic;
          Timing.make ~name:"hi2"
            ~graph:(Task_graph.singleton (id "b"))
            ~period:8 ~deadline:8 ~kind:Timing.Periodic;
          Timing.make ~name:"lo"
            ~graph:(Task_graph.of_chain [ id "c"; id "d" ])
            ~period:8 ~deadline:8 ~kind:Timing.Periodic;
        ]
  in
  let crit =
    match
      Criticality.make model
        [
          ("hi1", Criticality.High); ("hi2", Criticality.High);
          ("lo", Criticality.Low);
        ]
    with
    | Ok a -> a
    | Error e -> failwith (String.concat ";" e)
  in
  let nominal =
    match Rt_multiproc.Msched.synthesize ~n_procs:2 ~msg_cost:1 ~arq_slack:1
        model with
    | Ok r -> r
    | Error e -> failwith ("E13 nominal synthesis: " ^ e)
  in
  let heartbeat = { Rt_sim.Heartbeat.hb_period = 2; miss_threshold = 1 } in
  let detect_bound = Rt_sim.Heartbeat.detection_bound heartbeat in
  let module Cg = Rt_multiproc.Contingency in
  let table_full =
    match Cg.synthesize ~detect_bound model nominal with
    | Ok t -> t
    | Error e -> failwith ("E13 contingency (full): " ^ e)
  in
  let table_degr =
    match Cg.synthesize ~criticality:crit ~detect_bound model nominal with
    | Ok t -> t
    | Error e -> failwith ("E13 contingency (degraded): " ^ e)
  in
  row "feasible crash scenarios: full-service %d/2, criticality-aware %d/2"
    (List.length (Cg.feasible_scenarios table_full))
    (List.length (Cg.feasible_scenarios table_degr));
  row "reconfiguration bound: %d slots (detect %d + swap 1 + migrate %d)"
    table_degr.Cg.reconfig_bound detect_bound table_degr.Cg.migration;
  let horizon = 320 in
  let crash_times = [ 5; 19; 42; 77 ] in
  let module Dr = Rt_sim.Dist_runtime in
  let module Nf = Rt_sim.Net_fault in
  let regimes =
    [
      ("none", table_full, Dr.No_failover, None);
      ("contingency", table_full, Dr.Failover, None);
      ("degraded", table_degr, Dr.Failover, Some crit);
    ]
  in
  row "%-6s %-12s %6s %7s %6s %8s %6s %8s" "rate" "regime" "inv"
    "missed" "shed" "miss>rb" "retx" "switch";
  List.iter
    (fun rate ->
      List.iter
        (fun (rname, table, policy, crit_opt) ->
          let inv = ref 0 and missed = ref 0 and shed = ref 0 in
          let late = ref 0 and retx = ref 0 and switches = ref 0 in
          List.iteri
            (fun k at ->
              let net_faults =
                Nf.random_plan
                  (Prng.create (1300 + (17 * k)))
                  ~horizon:(2 * horizon) ~loss_rate:rate
              in
              let r =
                Dr.run ?crit:crit_opt
                  ~crashes:[ { Dr.proc = 1; at; return_at = None } ]
                  ~net_faults ~policy ~heartbeat ~horizon model table
              in
              inv := !inv + List.length r.Dr.invocations;
              missed := !missed + r.Dr.misses;
              shed := !shed + r.Dr.shed;
              retx := !retx + r.Dr.bus_retransmissions;
              switches := !switches + r.Dr.config_switches;
              late :=
                !late
                + List.length
                    (List.filter
                       (fun (i : Dr.invocation) ->
                         i.Dr.arrival >= at + table.Cg.reconfig_bound
                         && (not i.Dr.shed)
                         && not i.Dr.met)
                       r.Dr.invocations))
            crash_times;
          row "%-6.2f %-12s %6d %7d %6d %8d %6d %8d" rate rname !inv !missed
            !shed !late !retx !switches)
        regimes)
    [ 0.0; 0.05; 0.15 ];
  row
    "(aggregated over crashes of p1 at t = %s, horizon %d; miss>rb = missed \
     invocations arriving after crash + reconfiguration bound — 0 for the \
     degraded regime is the headline guarantee; shed = invocations dropped \
     because their constraint has no plan in the active table)"
    (String.concat "," (List.map string_of_int crash_times))
    horizon

(* ------------------------------------------------------------------ *)
(* E14: parallel + cache-aware engine — speedup and bit-identity       *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section
    "E14 Parallel, cache-aware engine: domain pool vs sequential, cached vs \
     uncached verification";
  let jobs = Rt_par.Pool.default_jobs () in
  row "domains for the parallel runs: %d (RTSYN_JOBS, else recommended %d)"
    jobs
    (Domain.recommended_domain_count ());
  row "%-28s %12s %12s %9s" "benchmark" "baseline(s)" "optimized(s)"
    "speedup";
  (* (a) exact enumeration on E3(b)'s largest published family member:
     sequential vs the domain pool, same instance, plan equality
     asserted. *)
  let m = Rt_workload.Suite.exact_stress ~n_constraints:4 () in
  let exact_iters = 25 in
  let repeat_exact ?pool () =
    let last = ref None in
    for _ = 1 to exact_iters do
      last := Some (Exact.enumerate ?pool ~engine:`Dfs ~max_len:6 m)
    done;
    Option.get !last
  in
  Rt_par.Perf.reset ();
  let (s_seq : Exact.stats), t_seq = time_wall (repeat_exact ?pool:None) in
  let nodes_seq = Rt_par.Perf.value Rt_par.Perf.dfs_nodes / exact_iters in
  let s_par, t_par =
    Rt_par.Pool.with_pool ~jobs (fun p ->
        time_wall (repeat_exact ~pool:p))
  in
  (match (s_seq.Exact.outcome, s_par.Exact.outcome) with
  | Exact.Feasible a, Exact.Feasible b when Schedule.equal a b -> ()
  | Exact.Infeasible, Exact.Infeasible -> ()
  | Exact.Unknown _, Exact.Unknown _ -> ()
  | _ -> failwith "E14: parallel exact solver diverged from sequential");
  row "%-28s %12.4f %12.4f %8.2fx" "exact/unit-chains(nc=4)" t_seq t_par
    (speedup t_seq t_par);
  json_bench ~name:"exact/unit-chains-nc4" ~baseline:t_seq ~optimized:t_par
    ~jobs
    ~extra:[ ("dfs_nodes", nodes_seq); ("explored", s_seq.Exact.explored) ]
    ();
  (* (b) 16-scenario contingency synthesis: one crash scenario per
     processor, scenario-table equality asserted schedule by
     schedule. *)
  let model = Rt_workload.Suite.replicated_control ~n:16 in
  let nominal =
    match Rt_multiproc.Msched.synthesize ~n_procs:16 ~msg_cost:1 model with
    | Ok r -> r
    | Error e -> failwith ("E14 nominal 16-processor synthesis: " ^ e)
  in
  let module Cg = Rt_multiproc.Contingency in
  let module Ms = Rt_multiproc.Msched in
  let contingency pool () =
    match Cg.synthesize ?pool ~detect_bound:3 model nominal with
    | Ok t -> t
    | Error e -> failwith ("E14 contingency synthesis: " ^ e)
  in
  let tbl_seq, t_cseq = time_wall (contingency None) in
  let tbl_par, t_cpar =
    Rt_par.Pool.with_pool ~jobs (fun p -> time_wall (contingency (Some p)))
  in
  let scenario_equal a b =
    match (a, b) with
    | Ok (sa : Cg.scenario), Ok (sb : Cg.scenario) ->
        sa.Cg.dead = sb.Cg.dead
        && sa.Cg.threshold = sb.Cg.threshold
        && sa.Cg.dropped = sb.Cg.dropped
        &&
        let pa = sa.Cg.result.Ms.processor_schedules
        and pb = sb.Cg.result.Ms.processor_schedules in
        Array.length pa = Array.length pb
        && Array.for_all2 Schedule.equal pa pb
    | Error ea, Error eb -> ea = eb
    | _ -> false
  in
  if
    not
      (Array.for_all2 scenario_equal tbl_seq.Cg.scenarios tbl_par.Cg.scenarios)
  then failwith "E14: parallel contingency table diverged from sequential";
  row "%-28s %12.4f %12.4f %8.2fx  (%d/16 scenarios feasible)"
    "contingency/16-scenarios" t_cseq t_cpar (speedup t_cseq t_cpar)
    (List.length (Cg.feasible_scenarios tbl_seq));
  json_bench ~name:"contingency/16-scenarios" ~baseline:t_cseq
    ~optimized:t_cpar ~jobs
    ~extra:
      [ ("feasible_scenarios", List.length (Cg.feasible_scenarios tbl_seq)) ]
    ();
  (* (c) cached vs uncached verification on an unrolled schedule (the
     shape multiprocessor synthesis produces): the cached engine keys
     its residue memo and argmax candidates on the underlying pattern,
     the reference engine re-derives every window.  Verdict equality
     asserted. *)
  let example =
    Rt_workload.Suite.control_system Rt_workload.Suite.default_params
  in
  let plan =
    match Synthesis.synthesize example with
    | Ok p -> p
    | Error _ -> failwith "E14: example synthesis failed"
  in
  let mu = plan.Synthesis.model_used in
  let unrolled = Schedule.repeat plan.Synthesis.schedule 8 in
  let iters = 3 in
  let run_verify cached () =
    let last = ref [] in
    for _ = 1 to iters do
      last := Latency.verify ~cached mu unrolled
    done;
    !last
  in
  Rt_par.Perf.reset ();
  let v_ref, t_ref = time_wall (run_verify false) in
  let w_ref = Rt_par.Perf.value Rt_par.Perf.windows_checked in
  Rt_par.Perf.reset ();
  let v_cached, t_cached = time_wall (run_verify true) in
  let w_cached = Rt_par.Perf.value Rt_par.Perf.windows_checked in
  let hits = Rt_par.Perf.value Rt_par.Perf.cache_hits in
  if v_ref <> v_cached then
    failwith "E14: cached verification verdicts diverged from reference";
  row "%-28s %12.4f %12.4f %8.2fx  (windows %d -> %d, memo hits %d)"
    (Printf.sprintf "verify/unrolled-x8 (x%d)" iters)
    t_ref t_cached (speedup t_ref t_cached) w_ref w_cached hits;
  json_bench ~name:"verify/cached-unrolled-x8" ~baseline:t_ref
    ~optimized:t_cached ~jobs:1
    ~extra:
      [
        ("windows_uncached", w_ref); ("windows_cached", w_cached);
        ("cache_hits", hits);
      ]
    ();
  row
    "(baseline = sequential / uncached reference engine; optimized = %d-domain \
     pool / cached engine.  Equality of plans, scenario tables and verdicts \
     is asserted, not sampled.)"
    jobs

(* ------------------------------------------------------------------ *)
(* E15: exact engines — bounded DFS vs the state-space game            *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section
    "E15 Exact engines: bounded DFS enumeration vs state-space game \
     (transposition + dominance)";
  let jobs = Rt_par.Pool.default_jobs () in
  let show = function
    | Exact.Feasible _ -> "feasible"
    | Exact.Infeasible -> "infeasible"
    | Exact.Timeout _ -> "timeout"
    | Exact.Unknown _ -> "unknown"
  in
  let oracle m = function
    | Exact.Feasible sched ->
        if
          not
            (List.for_all
               (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
               (Model.asynchronous m))
        then failwith "E15: game schedule failed the latency oracle"
    | _ -> ()
  in
  (* The whole experiment must leave the transposition table with at
     least one hit: a table that never hits is dead weight, and the
     packed engine's canonical keying exists to prevent exactly that. *)
  let total_table_hits = ref 0 in
  (* Per-run game counters: reset, run, read.  [explored] counts the
     states expanded; the table counters say how much of the frontier
     was cut by memoization and dominance. *)
  let game_run f =
    Rt_par.Perf.reset ();
    let stats, dt = time_wall f in
    let v c = Rt_par.Perf.value c in
    let hits = v Rt_par.Perf.table_hits
    and misses = v Rt_par.Perf.table_misses in
    total_table_hits := !total_table_hits + hits;
    let hit_pct =
      if hits + misses > 0 then 100 * hits / (hits + misses) else 0
    in
    (stats, dt, hit_pct, v Rt_par.Perf.dominance_kills)
  in
  Printf.printf
    "(a) 3-PARTITION reduction family from E3(a): game (budget-vector \
     states) vs DFS at\n    execution granularity with max_len = witness \
     length; identical verdicts asserted.\n";
  row "%-8s %10s %10s %9s %6s %11s %11s %8s" "m x b" "game_st" "dfs_nodes"
    "hit%" "dom" "t_game(s)" "t_dfs(s)" "verdict";
  let prng = Prng.create 42 in
  List.iter
    (fun (m_, b) ->
      let items = Rt_workload.Npc.three_partition_yes prng ~m:m_ ~b in
      let model = Rt_workload.Npc.reduction_model items ~b in
      let (g : Exact.stats), t_game, hit_pct, dom =
        game_run (fun () -> Exact.solve_single_ops ~max_states:400_000 model)
      in
      oracle model g.Exact.outcome;
      (* Microsecond-scale solves (the bypass answers these rows):
         report the best of a short burst rather than one cold
         wall-clock sample — same policy as the unit-chains rows.  The
         gated work counters come from the single [game_run] above. *)
      let t_game =
        counters_preserved (fun () ->
            let best = ref t_game in
            for _ = 1 to 20 do
              let _, dt =
                time_wall (fun () ->
                    Exact.solve_single_ops ~max_states:400_000 model)
              in
              if dt < !best then best := dt
            done;
            !best)
      in
      Rt_par.Perf.reset ();
      let (d : Exact.stats), t_dfs =
        time_wall (fun () ->
            Exact.enumerate_atomic ~engine:`Dfs ~max_len:(2 * m_ * b) model)
      in
      let dfs_nodes = Rt_par.Perf.value Rt_par.Perf.dfs_nodes in
      (match (g.Exact.outcome, d.Exact.outcome) with
      | Exact.Feasible _, Exact.Feasible _
      | Exact.Infeasible, Exact.Infeasible -> ()
      | a, b_ ->
          failwith
            (Printf.sprintf "E15: engines disagree on %dx%d (game %s, dfs %s)"
               m_ b (show a) (show b_)));
      if g.Exact.explored >= dfs_nodes then
        failwith "E15: game must explore strictly fewer states than DFS";
      row "%-8s %10d %10d %8d%% %6d %11.4f %11.4f %8s"
        (Printf.sprintf "%dx%d" m_ b)
        g.Exact.explored dfs_nodes hit_pct dom t_game t_dfs
        (show g.Exact.outcome);
      json_bench ~file:"BENCH_exact.json"
        ~name:(Printf.sprintf "exact-engines/3partition-%dx%d" m_ b)
        ~baseline:t_dfs ~optimized:t_game ~jobs:1
        ~extra:
          [
            ("game_states", g.Exact.explored); ("dfs_nodes", dfs_nodes);
            ("table_hit_pct", hit_pct); ("dominance_kills", dom);
          ]
        ())
    [ (1, 13); (1, 17); (1, 21); (1, 25) ];
  Printf.printf
    "\n(a') multi-triple 3-PARTITION (m = 2): beyond the bounded DFS, so \
     the packed engine\n    races the frozen reference engine; verdict and \
     schedule must be bit-identical.\n";
  row "%-8s %10s %10s %9s %6s %11s %11s %8s" "m x b" "packed_st" "ref_st"
    "hit%" "dom" "t_pack(s)" "t_ref(s)" "verdict";
  List.iter
    (fun (m_, b) ->
      let items = Rt_workload.Npc.three_partition_yes prng ~m:m_ ~b in
      let model = Rt_workload.Npc.reduction_model items ~b in
      let (g : Exact.stats), t_packed, hit_pct, dom =
        game_run (fun () ->
            Exact.enumerate_atomic ~engine:`Game ~max_states:400_000 model)
      in
      oracle model g.Exact.outcome;
      let (r : Exact.stats), t_ref =
        time_wall (fun () ->
            Exact.enumerate_atomic ~engine:`Game_ref ~max_states:400_000 model)
      in
      (match (g.Exact.outcome, r.Exact.outcome) with
      | Exact.Feasible a, Exact.Feasible b_ ->
          if not (Schedule.equal a b_) then
            failwith
              (Printf.sprintf
                 "E15: packed schedule diverged from the reference on %dx%d"
                 m_ b)
      | Exact.Infeasible, Exact.Infeasible -> ()
      | a, b_ ->
          failwith
            (Printf.sprintf
               "E15: packed and reference engines disagree on %dx%d (%s, %s)"
               m_ b (show a) (show b_)));
      row "%-8s %10d %10d %8d%% %6d %11.4f %11.4f %8s"
        (Printf.sprintf "%dx%d" m_ b)
        g.Exact.explored r.Exact.explored hit_pct dom t_packed t_ref
        (show g.Exact.outcome);
      json_bench ~file:"BENCH_exact.json"
        ~name:(Printf.sprintf "exact-engines/3partition-%dx%d" m_ b)
        ~baseline:t_ref ~optimized:t_packed ~jobs:1
        ~extra:
          [
            ("game_states", g.Exact.explored);
            ("ref_states", r.Exact.explored); ("table_hit_pct", hit_pct);
            ("dominance_kills", dom);
          ]
        ())
    [ (2, 13); (2, 17) ];
  Printf.printf
    "\n(b) unit-weight chains from E3(b): game (residue states, definitive \
     infeasible) vs DFS\n    bounded at length 6; pooled game must return \
     the sequential schedule bit-for-bit.\n    Both engines timed \
     interleaved best-of-N; game slower than DFS on any row is a \
     failure.\n";
  row "%-12s %10s %10s %9s %6s %11s %11s %10s %10s" "constraints" "game_st"
    "dfs_sched" "hit%" "dom" "t_game(s)" "t_dfs(s)" "game" "dfs";
  let prng = Prng.create 7 in
  Rt_par.Pool.with_pool ~jobs (fun pool ->
      List.iter
        (fun nc ->
          let m =
            Rt_workload.Model_gen.unit_chain_model prng ~n_constraints:nc
              ~n_elements:4 ~max_deadline:8
          in
          let (g : Exact.stats), t_once, hit_pct, dom =
            game_run (fun () -> Exact.enumerate ~engine:`Game m)
          in
          oracle m g.Exact.outcome;
          let (d : Exact.stats) = Exact.enumerate ~engine:`Dfs ~max_len:6 m in
          let (p : Exact.stats) = Exact.enumerate ~engine:`Game ~pool m in
          (match (g.Exact.outcome, p.Exact.outcome) with
          | Exact.Feasible a, Exact.Feasible b when Schedule.equal a b -> ()
          | Exact.Infeasible, Exact.Infeasible -> ()
          | _ -> failwith "E15: pooled game diverged from sequential");
          (match (g.Exact.outcome, d.Exact.outcome) with
          | Exact.Feasible _, Exact.Feasible _
          | Exact.Infeasible, (Exact.Unknown _ | Exact.Infeasible) -> ()
          | Exact.Feasible _, Exact.Unknown _ ->
              (* Legal (the schedule may be longer than 6) but absent on
                 this published family; treat drift as a regression. *)
              failwith "E15: game found a schedule the bounded DFS missed"
          | a, b_ ->
              failwith
                (Printf.sprintf
                   "E15: engines disagree on nc=%d (game %s, dfs %s)" nc
                   (show a) (show b_)));
          (* Interleaved best-of timing: these solves are microseconds,
             so single-shot wall clocks are noise.  Rounds alternate the
             engines and keep per-engine minima; extra rounds run only
             while the game still measures slower, so a genuine
             regression fails and jitter does not. *)
          let t_game, t_dfs =
            counters_preserved (fun () ->
                let reps =
                  max 1 (min 2000 (int_of_float (0.02 /. (t_once +. 1e-9))))
                in
                let timed f =
                  let t0 = Unix.gettimeofday () in
                  for _ = 1 to reps do
                    ignore (Sys.opaque_identity (f ()))
                  done;
                  (Unix.gettimeofday () -. t0) /. float_of_int reps
                in
                let best_g = ref infinity and best_d = ref infinity in
                let rounds = ref 0 in
                while !rounds < 6 || (!rounds < 16 && !best_g > !best_d) do
                  incr rounds;
                  let tg = timed (fun () -> Exact.enumerate ~engine:`Game m) in
                  let td =
                    timed (fun () -> Exact.enumerate ~engine:`Dfs ~max_len:6 m)
                  in
                  if tg < !best_g then best_g := tg;
                  if td < !best_d then best_d := td
                done;
                (!best_g, !best_d))
          in
          if t_game > t_dfs then
            failwith
              (Printf.sprintf
                 "E15: game slower than DFS on unit-chains nc=%d (%.2fus vs \
                  %.2fus)"
                 nc (t_game *. 1e6) (t_dfs *. 1e6));
          row "%-12d %10d %10d %8d%% %6d %11.7f %11.7f %10s %10s" nc
            g.Exact.explored d.Exact.explored hit_pct dom t_game t_dfs
            (show g.Exact.outcome) (show d.Exact.outcome);
          json_bench ~file:"BENCH_exact.json"
            ~name:(Printf.sprintf "exact-engines/unit-chains-nc%d" nc)
            ~baseline:t_dfs ~optimized:t_game ~jobs:1
            ~extra:
              [
                ("game_states", g.Exact.explored);
                ("dfs_schedules", d.Exact.explored);
                ("table_hit_pct", hit_pct);
                ("dominance_kills", dom);
              ]
            ())
        [ 1; 2; 3; 4 ]);
  row
    "(baseline = bounded DFS, optimized = game engine, both at 1 domain; \
     the pooled game run\n checks determinism only.  Verdict agreement and \
     the oracle check are asserted, not sampled.)";
  Printf.printf
    "\n(c) observability overhead on the (2,13) game solve: with tracing \
     off (the default),\n    the instrumentation must cost < 2%%, asserted \
     from the measured per-span cost.\n";
  let prng = Prng.create 42 in
  let items = Rt_workload.Npc.three_partition_yes prng ~m:2 ~b:13 in
  let model = Rt_workload.Npc.reduction_model items ~b:13 in
  let solve () = ignore (Exact.solve_single_ops ~max_states:400_000 model) in
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let (), dt = time_wall f in
      if dt < !best then best := dt
    done;
    !best
  in
  let t_off = best_of 3 solve in
  (if Rt_obs.Tracer.enabled () then
     row
       "  tracing is enabled for this whole run (--trace); the \
        disabled-overhead assertion is skipped"
   else begin
     Rt_obs.Tracer.enable ();
     let t_on = best_of 3 solve in
     let events = List.length (Rt_obs.Tracer.drain ()) in
     Rt_obs.Tracer.disable ();
     Rt_obs.Tracer.clear ();
     (* A span site costs one atomic flag load when tracing is off; the
        instrumentation's whole disabled footprint on this workload is
        (spans fired) x (that cost), measured directly rather than as the
        difference of two noisy solve timings. *)
     let probes = 1_000_000 in
     let (), t_probe =
       time_wall (fun () ->
           for _ = 1 to probes do
             Rt_obs.Tracer.span "probe" ignore
           done)
     in
     let per_span = t_probe /. float_of_int probes in
     let spans = events / 2 in
     let overhead = float_of_int spans *. per_span /. t_off in
     row
       "  solve: %.4fs off, %.4fs on (%d spans); disabled span: %.1fns; \
        disabled overhead: %.4f%%"
       t_off t_on spans (per_span *. 1e9) (100. *. overhead);
     if overhead >= 0.02 then
       failwith "E15: disabled tracing costs >= 2% on the smoke workload";
     json_bench ~file:"BENCH_exact.json" ~name:"obs/tracing-overhead"
       ~baseline:t_on ~optimized:t_off ~jobs:1
       ~extra:
         [
           ("trace_spans", spans);
           ("disabled_overhead_bp", int_of_float (overhead *. 10_000.));
         ]
       ()
   end);
  if !total_table_hits = 0 then
    failwith
      "E15: the transposition table never hit across the whole experiment";
  row "  table hits across E15: %d" !total_table_hits

(* ------------------------------------------------------------------ *)
(* E16: rtsynd sustained admits — memo -> warm -> synth answer paths   *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section
    "E16 Admission daemon: sustained admits to 1k resident constraints \
     (warm path), then\n    retire + alpha-renamed re-admit (memo path)";
  let spec =
    {|system "bench" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  constraint px periodic period 10 deadline 10 { f_x; }
}|}
  in
  let journal = Filename.temp_file "rtsynd_bench" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let eng =
    match Rt_daemon.Engine.create ~journal ~spec () with
    | Ok eng -> eng
    | Error e -> failwith ("E16: engine create failed: " ^ e)
  in
  Rt_par.Perf.reset ();
  let decl i =
    Printf.sprintf
      "constraint c%d asynchronous separation 10 deadline 6 { f_x; }" i
  in
  let n = 1_000 in
  let serial_verdicts = ref [] in
  let admit d =
    match Rt_daemon.Engine.admit ~level:Rt_daemon.Engine.Full eng d with
    | Rt_daemon.Engine.Admitted { path; verdict } ->
        serial_verdicts := verdict :: !serial_verdicts;
        path
    | _ -> failwith "E16: admit was not committed"
  in
  (* First admit synthesizes; the rest ride the warm path (the resident
     schedule keeps verifying).  Wall time for the whole ramp is the
     sustained-admission figure. *)
  let _first_path, t_first = time_wall (fun () -> admit (decl 0)) in
  let paths = Hashtbl.create 4 in
  let count p = Hashtbl.replace paths p (1 + Option.value ~default:0 (Hashtbl.find_opt paths p)) in
  count _first_path;
  let (), t_ramp =
    time_wall (fun () ->
        for i = 1 to n - 1 do
          count (admit (decl i))
        done)
  in
  (* Retire one tenant and re-admit it under a fresh name: the canonical
     form is unchanged, so the memo must answer. *)
  (match Rt_daemon.Engine.retire eng "c1" with
  | Rt_daemon.Engine.Admitted _ -> ()
  | _ -> failwith "E16: retire failed");
  let memo_path, t_memo = time_wall (fun () -> admit (decl n)) in
  if memo_path <> "memo" then
    failwith
      (Printf.sprintf "E16: renamed re-admit took the %s path, wanted memo"
         memo_path);
  count memo_path;
  let resident =
    List.length (Model.asynchronous (Rt_daemon.Engine.model eng))
  in
  Rt_daemon.Engine.close eng;
  if resident < n then
    failwith (Printf.sprintf "E16: only %d resident constraints" resident);
  let path_count p = Option.value ~default:0 (Hashtbl.find_opt paths p) in
  let total = t_first +. t_ramp +. t_memo in
  row "  %d admits to %d resident constraints in %.2fs (%.0f admits/s)"
    (n + 1) resident total (float_of_int (n + 1) /. total);
  row "  paths: synth %d, warm %d, memo %d; first (synth) admit %.4fs, \
       memo re-admit %.6fs"
    (path_count "synth") (path_count "warm") (path_count "memo") t_first
    t_memo;
  (* baseline: every admit forced through the synth path (the measured
     first-admit cost, n+1 times); optimized: the actual ramp riding
     warm/memo answers. *)
  json_bench ~file:"BENCH_daemon.json" ~name:"daemon/sustained-admits-1k"
    ~baseline:(t_first *. float_of_int (n + 1))
    ~optimized:total ~jobs:1
    ~extra:
      [
        ("admits", n + 1); ("resident_constraints", resident);
        ("synth_admits", path_count "synth");
        ("warm_admits", path_count "warm");
        ("memo_admits", path_count "memo");
      ]
    ();
  (* -------------------------------------------------------------- *)
  (* Multi-client: the same ramp served over the socket transport to *)
  (* 4 concurrent pipelining admitters.  The single-writer engine    *)
  (* serializes mutations, so the answer-path counts and the verdict *)
  (* multiset must match the serial run byte for byte, and each      *)
  (* connection's responses must come back in its own request order  *)
  (* with none lost.                                                 *)
  (* -------------------------------------------------------------- *)
  let n_clients = 4 in
  let per = n / n_clients in
  let dir = Filename.temp_file "rtsynd_bench_sock" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "s" in
  let journal_mc = Filename.concat dir "j.journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ journal_mc; sock ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let dcfg =
    {
      Rt_daemon.Daemon.default_config with
      Rt_daemon.Daemon.journal = journal_mc;
      spec = Some spec;
      (* no shedding and no degradation: the row asserts path/verdict
         equality with the serial ramp, so every request must be served
         at level Full *)
      max_queue = 100_000;
      degrade_heuristic = max_int;
      degrade_analytic = max_int;
      default_budget_ms = 0;
      default_fuel = 0;
    }
  in
  let tcfg =
    {
      Rt_daemon.Transport.default with
      Rt_daemon.Transport.socket = Some sock;
      conn_queue = 2 * per;
      drain_timeout_s = 30.;
    }
  in
  let daemon = Domain.spawn (fun () -> Rt_daemon.Transport.run tcfg dcfg) in
  let rec wait_sock k =
    if Sys.file_exists sock then ()
    else if k = 0 then failwith "E16: transport socket never appeared"
    else begin
      Unix.sleepf 0.05;
      wait_sock (k - 1)
    end
  in
  wait_sock 200;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX sock);
    fd
  in
  let send_all fd s =
    let len = String.length s in
    let rec go off =
      if off < len then go (off + Unix.write_substring fd s off (len - off))
    in
    go 0
  in
  let recv_lines fd count =
    let chunk = Bytes.create 65536 in
    let buf = Buffer.create 65536 in
    let rec fill () =
      let s = Buffer.contents buf in
      let lines = String.split_on_char '\n' s in
      if List.length lines > count then
        (* [count] complete lines plus the trailing remainder *)
        List.filteri (fun i _ -> i < count) lines
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "E16: connection closed before all responses"
        | got ->
            Buffer.add_subbytes buf chunk 0 got;
            fill ()
    in
    fill ()
  in
  let jfield line key =
    match Rt_obs.Json.parse line with
    | Error e -> failwith ("E16: unparseable response " ^ line ^ ": " ^ e)
    | Ok j -> (
        match
          Option.bind (Rt_obs.Json.member key j) Rt_obs.Json.to_string
        with
        | Some s -> s
        | None -> failwith ("E16: response lacks \"" ^ key ^ "\": " ^ line))
  in
  let client k () =
    let fd = connect () in
    let ids = List.init per (fun j -> (k * per) + j) in
    send_all fd
      (String.concat ""
         (List.map
            (fun i ->
              Printf.sprintf
                "{\"v\":1,\"id\":\"a%d\",\"op\":\"admit\",\"decl\":\"%s\"}\n"
                i (decl i))
            ids));
    let lines = recv_lines fd per in
    Unix.close fd;
    (ids, lines)
  in
  let results, t_mc =
    time_wall (fun () ->
        List.map Domain.join
          (List.init n_clients (fun k -> Domain.spawn (client k))))
  in
  let paths_mc = Hashtbl.create 4 in
  let count_mc p =
    Hashtbl.replace paths_mc p
      (1 + Option.value ~default:0 (Hashtbl.find_opt paths_mc p))
  in
  let verdicts_mc = ref [] in
  List.iter
    (fun (ids, lines) ->
      if List.length lines <> per then
        failwith "E16: a client lost responses";
      List.iter2
        (fun i line ->
          if jfield line "id" <> Printf.sprintf "a%d" i then
            failwith "E16: responses reordered within a connection";
          count_mc (jfield line "path");
          verdicts_mc := jfield line "verdict" :: !verdicts_mc)
        ids lines)
    results;
  (* Retire + alpha-renamed re-admit over a control connection: the
     memo must answer exactly as in the serial run; then drain. *)
  let ctl = connect () in
  send_all ctl "{\"v\":1,\"id\":\"t\",\"op\":\"retire\",\"name\":\"c1\"}\n";
  if jfield (List.hd (recv_lines ctl 1)) "id" <> "t" then
    failwith "E16: retire over the socket failed";
  send_all ctl
    (Printf.sprintf
       "{\"v\":1,\"id\":\"m\",\"op\":\"admit\",\"decl\":\"%s\"}\n" (decl n));
  let memo_line = List.hd (recv_lines ctl 1) in
  if jfield memo_line "path" <> "memo" then
    failwith
      (Printf.sprintf "E16: socket re-admit took the %s path, wanted memo"
         (jfield memo_line "path"));
  count_mc "memo";
  verdicts_mc := jfield memo_line "verdict" :: !verdicts_mc;
  send_all ctl "{\"v\":1,\"id\":\"q\",\"op\":\"shutdown\"}\n";
  ignore (recv_lines ctl 1);
  (try
     while Unix.read ctl (Bytes.create 4096) 0 4096 > 0 do
       ()
     done
   with Unix.Unix_error _ -> ());
  Unix.close ctl;
  (match Domain.join daemon with
  | 0 -> ()
  | c -> failwith (Printf.sprintf "E16: transport exited %d on drain" c));
  let pc p = Option.value ~default:0 (Hashtbl.find_opt paths_mc p) in
  if
    pc "synth" <> path_count "synth"
    || pc "warm" <> path_count "warm"
    || pc "memo" <> path_count "memo"
  then
    failwith
      (Printf.sprintf
         "E16: multi-client paths synth/warm/memo %d/%d/%d diverge from \
          serial %d/%d/%d"
         (pc "synth") (pc "warm") (pc "memo") (path_count "synth")
         (path_count "warm") (path_count "memo"));
  let sorted l = List.sort compare l in
  if sorted !verdicts_mc <> sorted !serial_verdicts then
    failwith "E16: multi-client verdicts diverge from the serial run";
  row
    "  multi-client: %d clients x %d pipelined admits over the unix socket \
     in %.2fs (%.0f admits/s)"
    n_clients per t_mc
    (float_of_int (n + 1) /. t_mc);
  row "  paths: synth %d, warm %d, memo %d — identical to the serial ramp"
    (pc "synth") (pc "warm") (pc "memo");
  json_bench ~file:"BENCH_daemon.json" ~name:"daemon/multi-client-admits-1k"
    ~baseline:total ~optimized:t_mc ~jobs:n_clients
    ~extra:
      [
        ("admits", n + 1); ("clients", n_clients);
        ("synth_admits", pc "synth"); ("warm_admits", pc "warm");
        ("memo_admits", pc "memo");
      ]
    ()

(* ------------------------------------------------------------------ *)
(* E17: compositional synthesis — component-wise game search, and     *)
(* component-local re-admission at 10k resident constraints            *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section
    "E17 Compositional synthesis: component-wise game search vs the \
     whole-model game,\n    and rtsynd component-local re-admission at \
     10k resident constraints";
  Rt_par.Perf.reset ();
  let jobs = Rt_par.Pool.default_jobs () in
  let load src =
    match Rt_spec.Elaborate.load src with
    | Ok m -> m
    | Error errs -> failwith ("E17: " ^ String.concat "; " errs)
  in
  let show = function
    | Exact.Feasible _ -> "FEASIBLE"
    | Exact.Infeasible -> "INFEASIBLE"
    | Exact.Timeout r -> "TIMEOUT:" ^ r
    | Exact.Unknown r -> "UNKNOWN:" ^ r
  in
  (* (a) exact family: 24 loosely-coupled feasible components (one
     element, two constraints each — the looser deadline is shed by
     Decompose.representatives) plus one coupled component that is
     infeasible by itself (singleton demands 1/2 + 1/3 + 1/4 > 1, tied
     together by a loose chain).  The chain keeps the whole model off
     the single-op engine's analytic rate check, so the whole-model
     game must search out the infeasibility across every component's
     actions; the component-wise search proves it inside the one guilty
     component — a subset of the model's constraints, hence definitive
     — and both verdicts are INFEASIBLE. *)
  Printf.printf
    "\n(a) loosely-coupled exact family (25 components): whole-model \
     game vs component-wise\n    game (both sequential; the pooled \
     re-run checks bit-identical results at %d domains).\n"
    jobs;
  let family nf =
    let b = Buffer.create 2048 in
    Buffer.add_string b "system \"family\" {\n";
    for i = 0 to nf - 1 do
      Buffer.add_string b
        (Printf.sprintf "  element x%d weight 1 pipelinable;\n" i)
    done;
    Buffer.add_string b
      "  element p weight 1 pipelinable;\n\
      \  element q weight 1 pipelinable;\n\
      \  element r weight 1 pipelinable;\n\
      \  edge p -> q;\n\
      \  edge q -> r;\n";
    for i = 0 to nf - 1 do
      Buffer.add_string b
        (Printf.sprintf
           "  constraint s%d asynchronous separation %d deadline %d { \
            x%d; }\n"
           i (24 + i) (8 + i) i);
      Buffer.add_string b
        (Printf.sprintf
           "  constraint t%d asynchronous separation %d deadline %d { \
            x%d; }\n"
           i (30 + i) (10 + i) i)
    done;
    Buffer.add_string b
      "  constraint kp asynchronous separation 32 deadline 2 { p; }\n\
      \  constraint kq asynchronous separation 32 deadline 3 { q; }\n\
      \  constraint kr asynchronous separation 32 deadline 4 { r; }\n\
      \  constraint kc asynchronous separation 32 deadline 20 { p -> q \
       -> r; }\n\
       }";
    load (Buffer.contents b)
  in
  let m = family 24 in
  let (whole : Exact.stats), t_whole =
    time_wall (fun () -> Exact.enumerate ~engine:`Game m)
  in
  let (dec : Exact.stats), t_dec =
    time_wall (fun () -> Exact.solve_decomposed ~granularity:`Unit m)
  in
  (match (whole.Exact.outcome, dec.Exact.outcome) with
  | Exact.Infeasible, Exact.Infeasible -> ()
  | a, b ->
      failwith
        (Printf.sprintf "E17: verdicts diverged (whole %s, decomposed %s)"
           (show a) (show b)));
  let ratio =
    float_of_int whole.Exact.explored
    /. float_of_int (max 1 dec.Exact.explored)
  in
  row "  whole-model game: %d states (%.4fs); component-wise: %d states \
       (%.4fs) — %.1fx fewer"
    whole.Exact.explored t_whole dec.Exact.explored t_dec ratio;
  if ratio < 10.0 then
    failwith
      (Printf.sprintf
         "E17: component-wise search must explore >= 10x fewer states \
          (whole %d, decomposed %d)"
         whole.Exact.explored dec.Exact.explored);
  (* Determinism across job counts: the component fan-out keeps every
     inner search sequential, so schedule AND explored count must be
     bit-identical under a pool.  (Restores the counters: pooled timing
     must not perturb the deterministic RTSYN_JOBS=1 snapshot.) *)
  counters_preserved (fun () ->
      let dec_pooled =
        Rt_par.Pool.with_pool ~jobs (fun pool ->
            Exact.solve_decomposed ~pool ~granularity:`Unit m)
      in
      match (dec.Exact.outcome, dec_pooled.Exact.outcome) with
      | Exact.Infeasible, Exact.Infeasible
        when dec.Exact.explored = dec_pooled.Exact.explored ->
          ()
      | _ ->
          failwith
            "E17: pooled component-wise solve diverged from sequential");
  json_bench ~file:"BENCH_decompose.json"
    ~name:"exact/component-wise-game-25comp" ~baseline:t_whole
    ~optimized:t_dec
    ~jobs:1
    ~extra:
      [
        ("whole_states", whole.Exact.explored);
        ("component_states", dec.Exact.explored);
        ("state_ratio_x10", int_of_float (ratio *. 10.));
      ]
    ();
  (* Coupled control: every constraint shares element b, one interaction
     component, so the decomposed entry point must be invisible —
     verdict, schedule and explored count bit-identical to the plain
     engine, sequential and pooled. *)
  let coupled =
    load
      {|system "coupled" {
  element a weight 1 pipelinable;
  element b weight 1 pipelinable;
  edge a -> b;
  constraint ch asynchronous separation 12 deadline 8 { a -> b; }
  constraint sg asynchronous separation 9 deadline 4 { b; }
}|}
  in
  let plain = Exact.enumerate ~engine:`Game coupled in
  let via = Exact.solve_decomposed ~granularity:`Unit coupled in
  (match (plain.Exact.outcome, via.Exact.outcome) with
  | Exact.Feasible a, Exact.Feasible b
    when Schedule.equal a b && plain.Exact.explored = via.Exact.explored ->
      ()
  | a, b ->
      failwith
        (Printf.sprintf
           "E17: decomposition must be invisible on a coupled model \
            (plain %s/%d, via %s/%d)"
           (show a) plain.Exact.explored (show b) via.Exact.explored));
  counters_preserved (fun () ->
      let via_pooled =
        Rt_par.Pool.with_pool ~jobs (fun pool ->
            Exact.solve_decomposed ~pool ~granularity:`Unit coupled)
      in
      match (plain.Exact.outcome, via_pooled.Exact.outcome) with
      | Exact.Feasible a, Exact.Feasible b when Schedule.equal a b -> ()
      | _ -> failwith "E17: pooled coupled control diverged");
  row "  coupled control: decomposed entry bit-identical to the plain \
       game (%d states)"
    plain.Exact.explored;
  (* (b) the admission daemon at 10k resident loosely-coupled
     constraints: 100 interaction components; startup solves each once,
     every later admission re-solves only the touched component and
     answers the other 99 from the component-schedule cache. *)
  let n_comps = 100 in
  let tail = 48 in
  Printf.printf
    "\n(b) rtsynd: 100-component plant, %d resident constraints at \
     startup, %d tail admits\n    each touching one component \
     (re-solves asserted component-local).\n"
    (9952 : int) tail;
  let base_spec =
    let b = Buffer.create (1 lsl 20) in
    Buffer.add_string b "system \"plant\" {\n";
    for k = 0 to n_comps - 1 do
      Buffer.add_string b
        (Printf.sprintf "  element e%d weight 1 pipelinable;\n" k)
    done;
    for k = 0 to n_comps - 1 do
      let per = 99 + if k < 52 then 1 else 0 in
      for i = 0 to per - 1 do
        Buffer.add_string b
          (Printf.sprintf
             "  constraint c%d_%d asynchronous separation 1024 deadline \
              512 { e%d; }\n"
             k i k)
      done
    done;
    Buffer.add_string b "}";
    Buffer.contents b
  in
  let journal = Filename.temp_file "rtsynd_decompose" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let solves () = Rt_par.Perf.value Rt_par.Perf.decompose_component_solves in
  let reuses () =
    Rt_par.Perf.value Rt_par.Perf.decompose_component_reuses
  in
  let s0 = solves () in
  let eng, t_create =
    time_wall (fun () ->
        match Rt_daemon.Engine.create ~journal ~spec:base_spec () with
        | Ok eng -> eng
        | Error e -> failwith ("E17: engine create failed: " ^ e))
  in
  let startup_solves = solves () - s0 in
  if startup_solves <> n_comps then
    failwith
      (Printf.sprintf "E17: startup solved %d components, wanted %d"
         startup_solves n_comps);
  row "  startup: %d components solved once each, %.2fs" startup_solves
    t_create;
  let tail_decl k =
    Printf.sprintf
      "constraint t%d asynchronous separation 1024 deadline 256 { e%d; }" k
      k
  in
  let (), t_ramp =
    time_wall (fun () ->
        for k = 0 to tail - 1 do
          let s0 = solves () and r0 = reuses () in
          (match
             Rt_daemon.Engine.admit ~level:Rt_daemon.Engine.Full eng
               (tail_decl k)
           with
          | Rt_daemon.Engine.Admitted { path = "synth"; _ } -> ()
          | Rt_daemon.Engine.Admitted { path; _ } ->
              failwith
                (Printf.sprintf
                   "E17: tail admit %d took the %s path, wanted synth" k
                   path)
          | _ -> failwith "E17: tail admit was not committed");
          let ds = solves () - s0 and dr = reuses () - r0 in
          if ds <> 1 then
            failwith
              (Printf.sprintf
                 "E17: admit %d re-solved %d components, wanted exactly \
                  the touched one"
                 k ds);
          if dr <> n_comps - 1 then
            failwith
              (Printf.sprintf
                 "E17: admit %d reused %d cached components, wanted %d" k
                 dr (n_comps - 1))
        done)
  in
  let final = Rt_daemon.Engine.model eng in
  let resident = List.length (Model.asynchronous final) in
  Rt_daemon.Engine.close eng;
  if resident <> 10_000 then
    failwith
      (Printf.sprintf "E17: %d resident constraints, wanted 10000" resident);
  row "  ramp: %d admits to %d resident constraints in %.2fs (%.0f \
       admits/s), each re-solving\n  exactly 1 of %d components"
    tail resident t_ramp
    (float_of_int tail /. t_ramp)
    n_comps;
  (* Whole-model synthesis on the final 10k model: undecomposed (budget
     capped — the polling rewrite drowns; counters restored because the
     wall-clock cut point is machine-dependent) vs decomposed. *)
  let r_undec, t_undec =
    counters_preserved (fun () ->
        let budget = Budget.create ~wall_s:1.0 () in
        time_wall (fun () ->
            Synthesis.synthesize ~budget ~merge:false ~pipeline:false
              ~decompose:false final))
  in
  let undec_ok = match r_undec with Ok _ -> 1 | Error _ -> 0 in
  let r_dec, t_dec_syn =
    time_wall (fun () ->
        Synthesis.synthesize ~merge:false ~pipeline:false ~decompose:true
          final)
  in
  (match r_dec with
  | Ok _ -> ()
  | Error e ->
      failwith
        ("E17: decomposed synthesis failed on the 10k model: "
        ^ e.Synthesis.message));
  row "  10k whole-model synthesis: undecomposed %s in %.2fs (1s budget); \
       decomposed ok in %.2fs"
    (if undec_ok = 1 then "ok" else "gave up")
    t_undec t_dec_syn;
  (* baseline for re-admission = re-running the undecomposed whole-model
     synthesis on every admit (measured once above, budget-capped and
     still slower, [tail] times); optimized = the actual
     component-local ramp, journal persistence and certificate
     re-checking included. *)
  json_bench ~file:"BENCH_decompose.json" ~name:"daemon/readmission-10k"
    ~baseline:(t_undec *. float_of_int tail)
    ~optimized:t_ramp ~jobs:1
    ~extra:
      [
        ("admits", tail); ("resident_constraints", resident);
        ("component_solves_per_admit", 1);
        ("component_reuses_per_admit", n_comps - 1);
      ]
    ();
  json_bench ~file:"BENCH_decompose.json"
    ~name:"synthesis/10k-loose-components" ~baseline:t_undec
    ~optimized:t_dec_syn ~jobs:1
    ~extra:
      [
        ("undecomposed_ok", undec_ok); ("decomposed_ok", 1);
        ("components", n_comps);
      ]
    ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel, ns per run)";
  let open Bechamel in
  let example =
    Rt_workload.Suite.control_system Rt_workload.Suite.default_params
  in
  let plan =
    match Synthesis.synthesize example with
    | Ok p -> p
    | Error _ -> assert false
  in
  let mu = plan.Synthesis.model_used in
  let sched = plan.Synthesis.schedule in
  let pz = Model.find mu "pz" in
  let spec_src = Rt_spec.Printer.print example in
  let tiny = Rt_workload.Suite.tiny_two_ops in
  let trace = Trace.of_schedule mu.Model.comm sched ~horizon:2000 in
  let tests =
    [
      Test.make ~name:"latency-analysis(pz)"
        (Staged.stage (fun () ->
             ignore (Latency.latency mu.Model.comm sched pz.Timing.graph)));
      Test.make ~name:"containment-check"
        (Staged.stage (fun () ->
             ignore
               (Latency.contains_execution mu.Model.comm pz.Timing.graph trace
                  ~t0:100 ~t1:160)));
      Test.make ~name:"synthesis(example)"
        (Staged.stage (fun () -> ignore (Synthesis.synthesize example)));
      Test.make ~name:"simulation-game(tiny)"
        (Staged.stage (fun () -> ignore (Exact.solve_single_ops tiny)));
      Test.make ~name:"spec-parse+elaborate"
        (Staged.stage (fun () -> ignore (Rt_spec.Elaborate.load spec_src)));
      Test.make ~name:"runtime-replay(600)"
        (Staged.stage (fun () ->
             ignore
               (Rt_sim.Runtime.run mu sched ~horizon:600
                  ~arrivals:[ ("pz", [ 3; 77; 301 ]) ])));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> row "%-32s %14.1f" name est
          | _ -> row "%-32s %14s" name "n/a")
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  (* --trace[=FILE]: record the whole run and write a Chrome trace
     (default BENCH_trace.json) next to the bench JSON. *)
  let trace_file =
    List.fold_left
      (fun acc a ->
        if a = "--trace" then Some "BENCH_trace.json"
        else if String.starts_with ~prefix:"--trace=" a then
          Some (String.sub a 8 (String.length a - 8))
        else acc)
      None args
  in
  let names =
    List.filter
      (fun a ->
        (a <> "--json") && not (String.starts_with ~prefix:"--trace" a))
      args
  in
  let run_selected () =
    match names with
    | [] -> List.iter (fun (_, f) -> f ()) all
    | names ->
        List.iter
          (fun name ->
            match List.assoc_opt name all with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %s (use %s)\n" name
                  (String.concat " " (List.map fst all));
                exit 1)
          names
  in
  (match trace_file with
  | None -> run_selected ()
  | Some file ->
      Rt_obs.Tracer.with_trace ~file run_selected;
      Printf.printf "\nwrote %s\n%!" file);
  if json then write_json ()
