(* Quickstart: the paper's example control system (Figures 1 & 2),
   built with the public API, synthesized into a static schedule, and
   verified.

   Run with:  dune exec examples/quickstart.exe *)

open Rt_core

let () =
  (* 1. Describe the communication graph G = (V, E, W_V): five
     functional elements and the data paths between them.  The output
     of f_s feeds back through f_k, so G is cyclic — task graphs must
     be acyclic, communication graphs need not be. *)
  let comm =
    Comm_graph.create
      ~elements:
        [
          (* name, worst-case computation time, pipelinable? *)
          ("f_x", 1, true);
          ("f_y", 1, true);
          ("f_z", 1, true);
          ("f_s", 2, true);
          ("f_k", 1, true);
        ]
      ~edges:
        [
          ("f_x", "f_s");
          ("f_y", "f_s");
          ("f_z", "f_s");
          ("f_s", "f_k");
          ("f_k", "f_s");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in

  (* 2. State the timing constraints T = T_p ∪ T_a.  Sampling x and y
     are periodic; the operator toggle z is asynchronous: whenever it
     fires (at most once every 50 units) the output u must reflect it
     within 15 time units. *)
  let model =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"px"
            ~graph:(chain [ "f_x"; "f_s"; "f_k" ])
            ~period:10 ~deadline:10 ~kind:Timing.Periodic;
          Timing.make ~name:"py"
            ~graph:(chain [ "f_y"; "f_s"; "f_k" ])
            ~period:20 ~deadline:20 ~kind:Timing.Periodic;
          Timing.make ~name:"pz"
            ~graph:(chain [ "f_z"; "f_s" ])
            ~period:50 ~deadline:15 ~kind:Timing.Asynchronous;
        ]
  in
  Format.printf "=== model ===@.%a@." Model.pp model;
  Format.printf "utilization (no sharing): %.3f@.@." (Model.utilization model);

  (* 3. Synthesize: merge shared work, software-pipeline f_s, turn pz
     into a polling task, dispatch with EDF, verify with the latency
     analyser. *)
  match Synthesis.synthesize model with
  | Error e -> Format.printf "synthesis failed: %a@." Synthesis.pp_error e
  | Ok plan ->
      Format.printf "=== synthesized plan ===@.%a@."
        (Synthesis.pp_plan model) plan;
      Format.printf "=== Gantt (first 80 slots) ===@.%s@."
        (Gantt.render_window ~width:80
           plan.Synthesis.model_used.Model.comm plan.Synthesis.schedule
           ~t0:0 ~t1:80);

      (* 4. Exercise the run-time scheduler: replay the schedule against
         an adversarial arrival sequence for pz and check every
         invocation's deadline. *)
      let prng = Rt_graph.Prng.create 2026 in
      let arrivals =
        Rt_sim.Arrivals.adversarial_phases prng ~horizon:500 ~separation:50
      in
      let report =
        Rt_sim.Runtime.run plan.Synthesis.model_used plan.Synthesis.schedule
          ~horizon:500
          ~arrivals:[ ("pz", arrivals) ]
      in
      Format.printf "=== runtime check (500 slots, adversarial pz) ===@.%a@."
        Rt_sim.Runtime.pp_report report;
      List.iter
        (fun s -> Format.printf "%a@." Rt_sim.Stats.pp_summary s)
        (Rt_sim.Stats.summarize report);
      if report.Rt_sim.Runtime.misses = 0 then
        Format.printf "every invocation met its deadline.@."
      else Format.printf "DEADLINE MISSES — this should not happen!@."
