(* Degraded modes: criticality-based graceful degradation under an
   injected overrun.

   A small flight-control system carries three constraints at three
   criticality levels.  The telemetry formatter develops an overrun
   fault; the watchdog detects it within the analyzed bound, the
   runtime switches to a pre-synthesized degraded schedule that sheds
   telemetry, the attitude loop keeps every deadline, and the primary
   mode is re-admitted once the fault window passes.

   Run with:  dune exec examples/degraded_modes.exe *)

open Rt_core

let () =
  (* 1. The communication graph: an attitude chain (gyro -> control ->
     actuator), a navigation filter and a telemetry formatter. *)
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("gyro", 1, true);
          ("ctl", 2, true);
          ("act", 1, true);
          ("nav", 2, true);
          ("tlm", 2, true);
        ]
      ~edges:[ ("gyro", "ctl"); ("ctl", "act") ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in

  let model =
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"attitude"
            ~graph:(chain [ "gyro"; "ctl"; "act" ])
            ~period:12 ~deadline:12 ~kind:Timing.Periodic;
          Timing.make ~name:"navigation"
            ~graph:(Task_graph.singleton (id "nav"))
            ~period:24 ~deadline:24 ~kind:Timing.Periodic;
          Timing.make ~name:"telemetry"
            ~graph:(Task_graph.singleton (id "tlm"))
            ~period:12 ~deadline:12 ~kind:Timing.Periodic;
        ]
  in

  (* 2. Criticality: the attitude loop is untouchable, navigation may
     be slowed, telemetry may be shed. *)
  let crit =
    match
      Criticality.make model
        [
          ("attitude", Criticality.High);
          ("navigation", Criticality.Medium);
          ("telemetry", Criticality.Low);
        ]
    with
    | Ok a -> a
    | Error errs -> failwith (String.concat "; " errs)
  in
  Format.printf "=== criticality ===@.%a@.@." Criticality.pp crit;

  (* 3. Derive the mode family: primary, degraded-medium (telemetry
     shed, navigation stretched 2x), degraded-high (attitude only). *)
  let derivation = { Modes.stretch = 2; max_hyperperiod = 10_000 } in
  let modes =
    match Modes.derive ~derivation model crit with
    | Ok ms -> ms
    | Error e -> failwith e
  in
  List.iter (fun md -> Format.printf "%a@." Modes.pp md) modes;

  (* 4. The mode-change protocol: for a watchdog checking every 4
     slots the transition takes at most 4 slots (3 to detect + 1 to
     swap tables).  Every retained constraint must absorb that on top
     of its verified response bound. *)
  let watchdog = { Rt_sim.Watchdog.check_period = 4; stall_limit = 16 } in
  let check_period = watchdog.Rt_sim.Watchdog.check_period in
  Format.printf "@.=== transition analysis (bound %d slots) ===@."
    (Modes.transition_slots ~check_period);
  List.iter
    (fun md ->
      match Modes.admits_transition ~check_period md with
      | Ok () -> Format.printf "%s: admitted@." md.Modes.name
      | Error errs ->
          Format.printf "%s: REJECTED@.  %s@." md.Modes.name
            (String.concat "\n  " errs))
    modes;

  (* 5. Inject an overrun: from slot 30 to slot 66, every telemetry
     execution takes 6 extra slots — three times its budget. *)
  let faults =
    [ Rt_sim.Timing_fault.overrun ~elem:(id "tlm") ~from:30 ~until:66 ~extra:6 ]
  in
  Format.printf "@.=== fault plan ===@.%a@."
    (Rt_sim.Timing_fault.pp_plan comm) faults;

  let run policy =
    Rt_sim.Robust_runtime.run ~crit ~faults ~policy ~watchdog ~readmit_after:24
      ~horizon:144 ~arrivals:[] modes
  in

  (* 6. Replay without degradation: each overrun hogs the processor
     until the watchdog kills it, and the stolen slots turn into
     deadline misses spread across whatever happened to be running —
     the fault's blast radius is uncontrolled. *)
  Format.printf "@.=== policy: abort at detection ===@.";
  let flat = run Rt_sim.Robust_runtime.Abort_job in
  Format.printf "%a@." (Rt_sim.Robust_runtime.pp_report comm) flat;
  List.iter
    (fun s -> Format.printf "  %a@." Rt_sim.Stats.pp_criticality_summary s)
    (Rt_sim.Stats.by_criticality flat);

  (* 7. Replay with degradation: detection triggers the table swap,
     telemetry arrivals are shed instead of missed, the attitude loop
     never misses, and the primary mode returns after the window. *)
  Format.printf "@.=== policy: degrade to degraded-high ===@.";
  let deg = run (Rt_sim.Robust_runtime.Degrade_to "degraded-high") in
  Format.printf "%a@." (Rt_sim.Robust_runtime.pp_report comm) deg;
  List.iter
    (fun s -> Format.printf "  %a@." Rt_sim.Stats.pp_criticality_summary s)
    (Rt_sim.Stats.by_criticality deg);
  List.iter
    (fun s -> Format.printf "  %a@." Rt_sim.Stats.pp_summary s)
    (Rt_sim.Stats.summarize_robust deg)
