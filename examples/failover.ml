(* Failover: processor crashes, pre-synthesized contingency schedules,
   and bus-fault absorption on a three-processor signal pipeline.

   The system is synthesized for three processors with one slot of ARQ
   slack per message.  Offline, a contingency table is built: for every
   single-processor crash the dead processor's elements are re-placed
   on the survivors, the schedules and the bus are re-synthesized, and
   the whole scenario is window-verified.  Online, processor 1 crashes
   mid-run under a lossy bus; the heartbeat monitor detects the crash
   within its analyzed bound, the runtime swaps in the contingency
   table (reconfiguration latency = detection + swap + migration), and
   every invocation arriving after the bound meets its deadline.  When
   the processor returns, the nominal table is re-admitted.

   Run with:  dune exec examples/failover.exe *)

open Rt_core
module Ms = Rt_multiproc.Msched
module Cg = Rt_multiproc.Contingency
module Hb = Rt_sim.Heartbeat
module Nf = Rt_sim.Net_fault
module Dr = Rt_sim.Dist_runtime

let () =
  (* 1. The paper's control system: two periodic chains and an
     asynchronous (polled) constraint over five elements. *)
  let model =
    Rt_workload.Suite.control_system Rt_workload.Suite.default_params
  in

  (* 2. Nominal synthesis on three processors with ARQ slack: every
     message window reserves one retransmission slot, so one lost or
     corrupted transmission per window is free. *)
  let nominal =
    match Ms.synthesize ~n_procs:3 ~msg_cost:1 ~arq_slack:1 model with
    | Ok r -> r
    | Error e -> failwith ("nominal synthesis: " ^ e)
  in
  Format.printf "=== nominal system (3 processors) ===@.%a@."
    (Ms.pp_result model) nominal;

  (* 3. A fast heartbeat and the contingency table for every
     single-processor crash. *)
  let heartbeat = { Hb.hb_period = 2; miss_threshold = 1 } in
  let table =
    match
      Cg.synthesize ~detect_bound:(Hb.detection_bound heartbeat) model nominal
    with
    | Ok t -> t
    | Error e -> failwith ("contingency synthesis: " ^ e)
  in
  Format.printf "=== contingency table ===@.%a@." (Cg.pp model) table;

  (* 4. Crash processor 1 at slot 13; it returns at slot 93.  The bus
     loses slots deterministically at a 3%% rate. *)
  let crashes = [ { Dr.proc = 1; at = 13; return_at = Some 93 } ] in
  let net_faults =
    Nf.random_plan (Rt_graph.Prng.create 7) ~horizon:400 ~loss_rate:0.03
  in
  let report =
    Dr.run ~crashes ~net_faults ~heartbeat ~horizon:160 model table
  in
  Format.printf "=== replay (failover) ===@.%a@." Dr.pp_report report;

  (* 5. The guarantee: every invocation arriving at or after
     crash + reconfig_bound is served by the verified contingency
     table. *)
  let bound = table.Cg.reconfig_bound in
  let late_misses =
    List.filter
      (fun (i : Dr.invocation) ->
        i.Dr.arrival >= 13 + bound && (not i.Dr.shed) && not i.Dr.met)
      report.Dr.invocations
  in
  Format.printf
    "invocations arriving >= crash + %d slots: %d missed (expected 0)@." bound
    (List.length late_misses);

  (* 6. Contrast with no failover: the dead processor's work is lost
     until it returns. *)
  let no_failover =
    Dr.run ~crashes ~net_faults ~heartbeat ~policy:Dr.No_failover ~horizon:160
      model table
  in
  Format.printf "without failover the same run misses %d invocations@."
    no_failover.Dr.misses;

  (* 7. Per-processor rollups of the failover run. *)
  Format.printf "=== per-processor rollup ===@.";
  List.iter
    (fun s -> Format.printf "%a@." Rt_sim.Stats.pp_processor_summary s)
    (Rt_sim.Stats.by_processor model.Model.comm report)
