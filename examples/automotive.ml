(* An automotive engine controller: time-synchronous tasks at several
   rates whose releases are deliberately phased (offsets) so that the
   heavy combustion computation and the transmission-control burst never
   contend in the same window — a scheduling pattern the graph-based
   model expresses directly with release offsets.

   Demonstrates: offsets in the model and the spec language, the
   sensitivity analyser confirming the phasing is load-bearing, and the
   C emitter producing the deployable dispatcher.

   Run with:  dune exec examples/automotive.exe *)

open Rt_core

let spec =
  {|
system "engine" {
  element crank_acq  weight 1 pipelinable;   # crank angle acquisition
  element combustion weight 4 pipelinable;   # injection/ignition maps
  element knock      weight 2 pipelinable;   # knock detection window
  element trans_ctl  weight 4 pipelinable;   # transmission control burst
  element lambda     weight 2 pipelinable;   # O2 feedback loop
  edge crank_acq -> combustion;
  edge crank_acq -> knock;
  edge combustion -> lambda;
  # Fire injection maps every 16 slots, right at the start of the frame.
  constraint inject periodic period 16 deadline 8 {
    crank_acq -> combustion;
  }
  # The transmission burst runs in the second half of each frame.
  constraint shift periodic period 16 deadline 7 offset 8 {
    trans_ctl;
  }
  constraint knockd periodic period 32 deadline 32 {
    crank_acq -> knock;
  }
  constraint o2 periodic period 64 deadline 60 offset 4 {
    lambda;
  }
}
|}

let () =
  let model =
    match Rt_spec.Elaborate.load spec with
    | Ok m -> m
    | Error errs ->
        List.iter print_endline errs;
        exit 1
  in
  Format.printf "utilization: %.3f@." (Model.utilization model);

  (* The phased system fits... *)
  (match Synthesis.synthesize model with
  | Error e ->
      Format.printf "synthesis failed: %a@." Synthesis.pp_error e;
      exit 1
  | Ok plan ->
      let mu = plan.Synthesis.model_used in
      Format.printf "phased system synthesized (%d-slot cycle):@.%s@."
        plan.Synthesis.hyperperiod
        (Gantt.render ~width:64 mu.Model.comm plan.Synthesis.schedule);
      List.iter
        (fun v -> Format.printf "  %a@." Latency.pp_verdict v)
        plan.Synthesis.verdicts);

  (* ...and the phasing is load-bearing: aligning the transmission
     burst with the injection window (offset 0) overloads the first
     half-frame. *)
  let aligned =
    Model.make ~comm:model.Model.comm
      ~constraints:
        (List.map
           (fun (c : Timing.t) ->
             if c.name = "shift" then
               Timing.make ~name:c.name ~graph:c.graph ~period:c.period
                 ~deadline:c.deadline ~kind:c.kind
             else c)
           model.Model.constraints)
  in
  (match Synthesis.synthesize aligned with
  | Ok _ ->
      Format.printf
        "@.unexpected: the unphased variant fit as well (windows overlap)@."
  | Error _ ->
      Format.printf
        "@.without the offset, inject (8 units due by t=8) and shift (4 \
         units due by t=7)@.overlap and the frame overloads — the offset is \
         what makes this design work.@.");

  (* Margin analysis on the phased design. *)
  (match Sensitivity.critical_speed ~resolution:16 model with
  | Some s -> Format.printf "@.critical time scale: %.2f@." s
  | None -> ());
  List.iter
    (fun (c : Timing.t) ->
      match Sensitivity.tightest_deadline model c.name with
      | Some d ->
          Format.printf "tightest deadline for %-7s: %d (currently %d)@."
            c.name d c.deadline
      | None -> ())
    model.Model.constraints
