(* An avionics-style workload in the spirit of the A-7E requirements
   document the paper cites ([HENI 80]): navigation, flight data
   computation, display update and HUD refresh share the air-data
   computer; a pilot weapon-release button is an asynchronous constraint
   with a tight latency bound.

   The example contrasts the paper's two implementation routes:

   - the naive process-based mapping (one process per constraint,
     monitors around the shared air-data computer, [MOK 83]
     schedulability analysis), and
   - latency scheduling (merging shared work, software pipelining, EDF
     cyclic construction, latency verification).

   Run with:  dune exec examples/avionics.exe *)

open Rt_core

let model =
  let comm =
    Comm_graph.create
      ~elements:
        [
          (* Shared air-data computer: heavy, pipelinable. *)
          ("air_data", 4, true);
          (* Sensors / preprocessing. *)
          ("imu", 2, true);
          ("gps", 2, true);
          ("baro", 1, true);
          (* Consumers. *)
          ("nav_filter", 3, true);
          ("flight_ctl", 3, true);
          ("display", 2, true);
          ("hud", 1, true);
          (* Weapon release chain. *)
          ("trigger", 1, true);
          ("release", 2, true);
        ]
      ~edges:
        [
          ("imu", "air_data");
          ("gps", "air_data");
          ("baro", "air_data");
          ("air_data", "nav_filter");
          ("air_data", "flight_ctl");
          ("air_data", "display");
          ("nav_filter", "flight_ctl");
          ("nav_filter", "display");
          ("display", "hud");
          ("trigger", "release");
          ("air_data", "release");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in
  let dag nodes edges =
    Task_graph.create
      ~nodes:(Array.of_list (List.map id nodes))
      ~edges
  in
  Model.make ~comm
    ~constraints:
      [
        (* Flight control: imu -> air_data -> flight_ctl at 25 Hz
           (period 40 units). *)
        Timing.make ~name:"flight"
          ~graph:(chain [ "imu"; "air_data"; "flight_ctl" ])
          ~period:40 ~deadline:40 ~kind:Timing.Periodic;
        (* Navigation: {imu, gps} -> air_data -> nav_filter, same rate:
           shares air_data with flight control. *)
        Timing.make ~name:"nav"
          ~graph:
            (dag
               [ "imu"; "gps"; "air_data"; "nav_filter" ]
               [ (0, 2); (1, 2); (2, 3) ])
          ~period:40 ~deadline:40 ~kind:Timing.Periodic;
        (* Display refresh at 1/4 the rate. *)
        Timing.make ~name:"disp"
          ~graph:(chain [ "baro"; "air_data"; "display"; "hud" ])
          ~period:160 ~deadline:160 ~kind:Timing.Periodic;
        (* Weapon release: asynchronous, minimum separation 200, must
           actuate within 30 units. *)
        Timing.make ~name:"weapon"
          ~graph:(chain [ "trigger"; "release" ])
          ~period:200 ~deadline:30 ~kind:Timing.Asynchronous;
      ]

let () =
  Format.printf "=== avionics workload ===@.%a@." Model.pp model;
  Format.printf "utilization without sharing: %.3f@." (Model.utilization model);

  (* ---- Route 1: naive process-based implementation. ---- *)
  let tr = Rt_process.From_model.translate model in
  Format.printf "@.=== process-based baseline ===@.";
  List.iter
    (fun prog ->
      Format.printf "  %s@." (Rt_process.Codegen.render model prog))
    tr.Rt_process.From_model.programs;
  Format.printf "monitors:@.";
  List.iter
    (fun mon ->
      Format.printf "  %s guarded (critical section %d) for {%s}@."
        mon.Rt_process.Monitor.element_name
        mon.Rt_process.Monitor.critical_section
        (String.concat " " mon.Rt_process.Monitor.users))
    tr.Rt_process.From_model.monitors;
  Format.printf "EDF schedulable (polling sporadics): %b@."
    (Rt_process.From_model.edf_schedulable tr);
  Format.printf "DM schedulable (with monitor blocking): %b@."
    (Rt_process.From_model.fixed_priority_schedulable tr);
  Format.printf "redundant shared work per hyperperiod: %d units@."
    (Rt_process.From_model.redundant_work model tr);

  (* ---- Route 2: latency scheduling. ---- *)
  Format.printf "@.=== latency scheduling ===@.";
  (match Synthesis.synthesize model with
  | Error e -> Format.printf "synthesis failed: %a@." Synthesis.pp_error e
  | Ok plan ->
      (match plan.Synthesis.merge_report with
      | Some r when r.Merge.merged_groups <> [] ->
          List.iter
            (fun (srcs, dst) ->
              Format.printf "merged {%s} into %s@." (String.concat " " srcs)
                dst)
            r.Merge.merged_groups;
          Format.printf "work per round: %d -> %d@." r.Merge.time_before
            r.Merge.time_after
      | _ -> Format.printf "no merging opportunities@.");
      Format.printf "hyperperiod: %d, load: %.3f@." plan.Synthesis.hyperperiod
        (Schedule.load plan.Synthesis.schedule);
      List.iter
        (fun v -> Format.printf "  %a@." Latency.pp_verdict v)
        plan.Synthesis.verdicts;

      (* Exercise the weapon-release path end to end. *)
      let prng = Rt_graph.Prng.create 7 in
      let arrivals =
        Rt_sim.Arrivals.random prng ~horizon:2000 ~separation:200 ~density:0.9
      in
      let report =
        Rt_sim.Runtime.run plan.Synthesis.model_used plan.Synthesis.schedule
          ~horizon:2000
          ~arrivals:[ ("weapon", arrivals) ]
      in
      Format.printf "@.runtime over 2000 slots: %d invocations, %d misses@."
        (List.length report.Rt_sim.Runtime.invocations)
        report.Rt_sim.Runtime.misses;
      List.iter
        (fun (name, w) -> Format.printf "  worst response %s: %d@." name w)
        report.Rt_sim.Runtime.worst_response)
