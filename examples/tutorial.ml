(* The code of docs/TUTORIAL.md, compiled and executed end to end so
   the tutorial cannot drift from the library.

   Run with:  dune exec examples/tutorial.exe *)

open Rt_core

(* 1. Model the application. *)

let comm =
  Comm_graph.create
    ~elements:
      [
        ("sensor", 1, true);
        ("filter", 3, true);
        ("control", 2, true);
        ("actuate", 1, false);
      ]
    ~edges:
      [ ("sensor", "filter"); ("filter", "control"); ("control", "actuate") ]

let id = Comm_graph.id_of_name comm

let model =
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"loop"
          ~graph:
            (Task_graph.of_chain
               [ id "sensor"; id "filter"; id "control"; id "actuate" ])
          ~period:20 ~deadline:20 ~kind:Timing.Periodic;
        Timing.make ~name:"cmd"
          ~graph:(Task_graph.of_chain [ id "control"; id "actuate" ])
          ~period:100 ~deadline:12 ~kind:Timing.Asynchronous;
      ]

let () =
  Format.printf "utilization: %.3f@." (Model.utilization model);

  (* 2. Fast feasibility screen. *)
  (match Admission.admit model with
  | Admission.Impossible why -> print_endline ("give up: " ^ why)
  | Admission.Guaranteed how -> print_endline ("certain: " ^ how)
  | Admission.Inconclusive -> print_endline "inconclusive: run the synthesizer");

  (* 3. Synthesize and inspect. *)
  let plan =
    match Synthesis.synthesize model with
    | Ok p -> p
    | Error e -> failwith (Format.asprintf "%a" Synthesis.pp_error e)
  in
  let mu = plan.Synthesis.model_used in
  print_string (Gantt.render mu.Model.comm plan.Synthesis.schedule);
  List.iter
    (fun v -> Format.printf "%a@." Latency.pp_verdict v)
    plan.Synthesis.verdicts;
  (match Latency.worst_window mu.Model.comm plan.Synthesis.schedule
           (Model.find mu "cmd").Timing.graph
   with
  | Some (t0, t1) -> Format.printf "critical cmd window: [%d, %d)@." t0 t1
  | None -> ());
  List.iter
    (fun (name, slack) -> Format.printf "slack %s: %d@." name slack)
    (Optimize.slack_profile mu plan.Synthesis.schedule);
  let fp = Optimize.fundamental_period plan.Synthesis.schedule in
  Format.printf "dispatch table: %d slots (fundamental period %d)@."
    (Schedule.length plan.Synthesis.schedule)
    (Schedule.length fp);

  (* 4. How much margin is there? *)
  (match Sensitivity.tightest_deadline model "cmd" with
  | Some d -> Format.printf "cmd could promise %d instead of 12@." d
  | None -> ());
  (match Sensitivity.critical_speed model with
  | Some s -> Format.printf "survives timing shrunk to %.0f%%@." (100. *. s)
  | None -> ());

  (* 5. Attack it. *)
  let prng = Rt_graph.Prng.create 42 in
  let arrivals =
    Rt_sim.Arrivals.adversarial_phases prng ~horizon:2000 ~separation:100
  in
  let report =
    Rt_sim.Runtime.run mu plan.Synthesis.schedule ~horizon:2000
      ~arrivals:[ ("cmd", arrivals) ]
  in
  assert (report.Rt_sim.Runtime.misses = 0);
  List.iter
    (fun s -> Format.printf "%a@." Rt_sim.Stats.pp_summary s)
    (Rt_sim.Stats.summarize report);

  (* 6. Ship it. *)
  let plan_path = Filename.temp_file "tutorial" ".plan" in
  let c_path = Filename.temp_file "tutorial" ".c" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove plan_path;
      Sys.remove c_path)
    (fun () ->
      Rt_spec.Persist.save_file plan_path mu plan.Synthesis.schedule;
      (match Rt_spec.Persist.load_file plan_path with
      | Ok _ -> Format.printf "plan saved and re-verified: %s@." plan_path
      | Error e -> failwith e);
      let oc = open_out c_path in
      output_string oc (Emit_c.emit mu plan.Synthesis.schedule);
      close_out oc;
      Format.printf "C scheduler emitted (%d bytes)@."
        (Unix.stat c_path).Unix.st_size)
