(* A robot-arm controller: three joint servo loops at different rates
   plus an asynchronous emergency stop with a very tight latency bound —
   the kind of "entirely different language to express the motion of a
   robot arm" front end the paper anticipates maps onto the same
   graph-based model.

   Demonstrates: the polling-server transformation for a tight
   asynchronous deadline, the Theorem-3 sufficient condition on a
   relaxed variant, and the exact single-operation solver on the
   e-stop subproblem.

   Run with:  dune exec examples/robotics.exe *)

open Rt_core

let make_model ~estop_deadline =
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("enc1", 1, true);  (* joint encoders *)
          ("enc2", 1, true);
          ("enc3", 1, true);
          ("servo1", 2, true); (* per-joint control laws *)
          ("servo2", 2, true);
          ("servo3", 2, true);
          ("traj", 3, true);  (* trajectory interpolation *)
          ("estop", 1, false); (* E-stop scan: atomic, cannot pipeline *)
          ("brake", 1, false);
        ]
      ~edges:
        [
          ("enc1", "servo1");
          ("enc2", "servo2");
          ("enc3", "servo3");
          ("traj", "servo1");
          ("traj", "servo2");
          ("traj", "servo3");
          ("estop", "brake");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"joint1"
          ~graph:(chain [ "enc1"; "servo1" ])
          ~period:16 ~deadline:16 ~kind:Timing.Periodic;
        Timing.make ~name:"joint2"
          ~graph:(chain [ "enc2"; "servo2" ])
          ~period:16 ~deadline:16 ~kind:Timing.Periodic;
        Timing.make ~name:"joint3"
          ~graph:(chain [ "enc3"; "servo3" ])
          ~period:32 ~deadline:32 ~kind:Timing.Periodic;
        Timing.make ~name:"traj"
          ~graph:(chain [ "traj" ])
          ~period:64 ~deadline:64 ~kind:Timing.Periodic;
        (* Emergency stop: rare (separation 128) but must reach the
           brake within the bound. *)
        Timing.make ~name:"estop"
          ~graph:(chain [ "estop"; "brake" ])
          ~period:128 ~deadline:estop_deadline ~kind:Timing.Asynchronous;
      ]

let () =
  let model = make_model ~estop_deadline:8 in
  Format.printf "=== robot arm, e-stop deadline 8 ===@.";
  Format.printf "utilization: %.3f@." (Model.utilization model);

  (match Synthesis.synthesize model with
  | Error e -> Format.printf "synthesis failed: %a@." Synthesis.pp_error e
  | Ok plan ->
      List.iter
        (fun (name, q, d) ->
          Format.printf "polling server for %s: period %d, deadline %d@." name
            q d)
        plan.Synthesis.polling;
      List.iter
        (fun v -> Format.printf "  %a@." Latency.pp_verdict v)
        plan.Synthesis.verdicts;

      (* Hammer the e-stop with adversarial arrivals. *)
      let prng = Rt_graph.Prng.create 55 in
      let misses = ref 0 and invocations = ref 0 in
      for _ = 1 to 20 do
        let arrivals =
          Rt_sim.Arrivals.adversarial_phases prng ~horizon:1024
            ~separation:128
        in
        let r =
          Rt_sim.Runtime.run plan.Synthesis.model_used
            plan.Synthesis.schedule ~horizon:1024
            ~arrivals:[ ("estop", arrivals) ]
        in
        misses := !misses + r.Rt_sim.Runtime.misses;
        invocations := !invocations + List.length r.Rt_sim.Runtime.invocations
      done;
      Format.printf
        "20 adversarial runs: %d invocations checked, %d misses@.@."
        !invocations !misses);

  (* How tight can the e-stop deadline go?  Walk it down until the
     heuristic gives up; compare against the exact solver on the
     e-stop-only subproblem (treating estop+brake as one operation via
     the polling view is conservative; here we check the heuristic's
     frontier). *)
  Format.printf "=== e-stop deadline frontier ===@.";
  let rec frontier d last_ok =
    if d < 2 then last_ok
    else
      match Synthesis.synthesize (make_model ~estop_deadline:d) with
      | Ok _ -> frontier (d - 1) d
      | Error _ -> last_ok
  in
  let tightest = frontier 8 8 in
  Format.printf "tightest e-stop deadline the synthesizer meets: %d@."
    tightest;

  (* The relaxed variant satisfies Theorem 3's premises: construction
     is then guaranteed. *)
  Format.printf "@.=== Theorem 3 on a relaxed variant ===@.";
  let relaxed =
    let comm =
      Comm_graph.create
        ~elements:[ ("scan", 1, true); ("servo", 3, true); ("log", 2, true) ]
        ~edges:[ ("scan", "servo") ]
    in
    let id = Comm_graph.id_of_name comm in
    Model.make ~comm
      ~constraints:
        [
          Timing.make ~name:"loop"
            ~graph:(Task_graph.of_chain [ id "scan"; id "servo" ])
            ~period:32 ~deadline:32 ~kind:Timing.Asynchronous;
          Timing.make ~name:"log"
            ~graph:(Task_graph.singleton (id "log"))
            ~period:64 ~deadline:64 ~kind:Timing.Asynchronous;
        ]
  in
  (match Model.theorem3_premises relaxed with
  | Ok () -> Format.printf "premises (i)-(iii) hold@."
  | Error es -> List.iter (fun e -> Format.printf "violated: %s@." e) es);
  match Theorem3.schedule relaxed with
  | Ok r ->
      Format.printf "constructed schedule of %d slots; verdicts:@."
        (Schedule.length r.Theorem3.schedule);
      List.iter
        (fun v -> Format.printf "  %a@." Latency.pp_verdict v)
        r.Theorem3.verdicts
  | Error e -> Format.printf "construction failed: %s@." e
