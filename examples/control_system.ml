(* The example control system, this time entered through the
   specification language and executed with real data flowing along the
   communication edges — including edge assertions, the paper's
   suggested formulation of logical-integrity (fault-tolerance)
   conditions "in terms of relations on the data values that are being
   passed along the edges of the communication graph".

   The plant: u regulates a value towards the setpoint carried by x,
   with a slow trim input y and an operating-regime switch z.

   Run with:  dune exec examples/control_system.exe *)

let spec =
  {|
# Figures 1 and 2 of the paper, as a textual specification.
system "control" {
  element f_x weight 1 pipelinable;
  element f_y weight 1 pipelinable;
  element f_z weight 1 pipelinable;
  element f_s weight 2 pipelinable;
  element f_k weight 1 pipelinable;
  edge f_x -> f_s;
  edge f_y -> f_s;
  edge f_z -> f_s;
  edge f_s -> f_k;
  edge f_k -> f_s;
  # Logical-integrity relations on the communication edges.
  assert f_s -> f_k in [-100, 100];
  assert f_k -> f_s in [-100, 100];
  constraint px periodic period 10 deadline 10 { f_x -> f_s -> f_k; }
  constraint py periodic period 20 deadline 20 { f_y -> f_s -> f_k; }
  constraint pz asynchronous separation 50 deadline 15 { f_z -> f_s; }
}
|}

open Rt_core

let () =
  (* Parse + elaborate the spec into a graph-based model, keeping the
     declared edge assertions. *)
  let model, spec_asserts =
    match Rt_spec.Elaborate.load_with_assertions spec with
    | Ok (m, asserts) -> (m, asserts)
    | Error errs ->
        Format.printf "spec errors:@.";
        List.iter (fun e -> Format.printf "  %s@." e) errs;
        exit 1
  in
  Format.printf "=== DOT rendering of the model (pipe into graphviz) ===@.%s@."
    (Rt_spec.Dot.comm_graph model);

  (* Synthesize a schedule. *)
  let plan =
    match Synthesis.synthesize model with
    | Ok p -> p
    | Error e ->
        Format.printf "synthesis failed: %a@." Synthesis.pp_error e;
        exit 1
  in
  let m = plan.Synthesis.model_used in
  Format.printf "schedule (%d slots): %s@.@." plan.Synthesis.hyperperiod
    (Schedule.to_string m.Model.comm plan.Synthesis.schedule);

  (* Interpretations of the functional elements.  After software
     pipelining, f_s became the two stages f_s#1/f_s#2: the first stage
     gathers inputs, the second computes; we put the behaviour on the
     final stage (stage outputs feed forward automatically). *)
  let setpoint ~now = if now < 300 then 10.0 else -5.0 in
  let interps =
    [
      (* Sensor preprocessors: sample external signals. *)
      ("f_x", fun ~now _ -> setpoint ~now);
      ("f_y", fun ~now:_ _ -> 0.5 (* slow trim *));
      ("f_z", fun ~now _ -> if now < 150 then 1.0 else 2.0 (* regime *));
      (* f_s#1 forwards the gathered inputs; f_s#2 is the control law:
         u = gain(z') * (x' + y' - v). *)
      ("f_s#1", fun ~now:_ inputs -> Array.fold_left ( +. ) 0.0 inputs);
      ("f_s#2", fun ~now:_ inputs -> inputs.(0));
      (* State estimator: v tracks u with a first-order filter. *)
      ("f_k", fun ~now:_ inputs -> 0.8 *. inputs.(0));
    ]
  in
  (* Logical-integrity relations come from the specification's assert
     declarations; after software pipelining the producing stage of f_s
     is f_s#2 and the consuming stage f_s#1, so remap the endpoint
     names onto the rewritten model. *)
  let remap name ~producer =
    match Comm_graph.find_opt m.Model.comm name with
    | Some _ -> name
    | None -> if producer then name ^ "#2" else name ^ "#1"
  in
  let assertions =
    List.map
      (fun (src, dst, lo, hi) ->
        ( remap src ~producer:true,
          remap dst ~producer:false,
          fun v -> v >= lo && v <= hi ))
      spec_asserts
  in
  let result =
    Rt_sim.Data.run m plan.Synthesis.schedule
      { Rt_sim.Data.interps; assertions }
      ~steps:600
  in
  Format.printf "=== value-carrying simulation (600 slots) ===@.";
  Format.printf "transmissions: %d@."
    (List.length result.Rt_sim.Data.transmissions);
  Format.printf "edge-assertion violations: %d@."
    (List.length result.Rt_sim.Data.violations);
  Format.printf "final edge values:@.";
  List.iter
    (fun ((src, dst), v) -> Format.printf "  %s -> %s : %.3f@." src dst v)
    result.Rt_sim.Data.final_edge_values;
  (* Show how the control state settles. *)
  let samples =
    List.filter
      (fun (t, _, _) -> t mod 100 < 15)
      (List.filter_map
         (fun (tr : Rt_sim.Data.transmission) ->
           if tr.Rt_sim.Data.source = "f_k" then
             Some (tr.Rt_sim.Data.time, tr.Rt_sim.Data.source, tr.Rt_sim.Data.value)
           else None)
         result.Rt_sim.Data.transmissions)
  in
  Format.printf "state estimate v over time (sampled):@.";
  List.iter (fun (t, _, v) -> Format.printf "  t=%4d  v=%8.3f@." t v) samples
