(* Multiprocessor decomposition — the follow-up work the paper
   announces: "for a multiprocessor architecture, the synthesis problem
   can be decomposed into a set of single processor synthesis problems
   and a similar-looking problem for scheduling the communication
   network".

   A signal-processing pipeline too heavy for one processor is
   partitioned over two and three processors; cross-processor data
   transmissions are scheduled on a shared bus.

   Run with:  dune exec examples/multiproc_demo.exe *)

open Rt_core

let model =
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("adc", 2, true);
          ("fir1", 4, true);
          ("fir2", 4, true);
          ("fft", 6, true);
          ("detect", 3, true);
          ("track", 3, true);
          ("report", 1, true);
        ]
      ~edges:
        [
          ("adc", "fir1");
          ("adc", "fir2");
          ("fir1", "fft");
          ("fir2", "fft");
          ("fft", "detect");
          ("detect", "track");
          ("track", "report");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"front"
          ~graph:(chain [ "adc"; "fir1"; "fft" ])
          ~period:32 ~deadline:32 ~kind:Timing.Periodic;
        Timing.make ~name:"alt"
          ~graph:(chain [ "adc"; "fir2"; "fft" ])
          ~period:32 ~deadline:32 ~kind:Timing.Periodic;
        Timing.make ~name:"back"
          ~graph:(chain [ "detect"; "track"; "report" ])
          ~period:32 ~deadline:32 ~kind:Timing.Periodic;
      ]

let () =
  Format.printf "workload utilization: %.3f (needs > 1 processor)@.@."
    (Model.utilization model);
  List.iter
    (fun n_procs ->
      Format.printf "=== %d processor(s) ===@." n_procs;
      match Rt_multiproc.Msched.synthesize ~n_procs ~msg_cost:1 model with
      | Error e -> Format.printf "  infeasible: %s@.@." e
      | Ok r ->
          Format.printf "  %a@." (Rt_multiproc.Msched.pp_result model) r;
          Array.iteri
            (fun i s ->
              Format.printf "  p%d: %s@." i
                (Schedule.to_string model.Model.comm s))
            r.Rt_multiproc.Msched.processor_schedules;
          let busy =
            Array.fold_left
              (fun acc slot -> match slot with Some _ -> acc + 1 | None -> acc)
              0 r.Rt_multiproc.Msched.bus
          in
          Format.printf "  bus busy slots: %d / %d@.@." busy
            (Array.length r.Rt_multiproc.Msched.bus))
    [ 1; 2; 3; 4 ]
