(* Fault tolerance as relations on communication edges — the research
   direction the paper closes with: "we can pose the problems of
   maintaining the logical integrity of real-time systems in terms of
   relations on the data values that are being passed along the edges of
   the communication graph of our model and devise more domain-specific
   fault-tolerance techniques."

   A triple-modular-redundant (TMR) sensor stage: three replicated
   preprocessors feed a majority voter; edge assertions encode the
   logical-integrity relation (each replica within tolerance of the
   physical signal).  A transient fault is injected into one replica;
   the voter masks it — the output stays correct — while the edge
   assertions localize the faulty replica, all under a schedule
   synthesized to meet the sampling deadline.

   Run with:  dune exec examples/fault_tolerance.exe *)

open Rt_core

let model =
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("rep1", 1, true);
          ("rep2", 1, true);
          ("rep3", 1, true);
          ("voter", 1, true);
          ("act", 1, true);
        ]
      ~edges:
        [
          ("rep1", "voter");
          ("rep2", "voter");
          ("rep3", "voter");
          ("voter", "act");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"sample"
          ~graph:
            (Task_graph.create
               ~nodes:[| id "rep1"; id "rep2"; id "rep3"; id "voter"; id "act" |]
               ~edges:[ (0, 3); (1, 3); (2, 3); (3, 4) ])
          ~period:8 ~deadline:8 ~kind:Timing.Periodic;
      ]

let () =
  let plan =
    match Synthesis.synthesize model with
    | Ok p -> p
    | Error e ->
        Format.printf "synthesis failed: %a@." Synthesis.pp_error e;
        exit 1
  in
  let m = plan.Synthesis.model_used in
  Format.printf "schedule: %s@.@."
    (Schedule.to_string m.Model.comm plan.Synthesis.schedule);

  (* The physical signal both replicas should be reporting. *)
  let truth ~now = Float.of_int ((now / 8) mod 10) in
  let median3 a b c = max (min a b) (min (max a b) c) in
  let interps =
    [
      ("rep1", fun ~now _ -> truth ~now);
      (* Replica 2 suffers a transient stuck-at fault in cycles 5..8,
         injected with the library's fault combinators. *)
      ( "rep2",
        Rt_sim.Fault.stuck_at
          { Rt_sim.Fault.from = 40; until = 72 }
          99.0
          (fun ~now _ -> truth ~now) );
      ("rep3", fun ~now _ -> truth ~now);
      ( "voter",
        fun ~now:_ inputs ->
          match inputs with
          | [| a; b; c |] -> median3 a b c
          | _ -> nan );
      ("act", fun ~now:_ inputs -> inputs.(0));
    ]
  in
  (* Logical-integrity relations: each replica's report must be a
     plausible physical value (the stuck-at 99.0 is not). *)
  let plausible v = v >= 0.0 && v <= 10.0 in
  let assertions =
    [
      ("rep1", "voter", plausible);
      ("rep2", "voter", plausible);
      ("rep3", "voter", plausible);
      ("voter", "act", plausible);
    ]
  in
  let result =
    Rt_sim.Data.run m plan.Synthesis.schedule
      { Rt_sim.Data.interps; assertions }
      ~steps:120
  in
  Format.printf "=== 120 slots, fault injected into rep2 during [40,72) ===@.";
  Format.printf "violations detected: %d@."
    (List.length result.Rt_sim.Data.violations);
  List.iter
    (fun (v : Rt_sim.Data.violation) ->
      Format.printf "  t=%d %s -> %s carried %.1f (faulty replica localized)@."
        v.Rt_sim.Data.transmission.Rt_sim.Data.time
        v.Rt_sim.Data.transmission.Rt_sim.Data.source
        v.Rt_sim.Data.transmission.Rt_sim.Data.sink
        v.Rt_sim.Data.transmission.Rt_sim.Data.value)
    result.Rt_sim.Data.violations;
  (* Despite the fault, every voter output equals the physical truth:
     the TMR stage masks it. *)
  let voter_outputs =
    List.filter
      (fun (tr : Rt_sim.Data.transmission) -> tr.Rt_sim.Data.source = "voter")
      result.Rt_sim.Data.transmissions
  in
  let masked =
    List.for_all
      (fun (tr : Rt_sim.Data.transmission) ->
        tr.Rt_sim.Data.value = truth ~now:tr.Rt_sim.Data.time)
      voter_outputs
  in
  Format.printf "@.voter outputs: %d, all equal to the physical signal: %b@."
    (List.length voter_outputs) masked;
  if masked then
    Format.printf
      "the fault was masked by the voter and localized by the edge \
       assertions.@."
