module Prng = Rt_graph.Prng
open Rt_core

(* ------------------------------------------------------------------ *)
(* 3-PARTITION                                                         *)
(* ------------------------------------------------------------------ *)

let three_partition_solve items ~b =
  let n = Array.length items in
  if n mod 3 <> 0 then None
  else if Array.fold_left ( + ) 0 items <> n / 3 * b then None
  else begin
    let used = Array.make n false in
    let rec first_free i = if i >= n then n else if used.(i) then first_free (i + 1) else i in
    (* Always anchor each triple at the first unused item: canonical
       form that avoids permuting triples. *)
    let rec solve acc remaining =
      if remaining = 0 then Some (List.rev acc)
      else begin
        let i = first_free 0 in
        used.(i) <- true;
        let result = ref None in
        (try
           for j = i + 1 to n - 1 do
             if !result = None && (not used.(j)) && items.(i) + items.(j) < b
             then begin
               used.(j) <- true;
               for k = j + 1 to n - 1 do
                 if
                   !result = None && (not used.(k))
                   && items.(i) + items.(j) + items.(k) = b
                 then begin
                   used.(k) <- true;
                   (match solve ([ i; j; k ] :: acc) (remaining - 1) with
                   | Some r -> result := Some r; raise Exit
                   | None -> ());
                   used.(k) <- false
                 end
               done;
               used.(j) <- false
             end
           done
         with Exit -> ());
        used.(i) <- false;
        !result
      end
    in
    solve [] (n / 3)
  end

let three_partition_yes g ~m ~b =
  if b < 13 then invalid_arg "Npc.three_partition_yes: b must be >= 13";
  let lo = (b / 4) + 1 and hi = ((b - 1) / 2) in
  (* Draw a and c freely, fix the middle item; retry until all three lie
     strictly inside (b/4, b/2). *)
  let rec triple () =
    let a = Prng.int_in g lo hi in
    let c = Prng.int_in g lo hi in
    let mid = b - a - c in
    if mid > b / 4 && 2 * mid < b then [| a; mid; c |] else triple ()
  in
  let items = Array.concat (List.init m (fun _ -> triple ())) in
  Prng.shuffle g items;
  items

let sep_name = "sep"

let item_name j = Printf.sprintf "item%d" j

let reduction_deadlines items ~b =
  let m = Array.length items / 3 in
  let d_sep = (3 * b) - 1 in
  let d_item = (2 * m * b) + ((b + 1) / 2) in
  (d_sep, d_item)

let reduction_model items ~b =
  let n = Array.length items in
  if n mod 3 <> 0 || n = 0 then
    invalid_arg "Npc.reduction_model: item count must be a positive multiple of 3";
  let d_sep, d_item = reduction_deadlines items ~b in
  let elements =
    (sep_name, b, false)
    :: List.init n (fun j -> (item_name j, items.(j), false))
  in
  let comm = Comm_graph.create ~elements ~edges:[] in
  let constraints =
    Timing.make ~name:"sep"
      ~graph:(Task_graph.singleton (Comm_graph.id_of_name comm sep_name))
      ~period:d_sep ~deadline:d_sep ~kind:Timing.Asynchronous
    :: List.init n (fun j ->
           Timing.make
             ~name:(Printf.sprintf "it%d" j)
             ~graph:
               (Task_graph.singleton (Comm_graph.id_of_name comm (item_name j)))
             ~period:d_item ~deadline:d_item ~kind:Timing.Asynchronous)
  in
  Model.make ~comm ~constraints

let witness_schedule items ~b triples =
  let model = reduction_model items ~b in
  let comm = model.Model.comm in
  let sep_id = Comm_graph.id_of_name comm sep_name in
  let block id w = List.init w (fun _ -> Schedule.Run id) in
  let slots =
    List.concat_map
      (fun triple ->
        block sep_id b
        @ List.concat_map
            (fun j -> block (Comm_graph.id_of_name comm (item_name j)) items.(j))
            triple)
      triples
  in
  (model, Schedule.of_slots slots)

(* ------------------------------------------------------------------ *)
(* CYCLIC ORDERING                                                     *)
(* ------------------------------------------------------------------ *)

let triple_ok perm_pos (a, bb, c) =
  (* (a,b,c) is clockwise iff, reading positions cyclically from a, b
     comes before c. *)
  let pa = perm_pos.(a) and pb = perm_pos.(bb) and pc = perm_pos.(c) in
  let n = Array.length perm_pos in
  let rel x = (x - pa + n) mod n in
  rel pb < rel pc && rel pb > 0 && rel pc > 0

let cyclic_ordering_solve ~n triples =
  if n < 1 then None
  else if
    List.exists
      (fun (a, b, c) ->
        a < 0 || b < 0 || c < 0 || a >= n || b >= n || c >= n || a = b
        || b = c || a = c)
      triples
  then None
  else begin
    (* Fix element 0 at position 0 (cyclic symmetry) and try all
       permutations of the rest. *)
    let perm = Array.init n Fun.id in
    let pos = Array.init n Fun.id in
    let check () = List.for_all (triple_ok pos) triples in
    let rec go i =
      if i = n then if check () then Some (Array.copy perm) else None
      else begin
        let result = ref None in
        (try
           for j = i to n - 1 do
             if !result = None then begin
               let swap a bidx =
                 let tmp = perm.(a) in
                 perm.(a) <- perm.(bidx);
                 perm.(bidx) <- tmp;
                 pos.(perm.(a)) <- a;
                 pos.(perm.(bidx)) <- bidx
               in
               swap i j;
               (match go (i + 1) with
               | Some r ->
                   result := Some r;
                   raise Exit
               | None -> ());
               swap i j
             end
           done
         with Exit -> ());
        !result
      end
    in
    go 1
  end

let cyclic_ordering_yes g ~n ~n_triples =
  if n < 3 then invalid_arg "Npc.cyclic_ordering_yes: need n >= 3";
  List.init n_triples (fun _ ->
      (* Pick three distinct positions in increasing order under the
         identity cyclic order, then rotate randomly: the triple stays
         clockwise-consistent. *)
      let pool = Array.init n Fun.id in
      Prng.shuffle g pool;
      let sel = Array.sub pool 0 3 in
      Array.sort Int.compare sel;
      match Prng.int g 3 with
      | 0 -> (sel.(0), sel.(1), sel.(2))
      | 1 -> (sel.(1), sel.(2), sel.(0))
      | _ -> (sel.(2), sel.(0), sel.(1)))
