(** Adversarial mutations of schedule certificates.

    The certified-schedule pipeline is only as trustworthy as the
    checker's ability to notice corruption, so this harness produces
    {e guaranteed-bogus} variants of a genuine certificate and the test
    suite asserts {!Rt_core.Checker.check} rejects every one:

    - {e slot swap} — exchange two unequal schedule slots underneath a
      witnessed instance start, so the witnessed element no longer runs
      where the certificate claims;
    - {e window shift} — move a claimed execution start one slot left;
      the unique instance with that finish time starts elsewhere, so
      the claim matches no trace instance;
    - {e digest tamper} — flip the model digest, severing the
      certificate/model binding;
    - {e drop witness} — delete one per-constraint witness, leaving a
      constraint uncovered.

    Every mutant is structurally distinct from its original
    ([Certificate.equal] is [false]) by construction; rejection is
    guaranteed only for mutants of {e genuine} certificates (ones whose
    witnesses name real trace instances), which is what the harness is
    given. *)

type kind = Slot_swap | Window_shift | Digest_tamper | Drop_witness

val kinds : kind list
(** All mutation kinds, in a fixed order. *)

val kind_name : kind -> string
(** Stable label, e.g. ["slot-swap"]. *)

val mutate : kind -> Rt_core.Certificate.t -> Rt_core.Certificate.t option
(** [mutate k cert] applies [k] at the first applicable site, or [None]
    when the certificate offers no such site (e.g. dropping a witness
    from an empty witness list, or swapping slots of a constant
    schedule). *)

val mutants : Rt_core.Certificate.t -> (string * Rt_core.Certificate.t) list
(** Every applicable mutant, labeled: one digest tamper, plus one drop,
    one window shift and one slot swap {e per witness}, so
    multi-constraint certificates are corrupted at every witness, not
    just the first. *)
