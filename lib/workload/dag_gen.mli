(** Random directed-acyclic-graph generators for workload synthesis.

    All generators are deterministic functions of the supplied
    {!Rt_graph.Prng.t} state. *)

val layered :
  Rt_graph.Prng.t ->
  layers:int ->
  width:int ->
  p_edge:float ->
  Rt_graph.Digraph.t
(** [layered g ~layers ~width ~p_edge] builds a layered DAG: each layer
    has between 1 and [width] nodes; every node in layer [i] gains an
    edge to each node of layer [i+1] independently with probability
    [p_edge], plus one mandatory edge so no node is isolated from the
    next layer.  Layered DAGs model signal-flow pipelines
    (sensor -> filter -> control -> actuator). *)

val erdos_renyi :
  Rt_graph.Prng.t -> n:int -> p_edge:float -> Rt_graph.Digraph.t
(** [erdos_renyi g ~n ~p_edge] includes each forward edge [(i, j)],
    [i < j], independently with probability [p_edge]; always acyclic by
    construction. *)

val random_chain : Rt_graph.Prng.t -> min_len:int -> max_len:int -> Rt_graph.Digraph.t
(** A simple path whose length is uniform in [\[min_len, max_len\]]. *)

val fork_join : Rt_graph.Prng.t -> branches:int -> Rt_graph.Digraph.t
(** A fork–join diamond: one source fanning out to [branches] parallel
    nodes that all join into one sink ([branches >= 1]). *)
