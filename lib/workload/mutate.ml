open Rt_core

type kind = Slot_swap | Window_shift | Digest_tamper | Drop_witness

let kinds = [ Slot_swap; Window_shift; Digest_tamper; Drop_witness ]

let kind_name = function
  | Slot_swap -> "slot-swap"
  | Window_shift -> "window-shift"
  | Digest_tamper -> "digest-tamper"
  | Drop_witness -> "drop-witness"

(* ------------------------------------------------------------------ *)
(* Site-local transformations.  Every mutant is structurally distinct  *)
(* from its original by construction; the guaranteed-rejection         *)
(* arguments below assume the original certificate is genuine (its     *)
(* witnesses name real trace instances), which is what the harness     *)
(* feeds in.                                                           *)
(* ------------------------------------------------------------------ *)

let tamper_digest d =
  if String.length d = 0 then "x"
  else
    String.mapi
      (fun i c -> if i = 0 then (if c = '0' then '1' else '0') else c)
      d

let execs_of = function
  | Certificate.Async es -> es
  | Certificate.Periodic es -> Array.to_list es

(* Move the claimed start of the exec's node 0 one slot left, keeping
   the finish.  Each trace slot of an element belongs to exactly one of
   its instances, so the instance finishing at [f] is unique and starts
   at [s]; the mutated claim [s-1, f) matches nothing and the checker's
   exec re-validation fails (and [s = 0] falls outside the certifiable
   coordinate range — also a rejection). *)
let shift_exec (x : Certificate.exec) =
  if Array.length x = 0 then None
  else
    let s, f = x.(0) in
    let x' = Array.copy x in
    x'.(0) <- (s - 1, f);
    Some x'

let shift_witness = function
  | Certificate.Async [] -> None
  | Certificate.Async (x :: rest) ->
      Option.map (fun x' -> Certificate.Async (x' :: rest)) (shift_exec x)
  | Certificate.Periodic es ->
      if Array.length es = 0 then None
      else
        Option.map
          (fun x' ->
            let es' = Array.copy es in
            es'.(0) <- x';
            Certificate.Periodic es')
          (shift_exec es.(0))

(* Swap the schedule slot under a witnessed instance start with the
   first slot holding different contents.  The witnessed element then
   no longer runs at its claimed start (instance starts are first run
   slots), so the claimed instance cannot exist in the mutated trace. *)
let swap_for cert w =
  let slots = Schedule.slots cert.Certificate.schedule in
  let cycle = Array.length slots in
  match execs_of w with
  | x :: _ when Array.length x > 0 && cycle > 1 ->
      let s, _ = x.(0) in
      let i = s mod cycle in
      let j = ref (-1) in
      Array.iteri (fun k sk -> if !j < 0 && sk <> slots.(i) then j := k) slots;
      if !j < 0 then None
      else begin
        let slots' = Array.copy slots in
        slots'.(i) <- slots.(!j);
        slots'.(!j) <- slots.(i);
        Some { cert with Certificate.schedule = Schedule.of_array slots' }
      end
  | _ -> None

let with_witness cert i w' =
  {
    cert with
    Certificate.witnesses =
      List.mapi
        (fun j (n, w) -> if i = j then (n, w') else (n, w))
        cert.Certificate.witnesses;
  }

let without_witness cert i =
  {
    cert with
    Certificate.witnesses =
      List.filteri (fun j _ -> j <> i) cert.Certificate.witnesses;
  }

let mutate kind (cert : Certificate.t) =
  match kind with
  | Digest_tamper ->
      Some { cert with Certificate.digest = tamper_digest cert.Certificate.digest }
  | Drop_witness -> (
      match cert.Certificate.witnesses with
      | [] -> None
      | _ -> Some (without_witness cert 0))
  | Window_shift ->
      let rec go i = function
        | [] -> None
        | (_, w) :: rest -> (
            match shift_witness w with
            | Some w' -> Some (with_witness cert i w')
            | None -> go (i + 1) rest)
      in
      go 0 cert.Certificate.witnesses
  | Slot_swap ->
      let rec go = function
        | [] -> None
        | (_, w) :: rest -> (
            match swap_for cert w with Some c -> Some c | None -> go rest)
      in
      go cert.Certificate.witnesses

let mutants (cert : Certificate.t) =
  let named kind = Option.map (fun c -> (kind_name kind, c)) (mutate kind cert) in
  let site_mutants =
    (* One drop and one shift per witness position, so multi-constraint
       certificates exercise every witness, not just the first. *)
    List.concat
      (List.mapi
         (fun i (name, w) ->
           let drop = Some (Printf.sprintf "drop-witness:%s" name, without_witness cert i) in
           let shift =
             Option.map
               (fun w' -> (Printf.sprintf "window-shift:%s" name, with_witness cert i w'))
               (shift_witness w)
           in
           let swap =
             Option.map
               (fun c -> (Printf.sprintf "slot-swap:%s" name, c))
               (swap_for cert w)
           in
           List.filter_map Fun.id [ drop; shift; swap ])
         cert.Certificate.witnesses)
  in
  List.filter_map Fun.id [ named Digest_tamper ] @ site_mutants
