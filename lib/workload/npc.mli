(** The two strongly NP-complete source problems of Theorem 2, their
    exact solvers, and the reductions into latency-scheduling instances.

    Theorem 2 proves strong NP-hardness of feasible-static-schedule
    existence "by reduction from 3-partition and cyclic ordering
    [GAR & JOH 79]" for two restricted instance classes.  This module
    supplies:

    - reference implementations of both source problems (brute-force
      solvers, used in tests and to label generated instances);
    - generators for yes-instances of both;
    - a reduction from 3-PARTITION into the single-operation,
      all-but-one-deadlines-equal class (Theorem 2 case (ii) shape):
      yes-instances map to feasible scheduling instances (witnessed by
      an explicitly constructed schedule); the instances are used as
      the hard family for the exact-solver scaling experiment (E3);
    - a generator of unit-weight chain instances (Theorem 2 case (i)
      shape) at controlled density for the enumeration solver. *)

val three_partition_solve : int array -> b:int -> int list list option
(** [three_partition_solve items ~b] decides 3-PARTITION exactly:
    partition the [3m] items into [m] triples each summing to [b]
    (items need not respect the [b/4 < a < b/2] convention here).
    Returns the triples (as item indices) or [None].  Exponential-time
    backtracking. *)

val three_partition_yes :
  Rt_graph.Prng.t -> m:int -> b:int -> int array
(** [three_partition_yes g ~m ~b] generates a yes-instance: [3m] items,
    produced as [m] random triples each summing to [b], with every item
    in the open interval [(b/4, b/2)] (requires [b >= 13] so the
    interval holds three integers). *)

val reduction_model : int array -> b:int -> Rt_core.Model.t
(** [reduction_model items ~b] maps a 3-PARTITION instance with [3m]
    items to a latency-scheduling model:
    - a {e separator} operation [sep] of weight [b] with deadline
      [3b - 1], forcing a full separator block in every window and
      hence at most [b] non-separator slots between consecutive blocks;
    - one operation per item [j] of weight [items.(j)], all with the
      common deadline [2 m b + ⌈b/2⌉].
    All operations are single-node task graphs on non-pipelinable
    elements, and all but one deadline coincide — exactly the restricted
    class of Theorem 2 case (ii).  If the instance is a yes-instance,
    the canonical frame schedule (separator, then one triple per frame)
    is feasible; see {!witness_schedule}. *)

val witness_schedule :
  int array -> b:int -> int list list -> Rt_core.Model.t * Rt_core.Schedule.t
(** [witness_schedule items ~b triples] builds the reduction model and
    the canonical schedule realizing a 3-PARTITION solution: the cycle
    [sep | triple_1 | sep | triple_2 | ... ] of length [2 m b].  The
    schedule satisfies every constraint of the model (asserted in the
    test suite via [Latency.verify]). *)

val cyclic_ordering_solve :
  n:int -> (int * int * int) list -> int array option
(** [cyclic_ordering_solve ~n triples] decides CYCLIC ORDERING: is there
    a cyclic arrangement of [0 .. n-1] such that every triple [(a,b,c)]
    appears in clockwise order [a, b, c]?  Returns a witness permutation
    (a linearization of the cyclic order starting at element 0) or
    [None].  Exponential-time search over permutations. *)

val cyclic_ordering_yes :
  Rt_graph.Prng.t -> n:int -> n_triples:int -> (int * int * int) list
(** [cyclic_ordering_yes g ~n ~n_triples] generates a yes-instance by
    sampling triples consistent with the identity cyclic order. *)
