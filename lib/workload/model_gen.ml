module Prng = Rt_graph.Prng
open Rt_core

let uunifast g ~n ~total =
  if n < 1 then invalid_arg "Model_gen.uunifast";
  let shares = Array.make n 0.0 in
  let sum = ref total in
  for i = 0 to n - 2 do
    let r = Prng.float g 1.0 in
    let next = !sum *. (r ** (1.0 /. float_of_int (n - 1 - i))) in
    shares.(i) <- !sum -. next;
    sum := next
  done;
  shares.(n - 1) <- !sum;
  shares

let ceil_ratio w r = max w (int_of_float (ceil (float_of_int w /. r)))

let single_op_model ?(max_deadline = 64) g ~n_constraints ~max_weight
    ~target_ratio_sum =
  if n_constraints < 1 || max_weight < 1 || max_deadline < max_weight then
    invalid_arg "Model_gen.single_op_model";
  let shares = uunifast g ~n:n_constraints ~total:target_ratio_sum in
  let weights =
    Array.init n_constraints (fun _ -> Prng.int_in g 1 max_weight)
  in
  let elements =
    List.init n_constraints (fun i ->
        (Printf.sprintf "op%d" i, weights.(i), false))
  in
  let comm = Comm_graph.create ~elements ~edges:[] in
  let constraints =
    List.init n_constraints (fun i ->
        let d = min max_deadline (ceil_ratio weights.(i) shares.(i)) in
        Timing.make
          ~name:(Printf.sprintf "c%d" i)
          ~graph:(Task_graph.singleton i)
          ~period:d ~deadline:d ~kind:Timing.Asynchronous)
  in
  Model.make ~comm ~constraints

let theorem3_model g ~n_constraints ~max_weight =
  if n_constraints < 1 || max_weight < 1 then
    invalid_arg "Model_gen.theorem3_model";
  let shares = uunifast g ~n:n_constraints ~total:0.45 in
  let elements = ref [] in
  let edges = ref [] in
  let next_elem = ref 0 in
  let constraints =
    List.init n_constraints (fun i ->
        let len = Prng.int_in g 1 3 in
        let ids =
          List.init len (fun _ ->
              let id = !next_elem in
              incr next_elem;
              elements :=
                (Printf.sprintf "e%d" id, Prng.int_in g 1 max_weight, true)
                :: !elements;
              id)
        in
        let rec chain_edges = function
          | a :: (b :: _ as rest) ->
              (Printf.sprintf "e%d" a, Printf.sprintf "e%d" b)
              :: chain_edges rest
          | _ -> []
        in
        edges := chain_edges ids @ !edges;
        (i, ids))
  in
  let comm =
    Comm_graph.create ~elements:(List.rev !elements) ~edges:!edges
  in
  let constraints =
    List.map
      (fun (i, ids) ->
        let graph = Task_graph.of_chain ids in
        let w = Task_graph.computation_time comm graph in
        (* Round the deadline UP to a power of two: premise (i) only
           improves, and the polling periods q = d/2 stay harmonic so
           the hyperperiod of the constructed schedule remains small. *)
        let d = max (2 * w) (ceil_ratio w shares.(i)) in
        let d = if d <= 1 then 2 else 2 * Rt_graph.Intmath.pow2_floor (d - 1) in
        Timing.make
          ~name:(Printf.sprintf "c%d" i)
          ~graph ~period:d ~deadline:d ~kind:Timing.Asynchronous)
      constraints
  in
  Model.make ~comm ~constraints

let periodic_chain_model g ~n_constraints ~utilization ~periods =
  if n_constraints < 1 || periods = [] then
    invalid_arg "Model_gen.periodic_chain_model";
  let shares = uunifast g ~n:n_constraints ~total:utilization in
  let elements = ref [] in
  let edges = ref [] in
  let next_elem = ref 0 in
  let constraints =
    List.init n_constraints (fun i ->
        let p = Prng.pick g periods in
        let total_w = max 1 (int_of_float (Float.round (shares.(i) *. float_of_int p))) in
        let total_w = min total_w p in
        let len = min (Prng.int_in g 1 3) total_w in
        (* Split total_w into len positive parts. *)
        let parts = Array.make len 1 in
        let remaining = ref (total_w - len) in
        while !remaining > 0 do
          let j = Prng.int g len in
          parts.(j) <- parts.(j) + 1;
          decr remaining
        done;
        let ids =
          Array.to_list
            (Array.map
               (fun w ->
                 let id = !next_elem in
                 incr next_elem;
                 elements := (Printf.sprintf "e%d" id, w, true) :: !elements;
                 id)
               parts)
        in
        let rec chain_edges = function
          | a :: (b :: _ as rest) ->
              (Printf.sprintf "e%d" a, Printf.sprintf "e%d" b)
              :: chain_edges rest
          | _ -> []
        in
        edges := chain_edges ids @ !edges;
        (i, ids, p))
  in
  let comm = Comm_graph.create ~elements:(List.rev !elements) ~edges:!edges in
  let constraints =
    List.map
      (fun (i, ids, p) ->
        Timing.make
          ~name:(Printf.sprintf "c%d" i)
          ~graph:(Task_graph.of_chain ids) ~period:p ~deadline:p
          ~kind:Timing.Periodic)
      constraints
  in
  Model.make ~comm ~constraints

let shared_block_model _g ~n_pairs ~shared_weight ~private_weight ~period =
  if n_pairs < 1 || shared_weight < 1 || private_weight < 1 || period < 1 then
    invalid_arg "Model_gen.shared_block_model";
  let elements =
    List.concat
      (List.init n_pairs (fun k ->
           [
             (Printf.sprintf "a%d" k, private_weight, true);
             (Printf.sprintf "b%d" k, private_weight, true);
             (Printf.sprintf "s%d" k, shared_weight, true);
           ]))
  in
  let edges =
    List.concat
      (List.init n_pairs (fun k ->
           [
             (Printf.sprintf "a%d" k, Printf.sprintf "s%d" k);
             (Printf.sprintf "b%d" k, Printf.sprintf "s%d" k);
           ]))
  in
  let comm = Comm_graph.create ~elements ~edges in
  let constraints =
    List.concat
      (List.init n_pairs (fun k ->
           let a = Comm_graph.id_of_name comm (Printf.sprintf "a%d" k) in
           let b = Comm_graph.id_of_name comm (Printf.sprintf "b%d" k) in
           let s = Comm_graph.id_of_name comm (Printf.sprintf "s%d" k) in
           [
             Timing.make
               ~name:(Printf.sprintf "pA%d" k)
               ~graph:(Task_graph.of_chain [ a; s ])
               ~period ~deadline:period ~kind:Timing.Periodic;
             Timing.make
               ~name:(Printf.sprintf "pB%d" k)
               ~graph:(Task_graph.of_chain [ b; s ])
               ~period ~deadline:period ~kind:Timing.Periodic;
           ]))
  in
  Model.make ~comm ~constraints

let dag_model g ~n_constraints ~utilization ~periods =
  if n_constraints < 1 || periods = [] then invalid_arg "Model_gen.dag_model";
  let shares = uunifast g ~n:n_constraints ~total:utilization in
  let elements = ref [] in
  let edges = ref [] in
  let next_elem = ref 0 in
  let fresh () =
    let id = !next_elem in
    incr next_elem;
    elements := (Printf.sprintf "d%d" id, 1, true) :: !elements;
    id
  in
  let specs =
    List.init n_constraints (fun i ->
        let p = Prng.pick g periods in
        let budget =
          max 1 (int_of_float (Float.round (shares.(i) *. float_of_int p)))
        in
        let budget = min budget (min p 7) in
        (* Build a small layered DAG with [budget] unit nodes: a source
           layer, an optional middle layer, and a sink. *)
        let nodes = Array.init budget (fun _ -> fresh ()) in
        let tg_edges = ref [] in
        (if budget >= 2 then begin
           (* Last node is the join/sink; others feed it directly or
              through a chain, at random. *)
           let sink = budget - 1 in
           for v = 0 to budget - 2 do
             if v > 0 && Prng.chance g 0.4 then
               tg_edges := (v - 1, v) :: !tg_edges
             else ();
             tg_edges := (v, sink) :: !tg_edges
           done
         end);
        let tg_edges = List.sort_uniq compare !tg_edges in
        (* Mirror the task-graph edges in the communication graph. *)
        List.iter
          (fun (u, v) ->
            edges :=
              ( Printf.sprintf "d%d" nodes.(u),
                Printf.sprintf "d%d" nodes.(v) )
              :: !edges)
          tg_edges;
        (i, nodes, tg_edges, p))
  in
  let comm = Comm_graph.create ~elements:(List.rev !elements) ~edges:!edges in
  let constraints =
    List.map
      (fun (i, nodes, tg_edges, p) ->
        Timing.make
          ~name:(Printf.sprintf "c%d" i)
          ~graph:(Task_graph.create ~nodes ~edges:tg_edges)
          ~period:p ~deadline:p ~kind:Timing.Periodic)
      specs
  in
  Model.make ~comm ~constraints

let unit_chain_model g ~n_constraints ~n_elements ~max_deadline =
  if n_constraints < 1 || n_elements < 3 || max_deadline < 3 then
    invalid_arg "Model_gen.unit_chain_model";
  let elements =
    List.init n_elements (fun i -> (Printf.sprintf "e%d" i, 1, true))
  in
  (* Complete communication graph so that any ordered pair of distinct
     elements is a legal task-graph edge. *)
  let edges =
    List.concat
      (List.init n_elements (fun i ->
           List.filter_map
             (fun j ->
               if i = j then None
               else Some (Printf.sprintf "e%d" i, Printf.sprintf "e%d" j))
             (List.init n_elements Fun.id)))
  in
  let comm = Comm_graph.create ~elements ~edges in
  let constraints =
    List.init n_constraints (fun i ->
        let len = if Prng.bool g then 1 else 3 in
        let pool = Array.init n_elements Fun.id in
        Prng.shuffle g pool;
        let ids = Array.to_list (Array.sub pool 0 len) in
        let d = Prng.int_in g (max 3 len) max_deadline in
        Timing.make
          ~name:(Printf.sprintf "c%d" i)
          ~graph:(Task_graph.of_chain ids) ~period:d ~deadline:d
          ~kind:Timing.Asynchronous)
  in
  Model.make ~comm ~constraints
