(** Random graph-based-model generators.

    Used by the property tests and by the experiment harness to sweep
    parameter spaces (utilization bands, constraint counts, deadline
    tightness).  All generators are deterministic in the PRNG state. *)

val uunifast : Rt_graph.Prng.t -> n:int -> total:float -> float array
(** [uunifast g ~n ~total] splits a total utilization into [n]
    unbiased uniform shares (the UUniFast algorithm of Bini & Buttazzo);
    each share is positive and they sum to [total]. *)

val single_op_model :
  ?max_deadline:int ->
  Rt_graph.Prng.t ->
  n_constraints:int ->
  max_weight:int ->
  target_ratio_sum:float ->
  Rt_core.Model.t
(** [single_op_model g ~n_constraints ~max_weight ~target_ratio_sum]
    builds a model in which every asynchronous constraint is a single
    (non-pipelinable) operation of weight in [\[1, max_weight\]]; the
    deadlines are chosen so that [Σ w_i/d_i] is approximately
    [target_ratio_sum], capped at [max_deadline] (default 64) so the
    simulation game's state space stays tractable.  The elements are pairwise distinct.  Used to
    exercise the Theorem-1 simulation game at varying criticality. *)

val theorem3_model :
  Rt_graph.Prng.t ->
  n_constraints:int ->
  max_weight:int ->
  Rt_core.Model.t
(** [theorem3_model g ~n_constraints ~max_weight] builds a random model
    guaranteed to satisfy all three premises of Theorem 3 (pipelinable
    elements, [⌈d_i/2⌉ >= w_i], [Σ w_i/d_i <= 1/2]), with chain task
    graphs of 1–3 operations. *)

val periodic_chain_model :
  Rt_graph.Prng.t ->
  n_constraints:int ->
  utilization:float ->
  periods:int list ->
  Rt_core.Model.t
(** [periodic_chain_model g ~n_constraints ~utilization ~periods] builds
    a periodic-only model: each constraint is a chain of 1–3 fresh
    unit-weight... (weights are sized to hit the per-constraint
    utilization share from {!uunifast}); periods are drawn from
    [periods] and deadlines equal periods.  Suitable for the EDF / RM
    acceptance-ratio experiments and the cyclic constructor. *)

val shared_block_model :
  Rt_graph.Prng.t ->
  n_pairs:int ->
  shared_weight:int ->
  private_weight:int ->
  period:int ->
  Rt_core.Model.t
(** [shared_block_model g ~n_pairs ~shared_weight ~private_weight
    ~period] builds [n_pairs] pairs of same-period periodic constraints;
    the two members of a pair share a common downstream element (of
    weight [shared_weight]) fed by private preprocessing elements — the
    [f_s]-sharing pattern of the paper's example, used by the merging
    experiment (E5). *)

val dag_model :
  Rt_graph.Prng.t ->
  n_constraints:int ->
  utilization:float ->
  periods:int list ->
  Rt_core.Model.t
(** [dag_model g ~n_constraints ~utilization ~periods] builds periodic
    constraints whose task graphs are random layered DAGs (2–3 layers,
    fork/join shapes) over fresh elements; the communication graph is
    exactly the union of the task graphs' edges.  Weights are unit so
    the constraint's computation time equals its node count; node
    counts are sized from the UUniFast utilization share.  Exercises
    the non-chain paths of the containment search. *)

val unit_chain_model :
  Rt_graph.Prng.t ->
  n_constraints:int ->
  n_elements:int ->
  max_deadline:int ->
  Rt_core.Model.t
(** [unit_chain_model g ~n_constraints ~n_elements ~max_deadline] builds
    asynchronous constraints whose task graphs are chains of length 1 or
    3 over a pool of [n_elements] unit-weight elements (Theorem 2 case
    (i) shape), with deadlines in [\[3, max_deadline\]]; chains only use
    element pairs connected in a generated communication graph. *)
