module Prng = Rt_graph.Prng
module Digraph = Rt_graph.Digraph

let layered g ~layers ~width ~p_edge =
  if layers < 1 || width < 1 then invalid_arg "Dag_gen.layered";
  let sizes = Array.init layers (fun _ -> Prng.int_in g 1 width) in
  let offsets = Array.make layers 0 in
  let total = ref 0 in
  Array.iteri
    (fun i s ->
      offsets.(i) <- !total;
      total := !total + s)
    sizes;
  let edges = ref [] in
  for i = 0 to layers - 2 do
    for a = 0 to sizes.(i) - 1 do
      let u = offsets.(i) + a in
      let forced = Prng.int g sizes.(i + 1) in
      for b = 0 to sizes.(i + 1) - 1 do
        let v = offsets.(i + 1) + b in
        if b = forced || Prng.chance g p_edge then edges := (u, v) :: !edges
      done
    done
  done;
  Digraph.create ~n:!total ~edges:!edges

let erdos_renyi g ~n ~p_edge =
  if n < 0 then invalid_arg "Dag_gen.erdos_renyi";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.chance g p_edge then edges := (i, j) :: !edges
    done
  done;
  Digraph.create ~n ~edges:!edges

let random_chain g ~min_len ~max_len =
  if min_len < 1 || max_len < min_len then invalid_arg "Dag_gen.random_chain";
  let n = Prng.int_in g min_len max_len in
  Digraph.create ~n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let fork_join _g ~branches =
  if branches < 1 then invalid_arg "Dag_gen.fork_join";
  let n = branches + 2 in
  let edges =
    List.init branches (fun i -> (0, i + 1))
    @ List.init branches (fun i -> (i + 1, n - 1))
  in
  Digraph.create ~n ~edges
