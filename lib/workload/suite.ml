open Rt_core

type example_params = {
  c_x : int;
  c_y : int;
  c_z : int;
  c_s : int;
  c_k : int;
  p_x : int;
  p_y : int;
  p_z : int;
  d_x : int;
  d_y : int;
  d_z : int;
  pipelinable : bool;
}

let default_params =
  {
    c_x = 1;
    c_y = 1;
    c_z = 1;
    c_s = 2;
    c_k = 1;
    p_x = 10;
    p_y = 20;
    p_z = 50;
    d_x = 10;
    d_y = 20;
    d_z = 15;
    pipelinable = true;
  }

let control_system ps =
  let pl = ps.pipelinable in
  let comm =
    Comm_graph.create
      ~elements:
        [
          ("f_x", ps.c_x, pl);
          ("f_y", ps.c_y, pl);
          ("f_z", ps.c_z, pl);
          ("f_s", ps.c_s, pl);
          ("f_k", ps.c_k, pl);
        ]
      ~edges:
        [
          ("f_x", "f_s");
          ("f_y", "f_s");
          ("f_z", "f_s");
          ("f_s", "f_k");
          ("f_k", "f_s");
        ]
  in
  let id = Comm_graph.id_of_name comm in
  let chain names = Task_graph.of_chain (List.map id names) in
  let constraints =
    [
      Timing.make ~name:"px"
        ~graph:(chain [ "f_x"; "f_s"; "f_k" ])
        ~period:ps.p_x ~deadline:ps.d_x ~kind:Timing.Periodic;
      Timing.make ~name:"py"
        ~graph:(chain [ "f_y"; "f_s"; "f_k" ])
        ~period:ps.p_y ~deadline:ps.d_y ~kind:Timing.Periodic;
      Timing.make ~name:"pz"
        ~graph:(chain [ "f_z"; "f_s" ])
        ~period:ps.p_z ~deadline:ps.d_z ~kind:Timing.Asynchronous;
    ]
  in
  Model.make ~comm ~constraints

let control_system_equal_rates ps =
  control_system { ps with p_y = ps.p_x; d_y = ps.d_x }

let tiny_two_ops =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 1, true); ("b", 1, true) ]
      ~edges:[]
  in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"ca" ~graph:(Task_graph.singleton 0) ~period:2
          ~deadline:2 ~kind:Timing.Asynchronous;
        Timing.make ~name:"cb" ~graph:(Task_graph.singleton 1) ~period:4
          ~deadline:4 ~kind:Timing.Asynchronous;
      ]

let exact_stress ?(seed = 7) ~n_constraints () =
  let prng = Rt_graph.Prng.create seed in
  let rec nth k =
    let m =
      Model_gen.unit_chain_model prng ~n_constraints:k ~n_elements:4
        ~max_deadline:8
    in
    if k >= n_constraints then m else nth (k + 1)
  in
  nth 1

let replicated_control ~n =
  if n < 1 then invalid_arg "Suite.replicated_control: n must be positive";
  let elements =
    List.concat
      (List.init n (fun i ->
           [
             (Printf.sprintf "s%d" i, 1, true);
             (Printf.sprintf "f%d" i, 2, true);
             (Printf.sprintf "a%d" i, 1, true);
           ]))
  in
  let edges =
    List.concat
      (List.init n (fun i ->
           [
             (Printf.sprintf "s%d" i, Printf.sprintf "f%d" i);
             (Printf.sprintf "f%d" i, Printf.sprintf "a%d" i);
           ]))
  in
  let comm = Comm_graph.create ~elements ~edges in
  let id = Comm_graph.id_of_name comm in
  let constraints =
    List.init n (fun i ->
        Timing.make
          ~name:(Printf.sprintf "loop%d" i)
          ~graph:
            (Task_graph.of_chain
               [
                 id (Printf.sprintf "s%d" i);
                 id (Printf.sprintf "f%d" i);
                 id (Printf.sprintf "a%d" i);
               ])
          ~period:16 ~deadline:16 ~kind:Timing.Periodic)
  in
  Model.make ~comm ~constraints

let infeasible_pair =
  let comm =
    Comm_graph.create
      ~elements:[ ("a", 1, true); ("b", 1, true) ]
      ~edges:[]
  in
  Model.make ~comm
    ~constraints:
      [
        Timing.make ~name:"ca" ~graph:(Task_graph.singleton 0) ~period:1
          ~deadline:1 ~kind:Timing.Asynchronous;
        Timing.make ~name:"cb" ~graph:(Task_graph.singleton 1) ~period:1
          ~deadline:1 ~kind:Timing.Asynchronous;
      ]
