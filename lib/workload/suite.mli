(** Canonical named instances, chief among them the paper's example
    control system (Figures 1 and 2).

    The example has three inputs [x, y, z] and one output [u]; five
    functional elements [f_x, f_y, f_z, f_s, f_k]; [f_s] computes the
    output [u] from the preprocessed inputs and the internal state [v],
    which [f_k] recomputes from [u] (a feedback edge, making the
    communication graph cyclic).  The design objectives are two periodic
    constraints (sampling [x] at [1/p_x], [y] at [1/p_y]) and one
    asynchronous constraint (the operator toggle [z], which must be
    reflected in [u] within [d_z] time units). *)

type example_params = {
  c_x : int;  (** Computation time of [f_x]. *)
  c_y : int;  (** Computation time of [f_y]. *)
  c_z : int;  (** Computation time of [f_z]. *)
  c_s : int;  (** Computation time of [f_s]. *)
  c_k : int;  (** Computation time of [f_k]. *)
  p_x : int;  (** Sampling period of input [x]. *)
  p_y : int;  (** Sampling period of input [y]. *)
  p_z : int;  (** Minimum separation of [z] transitions. *)
  d_x : int;  (** Deadline of the [x] constraint. *)
  d_y : int;  (** Deadline of the [y] constraint. *)
  d_z : int;  (** Latency bound on reflecting a [z] transition in [u]. *)
  pipelinable : bool;  (** Whether the elements may be software-pipelined. *)
}
(** Parameters of the example; the paper leaves the numbers symbolic. *)

val default_params : example_params
(** A representative instantiation: [c_x = c_y = c_z = c_k = 1],
    [c_s = 2], [p_x = d_x = 10], [p_y = d_y = 20], [p_z = 50],
    [d_z = 15], pipelinable. *)

val control_system : example_params -> Rt_core.Model.t
(** [control_system ps] is the graph-based model of Figure 2:
    communication graph [f_x -> f_s], [f_y -> f_s], [f_z -> f_s],
    [f_s -> f_k], [f_k -> f_s]; constraints
    [px = (f_x -> f_s -> f_k, p_x, d_x)] periodic,
    [py = (f_y -> f_s -> f_k, p_y, d_y)] periodic,
    [pz = (f_z -> f_s, p_z, d_z)] asynchronous. *)

val control_system_equal_rates : example_params -> Rt_core.Model.t
(** Same system with [p_y] forced equal to [p_x] — the configuration
    under which the paper observes that "there is no reason why [f_S]
    should be executed twice per period", exercised by the merging
    experiment. *)

val tiny_two_ops : Rt_core.Model.t
(** Two asynchronous unit operations with deadlines 2 and 4 — the
    smallest non-trivial latency-scheduling instance; the alternating
    schedule [a b a .] is feasible. *)

val exact_stress : ?seed:int -> n_constraints:int -> unit -> Rt_core.Model.t
(** [exact_stress ~n_constraints ()] is the unit-weight chain instance
    the E3(b) experiment feeds the bounded enumerator: the
    [n_constraints]-th model drawn from
    [Model_gen.unit_chain_model ~n_elements:4 ~max_deadline:8] with a
    PRNG seeded [seed] (default 7, E3's seed), after drawing the
    smaller models first exactly as the experiment's sweep does.  The
    largest published family member is [~n_constraints:4]; used by the
    parallel-speedup benchmark (E14) so that sequential and parallel
    runs search the very same instance. *)

val replicated_control : n:int -> Rt_core.Model.t
(** [replicated_control ~n] is [n] independent sense-filter-actuate
    chains ([s_i -> f_i -> a_i], weights 1/2/1, one periodic constraint
    of period and deadline 16 per chain).  The chains share nothing, so
    an [n]-processor partition places one chain per processor and every
    single-crash contingency scenario stays feasible (each survivor has
    capacity for a second chain) — the 16-scenario contingency workload
    of the parallel-speedup benchmark is [~n:16]. *)

val infeasible_pair : Rt_core.Model.t
(** Two asynchronous unit operations that both demand completion in
    every 1-slot window — provably infeasible; used to exercise
    [Exact.solve_single_ops]'s [Infeasible] verdict. *)
