(* Dynamically registered metrics on atomic cells.

   Layout of the log-linear histogram: buckets 0..31 hold values 0..31
   exactly; above that each power of two [2^k, 2^{k+1}) is split into 16
   sub-buckets of width 2^(k-4).  For a value v with msb position k >= 5,
   the top five bits (v lsr (k-4), in 16..31) select the sub-bucket:

     index = 32 + (k - 5) * 16 + ((v lsr (k - 4)) - 16)

   and the bucket's upper bound is ((high + 1) lsl (k - 4)) - 1.  With
   62-bit ints k tops out at 62, giving 32 + 58*16 = 960 buckets. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  counts : int Atomic.t array;
  total : int Atomic.t;
  sum : int Atomic.t;
  hmin : int Atomic.t; (* max_int when empty *)
  hmax : int Atomic.t; (* -1 when empty; observed values are >= 0 *)
}

let n_linear = 32
let sub_bits = 4
let n_buckets = n_linear + ((62 - 4) * (1 lsl sub_bits))

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let k = ref 0 and x = ref v in
  while !x > 1 do
    incr k;
    x := !x lsr 1
  done;
  !k

let bucket_of_value v =
  if v < n_linear then v
  else
    let k = msb v in
    let high = v lsr (k - sub_bits) in
    n_linear + ((k - 5) * (1 lsl sub_bits)) + (high - (1 lsl sub_bits))

let bound_of_bucket i =
  if i < n_linear then i
  else
    let k = 5 + ((i - n_linear) / (1 lsl sub_bits)) in
    let high = (1 lsl sub_bits) + ((i - n_linear) mod (1 lsl sub_bits)) in
    ((high + 1) lsl (k - sub_bits)) - 1

let bound_of_value v =
  let v = if v < 0 then 0 else v in
  bound_of_bucket (bucket_of_value v)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let register name make classify =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match classify m with
          | Some cell -> cell
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Rt_obs.Metrics: %S already registered with another kind"
                   name))
      | None ->
          let m = make () in
          Hashtbl.add registry name m;
          (match classify m with
          | Some cell -> cell
          | None -> assert false))

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> G (Atomic.make 0))
    (function G g -> Some g | _ -> None)

let make_histogram () =
  {
    counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum = Atomic.make 0;
    hmin = Atomic.make max_int;
    hmax = Atomic.make (-1);
  }

let histogram name =
  register name
    (fun () -> H (make_histogram ()))
    (function H h -> Some h | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v >= cur then ()
  else if Atomic.compare_and_set cell cur v then ()
  else atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v <= cur then ()
  else if Atomic.compare_and_set cell cur v then ()
  else atomic_max cell v

let observe h v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add h.counts.(bucket_of_value v) 1);
  ignore (Atomic.fetch_and_add h.total 1);
  ignore (Atomic.fetch_and_add h.sum v);
  atomic_min h.hmin v;
  atomic_max h.hmax v

let h_count h = Atomic.get h.total
let h_sum h = Atomic.get h.sum
let h_min h = if h_count h = 0 then None else Some (Atomic.get h.hmin)
let h_max h = if h_count h = 0 then None else Some (Atomic.get h.hmax)

let quantile h q =
  let n = h_count h in
  if n = 0 then None
  else
    let rank =
      let r = int_of_float (ceil (q *. float_of_int n)) in
      max 1 (min n r)
    in
    let cum = ref 0 and found = ref None and i = ref 0 in
    while !found = None && !i < n_buckets do
      cum := !cum + Atomic.get h.counts.(!i);
      if !cum >= rank then found := Some (bound_of_bucket !i);
      i := !i + 1
    done;
    !found

type stat =
  | Counter_v of { name : string; value : int }
  | Gauge_v of { name : string; value : int }
  | Histogram_v of {
      name : string;
      count : int;
      sum : int;
      min : int;
      max : int;
      p50 : int;
      p95 : int;
      p99 : int;
    }

let snapshot () =
  let items =
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  items
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, m) ->
         match m with
         | C c -> Counter_v { name; value = Atomic.get c }
         | G g -> Gauge_v { name; value = Atomic.get g }
         | H h ->
             let q p = Option.value ~default:0 (quantile h p) in
             Histogram_v
               {
                 name;
                 count = h_count h;
                 sum = h_sum h;
                 min = Option.value ~default:0 (h_min h);
                 max = Option.value ~default:0 (h_max h);
                 p50 = q 0.50;
                 p95 = q 0.95;
                 p99 = q 0.99;
               })

let reset () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c | G c -> Atomic.set c 0
          | H h ->
              Array.iter (fun cell -> Atomic.set cell 0) h.counts;
              Atomic.set h.total 0;
              Atomic.set h.sum 0;
              Atomic.set h.hmin max_int;
              Atomic.set h.hmax (-1))
        registry)

let pp ppf () =
  List.iter
    (function
      | Counter_v { name; value } ->
          Format.fprintf ppf "%-28s %d@." name value
      | Gauge_v { name; value } ->
          Format.fprintf ppf "%-28s %d (gauge)@." name value
      | Histogram_v { name; count; sum; min; max; p50; p95; p99 } ->
          Format.fprintf ppf
            "%-28s n=%d sum=%d min=%d max=%d p50=%d p95=%d p99=%d@." name
            count sum min max p50 p95 p99)
    (snapshot ())
