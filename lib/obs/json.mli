(** Minimal JSON reader — just enough to parse the repo's own
    [BENCH_*.json] and trace files without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string includes the offending offset. *)

val parse_file : string -> (t, string) result

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option
