type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail pos msg = raise (Fail (pos, msg))

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail !pos "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail !pos "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the BMP code point as UTF-8; good enough for
                      our own files, which are ASCII *)
                   if code < 0x80 then Buffer.add_char b (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char b
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail start (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail !pos "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail !pos "expected , or ] in array"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
