(** Dynamically registered metrics: counters, gauges and histograms.

    This registry generalizes the hard-coded counter list that used to live
    in {!Rt_par.Perf}: any module can mint a named metric at runtime, all
    cells are updated with [Atomic] operations (safe to bump from any
    domain of a {!Rt_par.Pool} without locks on the hot path), and a
    snapshot can be rendered or embedded in bench JSON.

    Names are global: [counter "x"] returns the same cell everywhere.
    Registering the same name with a different metric kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram

(** {1 Registration (get-or-create)} *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Counters} *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges} *)

val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms}

    Histograms are log-linear (HdrHistogram-style): values below 32 are
    recorded exactly; larger values land in one of 16 sub-buckets per
    power of two, so any recorded value is over-approximated by its
    bucket's upper bound with at most ~6% relative error.  All cells are
    [Atomic], so concurrent [observe] calls never tear or drop counts —
    this is what makes domain-safe stage timing possible. *)

val observe : histogram -> int -> unit
(** [observe h v] records [v] (negative values clamp to 0). *)

val h_count : histogram -> int
val h_sum : histogram -> int

val h_min : histogram -> int option
val h_max : histogram -> int option
(** Exact min/max of observed values (not bucket bounds); [None] when
    empty. *)

val quantile : histogram -> float -> int option
(** [quantile h q] for [q] in [0,1]: the upper bucket bound of the value
    at rank [max 1 (ceil (q * count))] — i.e. an upper bound on the true
    q-quantile, within the bucket resolution.  [None] when empty. *)

val bound_of_value : int -> int
(** [bound_of_value v] is the upper bound of the bucket [v] falls into —
    the value [quantile] would report if [v] were the selected rank.
    Exposed so tests can compare histograms against a sorted-list
    oracle. *)

(** {1 Snapshot / reset} *)

type stat =
  | Counter_v of { name : string; value : int }
  | Gauge_v of { name : string; value : int }
  | Histogram_v of {
      name : string;
      count : int;
      sum : int;
      min : int;
      max : int;
      p50 : int;
      p95 : int;
      p99 : int;
    }

val snapshot : unit -> stat list
(** All registered metrics, sorted by name.  Empty histograms report
    zeros. *)

val reset : unit -> unit
(** Zero every registered metric.  Registrations (and the cells returned
    by earlier [counter]/[gauge]/[histogram] calls) stay valid. *)

val pp : Format.formatter -> unit -> unit
(** Render the snapshot, one metric per line. *)
