(** Lock-free span tracer draining to Chrome [trace_event] JSON.

    Each domain records into its own fixed-capacity ring buffer (no locks
    or atomics on the hot recording path beyond one [Atomic.get] of the
    global enable flag), so pool workers can trace concurrently without
    contending.  [drain] collects every ring; [write_json] renders the
    events in the Chrome trace-event format, which loads directly in
    {{:https://ui.perfetto.dev}Perfetto} or [chrome://tracing].

    Two timelines share one file:
    - [pid 1] ({!wall_pid}) — wall-clock spans ([B]/[E] pairs), one track
      per domain ([tid] = domain id), microseconds since {!enable}.
    - [pid 2] ({!sim_pid}) — simulation virtual time: runtimes replay
      schedules as complete ([X]) events, one track per processor, with
      one schedule slot rendered as {!slot_us} microseconds.  Viewed in
      Perfetto this is a Gantt chart of the replayed schedule.

    Drop policy: when a ring is full, new events on that domain are
    dropped (newest-dropped) and counted; {!dropped} reports the total.
    Existing spans are never overwritten, so a truncated trace is still
    structurally valid up to the drop point.

    Timestamps of wall-clock [B]/[E] events are made strictly monotone
    per ring (ts = max(now, last+1)), so clock granularity can never
    produce the zero-width or out-of-order spans that trip trace
    viewers.  Virtual-time events carry caller-supplied timestamps and
    are exempt.

    [drain] is not synchronized against concurrent recording: call it
    after the traced work has quiesced (as {!with_trace} does). *)

type phase = B | E | X | I | M

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int;  (** microseconds *)
  dur : int;  (** [X] events only; 0 otherwise *)
  pid : int;
  tid : int;
  arg : (string * string) option;
      (** rendered as ["args": {key: value}]; used by [M] metadata *)
}

val wall_pid : int
val sim_pid : int

val slot_us : int
(** Virtual-time scale: one schedule slot = 1000 us. *)

(** {1 Control} *)

val enabled : unit -> bool
val enable : unit -> unit
(** Clears all rings, re-arms the epoch, and starts recording. *)

val disable : unit -> unit
val clear : unit -> unit

(** {1 Recording} *)

val span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], bracketing it with [B]/[E] events on the
    calling domain's track.  When tracing is disabled this is a direct
    call to [f] (one atomic load of overhead). *)

val instant : ?cat:string -> string -> unit
(** Wall-clock instant event on the calling domain's track. *)

val complete :
  ?cat:string -> ?pid:int -> tid:int -> ts_us:int -> dur_us:int -> string -> unit
(** Virtual-time complete ([X]) event; [pid] defaults to {!sim_pid}. *)

val instant_at : ?cat:string -> ?pid:int -> tid:int -> ts_us:int -> string -> unit
(** Virtual-time instant event; [pid] defaults to {!sim_pid}. *)

val track_name : ?pid:int -> tid:int -> string -> unit
(** Emit [thread_name] metadata so the track is labelled in Perfetto;
    [pid] defaults to {!sim_pid}. *)

(** {1 Draining} *)

val dropped : unit -> int
(** Events dropped to full rings since the last {!enable}/{!clear}. *)

val drain : unit -> event list
(** All recorded events, sorted by (pid, tid, ts) with per-ring recording
    order preserved among equal keys.  Does not clear the rings. *)

val write_json : out_channel -> event list -> unit
(** Render as [{"traceEvents": [...]}] Chrome trace JSON. *)

val with_trace : file:string -> (unit -> 'a) -> 'a
(** [with_trace ~file f]: enable tracing, run [f], then drain and write
    the trace to [file] (also on exception) and disable tracing. *)
