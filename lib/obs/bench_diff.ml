type run = {
  benchmarks : (string * (string * float) list) list;
  counters : (string * float) list;
}

let numeric_fields fields =
  List.filter_map
    (fun (k, v) -> match Json.to_float v with Some f -> Some (k, f) | None -> None)
    fields

let of_json json =
  match json with
  | Json.Obj _ ->
      let benchmarks =
        match Json.member "benchmarks" json with
        | Some (Json.List rows) ->
            List.filter_map
              (fun row ->
                match (row, Json.member "name" row) with
                | Json.Obj fields, Some (Json.Str name) ->
                    Some (name, numeric_fields fields)
                | _ -> None)
              rows
        | _ -> []
      in
      let counters =
        match Json.member "counters" json with
        | Some (Json.Obj fields) -> numeric_fields fields
        | _ -> []
      in
      if benchmarks = [] && counters = [] then
        Error "no \"benchmarks\" rows or \"counters\" object found"
      else Ok { benchmarks; counters }
  | _ -> Error "expected a JSON object at top level"

let load path =
  match Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok json -> (
      match of_json json with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok run -> Ok run)

type check = {
  metric : string;
  tol : float;
  eps : float;
  scope : [ `Benchmarks | `Counters ];
}

type finding = {
  subject : string;
  metric : string;
  candidate : float;
  reference : float;
  limit : float;
  ok : bool;
}

type outcome = { findings : finding list; errors : string list }

let compare_one ~subject ~metric ~tol ~eps ~candidate ~reference =
  let limit = (reference *. (1. +. tol)) +. eps in
  { subject; metric; candidate; reference; limit; ok = candidate <= limit }

let diff ?(allow_missing = false) ~checks ~candidate ~reference () =
  let findings = ref [] and errors = ref [] in
  let emit f = findings := f :: !findings in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun { metric; tol; eps; scope } ->
      match scope with
      | `Counters -> (
          match List.assoc_opt metric reference.counters with
          | None -> err "reference has no counter %S" metric
          | Some rv -> (
              match List.assoc_opt metric candidate.counters with
              | None -> err "candidate is missing counter %S" metric
              | Some cv ->
                  emit
                    (compare_one ~subject:"counters" ~metric ~tol ~eps
                       ~candidate:cv ~reference:rv)))
      | `Benchmarks ->
          List.iter
            (fun (name, ref_fields) ->
              match List.assoc_opt metric ref_fields with
              | None -> () (* this row doesn't carry the metric *)
              | Some rv -> (
                  match List.assoc_opt name candidate.benchmarks with
                  | None ->
                      if not allow_missing then
                        err "candidate is missing benchmark %S" name
                  | Some cand_fields -> (
                      match List.assoc_opt metric cand_fields with
                      | None ->
                          err "candidate benchmark %S is missing metric %S"
                            name metric
                      | Some cv ->
                          emit
                            (compare_one ~subject:name ~metric ~tol ~eps
                               ~candidate:cv ~reference:rv))))
            reference.benchmarks)
    checks;
  { findings = List.rev !findings; errors = List.rev !errors }

let passed o = o.errors = [] && List.for_all (fun f -> f.ok) o.findings

let pp_finding ppf f =
  Format.fprintf ppf "%-12s %s/%s: candidate %g vs reference %g (limit %g)"
    (if f.ok then "ok" else "REGRESSED")
    f.subject f.metric f.candidate f.reference f.limit

let pp_outcome ppf o =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) o.findings;
  List.iter (fun e -> Format.fprintf ppf "error: %s@." e) o.errors;
  let bad = List.length (List.filter (fun f -> not f.ok) o.findings) in
  Format.fprintf ppf "%d comparison(s), %d regression(s), %d error(s)@."
    (List.length o.findings) bad (List.length o.errors)
