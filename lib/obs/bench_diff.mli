(** Compare two bench JSON files ([BENCH_*.json]) metric by metric.

    A run is a list of named benchmark rows, each carrying numeric fields
    (e.g. [optimized_seconds], [dfs_nodes]), plus a top-level [counters]
    object with the final {!Metrics} counter snapshot.  A candidate run
    REGRESSES against a reference when, for a checked metric,

      [candidate > reference *. (1. +. tol) +. eps]

    — one-sided, because for every checked metric lower is better
    (seconds, explored states, probe counts).  [tol] is relative slack,
    [eps] absolute: tol 0 / eps 0 demands exact equality or improvement
    (meaningful for the deterministic single-domain counters), while a
    small [eps] keeps microsecond-scale timing rows from flaking on
    noise that a relative tolerance cannot absorb. *)

type run = {
  benchmarks : (string * (string * float) list) list;
      (** benchmark name -> numeric fields *)
  counters : (string * float) list;
}

val of_json : Json.t -> (run, string) result
val load : string -> (run, string) result

type check = {
  metric : string;
  tol : float;  (** relative slack *)
  eps : float;  (** absolute slack *)
  scope : [ `Benchmarks | `Counters ];
}

type finding = {
  subject : string;  (** benchmark name, or ["counters"] *)
  metric : string;
  candidate : float;
  reference : float;
  limit : float;
  ok : bool;
}

type outcome = { findings : finding list; errors : string list }
(** [errors] are structural problems: a reference benchmark or metric
    missing from the candidate.  Reference rows lacking the metric are
    skipped silently (not every row carries every field). *)

val diff :
  ?allow_missing:bool -> checks:check list -> candidate:run -> reference:run ->
  unit -> outcome
(** [allow_missing] (default false) downgrades a reference benchmark
    that is absent from the candidate from error to skip. *)

val passed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
