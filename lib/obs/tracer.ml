type phase = B | E | X | I | M

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  arg : (string * string) option;
}

let wall_pid = 1
let sim_pid = 2
let slot_us = 1000
let ring_capacity = 1 lsl 16

type ring = {
  tid : int;
  buf : event array;
  mutable len : int;
  mutable drops : int;
  mutable last_ts : int; (* last wall-clock B/E timestamp on this ring *)
  mutable seq : int; (* registration order, for deterministic drains *)
}

let null_event =
  { name = ""; cat = ""; ph = I; ts = 0; dur = 0; pid = 0; tid = 0; arg = None }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Ring list is only mutated under [lock]; the epoch is written under
   [lock] before [enabled_flag] is set, so the Atomic enable acts as the
   release fence recording domains acquire through. *)
let lock = Mutex.create ()
let rings : ring list ref = ref []
let next_seq = ref 0
let epoch = ref 0.0

let key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          tid = (Domain.self () :> int);
          buf = Array.make ring_capacity null_event;
          len = 0;
          drops = 0;
          last_ts = 0;
          seq = 0;
        }
      in
      Mutex.lock lock;
      r.seq <- !next_seq;
      incr next_seq;
      rings := r :: !rings;
      Mutex.unlock lock;
      r)

let my_ring () = Domain.DLS.get key

let push r ev =
  if r.len < ring_capacity then begin
    r.buf.(r.len) <- ev;
    r.len <- r.len + 1
  end
  else r.drops <- r.drops + 1

let now_us () = int_of_float ((Unix.gettimeofday () -. !epoch) *. 1e6)

(* Strictly monotone per-ring stamp for wall-clock B/E events. *)
let stamp r =
  let ts = max (now_us ()) (r.last_ts + 1) in
  r.last_ts <- ts;
  ts

let clear () =
  Mutex.lock lock;
  List.iter
    (fun r ->
      r.len <- 0;
      r.drops <- 0;
      r.last_ts <- 0)
    !rings;
  Mutex.unlock lock

let enable () =
  Mutex.lock lock;
  List.iter
    (fun r ->
      r.len <- 0;
      r.drops <- 0;
      r.last_ts <- 0)
    !rings;
  epoch := Unix.gettimeofday ();
  Mutex.unlock lock;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let span ?(cat = "") name f =
  if not (enabled ()) then f ()
  else begin
    let r = my_ring () in
    push r
      {
        name;
        cat;
        ph = B;
        ts = stamp r;
        dur = 0;
        pid = wall_pid;
        tid = r.tid;
        arg = None;
      };
    Fun.protect
      ~finally:(fun () ->
        push r
          {
            name;
            cat;
            ph = E;
            ts = stamp r;
            dur = 0;
            pid = wall_pid;
            tid = r.tid;
            arg = None;
          })
      f
  end

let instant ?(cat = "") name =
  if enabled () then begin
    let r = my_ring () in
    push r
      {
        name;
        cat;
        ph = I;
        ts = stamp r;
        dur = 0;
        pid = wall_pid;
        tid = r.tid;
        arg = None;
      }
  end

let complete ?(cat = "") ?(pid = sim_pid) ~tid ~ts_us ~dur_us name =
  if enabled () then
    push (my_ring ())
      { name; cat; ph = X; ts = ts_us; dur = dur_us; pid; tid; arg = None }

let instant_at ?(cat = "") ?(pid = sim_pid) ~tid ~ts_us name =
  if enabled () then
    push (my_ring ())
      { name; cat; ph = I; ts = ts_us; dur = 0; pid; tid; arg = None }

let track_name ?(pid = sim_pid) ~tid name =
  if enabled () then
    push (my_ring ())
      {
        name = "thread_name";
        cat = "";
        ph = M;
        ts = 0;
        dur = 0;
        pid;
        tid;
        arg = Some ("name", name);
      }

let dropped () =
  Mutex.lock lock;
  let n = List.fold_left (fun acc r -> acc + r.drops) 0 !rings in
  Mutex.unlock lock;
  n

let drain () =
  Mutex.lock lock;
  let rs = List.sort (fun a b -> compare a.seq b.seq) !rings in
  let events =
    List.concat_map (fun r -> Array.to_list (Array.sub r.buf 0 r.len)) rs
  in
  Mutex.unlock lock;
  List.stable_sort
    (fun a b ->
      let c = compare a.pid b.pid in
      if c <> 0 then c
      else
        let c = compare a.tid b.tid in
        if c <> 0 then c else compare a.ts b.ts)
    events

let string_of_phase = function
  | B -> "B"
  | E -> "E"
  | X -> "X"
  | I -> "i"
  | M -> "M"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json oc events =
  output_string oc "{\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":%d,\"tid\":%d"
        (escape ev.name)
        (escape (if ev.cat = "" then "default" else ev.cat))
        (string_of_phase ev.ph) ev.ts ev.pid ev.tid;
      if ev.ph = X then Printf.fprintf oc ",\"dur\":%d" ev.dur;
      (match ev.arg with
      | Some (k, v) ->
          Printf.fprintf oc ",\"args\":{\"%s\":\"%s\"}" (escape k) (escape v)
      | None -> ());
      output_string oc "}")
    events;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let with_trace ~file f =
  enable ();
  Fun.protect
    ~finally:(fun () ->
      disable ();
      let events = drain () in
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> write_json oc events))
    f
