(** The daemon's write-ahead journal: one JSON object per line.

    Every state mutation is validated, certified and checked first,
    then appended (and fsynced) here, and only then applied to the
    resident state and acknowledged — so after [kill -9] a restart
    replays the journal to the exact certified pre-crash state, with
    each record's model digest and certificate digest re-verified
    during replay.

    Crash semantics of the tail: a final line that is unterminated or
    unparsable is {e dropped} on load — it can only be the record of a
    mutation that was never acknowledged.  A malformed line anywhere
    {e before} the tail is corruption, and the load refuses (fail
    closed) rather than replay a prefix silently. *)

type record =
  | Init of { spec : string; digest : string; schedule : string; cert : string }
      (** The base system (full specification source) the journal's
          deltas apply to, with its model digest, the certified
          schedule for it ([""] when the base system has no
          constraints) and the certificate digest ([""] likewise) —
          recorded so replay re-{e certifies} rather than
          re-synthesizes. *)
  | Admit of {
      name : string;
      decl : string;  (** The constraint declaration, spec syntax. *)
      digest : string;  (** Model digest {e after} the admit. *)
      schedule : string;  (** Certified schedule after the admit. *)
      cert : string;  (** Digest of the persisted certificate. *)
    }
  | Retire of {
      name : string;
      digest : string;  (** Model digest after the retire. *)
      cert : string;
          (** Digest of the re-issued certificate ([""] when the
              retired state has no constraints left to certify). *)
    }

val load : string -> (record list, string) result
(** Parse an existing journal.  [Ok []] for a missing or empty file;
    [Error] on mid-file corruption. *)

type t

val open_append : string -> (t, string) result
(** Open (creating if needed) for appending. *)

val append : t -> record -> (unit, string) result
(** Serialize, write and [fsync] one record. *)

val truncate : t -> record -> (unit, string) result
(** Replace the whole journal with the single [record] (compaction
    after [snapshot]), atomically via rename, and fsync. *)

val close : t -> unit

val digest_string : string -> string
(** FNV-1a digest of a string, rendered like the model digests
    (["fnv1a:%016x"]) — used for certificate digests in records. *)
