(** The [rtsynd] request loop: stdin jsonl in, stdout jsonl out.

    Robustness properties (see [docs/DAEMON.md]):

    - every request runs under a per-request {!Rt_core.Budget} (wall
      clock + fuel; defaults from the config, overridable per request)
      and a spent budget returns a structured ["timeout"] error instead
      of wedging the loop;
    - pending input is drained into a bounded queue before each request
      is served; past [max_queue] the newest requests are shed
      immediately with an ["overloaded"] error carrying a
      [retry_after_ms] hint — responses carry the request [id], and
      their order is not guaranteed under overload;
    - queue depth drives the degradation ladder: beyond
      [degrade_heuristic] the exact game-engine rescue is dropped,
      beyond [degrade_analytic] admits are answered from the analytic
      {!Rt_core.Admission} gap tests alone (and not committed). *)

type config = {
  journal : string;
  spec : string option;  (** Base system source (fresh start only). *)
  max_queue : int;
  degrade_heuristic : int;  (** Queue depth at which exact rescue drops. *)
  degrade_analytic : int;  (** Queue depth for analytic-only answers. *)
  default_budget_ms : int;  (** 0 = unlimited. *)
  default_fuel : int;  (** 0 = unlimited. *)
  jobs : int;  (** Pool lanes for synthesis; 1 = sequential. *)
}

val default_config : config

val run : config -> int
(** Serve until stdin closes or a [shutdown] request arrives.  Returns
    the process exit code: 0 on clean shutdown, 1 when startup fails
    (corrupt journal, failed replay, infeasible base system). *)
