(** The [rtsynd] request loop: stdin jsonl in, stdout jsonl out.

    Robustness properties (see [docs/DAEMON.md]):

    - every request runs under a per-request {!Rt_core.Budget} (wall
      clock + fuel; defaults from the config, overridable per request)
      and a spent budget returns a structured ["timeout"] error instead
      of wedging the loop;
    - pending input is drained into a bounded queue before each request
      is served; past [max_queue] the newest requests are shed
      immediately with an ["overloaded"] error carrying a
      [retry_after_ms] hint — responses carry the request [id], and
      their order is not guaranteed under overload;
    - frames are split by {!Framing} under [max_frame]: an oversized
      request line is dropped and answered with a structured
      ["oversize"] error, and the stream resynchronizes at the next
      newline (bounded memory, the daemon keeps serving);
    - queue depth drives the degradation ladder: beyond
      [degrade_heuristic] the exact game-engine rescue is dropped,
      beyond [degrade_analytic] admits are answered from the analytic
      {!Rt_core.Admission} gap tests alone (and not committed).

    The concurrent socket transport ({!Transport}) reuses the pieces
    exported below — one request at a time through {!serve_line}, so
    mutations stay serialized through the journal no matter how many
    clients are connected. *)

type config = {
  journal : string;
  spec : string option;  (** Base system source (fresh start only). *)
  max_queue : int;
  max_frame : int;  (** Per-frame byte limit (both transports). *)
  degrade_heuristic : int;  (** Queue depth at which exact rescue drops. *)
  degrade_analytic : int;  (** Queue depth for analytic-only answers. *)
  default_budget_ms : int;  (** 0 = unlimited. *)
  default_fuel : int;  (** 0 = unlimited. *)
  jobs : int;  (** Pool lanes for synthesis; 1 = sequential. *)
}

val default_config : config

val run : config -> int
(** Serve until stdin closes or a [shutdown] request arrives.  Returns
    the process exit code: 0 on clean shutdown, 1 when startup fails
    (corrupt journal, failed replay, infeasible base system). *)

(** {1 Shared serving core}

    Everything below is the single-writer serving core reused by the
    socket transport; [run] is exactly this core driven from stdin. *)

val create_engine :
  config -> (Engine.t * Rt_par.Pool.t option, string) result
(** Replay/open the journal and bring up the resident engine (plus the
    synthesis pool when [jobs > 1]).  On error the pool is already shut
    down. *)

val serve_line :
  config ->
  Engine.t ->
  started:float ->
  depth:int ->
  string ->
  [ `Continue of string | `Stop of string ]
(** Serve one raw request line against the engine at the given queue
    [depth] (which drives the degradation ladder) and render the
    response line.  [`Stop] is a [shutdown] acknowledgement. *)

val overloaded_response : config -> depth:int -> string -> string
(** Render the shed answer for a request bounced off a full queue
    (increments [daemon/overloaded] and [daemon/shed]). *)

val oversize_response : config -> int -> string
(** Render the answer for a dropped oversized frame of the given byte
    length (increments [daemon/frame_oversize]). *)

val eof_mid_frame_response : string -> int -> string
(** [eof_mid_frame_response origin pending] renders the structured
    ["parse"] error for a stream that ended mid-frame. *)
