let version = 1

type op =
  | Admit of string
  | What_if of string
  | Retire of string
  | Reverify
  | Stats
  | Snapshot
  | Shutdown

type request = {
  id : string;
  op : op;
  budget_ms : int option;
  fuel : int option;
}

let str j k = Option.bind (Rt_obs.Json.member k j) Rt_obs.Json.to_string

let int_field j k =
  match Option.bind (Rt_obs.Json.member k j) Rt_obs.Json.to_float with
  | Some f when Float.is_integer f && f >= 0. -> Some (int_of_float f)
  | _ -> None

let parse_request_id line =
  match Rt_obs.Json.parse line with
  | Ok j -> Option.value ~default:"" (str j "id")
  | Error _ -> ""

let parse line =
  match Rt_obs.Json.parse line with
  | Error e -> Error ("parse", "malformed request: " ^ e)
  | Ok j -> (
      match int_field j "v" with
      | None -> Error ("version", "missing protocol version \"v\"")
      | Some v when v <> version ->
          Error
            ( "version",
              Printf.sprintf "protocol version %d unsupported (want %d)" v
                version )
      | Some _ -> (
          let id = Option.value ~default:"" (str j "id") in
          let budget_ms = int_field j "budget_ms" in
          let fuel = int_field j "fuel" in
          let with_op op = Ok { id; op; budget_ms; fuel } in
          let need_field op k =
            match str j k with
            | Some v when v <> "" -> with_op (op v)
            | _ ->
                Error
                  ("parse", Printf.sprintf "op requires a %S string field" k)
          in
          match str j "op" with
          | Some "admit" -> need_field (fun d -> Admit d) "decl"
          | Some "what-if" -> need_field (fun d -> What_if d) "decl"
          | Some "retire" -> need_field (fun n -> Retire n) "name"
          | Some "reverify" -> with_op Reverify
          | Some "stats" -> with_op Stats
          | Some "snapshot" -> with_op Snapshot
          | Some "shutdown" -> with_op Shutdown
          | Some op -> Error ("parse", Printf.sprintf "unknown op %S" op)
          | None -> Error ("parse", "missing \"op\"")))

type field = S of string | I of int | F of float | B of bool | Raw of string

let escape s =
  let b = Buffer.create (String.length s + 16) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let render_field = function
  | S s -> escape s
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6g" f
  | B b -> string_of_bool b
  | Raw r -> r

let render base fields =
  "{"
  ^ String.concat ","
      (base
      @ List.map (fun (k, v) -> escape k ^ ":" ^ render_field v) fields)
  ^ "}"

let ok ~id fields =
  render
    [ Printf.sprintf "\"v\":%d" version; "\"id\":" ^ escape id; "\"ok\":true" ]
    fields

let error ~id ~kind ?retry_after_ms message =
  let err =
    render
      [ "\"kind\":" ^ escape kind; "\"message\":" ^ escape message ]
      (match retry_after_ms with
      | Some ms -> [ ("retry_after_ms", I ms) ]
      | None -> [])
  in
  render
    [ Printf.sprintf "\"v\":%d" version; "\"id\":" ^ escape id; "\"ok\":false" ]
    [ ("error", Raw err) ]
