(** Concurrent socket transport for [rtsynd].

    A Unix-domain (and optionally loopback-TCP) listener accepts many
    clients at once; each connection speaks the same newline-delimited
    jsonl protocol as the stdin transport ({!Protocol}), framed per
    connection by {!Framing}.  Reads, parsing and response writes fan
    out across connections in one event loop, while every state
    mutation still flows one request at a time through
    {!Daemon.serve_line} — the single-writer journal/crash-safety story
    is untouched by concurrency.

    Robustness (see [docs/DAEMON.md] for the full contract):

    - {b fairness} — queued requests are served round-robin across
      connections, so one chatty tenant cannot starve the others;
    - {b backpressure} — per-connection ([conn_queue]) and global
      ([Daemon.max_queue]) pending caps; beyond either, the newest
      request is shed immediately with an ["overloaded"] +
      [retry_after_ms] answer (counted by [daemon/shed]).  A client
      that stops reading its responses is disconnected once
      [max_out_bytes] of unsent replies accumulate;
    - {b stalled/malicious clients} — frames above [Daemon.max_frame]
      are dropped with a structured ["oversize"] error; a connection
      idle past [idle_timeout_s], or holding a partial frame longer
      than [read_timeout_s], is closed ([daemon/conn_timeouts]);
    - {b graceful drain} — a [shutdown] request closes the listeners,
      lets every already-queued request finish, flushes the response
      buffers (bounded by [drain_timeout_s]), fsyncs the journal and
      exits 0.

    Per-connection responses preserve request order (the per-connection
    queue is FIFO and responses are written in serve order); shed
    answers are the only reordering, exactly as in stdin mode. *)

type config = {
  socket : string option;  (** Unix-domain listener path. *)
  tcp : int option;  (** Loopback TCP listener port. *)
  max_conns : int;  (** Accept cap; excess connections wait in the backlog. *)
  conn_queue : int;  (** Per-connection pending-request cap. *)
  idle_timeout_s : float;  (** Idle-connection close; 0 = never. *)
  read_timeout_s : float;  (** Partial-frame (stalled read) close; 0 = never. *)
  drain_timeout_s : float;  (** Shutdown drain bound. *)
  max_out_bytes : int;  (** Unread-response cap before disconnect. *)
}

val default : config
(** No listeners configured; [max_conns = 64], [conn_queue = 32],
    [idle_timeout_s = 300.], [read_timeout_s = 30.],
    [drain_timeout_s = 10.], [max_out_bytes = 8 MiB]. *)

val run : config -> Daemon.config -> int
(** Listen and serve until a [shutdown] request arrives.  At least one
    of [socket]/[tcp] must be set.  Returns the process exit code: 0 on
    clean (drained) shutdown, 1 when startup fails — corrupt journal,
    failed replay, infeasible base system, or a listener that cannot
    bind. *)
