type event = Line of string | Oversized of int

type t = {
  max_frame : int;
  buf : Buffer.t;
  (* Bytes already discarded of the current oversized frame; -1 when
     the current frame is still within bounds. *)
  mutable dropping : int;
}

let create ~max_frame =
  { max_frame = max 1 max_frame; buf = Buffer.create 256; dropping = -1 }

let max_frame t = t.max_frame

let feed t s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match String.index_from_opt s i '\n' with
      | None ->
          (if t.dropping >= 0 then t.dropping <- t.dropping + (n - i)
           else begin
             Buffer.add_substring t.buf s i (n - i);
             (* Went over the limit mid-frame: stop buffering, start
                counting — memory stays bounded by [max_frame]. *)
             if Buffer.length t.buf > t.max_frame then begin
               t.dropping <- Buffer.length t.buf;
               Buffer.clear t.buf
             end
           end);
          List.rev acc
      | Some j ->
          let acc =
            if t.dropping >= 0 then begin
              let total = t.dropping + (j - i) in
              t.dropping <- -1;
              Oversized total :: acc
            end
            else begin
              Buffer.add_substring t.buf s i (j - i);
              let len = Buffer.length t.buf in
              let line = Buffer.contents t.buf in
              Buffer.clear t.buf;
              if len > t.max_frame then Oversized len :: acc
              else Line line :: acc
            end
          in
          go (j + 1) acc
  in
  go 0 []

let pending t = if t.dropping >= 0 then t.dropping else Buffer.length t.buf

let finish t =
  let p = pending t in
  Buffer.clear t.buf;
  t.dropping <- -1;
  if p = 0 then `Clean else `Partial p
