type config = {
  socket : string option;
  tcp : int option;
  max_conns : int;
  conn_queue : int;
  idle_timeout_s : float;
  read_timeout_s : float;
  drain_timeout_s : float;
  max_out_bytes : int;
}

let default =
  {
    socket = None;
    tcp = None;
    max_conns = 64;
    conn_queue = 32;
    idle_timeout_s = 300.;
    read_timeout_s = 30.;
    drain_timeout_s = 10.;
    max_out_bytes = 8 * 1024 * 1024;
  }

let conn_opened_ctr = Rt_obs.Metrics.counter "daemon/conn_opened"
let conn_closed_ctr = Rt_obs.Metrics.counter "daemon/conn_closed"
let conn_active_gauge = Rt_obs.Metrics.gauge "daemon/conn_active"
let conn_timeout_ctr = Rt_obs.Metrics.counter "daemon/conn_timeouts"
let conn_request_us = Rt_obs.Metrics.histogram "daemon/conn_request_us"
let depth_gauge = Rt_obs.Metrics.gauge "daemon/queue_depth"

(* ------------------------------------------------------------------ *)
(* Connections.                                                        *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  framer : Framing.t;
  reqs : (string * float) Queue.t;  (* raw line, enqueue time *)
  outq : string Queue.t;  (* rendered responses awaiting write *)
  mutable sent : int;  (* bytes of [Queue.peek outq] already written *)
  mutable out_bytes : int;
  mutable last_read : float;
  mutable partial_since : float;  (* -1. when on a frame boundary *)
  mutable eof : bool;  (* half-closed: drain reqs, flush, then close *)
  mutable dead : bool;
}

let make_conn ~max_frame fd now =
  {
    fd;
    framer = Framing.create ~max_frame;
    reqs = Queue.create ();
    outq = Queue.create ();
    sent = 0;
    out_bytes = 0;
    last_read = now;
    partial_since = -1.;
    eof = false;
    dead = false;
  }

let out_add c s =
  let line = s ^ "\n" in
  Queue.add line c.outq;
  c.out_bytes <- c.out_bytes + String.length line

(* Write as much as the kernel will take right now.  [`Closed] means
   the peer is gone (EPIPE/reset) and the connection must be reaped. *)
let flush_out c =
  try
    let blocked = ref false in
    while (not !blocked) && not (Queue.is_empty c.outq) do
      let s = Queue.peek c.outq in
      let len = String.length s - c.sent in
      let n = Unix.write_substring c.fd s c.sent len in
      c.out_bytes <- c.out_bytes - n;
      if n = len then begin
        ignore (Queue.pop c.outq);
        c.sent <- 0
      end
      else begin
        c.sent <- c.sent + n;
        blocked := true
      end
    done;
    `Ok
  with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> `Ok
  | Unix.Unix_error _ -> `Closed

(* ------------------------------------------------------------------ *)
(* Listeners.                                                          *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (* A stale socket file from a crashed run would fail the bind; only a
     socket is ever silently replaced. *)
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 128;
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))

let listen_tcp port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  try
    Unix.set_nonblock fd;
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 128;
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "cannot listen on 127.0.0.1:%d: %s" port
         (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* The event loop.                                                     *)
(* ------------------------------------------------------------------ *)

let run tcfg dcfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let listeners_r =
    match (tcfg.socket, tcfg.tcp) with
    | None, None -> Error "socket transport needs a --socket path or --tcp port"
    | s, t -> (
        let acc = Ok [] in
        let add acc mk =
          match acc with
          | Error _ -> acc
          | Ok fds -> ( match mk () with Ok fd -> Ok (fd :: fds) | Error e -> Error e)
        in
        let acc =
          match s with None -> acc | Some p -> add acc (fun () -> listen_unix p)
        in
        match t with None -> acc | Some p -> add acc (fun () -> listen_tcp p))
  in
  match listeners_r with
  | Error e ->
      prerr_endline ("rtsynd: " ^ e);
      1
  | Ok listeners -> (
      let cleanup_listeners () =
        List.iter (fun fd -> try Unix.close fd with _ -> ()) listeners;
        match tcfg.socket with
        | Some p -> ( try Unix.unlink p with _ -> ())
        | None -> ()
      in
      match Daemon.create_engine dcfg with
      | Error e ->
          prerr_endline ("rtsynd: " ^ e);
          cleanup_listeners ();
          1
      | Ok (engine, pool) ->
          let started = Unix.gettimeofday () in
          let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
          let rr : conn Queue.t = Queue.create () in
          let total_pending = ref 0 in
          let draining = ref false in
          let drain_deadline = ref infinity in
          let listening = ref true in
          let chunk = Bytes.create 65536 in
          let all_conns () = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
          let close_conn ?(timeout = false) c =
            if not c.dead then begin
              c.dead <- true;
              (* Responses for requests that can never be delivered are
                 dropped with the connection. *)
              total_pending := !total_pending - Queue.length c.reqs;
              Queue.clear c.reqs;
              Hashtbl.remove conns c.fd;
              (try Unix.close c.fd with _ -> ());
              Rt_obs.Metrics.incr conn_closed_ctr;
              if timeout then Rt_obs.Metrics.incr conn_timeout_ctr;
              Rt_obs.Metrics.set conn_active_gauge (Hashtbl.length conns)
            end
          in
          let accept_on lfd now =
            let continue = ref true in
            while !continue do
              match Unix.accept ~cloexec:true lfd with
              | cfd, _ ->
                  Unix.set_nonblock cfd;
                  (try Unix.setsockopt cfd Unix.TCP_NODELAY true
                   with Unix.Unix_error _ -> ());
                  let c = make_conn ~max_frame:dcfg.Daemon.max_frame cfd now in
                  Hashtbl.replace conns cfd c;
                  Queue.add c rr;
                  Rt_obs.Metrics.incr conn_opened_ctr;
                  Rt_obs.Metrics.set conn_active_gauge (Hashtbl.length conns)
              | exception
                  Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                  continue := false
              | exception Unix.Unix_error (_, _, _) -> continue := false
            done
          in
          let enqueue c now ev =
            match ev with
            | Framing.Oversized dropped ->
                out_add c (Daemon.oversize_response dcfg dropped)
            | Framing.Line line ->
                if String.trim line = "" then ()
                else if
                  Queue.length c.reqs >= tcfg.conn_queue
                  || !total_pending >= dcfg.Daemon.max_queue
                then
                  (* Backpressure: bounce the newest request now, with a
                     retry hint, rather than queueing without bound. *)
                  out_add c
                    (Daemon.overloaded_response dcfg ~depth:!total_pending line)
                else begin
                  Queue.add (line, now) c.reqs;
                  incr total_pending
                end
          in
          let read_conn c now =
            let continue = ref true in
            while !continue && not c.eof do
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  c.eof <- true;
                  c.last_read <- now;
                  (match Framing.finish c.framer with
                  | `Clean -> ()
                  | `Partial n ->
                      out_add c (Daemon.eof_mid_frame_response "connection" n))
              | n ->
                  c.last_read <- now;
                  List.iter (enqueue c now)
                    (Framing.feed c.framer (Bytes.sub_string chunk 0 n));
                  c.partial_since <-
                    (if Framing.pending c.framer = 0 then -1.
                     else if c.partial_since < 0. then now
                     else c.partial_since);
                  if n < Bytes.length chunk then continue := false
              | exception
                  Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
                  continue := false
              | exception Unix.Unix_error (_, _, _) ->
                  (* Hard error: the peer is gone; queued requests were
                     never acknowledged and are dropped with it. *)
                  close_conn c;
                  continue := false
            done
          in
          (* Round-robin fairness: rotate the ring, serve the first
             connection holding a queued request. *)
          let pick_next () =
            let rec go k =
              if k = 0 then None
              else
                match Queue.take_opt rr with
                | None -> None
                | Some c when c.dead -> go (k - 1)
                | Some c ->
                    Queue.add c rr;
                    if Queue.is_empty c.reqs then go (k - 1) else Some c
            in
            go (Queue.length rr)
          in
          let serve_one () =
            match pick_next () with
            | None -> false
            | Some c ->
                let line, enq_t = Queue.pop c.reqs in
                decr total_pending;
                let depth = !total_pending in
                Rt_obs.Metrics.set depth_gauge depth;
                (match Daemon.serve_line dcfg engine ~started ~depth line with
                | `Continue r -> out_add c r
                | `Stop r ->
                    out_add c r;
                    draining := true;
                    drain_deadline :=
                      Unix.gettimeofday () +. tcfg.drain_timeout_s;
                    if !listening then begin
                      listening := false;
                      List.iter
                        (fun fd -> try Unix.close fd with _ -> ())
                        listeners
                    end);
                Rt_obs.Metrics.observe conn_request_us
                  (int_of_float ((Unix.gettimeofday () -. enq_t) *. 1e6));
                (match flush_out c with
                | `Ok -> ()
                | `Closed -> close_conn c);
                true
          in
          let check_timeouts now =
            List.iter
              (fun c ->
                if not c.dead then begin
                  if
                    tcfg.read_timeout_s > 0. && c.partial_since >= 0.
                    && now -. c.partial_since > tcfg.read_timeout_s
                  then begin
                    out_add c
                      (Protocol.error ~id:"" ~kind:"timeout"
                         (Printf.sprintf
                            "read timed out mid-frame after %.0fs"
                            tcfg.read_timeout_s));
                    ignore (flush_out c);
                    close_conn ~timeout:true c
                  end
                  else if
                    tcfg.idle_timeout_s > 0.
                    && Queue.is_empty c.reqs
                    && Queue.is_empty c.outq
                    && (not c.eof)
                    && now -. c.last_read > tcfg.idle_timeout_s
                  then close_conn ~timeout:true c
                  else if c.out_bytes > tcfg.max_out_bytes then
                    (* Slow consumer: it is not reading its answers; cut
                       it loose rather than buffer without bound. *)
                    close_conn ~timeout:true c
                end)
              (all_conns ())
          in
          let last_timeout_check = ref 0. in
          let running = ref true in
          while !running do
            let now = Unix.gettimeofday () in
            let flushed =
              Hashtbl.fold (fun _ c acc -> acc && Queue.is_empty c.outq) conns
                true
            in
            if !draining && ((!total_pending = 0 && flushed) || now > !drain_deadline)
            then running := false
            else begin
              let reads =
                (if !listening && Hashtbl.length conns < tcfg.max_conns then
                   listeners
                 else [])
                @ (if !draining then []
                   else
                     Hashtbl.fold
                       (fun fd c acc ->
                         if (not c.eof) && not c.dead then fd :: acc else acc)
                       conns [])
              in
              let writes =
                Hashtbl.fold
                  (fun fd c acc ->
                    if (not c.dead) && not (Queue.is_empty c.outq) then
                      fd :: acc
                    else acc)
                  conns []
              in
              let timeout =
                if !total_pending > 0 then 0.0
                else if !draining then 0.05
                else 0.25
              in
              let rd, wr =
                match Unix.select reads writes [] timeout with
                | rd, wr, _ -> (rd, wr)
                | exception Unix.Unix_error (EINTR, _, _) -> ([], [])
                | exception Unix.Unix_error (EBADF, _, _) -> ([], [])
              in
              let now = Unix.gettimeofday () in
              List.iter
                (fun fd ->
                  if List.memq fd listeners then accept_on fd now
                  else
                    match Hashtbl.find_opt conns fd with
                    | Some c -> read_conn c now
                    | None -> ())
                rd;
              ignore (serve_one () : bool);
              List.iter
                (fun fd ->
                  match Hashtbl.find_opt conns fd with
                  | Some c -> (
                      match flush_out c with
                      | `Ok -> ()
                      | `Closed -> close_conn c)
                  | None -> ())
                wr;
              (* A half-closed connection is done once its queue is
                 served and its answers are on the wire. *)
              List.iter
                (fun c ->
                  if
                    (not c.dead) && c.eof
                    && Queue.is_empty c.reqs
                    && Queue.is_empty c.outq
                  then close_conn c)
                (all_conns ());
              if now -. !last_timeout_check > 1.0 then begin
                last_timeout_check := now;
                check_timeouts now
              end
            end
          done;
          List.iter (fun c -> close_conn c) (all_conns ());
          if !listening then cleanup_listeners ()
          else (
            match tcfg.socket with
            | Some p -> ( try Unix.unlink p with _ -> ())
            | None -> ());
          Engine.close engine;
          Option.iter Rt_par.Pool.shutdown pool;
          0)
