type record =
  | Init of { spec : string; digest : string; schedule : string; cert : string }
  | Admit of {
      name : string;
      decl : string;
      digest : string;
      schedule : string;
      cert : string;
    }
  | Retire of { name : string; digest : string; cert : string }

(* FNV-1a, 64-bit — same construction as the model digest, over an
   arbitrary payload. *)
let digest_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "fnv1a:%016Lx" !h

let json_escape s =
  let b = Buffer.create (String.length s + 16) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_escape k ^ ":" ^ json_escape v) fields)
  ^ "}"

let serialize = function
  | Init { spec; digest; schedule; cert } ->
      obj
        [
          ("op", "init");
          ("spec", spec);
          ("digest", digest);
          ("schedule", schedule);
          ("cert", cert);
        ]
  | Admit { name; decl; digest; schedule; cert } ->
      obj
        [
          ("op", "admit");
          ("name", name);
          ("decl", decl);
          ("digest", digest);
          ("schedule", schedule);
          ("cert", cert);
        ]
  | Retire { name; digest; cert } ->
      obj [ ("op", "retire"); ("name", name); ("digest", digest); ("cert", cert) ]

let field j k =
  Option.bind (Rt_obs.Json.member k j) Rt_obs.Json.to_string

let parse_line line =
  match Rt_obs.Json.parse line with
  | Error e -> Error e
  | Ok j -> (
      let req k = match field j k with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let ( let* ) = Result.bind in
      match field j "op" with
      | Some "init" ->
          let* spec = req "spec" in
          let* digest = req "digest" in
          let* schedule = req "schedule" in
          let* cert = req "cert" in
          Ok (Init { spec; digest; schedule; cert })
      | Some "admit" ->
          let* name = req "name" in
          let* decl = req "decl" in
          let* digest = req "digest" in
          let* schedule = req "schedule" in
          let* cert = req "cert" in
          Ok (Admit { name; decl; digest; schedule; cert })
      | Some "retire" ->
          let* name = req "name" in
          let* digest = req "digest" in
          let* cert = req "cert" in
          Ok (Retire { name; digest; cert })
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "missing \"op\"")

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error e
    | contents ->
        (* A line is acknowledged only if its trailing newline made it
           to disk; anything after the last newline is a torn tail. *)
        let upto =
          match String.rindex_opt contents '\n' with
          | None -> 0
          | Some i -> i + 1
        in
        let lines =
          String.split_on_char '\n' (String.sub contents 0 upto)
          |> List.filter (fun l -> String.trim l <> "")
        in
        let n = List.length lines in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match parse_line line with
              | Ok r -> go (i + 1) (r :: acc) rest
              | Error e when i = n ->
                  (* Torn final record (crash mid-write, never
                     acknowledged): drop it.  [e] intentionally unused
                     beyond this point. *)
                  ignore e;
                  Ok (List.rev acc)
              | Error e ->
                  Error
                    (Printf.sprintf
                       "journal corrupt at record %d (of %d): %s — refusing \
                        to replay a damaged prefix"
                       i n e))
        in
        go 1 [] lines

type t = { path : string; mutable fd : Unix.file_descr }

let open_append path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (path ^ ": " ^ Unix.error_message e)
  | fd -> Ok { path; fd }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let append t record =
  match
    write_all t.fd (serialize record ^ "\n");
    Unix.fsync t.fd
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (t.path ^ ": " ^ Unix.error_message e)

let truncate t record =
  let tmp = t.path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    write_all fd (serialize record ^ "\n");
    Unix.fsync fd;
    Unix.close fd;
    Unix.rename tmp t.path;
    Unix.close t.fd;
    t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (t.path ^ ": " ^ Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
