open Rt_core

type t = { key : string; order : int array }

(* ------------------------------------------------------------------ *)
(* Colour refinement.                                                  *)
(*                                                                     *)
(* Colours are dense ranks of per-element signature strings, never     *)
(* hashes: ranks are computed by sorting the signatures, so two        *)
(* renamed copies of a model assign identical colours to corresponding *)
(* elements by construction.                                           *)
(* ------------------------------------------------------------------ *)

(* Polymorphic on the signature type: initial colours rank strings,
   refinement rounds rank (colour, neighbour-multiset) tuples directly —
   structural compare on small int tuples is far cheaper than
   formatting each signature into a string first. *)
let rank_colors sigs =
  let distinct = List.sort_uniq compare (Array.to_list sigs) in
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.replace tbl s i) distinct;
  (Array.map (Hashtbl.find tbl) sigs, List.length distinct)

(* Adjacency lists, built once per canonicalisation.  The refinement
   loop runs O(classes * class-size) rounds, so probing the dense
   has_edge matrix inside every round turns sparse graphs (the daemon's
   usual population) quadratic for nothing. *)
type adj = { outs : int list array; ins : int list array }

let adjacency g =
  let n = Comm_graph.n_elements g in
  let outs = Array.make n [] and ins = Array.make n [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Comm_graph.has_edge g u v then begin
        outs.(u) <- v :: outs.(u);
        ins.(v) <- u :: ins.(v)
      end
    done
  done;
  { outs; ins }

(* Constraint-usage seed: per element, the multiset of
   (kind, period, deadline, offset, task-graph in/out degree) over
   every task-graph node mapping to it — invariant under any renaming
   or constraint reordering. *)
let usage_signatures (m : Model.t) =
  let n = Comm_graph.n_elements m.Model.comm in
  let acc = Array.make n [] in
  List.iter
    (fun (c : Timing.t) ->
      let g = c.Timing.graph in
      let size = Task_graph.size g in
      let indeg = Array.make size 0 and outdeg = Array.make size 0 in
      List.iter
        (fun (u, v) ->
          outdeg.(u) <- outdeg.(u) + 1;
          indeg.(v) <- indeg.(v) + 1)
        (Task_graph.edges g);
      let kind = match c.Timing.kind with
        | Timing.Periodic -> 'p'
        | Timing.Asynchronous -> 'a'
      in
      for v = 0 to size - 1 do
        let e = Task_graph.element_of_node g v in
        acc.(e) <-
          Printf.sprintf "%c%d,%d,%d:%d>%d" kind c.Timing.period
            c.Timing.deadline c.Timing.offset indeg.(v) outdeg.(v)
          :: acc.(e)
      done)
    m.Model.constraints;
  Array.map (fun l -> String.concat ";" (List.sort String.compare l)) acc

let initial_colors (m : Model.t) =
  let g = m.Model.comm in
  let usage = usage_signatures m in
  let sigs =
    Array.init (Comm_graph.n_elements g) (fun e ->
        Printf.sprintf "w%d%c[%s]" (Comm_graph.weight g e)
          (if Comm_graph.pipelinable g e then 'p' else 'a')
          usage.(e))
  in
  fst (rank_colors sigs)

(* One refinement round: recolour by (own colour, sorted multiset of
   out-neighbour colours, sorted multiset of in-neighbour colours). *)
let refine_step adj colors =
  let n = Array.length colors in
  let sigs =
    Array.init n (fun e ->
        ( colors.(e),
          List.sort compare (List.map (fun v -> colors.(v)) adj.outs.(e)),
          List.sort compare (List.map (fun v -> colors.(v)) adj.ins.(e)) ))
  in
  rank_colors sigs

let refine adj colors =
  let n = Array.length colors in
  let rec go colors k =
    if k >= n then colors
    else
      let colors', k' = refine_step adj colors in
      if k' = k then colors' else go colors' k'
  in
  let k0 = Array.length (Array.of_list (List.sort_uniq compare (Array.to_list colors))) in
  go colors k0

(* ------------------------------------------------------------------ *)
(* Rendering under a fixed element order.                              *)
(* ------------------------------------------------------------------ *)

(* [inv.(eid)] = canonical index.  The rendering is a complete
   structural description relative to the canonical order — equal
   renderings let one read off an isomorphism directly, which is what
   makes key collisions between distinct models impossible. *)
let render (m : Model.t) inv =
  let g = m.Model.comm in
  let n = Comm_graph.n_elements g in
  let order = Array.make n 0 in
  Array.iteri (fun e i -> order.(i) <- e) inv;
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "n%d;" n);
  for i = 0 to n - 1 do
    let e = order.(i) in
    Buffer.add_string b
      (Printf.sprintf "w%d%c;" (Comm_graph.weight g e)
         (if Comm_graph.pipelinable g e then 'p' else 'a'))
  done;
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if Comm_graph.has_edge g u v then edges := (inv.(u), inv.(v)) :: !edges
    done
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string b (Printf.sprintf "e%d>%d;" u v))
    (List.sort compare !edges);
  let render_constraint (c : Timing.t) =
    let tg = c.Timing.graph in
    let size = Task_graph.size tg in
    (* Node order inside one task graph: by canonical element index.
       Ties (several nodes on one element) fall back to node id — the
       spec language cannot express such graphs, so daemon-resident
       models never hit the tie. *)
    let nodes = List.init size Fun.id in
    let keyed =
      List.sort compare
        (List.map (fun v -> ((inv.(Task_graph.element_of_node tg v), v), v)) nodes)
    in
    let pos = Array.make size 0 in
    List.iteri (fun i (_, v) -> pos.(v) <- i) keyed;
    let cb = Buffer.create 64 in
    Buffer.add_string cb
      (Printf.sprintf "%c%d,%d,%d["
         (match c.Timing.kind with
         | Timing.Periodic -> 'P'
         | Timing.Asynchronous -> 'A')
         c.Timing.period c.Timing.deadline c.Timing.offset);
    List.iter
      (fun (_, v) ->
        Buffer.add_string cb
          (Printf.sprintf "%d," inv.(Task_graph.element_of_node tg v)))
      keyed;
    Buffer.add_char cb '|';
    List.iter
      (fun (u, v) -> Buffer.add_string cb (Printf.sprintf "%d>%d," u v))
      (List.sort compare
         (List.map (fun (u, v) -> (pos.(u), pos.(v))) (Task_graph.edges tg)));
    Buffer.add_char cb ']';
    Buffer.contents cb
  in
  (* Constraint order: lexicographic on the (name-free) rendering, so
     declaration order and names drop out of the key. *)
  List.iter (Buffer.add_string b)
    (List.sort String.compare (List.map render_constraint m.Model.constraints));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Individualisation-refinement.                                       *)
(* ------------------------------------------------------------------ *)

exception Over_cap


let ir_cap = 512

let discrete colors =
  let n = Array.length colors in
  List.length (List.sort_uniq compare (Array.to_list colors)) = n

let inv_of_colors colors =
  (* Discrete colours are a permutation of 0..n-1 already (dense
     ranks), so the colour IS the canonical index. *)
  Array.copy colors

let smallest_class colors =
  let n = Array.length colors in
  let count = Hashtbl.create 8 in
  Array.iter
    (fun c -> Hashtbl.replace count c (1 + Option.value ~default:0 (Hashtbl.find_opt count c)))
    colors;
  let best = ref None in
  Hashtbl.iter
    (fun c k ->
      if k > 1 then
        match !best with
        | Some (c', _) when c' <= c -> ()
        | _ -> best := Some (c, k))
    count;
  match !best with
  | None -> None
  | Some (c, _) ->
      Some (c, List.filter (fun e -> colors.(e) = c) (List.init n Fun.id))

(* Label-independent signature of a stable colouring: the sorted
   multiset of per-vertex (colour, out-colour multiset, in-colour
   multiset) strings.  Individualising two automorphic vertices yields
   colourings with equal signatures, so exploring one representative
   per signature prunes symmetric classes from factorial to linear
   without losing the minimal rendering.  (Two non-automorphic choices
   with colliding signatures would merely make the chosen key depend on
   the representative — a lost cache hit on a WL-indistinguishable
   gadget, never a collision: the rendering stays complete.) *)
let partition_signature adj colors =
  let n = Array.length colors in
  let per =
    Array.init n (fun u ->
        ( colors.(u),
          List.sort compare (List.map (fun v -> colors.(v)) adj.outs.(u)),
          List.sort compare (List.map (fun v -> colors.(v)) adj.ins.(u)) ))
  in
  List.sort compare (Array.to_list per)

let of_model (m : Model.t) =
  let g = m.Model.comm in
  let adj = adjacency g in
  let n = Comm_graph.n_elements g in
  let steps = ref 0 in
  let best = ref None in
  let consider inv =
    let r = render m inv in
    match !best with
    | Some (r', _) when String.compare r' r <= 0 -> ()
    | _ -> best := Some (r, inv)
  in
  let rec search colors =
    incr steps;
    if !steps > ir_cap then raise Over_cap;
    let colors = refine adj colors in
    if discrete colors then consider (inv_of_colors colors)
    else
      match smallest_class colors with
      | None -> consider (inv_of_colors colors) (* unreachable *)
      | Some (_, members) ->
          let seen = Hashtbl.create 8 in
          List.iter
            (fun e ->
              (* Individualise [e]: give it a colour just below its
                 class (fresh by density of ranks after re-ranking). *)
              let sigs =
                Array.mapi (fun i c -> (c, if i = e then 0 else 1)) colors
              in
              let ind = refine adj (fst (rank_colors sigs)) in
              let sig_ = partition_signature adj ind in
              if not (Hashtbl.mem seen sig_) then begin
                Hashtbl.add seen sig_ ();
                search ind
              end)
            members
  in
  let key, inv =
    match search (initial_colors m) with
    | () -> Option.get !best
    | exception Over_cap ->
        (* Deterministic fallback: order by (refined colour, element
           name).  Still collision-free (the rendering is complete);
           only renaming-invariance is lost, costing cache hits on this
           pathologically symmetric model, never correctness. *)
        let colors = refine adj (initial_colors m) in
        let keyed =
          List.sort compare
            (List.init n (fun e ->
                 ((colors.(e), (Comm_graph.element g e).Rt_base.Element.name), e)))
        in
        let inv = Array.make n 0 in
        List.iteri (fun i (_, e) -> inv.(e) <- i) keyed;
        ("!fb;" ^ render m inv, inv)
  in
  let order = Array.make n 0 in
  Array.iteri (fun e i -> order.(i) <- e) inv;
  { key; order }

let canonical_slots t sched =
  let n = Array.length t.order in
  let inv = Array.make n 0 in
  Array.iteri (fun i e -> inv.(e) <- i) t.order;
  Array.map
    (function Rt_base.Schedule.Idle -> -1 | Rt_base.Schedule.Run e -> inv.(e))
    (Rt_base.Schedule.slots sched)

let schedule_of_slots t slots =
  let n = Array.length t.order in
  if Array.length slots = 0 then None
  else if Array.exists (fun i -> i >= n || i < -1) slots then None
  else
    Some
      (Rt_base.Schedule.of_array
         (Array.map
            (fun i ->
              if i < 0 then Rt_base.Schedule.Idle
              else Rt_base.Schedule.Run t.order.(i))
            slots))
