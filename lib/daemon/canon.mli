(** Canonical forms of graph-based models — the memo key of the
    admission daemon.

    Two models that differ only in element names, constraint names, or
    the order constraints were declared in describe the same scheduling
    problem, and a schedule for one maps to a schedule for the other by
    renaming elements.  Canonisation computes a labelling of the
    elements that depends only on the structure (Gonczarowski's
    canonisation of timely constraint sets is the motif): the canonical
    {e key} is the model rendered in that labelling, so

    - renaming elements or constraints, or reordering constraints,
      leaves the key unchanged, and
    - equal keys imply isomorphic models — the key {e is} a complete
      structural description, so distinct models can never collide.

    The labelling is found by Weisfeiler-Leman colour refinement over
    the communication graph seeded with element weights, pipelinability
    and constraint-usage signatures, followed by
    individualisation-refinement on surviving symmetric classes,
    choosing the lexicographically least rendering.  The backtracking
    is capped; past the cap a deterministic name-based fallback keeps
    the key well-defined (it merely stops being renaming-invariant for
    that pathological model — a lost cache hit, never a wrong one,
    because every memo hit is re-certified fail-closed before use). *)

type t = {
  key : string;
      (** The canonical rendering.  Equal keys iff isomorphic models
          (up to the individualisation cap). *)
  order : int array;
      (** [order.(i)] is the element id holding canonical index [i];
          maps a schedule stored in canonical indices back onto this
          model's elements. *)
}

val of_model : Rt_core.Model.t -> t

val canonical_slots : t -> Rt_base.Schedule.t -> int array
(** One schedule cycle in canonical element indices ([-1] = idle) —
    the form a memo entry stores. *)

val schedule_of_slots : t -> int array -> Rt_base.Schedule.t option
(** Map canonical slots back onto this model's elements; [None] if an
    index is out of range (a memo entry from an incompatible key —
    callers re-verify anyway). *)
