(** The daemon's resident state machine.

    Holds the current model, its certified schedule, the per-model
    resident game tables and the canonical-form memo, and performs the
    validate → certify → check → journal → mutate sequence for every
    state change.  The invariant the module maintains is {e fail
    closed}: the resident (model, schedule) pair has always passed the
    trusted {!Rt_check.Checker}, every mutation hits the write-ahead
    {!Journal} (fsynced) before it is applied or acknowledged, and any
    certification or checker failure rolls back to the previous
    certified state. *)

open Rt_core

type t

type level =
  | Full  (** Heuristic synthesis plus the exact game-engine rescue. *)
  | Heuristic  (** Heuristic synthesis only (first degradation step). *)
  | Analytic
      (** {!Admission.admit} gap tests only — answers are not
          committed (second degradation step). *)

type outcome =
  | Admitted of { path : string; verdict : string }
      (** Committed.  [path] says which answer path produced the
          schedule: ["warm"] (current schedule still verifies),
          ["memo"] (canonical-form cache hit) or ["synth"]. *)
  | Analytic_only of { verdict : string }
      (** Analytic answer under degradation; state not changed. *)
  | Rejected of string list  (** Infeasible, invalid or unknown. *)
  | Timed_out of string  (** The per-request budget ran out. *)
  | Check_failed of string list
      (** The trusted checker rejected the untrusted engines' result;
          the mutation was rolled back. *)
  | Journal_failed of string
      (** The journal append failed; the mutation was rolled back. *)

val create :
  ?pool:Rt_par.Pool.t ->
  ?startup_budget:Budget.t ->
  journal:string ->
  ?spec:string ->
  unit ->
  (t, string) result
(** Open or replay the journal at [journal].  An empty or missing
    journal is a fresh start and requires [spec] (the base system
    source); a non-empty journal is replayed record by record, with
    every model digest and certificate digest re-verified and every
    intermediate state re-checked by the trusted core — any mismatch
    refuses to start.  Replay also reseeds the canonical-form memo. *)

val admit : ?budget:Budget.t -> level:level -> t -> string -> outcome
(** [admit t decl] admits one constraint declaration (specification
    syntax, e.g.
    ["constraint q asynchronous separation 50 deadline 15 { f_x; }"]). *)

val what_if : ?budget:Budget.t -> level:level -> t -> string -> outcome
(** Same answer path as {!admit}, but never journals or mutates. *)

val retire : t -> string -> outcome
(** [retire t name] removes a resident constraint.  The current
    schedule remains valid (the constraint set shrank) and is
    re-certified against the reduced model. *)

val reverify : t -> (string, string list) result
(** Re-certify and re-check the resident state from scratch; [Ok
    digest] of the resident model on success. *)

val snapshot : t -> (string * string, string) result
(** Compact the journal to a single init record of the current state;
    returns [(spec source, model digest)]. *)

val model : t -> Model.t
val schedule : t -> Rt_base.Schedule.t option
val cert_digest : t -> string
val memo_size : t -> int
val resident_tables : t -> int
val close : t -> unit

val admission : Model.t -> string * int
(** The analytic answer path shared with [rtsyn admit]: renders
    {!Admission.admit} as [(verdict line, exit code)] with the unified
    contract 0 = guaranteed, 1 = impossible, 5 = inconclusive. *)
