open Rt_core

type config = {
  journal : string;
  spec : string option;
  max_queue : int;
  degrade_heuristic : int;
  degrade_analytic : int;
  default_budget_ms : int;
  default_fuel : int;
  jobs : int;
}

let default_config =
  {
    journal = "rtsynd.journal";
    spec = None;
    max_queue = 64;
    degrade_heuristic = 8;
    degrade_analytic = 24;
    default_budget_ms = 2000;
    default_fuel = 2_000_000;
    jobs = 1;
  }

let requests_ctr = Rt_obs.Metrics.counter "daemon/requests"
let overloaded_ctr = Rt_obs.Metrics.counter "daemon/overloaded"
let degraded_ctr = Rt_obs.Metrics.counter "daemon/degraded"
let shed_depth_gauge = Rt_obs.Metrics.gauge "daemon/queue_depth"
let request_us = Rt_obs.Metrics.histogram "daemon/request_us"
let admit_us = Rt_obs.Metrics.histogram "daemon/admit_us"

(* ------------------------------------------------------------------ *)
(* Input: drain everything already readable on stdin into whole lines
   without blocking, so queue depth is observable before each serve.   *)
(* ------------------------------------------------------------------ *)

type input = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let make_input fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536; eof = false }

let split_lines input =
  let s = Buffer.contents input.buf in
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | None ->
        Buffer.clear input.buf;
        Buffer.add_substring input.buf s start (String.length s - start);
        List.rev acc
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
  in
  go 0 []

(* Read whatever is available right now (non-blocking). *)
let drain input =
  let rec go () =
    if input.eof then ()
    else
      match Unix.select [ input.fd ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read input.fd input.chunk 0 (Bytes.length input.chunk) with
          | 0 -> input.eof <- true
          | n ->
              Buffer.add_subbytes input.buf input.chunk 0 n;
              go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              ())
  in
  go ();
  split_lines input

(* Block until at least one more line (or EOF). *)
let wait_line input =
  let rec go () =
    if input.eof then []
    else
      match Unix.select [ input.fd ] [] [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | _ -> (
          match Unix.read input.fd input.chunk 0 (Bytes.length input.chunk) with
          | 0 ->
              input.eof <- true;
              split_lines input
          | n -> (
              Buffer.add_subbytes input.buf input.chunk 0 n;
              match split_lines input with [] -> go () | lines -> lines)
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Serving.                                                            *)
(* ------------------------------------------------------------------ *)

let respond line =
  print_string line;
  print_newline ();
  flush stdout

let mk_budget cfg (req : Protocol.request) =
  let ms = Option.value ~default:cfg.default_budget_ms req.budget_ms in
  let fuel = Option.value ~default:cfg.default_fuel req.fuel in
  if ms <= 0 && fuel <= 0 then None
  else
    Some
      (Budget.create
         ?wall_s:(if ms > 0 then Some (float_of_int ms /. 1000.) else None)
         ?fuel:(if fuel > 0 then Some fuel else None)
         ())

let level_for cfg depth =
  if depth >= cfg.degrade_analytic then Engine.Analytic
  else if depth >= cfg.degrade_heuristic then Engine.Heuristic
  else Engine.Full

let level_name = function
  | Engine.Full -> "full"
  | Engine.Heuristic -> "heuristic"
  | Engine.Analytic -> "analytic"

let outcome_response ~id ~level (o : Engine.outcome) =
  match o with
  | Engine.Admitted { path; verdict } ->
      Protocol.ok ~id
        [
          ("path", Protocol.S path);
          ("verdict", Protocol.S verdict);
          ("level", Protocol.S (level_name level));
        ]
  | Engine.Analytic_only { verdict } ->
      Protocol.ok ~id
        [
          ("path", Protocol.S "analytic");
          ("verdict", Protocol.S verdict);
          ("level", Protocol.S (level_name level));
          ("committed", Protocol.B false);
        ]
  | Engine.Rejected diags ->
      Protocol.error ~id ~kind:"rejected" (String.concat "; " diags)
  | Engine.Timed_out reason -> Protocol.error ~id ~kind:"timeout" reason
  | Engine.Check_failed diags ->
      Protocol.error ~id ~kind:"check-failed"
        ("trusted checker rejected the result (rolled back): "
        ^ String.concat "; " diags)
  | Engine.Journal_failed e ->
      Protocol.error ~id ~kind:"internal" ("journal append failed: " ^ e)

let stats_response engine ~id ~depth ~started =
  let c name = Rt_obs.Metrics.value (Rt_obs.Metrics.counter name) in
  let h name =
    let hist = Rt_obs.Metrics.histogram name in
    let q p = Option.value ~default:0 (Rt_obs.Metrics.quantile hist p) in
    Printf.sprintf "{\"count\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
      (Rt_obs.Metrics.h_count hist) (q 0.5) (q 0.95) (q 0.99)
  in
  let m = Engine.model engine in
  Protocol.ok ~id
    [
      ("uptime_s", Protocol.F (Unix.gettimeofday () -. started));
      ("queue_depth", Protocol.I depth);
      ("constraints", Protocol.I (List.length m.Model.constraints));
      ("digest", Protocol.S (Rt_check.Certificate.digest_of_model m));
      ("cert", Protocol.S (Engine.cert_digest engine));
      ("memo_size", Protocol.I (Engine.memo_size engine));
      ("resident_tables", Protocol.I (Engine.resident_tables engine));
      ("requests", Protocol.I (c "daemon/requests"));
      ("admits_ok", Protocol.I (c "daemon/admits_ok"));
      ("admits_rejected", Protocol.I (c "daemon/admits_rejected"));
      ("timeouts", Protocol.I (c "daemon/timeouts"));
      ("overloaded", Protocol.I (c "daemon/overloaded"));
      ("degraded", Protocol.I (c "daemon/degraded"));
      ("memo_hits", Protocol.I (c "daemon/memo_hits"));
      ("memo_misses", Protocol.I (c "daemon/memo_misses"));
      ("warm_hits", Protocol.I (c "daemon/warm_hits"));
      ("check_failures", Protocol.I (c "daemon/check_failures"));
      ("journal_records", Protocol.I (c "daemon/journal_records"));
      ("replayed_records", Protocol.I (c "daemon/replayed_records"));
      ("request_us", Protocol.Raw (h "daemon/request_us"));
      ("admit_us", Protocol.Raw (h "daemon/admit_us"));
      ("solve_us", Protocol.Raw (h "daemon/solve_us"));
      ("check_us", Protocol.Raw (h "daemon/check_us"));
    ]

let serve cfg engine ~started ~depth line =
  Rt_obs.Metrics.incr requests_ctr;
  let t0 = Unix.gettimeofday () in
  let response =
    match Protocol.parse line with
    | Error (kind, msg) ->
        `Continue (Protocol.error ~id:(Protocol.parse_request_id line) ~kind msg)
    | Ok req -> (
        let id = req.Protocol.id in
        let level = level_for cfg depth in
        if level <> Engine.Full then Rt_obs.Metrics.incr degraded_ctr;
        match req.Protocol.op with
        | Protocol.Admit decl ->
            let budget = mk_budget cfg req in
            let o =
              Engine.admit ?budget ~level engine decl
            in
            Rt_obs.Metrics.observe admit_us
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            `Continue (outcome_response ~id ~level o)
        | Protocol.What_if decl ->
            let budget = mk_budget cfg req in
            `Continue
              (outcome_response ~id ~level
                 (Engine.what_if ?budget ~level engine decl))
        | Protocol.Retire name ->
            `Continue (outcome_response ~id ~level (Engine.retire engine name))
        | Protocol.Reverify -> (
            match Engine.reverify engine with
            | Ok digest ->
                `Continue (Protocol.ok ~id [ ("digest", Protocol.S digest) ])
            | Error diags ->
                `Continue
                  (Protocol.error ~id ~kind:"check-failed"
                     (String.concat "; " diags)))
        | Protocol.Stats -> `Continue (stats_response engine ~id ~depth ~started)
        | Protocol.Snapshot -> (
            match Engine.snapshot engine with
            | Ok (spec, digest) ->
                `Continue
                  (Protocol.ok ~id
                     [
                       ("digest", Protocol.S digest); ("spec", Protocol.S spec);
                     ])
            | Error e -> `Continue (Protocol.error ~id ~kind:"internal" e))
        | Protocol.Shutdown ->
            `Stop (Protocol.ok ~id [ ("bye", Protocol.B true) ]))
  in
  Rt_obs.Metrics.observe request_us
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  response

let run cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let pool =
    if cfg.jobs > 1 then Some (Rt_par.Pool.create ~jobs:cfg.jobs ()) else None
  in
  let startup_budget =
    if cfg.default_budget_ms > 0 then
      Some
        (Budget.create
           ~wall_s:(float_of_int (cfg.default_budget_ms * 10) /. 1000.)
           ())
    else None
  in
  match
    Engine.create ?pool ?startup_budget ~journal:cfg.journal ?spec:cfg.spec ()
  with
  | Error e ->
      prerr_endline ("rtsynd: " ^ e);
      Option.iter Rt_par.Pool.shutdown pool;
      1
  | Ok engine ->
      let started = Unix.gettimeofday () in
      let input = make_input Unix.stdin in
      let pending = Queue.create () in
      let stop = ref false in
      let enqueue lines =
        List.iter
          (fun line ->
            if String.trim line = "" then ()
            else if Queue.length pending >= cfg.max_queue then begin
              (* Deterministic shedding: newest request beyond the cap
                 bounces immediately; resident state and queue are
                 untouched. *)
              Rt_obs.Metrics.incr overloaded_ctr;
              respond
                (Protocol.error
                   ~id:(Protocol.parse_request_id line)
                   ~kind:"overloaded"
                   ~retry_after_ms:
                     (max 100
                        (Queue.length pending
                        * max 1 cfg.default_budget_ms))
                   (Printf.sprintf "queue full (%d pending)"
                      (Queue.length pending)))
            end
            else Queue.add line pending)
          lines
      in
      while (not !stop) && not (Queue.is_empty pending && input.eof) do
        enqueue (drain input);
        if Queue.is_empty pending then
          if input.eof then ()
          else enqueue (wait_line input)
        else begin
          let line = Queue.pop pending in
          let depth = Queue.length pending in
          Rt_obs.Metrics.set shed_depth_gauge depth;
          match serve cfg engine ~started ~depth line with
          | `Continue r -> respond r
          | `Stop r ->
              respond r;
              stop := true
        end
      done;
      Engine.close engine;
      Option.iter Rt_par.Pool.shutdown pool;
      0
