open Rt_core

type config = {
  journal : string;
  spec : string option;
  max_queue : int;
  max_frame : int;
  degrade_heuristic : int;
  degrade_analytic : int;
  default_budget_ms : int;
  default_fuel : int;
  jobs : int;
}

let default_config =
  {
    journal = "rtsynd.journal";
    spec = None;
    max_queue = 64;
    max_frame = 262_144;
    degrade_heuristic = 8;
    degrade_analytic = 24;
    default_budget_ms = 2000;
    default_fuel = 2_000_000;
    jobs = 1;
  }

let requests_ctr = Rt_obs.Metrics.counter "daemon/requests"
let overloaded_ctr = Rt_obs.Metrics.counter "daemon/overloaded"
let shed_ctr = Rt_obs.Metrics.counter "daemon/shed"
let oversize_ctr = Rt_obs.Metrics.counter "daemon/frame_oversize"
let degraded_ctr = Rt_obs.Metrics.counter "daemon/degraded"
let shed_depth_gauge = Rt_obs.Metrics.gauge "daemon/queue_depth"
let request_us = Rt_obs.Metrics.histogram "daemon/request_us"
let admit_us = Rt_obs.Metrics.histogram "daemon/admit_us"

(* ------------------------------------------------------------------ *)
(* Shared response shapes (stdin loop and socket transport).           *)
(* ------------------------------------------------------------------ *)

let overloaded_response cfg ~depth line =
  Rt_obs.Metrics.incr overloaded_ctr;
  Rt_obs.Metrics.incr shed_ctr;
  Protocol.error
    ~id:(Protocol.parse_request_id line)
    ~kind:"overloaded"
    ~retry_after_ms:(max 100 (depth * max 1 cfg.default_budget_ms))
    (Printf.sprintf "queue full (%d pending)" depth)

let oversize_response cfg dropped =
  Rt_obs.Metrics.incr oversize_ctr;
  Protocol.error ~id:"" ~kind:"oversize"
    (Printf.sprintf "frame of %d bytes exceeds max-frame %d (dropped)" dropped
       cfg.max_frame)

let eof_mid_frame_response origin pending =
  Protocol.error ~id:"" ~kind:"parse"
    (Printf.sprintf "%s closed mid-frame (%d bytes discarded)" origin pending)

(* ------------------------------------------------------------------ *)
(* Input: drain everything already readable on stdin into whole frames
   without blocking, so queue depth is observable before each serve.
   Framing (and the max-frame limit) is shared with the socket
   transport — see Framing.                                            *)
(* ------------------------------------------------------------------ *)

type input = {
  fd : Unix.file_descr;
  framer : Framing.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let make_input ~max_frame fd =
  { fd; framer = Framing.create ~max_frame; chunk = Bytes.create 65536; eof = false }

(* Read whatever is available right now (non-blocking). *)
let drain input =
  let events = ref [] in
  let rec go () =
    if input.eof then ()
    else
      match Unix.select [ input.fd ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read input.fd input.chunk 0 (Bytes.length input.chunk) with
          | 0 -> input.eof <- true
          | n ->
              events :=
                !events @ Framing.feed input.framer (Bytes.sub_string input.chunk 0 n);
              go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
              ())
  in
  go ();
  !events

(* Block until at least one more event (or EOF). *)
let wait_event input =
  let rec go () =
    if input.eof then []
    else
      match Unix.select [ input.fd ] [] [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | _ -> (
          match Unix.read input.fd input.chunk 0 (Bytes.length input.chunk) with
          | 0 ->
              input.eof <- true;
              []
          | n -> (
              match Framing.feed input.framer (Bytes.sub_string input.chunk 0 n) with
              | [] -> go ()
              | events -> events)
          | exception Unix.Unix_error (EINTR, _, _) -> go ())
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Serving.                                                            *)
(* ------------------------------------------------------------------ *)

let respond line =
  print_string line;
  print_newline ();
  flush stdout

let mk_budget cfg (req : Protocol.request) =
  let ms = Option.value ~default:cfg.default_budget_ms req.budget_ms in
  let fuel = Option.value ~default:cfg.default_fuel req.fuel in
  if ms <= 0 && fuel <= 0 then None
  else
    Some
      (Budget.create
         ?wall_s:(if ms > 0 then Some (float_of_int ms /. 1000.) else None)
         ?fuel:(if fuel > 0 then Some fuel else None)
         ())

let level_for cfg depth =
  if depth >= cfg.degrade_analytic then Engine.Analytic
  else if depth >= cfg.degrade_heuristic then Engine.Heuristic
  else Engine.Full

let level_name = function
  | Engine.Full -> "full"
  | Engine.Heuristic -> "heuristic"
  | Engine.Analytic -> "analytic"

let outcome_response ~id ~level (o : Engine.outcome) =
  match o with
  | Engine.Admitted { path; verdict } ->
      Protocol.ok ~id
        [
          ("path", Protocol.S path);
          ("verdict", Protocol.S verdict);
          ("level", Protocol.S (level_name level));
        ]
  | Engine.Analytic_only { verdict } ->
      Protocol.ok ~id
        [
          ("path", Protocol.S "analytic");
          ("verdict", Protocol.S verdict);
          ("level", Protocol.S (level_name level));
          ("committed", Protocol.B false);
        ]
  | Engine.Rejected diags ->
      Protocol.error ~id ~kind:"rejected" (String.concat "; " diags)
  | Engine.Timed_out reason -> Protocol.error ~id ~kind:"timeout" reason
  | Engine.Check_failed diags ->
      Protocol.error ~id ~kind:"check-failed"
        ("trusted checker rejected the result (rolled back): "
        ^ String.concat "; " diags)
  | Engine.Journal_failed e ->
      Protocol.error ~id ~kind:"internal" ("journal append failed: " ^ e)

let stats_response engine ~id ~depth ~started =
  let c name = Rt_obs.Metrics.value (Rt_obs.Metrics.counter name) in
  let g name = Rt_obs.Metrics.gauge_value (Rt_obs.Metrics.gauge name) in
  let h name =
    let hist = Rt_obs.Metrics.histogram name in
    let q p = Option.value ~default:0 (Rt_obs.Metrics.quantile hist p) in
    Printf.sprintf "{\"count\":%d,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
      (Rt_obs.Metrics.h_count hist) (q 0.5) (q 0.95) (q 0.99)
  in
  let m = Engine.model engine in
  Protocol.ok ~id
    [
      ("uptime_s", Protocol.F (Unix.gettimeofday () -. started));
      ("queue_depth", Protocol.I depth);
      ("constraints", Protocol.I (List.length m.Model.constraints));
      ("digest", Protocol.S (Rt_check.Certificate.digest_of_model m));
      ("cert", Protocol.S (Engine.cert_digest engine));
      ("memo_size", Protocol.I (Engine.memo_size engine));
      ("resident_tables", Protocol.I (Engine.resident_tables engine));
      ("requests", Protocol.I (c "daemon/requests"));
      ("admits_ok", Protocol.I (c "daemon/admits_ok"));
      ("admits_rejected", Protocol.I (c "daemon/admits_rejected"));
      ("timeouts", Protocol.I (c "daemon/timeouts"));
      ("overloaded", Protocol.I (c "daemon/overloaded"));
      ("shed", Protocol.I (c "daemon/shed"));
      ("frames_oversized", Protocol.I (c "daemon/frame_oversize"));
      ("degraded", Protocol.I (c "daemon/degraded"));
      ("memo_hits", Protocol.I (c "daemon/memo_hits"));
      ("memo_misses", Protocol.I (c "daemon/memo_misses"));
      ("warm_hits", Protocol.I (c "daemon/warm_hits"));
      ("check_failures", Protocol.I (c "daemon/check_failures"));
      ("journal_records", Protocol.I (c "daemon/journal_records"));
      ("replayed_records", Protocol.I (c "daemon/replayed_records"));
      ("conn_opened", Protocol.I (c "daemon/conn_opened"));
      ("conn_closed", Protocol.I (c "daemon/conn_closed"));
      ("conn_active", Protocol.I (g "daemon/conn_active"));
      ("conn_timeouts", Protocol.I (c "daemon/conn_timeouts"));
      ("request_us", Protocol.Raw (h "daemon/request_us"));
      ("admit_us", Protocol.Raw (h "daemon/admit_us"));
      ("solve_us", Protocol.Raw (h "daemon/solve_us"));
      ("check_us", Protocol.Raw (h "daemon/check_us"));
      ("conn_request_us", Protocol.Raw (h "daemon/conn_request_us"));
    ]

let serve_line cfg engine ~started ~depth line =
  Rt_obs.Metrics.incr requests_ctr;
  let t0 = Unix.gettimeofday () in
  let response =
    match Protocol.parse line with
    | Error (kind, msg) ->
        `Continue (Protocol.error ~id:(Protocol.parse_request_id line) ~kind msg)
    | Ok req -> (
        let id = req.Protocol.id in
        let level = level_for cfg depth in
        if level <> Engine.Full then Rt_obs.Metrics.incr degraded_ctr;
        match req.Protocol.op with
        | Protocol.Admit decl ->
            let budget = mk_budget cfg req in
            let o =
              Engine.admit ?budget ~level engine decl
            in
            Rt_obs.Metrics.observe admit_us
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            `Continue (outcome_response ~id ~level o)
        | Protocol.What_if decl ->
            let budget = mk_budget cfg req in
            `Continue
              (outcome_response ~id ~level
                 (Engine.what_if ?budget ~level engine decl))
        | Protocol.Retire name ->
            `Continue (outcome_response ~id ~level (Engine.retire engine name))
        | Protocol.Reverify -> (
            match Engine.reverify engine with
            | Ok digest ->
                `Continue (Protocol.ok ~id [ ("digest", Protocol.S digest) ])
            | Error diags ->
                `Continue
                  (Protocol.error ~id ~kind:"check-failed"
                     (String.concat "; " diags)))
        | Protocol.Stats -> `Continue (stats_response engine ~id ~depth ~started)
        | Protocol.Snapshot -> (
            match Engine.snapshot engine with
            | Ok (spec, digest) ->
                `Continue
                  (Protocol.ok ~id
                     [
                       ("digest", Protocol.S digest); ("spec", Protocol.S spec);
                     ])
            | Error e -> `Continue (Protocol.error ~id ~kind:"internal" e))
        | Protocol.Shutdown ->
            `Stop (Protocol.ok ~id [ ("bye", Protocol.B true) ]))
  in
  Rt_obs.Metrics.observe request_us
    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  response

(* ------------------------------------------------------------------ *)
(* Engine bring-up shared by the stdin loop and the socket transport.  *)
(* ------------------------------------------------------------------ *)

let create_engine cfg =
  let pool =
    if cfg.jobs > 1 then Some (Rt_par.Pool.create ~jobs:cfg.jobs ()) else None
  in
  let startup_budget =
    if cfg.default_budget_ms > 0 then
      Some
        (Budget.create
           ~wall_s:(float_of_int (cfg.default_budget_ms * 10) /. 1000.)
           ())
    else None
  in
  match
    Engine.create ?pool ?startup_budget ~journal:cfg.journal ?spec:cfg.spec ()
  with
  | Error e ->
      Option.iter Rt_par.Pool.shutdown pool;
      Error e
  | Ok engine -> Ok (engine, pool)

let run cfg =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  match create_engine cfg with
  | Error e ->
      prerr_endline ("rtsynd: " ^ e);
      1
  | Ok (engine, pool) ->
      let started = Unix.gettimeofday () in
      let input = make_input ~max_frame:cfg.max_frame Unix.stdin in
      let pending = Queue.create () in
      let stop = ref false in
      let enqueue events =
        List.iter
          (fun ev ->
            match ev with
            | Framing.Oversized dropped ->
                (* The frame was never a request: answer now, stay live. *)
                respond (oversize_response cfg dropped)
            | Framing.Line line ->
                if String.trim line = "" then ()
                else if Queue.length pending >= cfg.max_queue then
                  (* Deterministic shedding: newest request beyond the cap
                     bounces immediately; resident state and queue are
                     untouched. *)
                  respond
                    (overloaded_response cfg ~depth:(Queue.length pending) line)
                else Queue.add line pending)
          events
      in
      while (not !stop) && not (Queue.is_empty pending && input.eof) do
        enqueue (drain input);
        if input.eof && Queue.is_empty pending then ()
        else if Queue.is_empty pending then enqueue (wait_event input)
        else begin
          let line = Queue.pop pending in
          let depth = Queue.length pending in
          Rt_obs.Metrics.set shed_depth_gauge depth;
          match serve_line cfg engine ~started ~depth line with
          | `Continue r -> respond r
          | `Stop r ->
              respond r;
              stop := true
        end
      done;
      (if input.eof then
         match Framing.finish input.framer with
         | `Clean -> ()
         | `Partial n -> respond (eof_mid_frame_response "stdin" n));
      Engine.close engine;
      Option.iter Rt_par.Pool.shutdown pool;
      0
