(** The versioned jsonl wire protocol of [rtsynd].

    One JSON object per line in each direction.  Requests carry
    [{"v":1, "op":..., "id":...}] plus op-specific fields; responses
    echo the [id] and are either [{"ok":true, ...}] or
    [{"ok":false, "error":{"kind":..., "message":...}}].  Error kinds:
    ["parse"], ["version"], ["rejected"], ["timeout"], ["overloaded"]
    (with ["retry_after_ms"]), ["check-failed"], ["internal"].  See
    [docs/DAEMON.md] for the full schema. *)

val version : int

type op =
  | Admit of string  (** Constraint declaration, spec syntax. *)
  | What_if of string
  | Retire of string  (** Constraint name. *)
  | Reverify
  | Stats
  | Snapshot
  | Shutdown

type request = {
  id : string;  (** Client correlation id; [""] when absent. *)
  op : op;
  budget_ms : int option;  (** Per-request wall-clock budget override. *)
  fuel : int option;  (** Per-request fuel override. *)
}

val parse : string -> (request, string * string) result
(** [parse line] is the request, or [Error (kind, message)] with
    [kind] one of ["parse"] / ["version"].  The [id] is recovered on a
    best-effort basis even for malformed requests so the error
    response can be correlated. *)

val parse_request_id : string -> string
(** Best-effort extraction of ["id"] from a (possibly malformed)
    request line, for error correlation. *)

type field = S of string | I of int | F of float | B of bool | Raw of string

val ok : id:string -> (string * field) list -> string
(** Render a success response line (no trailing newline). *)

val error :
  id:string ->
  kind:string ->
  ?retry_after_ms:int ->
  string ->
  string
(** Render an error response line. *)
