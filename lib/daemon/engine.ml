open Rt_core
module Checker = Rt_check.Checker

type level = Full | Heuristic | Analytic

type outcome =
  | Admitted of { path : string; verdict : string }
  | Analytic_only of { verdict : string }
  | Rejected of string list
  | Timed_out of string
  | Check_failed of string list
  | Journal_failed of string

type t = {
  mutable model : Model.t;
  mutable schedule : Rt_base.Schedule.t option;
  mutable cert : string;  (* digest of the persisted certificate, "" if none *)
  journal : Journal.t;
  tables : (string, Game.table) Hashtbl.t;  (* model digest -> dead facts *)
  memo : (string, int array) Hashtbl.t;  (* canonical key -> canonical slots *)
  comp_cache : (string, Rt_base.Schedule.t) Hashtbl.t;
      (* Decompose.interaction_key -> component schedule.  An admission
         touching one interaction component re-solves that component
         only; the untouched components answer from here (counted by
         decompose/component_reuses).  Entries are untrusted hints:
         every merged schedule still passes whole-model verification
         and the trusted certificate check before publication. *)
  pool : Rt_par.Pool.t option;
}

(* Caps on the resident caches: all only ever cost re-derivation, so
   a full reset on overflow is sound and keeps memory bounded under
   adversarial churn. *)
let max_tables = 32
let max_memo = 1024
let max_comp_cache = 8192

let memo_hits = Rt_obs.Metrics.counter "daemon/memo_hits"
let memo_misses = Rt_obs.Metrics.counter "daemon/memo_misses"
let warm_hits = Rt_obs.Metrics.counter "daemon/warm_hits"
let admits_ok = Rt_obs.Metrics.counter "daemon/admits_ok"
let admits_rejected = Rt_obs.Metrics.counter "daemon/admits_rejected"
let timeouts = Rt_obs.Metrics.counter "daemon/timeouts"
let check_failures = Rt_obs.Metrics.counter "daemon/check_failures"
let journal_records = Rt_obs.Metrics.counter "daemon/journal_records"
let replayed_records = Rt_obs.Metrics.counter "daemon/replayed_records"
let solve_us = Rt_obs.Metrics.histogram "daemon/solve_us"
let check_us = Rt_obs.Metrics.histogram "daemon/check_us"

let timed h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Rt_obs.Metrics.observe h (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
  r

let digest_of = Rt_check.Certificate.digest_of_model

(* ------------------------------------------------------------------ *)
(* The fail-closed certification step: untrusted Certify, trusted
   Checker, then the digest of the certificate as it would persist.    *)
(* ------------------------------------------------------------------ *)

let certify_checked m sched =
  timed check_us @@ fun () ->
  match Certify.schedule m sched with
  | Error e -> Error [ "certify: " ^ e ]
  | exception Invalid_argument e -> Error [ "certify: " ^ e ]
  | Ok cert -> (
      match Checker.check m cert with
      | Error diags -> Error diags
      | Ok () -> (
          match Rt_spec.Persist.save_certificate_string m cert with
          | json -> Ok (Journal.digest_string json)
          | exception Invalid_argument e -> Error [ "persist: " ^ e ]))

let table_for t digest =
  match Hashtbl.find_opt t.tables digest with
  | Some tb -> tb
  | None ->
      if Hashtbl.length t.tables >= max_tables then Hashtbl.reset t.tables;
      let tb = Game.table () in
      Hashtbl.replace t.tables digest tb;
      tb

let memo_store t canon slots =
  if Hashtbl.length t.memo >= max_memo then Hashtbl.reset t.memo;
  Hashtbl.replace t.memo canon.Canon.key slots

let comp_cache_store t key sched =
  if Hashtbl.length t.comp_cache >= max_comp_cache then
    Hashtbl.reset t.comp_cache;
  Hashtbl.replace t.comp_cache key sched

(* ------------------------------------------------------------------ *)
(* Spec-source plumbing: the resident model rendered back to source,
   and one constraint declaration spliced into it.                     *)
(* ------------------------------------------------------------------ *)

let print_model m =
  match Rt_spec.Printer.print m with
  | s -> Ok s
  | exception Invalid_argument e -> Error [ "print: " ^ e ]

let insert_decl src decl =
  match String.rindex_opt src '}' with
  | None -> Error [ "malformed system source (no closing brace)" ]
  | Some i ->
      Ok
        (String.sub src 0 i
        ^ "\n" ^ decl ^ "\n}"
        ^ String.sub src (i + 1) (String.length src - i - 1))

let parse_decl decl =
  match Rt_spec.Parser.parse_result ("system \"d\" {\n" ^ decl ^ "\n}") with
  | Error e -> Error [ "declaration: " ^ e ]
  | Ok sys -> (
      match
        ( sys.Rt_spec.Ast.sy_elements,
          sys.Rt_spec.Ast.sy_edges,
          sys.Rt_spec.Ast.sy_asserts,
          sys.Rt_spec.Ast.sy_constraints )
      with
      | [], [], [], [ c ] -> Ok c
      | _ ->
          Error
            [
              "declaration must be exactly one constraint (no elements, \
               edges or asserts)";
            ])

let verdict_string = function
  | Admission.Guaranteed cond -> "guaranteed:" ^ cond
  | Admission.Impossible cond -> "impossible:" ^ cond
  | Admission.Inconclusive -> "inconclusive"

let admission m =
  match Admission.admit m with
  | Admission.Guaranteed cond -> ("GUARANTEED (" ^ cond ^ ")", 0)
  | Admission.Impossible cond -> ("IMPOSSIBLE (" ^ cond ^ ")", 1)
  | Admission.Inconclusive -> ("INCONCLUSIVE", 5)

(* ------------------------------------------------------------------ *)
(* The answer path: memo, then warm reuse, then synthesis.             *)
(* ------------------------------------------------------------------ *)

let verifies m sched =
  match Latency.verify m sched with
  | verdicts -> Latency.all_ok verdicts
  | exception Invalid_argument _ -> false

(* Whole-model synthesis against the admitted model verbatim (merging
   and pipelining rewrite the model, which would decouple the resident
   schedule from the resident constraint set — documented v1
   limitation). *)
let plain_solve ?budget ~level t (m' : Model.t) =
  let game_table = table_for t (digest_of m') in
  Synthesis.synthesize ?pool:t.pool ?budget ~game_table ~merge:false
    ~pipeline:false
    ~exact_fallback:(level = Full)
    m'

(* Component-local answer path: solve only the interaction components
   whose structure is not already in the component-schedule cache, then
   interleave and re-verify against the whole candidate model.  The
   outer component loop is sequential (the cache is not domain-safe);
   each component solve gets the pool.  Outcomes:
     `Sched s      — whole-model verified schedule (still uncertified)
     `Definitive d — a component is exactly infeasible => so is m'
     `Timeout r    — the budget tripped mid-pass
     `Skip         — decomposition does not apply or did not pan out;
                     fall back to the undecomposed path, fail-closed. *)
let decomposed_solve ?budget ~level t (m' : Model.t) =
  match Decompose.components m' with
  | [] | [ _ ] -> `Skip
  | comps -> (
      let exception
        Stop of
          [ `Definitive of string list | `Timeout of string | `Give_up ]
      in
      let solve ~sub comp =
        let key = Decompose.interaction_key m' comp in
        match Hashtbl.find_opt t.comp_cache key with
        | Some sched ->
            Rt_par.Perf.incr Rt_par.Perf.decompose_component_reuses;
            sched
        | None -> (
            Rt_par.Perf.incr Rt_par.Perf.decompose_component_solves;
            let game_table = table_for t (digest_of sub) in
            match
              Synthesis.synthesize ?pool:t.pool ?budget ~game_table
                ~merge:false ~pipeline:false
                ~exact_fallback:(level = Full)
                sub
            with
            | Ok plan ->
                comp_cache_store t key plan.Synthesis.schedule;
                plan.Synthesis.schedule
            | Error err when err.Synthesis.stage = "exact" ->
                let names =
                  String.concat ", "
                    (List.map
                       (fun (c : Timing.t) -> c.Timing.name)
                       comp.Decompose.constraints)
                in
                raise
                  (Stop
                     (`Definitive
                       [
                         Printf.sprintf
                           "component {%s}: %s (definitive: the component's \
                            constraints are a subset of the model's)"
                           names err.Synthesis.message;
                       ]))
            | Error _ -> (
                match Option.bind budget Budget.exhausted with
                | Some reason -> raise (Stop (`Timeout reason))
                | None -> raise (Stop `Give_up)))
      in
      try
        let scheds = Decompose.map_components ~solve m' comps in
        match Decompose.interleave m'.Model.comm scheds with
        | Error _ -> `Skip
        | Ok sched -> if verifies m' sched then `Sched sched else `Skip
      with
      | Stop (`Definitive d) -> `Definitive d
      | Stop (`Timeout r) -> `Timeout r
      | Stop `Give_up -> `Skip)

(* Find a certified schedule for candidate model [m'].  Returns
   (schedule, path) or a diagnosable failure.  Never mutates the
   resident certified state ([t.model]/[t.schedule]/[t.cert]); the
   game-table and component-schedule caches may grow. *)
let find_schedule ?budget ~level t canon (m' : Model.t) =
  let memo_hit =
    match Hashtbl.find_opt t.memo canon.Canon.key with
    | None -> None
    | Some slots -> (
        match Canon.schedule_of_slots canon slots with
        | Some sched when verifies m' sched -> Some sched
        | _ -> None)
  in
  match memo_hit with
  | Some sched ->
      Rt_obs.Metrics.incr memo_hits;
      Ok (sched, "memo")
  | None -> (
      Rt_obs.Metrics.incr memo_misses;
      match t.schedule with
      | Some sched when verifies m' sched ->
          Rt_obs.Metrics.incr warm_hits;
          Ok (sched, "warm")
      | _ -> (
          match timed solve_us (fun () -> decomposed_solve ?budget ~level t m') with
          | `Sched sched -> Ok (sched, "synth")
          | `Definitive diags -> Error (`Rejected diags)
          | `Timeout reason -> Error (`Timeout reason)
          | `Skip -> (
              let result =
                timed solve_us @@ fun () -> plain_solve ?budget ~level t m'
              in
              match result with
              | Ok plan -> Ok (plan.Synthesis.schedule, "synth")
              | Error err -> (
                  match Option.bind budget Budget.exhausted with
                  | Some reason -> Error (`Timeout reason)
                  | None ->
                      Error
                        (`Rejected
                          [
                            Format.asprintf "%a" Synthesis.pp_error err;
                          ])))))

let admit_or_probe ?budget ~level ~commit t decl =
  let ( let* ) r f = match r with Error e -> Rejected e | Ok v -> f v in
  let* c = parse_decl decl in
  let name = c.Rt_spec.Ast.co_name in
  if
    List.exists
      (fun (tc : Timing.t) -> tc.Timing.name = name)
      t.model.Model.constraints
  then Rejected [ Printf.sprintf "constraint %S is already resident" name ]
  else
    let* src = print_model t.model in
    let* candidate_src = insert_decl src decl in
    let* m' =
      match Rt_spec.Elaborate.load candidate_src with
      | Ok m -> Ok m
      | Error errs -> Error errs
    in
    let verdict = Admission.admit m' in
    match verdict with
    | Admission.Impossible cond -> Rejected [ "impossible: " ^ cond ]
    | _ when level = Analytic ->
        (* Deepest degradation: answer from the gap tests alone and do
           not touch resident state — it stays certified. *)
        Analytic_only { verdict = verdict_string verdict }
    | _ -> (
        let canon = Canon.of_model m' in
        match find_schedule ?budget ~level t canon m' with
        | Error (`Timeout reason) ->
            Rt_obs.Metrics.incr timeouts;
            Timed_out reason
        | Error (`Rejected diags) ->
            Rt_obs.Metrics.incr admits_rejected;
            Rejected diags
        | Ok (sched, path) -> (
            match certify_checked m' sched with
            | Error diags ->
                (* The trusted core vetoed the untrusted answer: roll
                   back (state was never touched) and fail closed. *)
                Rt_obs.Metrics.incr check_failures;
                Check_failed diags
            | Ok cert_digest ->
                if not commit then
                  Admitted { path; verdict = verdict_string verdict }
                else
                  let record =
                    Journal.Admit
                      {
                        name;
                        decl;
                        digest = digest_of m';
                        schedule =
                          Rt_base.Schedule.to_string m'.Model.comm sched;
                        cert = cert_digest;
                      }
                  in
                  (match Journal.append t.journal record with
                  | Error e -> Journal_failed e
                  | Ok () ->
                      Rt_obs.Metrics.incr journal_records;
                      t.model <- m';
                      t.schedule <- Some sched;
                      t.cert <- cert_digest;
                      memo_store t canon (Canon.canonical_slots canon sched);
                      Rt_obs.Metrics.incr admits_ok;
                      Admitted { path; verdict = verdict_string verdict })))

let admit ?budget ~level t decl = admit_or_probe ?budget ~level ~commit:true t decl
let what_if ?budget ~level t decl = admit_or_probe ?budget ~level ~commit:false t decl

let retire t name =
  let present =
    List.exists
      (fun (c : Timing.t) -> c.Timing.name = name)
      t.model.Model.constraints
  in
  if not present then Rejected [ Printf.sprintf "unknown constraint %S" name ]
  else
    let constraints' =
      List.filter
        (fun (c : Timing.t) -> c.Timing.name <> name)
        t.model.Model.constraints
    in
    match Model.make ~comm:t.model.Model.comm ~constraints:constraints' with
    | exception Invalid_argument e -> Rejected [ e ]
    | m' -> (
        (* Shrinking the constraint set can only relax the problem: the
           resident schedule still verifies, only the certificate must
           be re-issued against the reduced model. *)
        let recert =
          match t.schedule with
          | Some sched when constraints' <> [] -> (
              match certify_checked m' sched with
              | Error diags -> Error diags
              | Ok cd -> Ok cd)
          | _ -> Ok ""
        in
        match recert with
        | Error diags ->
            Rt_obs.Metrics.incr check_failures;
            Check_failed diags
        | Ok cert_digest -> (
            let record =
              Journal.Retire { name; digest = digest_of m'; cert = cert_digest }
            in
            match Journal.append t.journal record with
            | Error e -> Journal_failed e
            | Ok () ->
                Rt_obs.Metrics.incr journal_records;
                t.model <- m';
                if constraints' = [] then t.schedule <- None;
                t.cert <- cert_digest;
                (match t.schedule with
                | Some sched ->
                    let canon = Canon.of_model m' in
                    memo_store t canon (Canon.canonical_slots canon sched)
                | None -> ());
                Admitted { path = "retire"; verdict = "retired" }))

let reverify t =
  match t.schedule with
  | None -> Ok (digest_of t.model)
  | Some sched -> (
      if not (verifies t.model sched) then
        Error [ "resident schedule no longer verifies" ]
      else
        match certify_checked t.model sched with
        | Error diags -> Error diags
        | Ok cert_digest ->
            if t.cert <> "" && t.cert <> cert_digest then
              Error
                [
                  Printf.sprintf
                    "certificate digest drift: resident %s, recomputed %s"
                    t.cert cert_digest;
                ]
            else Ok (digest_of t.model))

let snapshot t =
  match print_model t.model with
  | Error e -> Error (String.concat "; " e)
  | Ok spec -> (
      let record =
        Journal.Init
          {
            spec;
            digest = digest_of t.model;
            schedule =
              (match t.schedule with
              | None -> ""
              | Some s -> Rt_base.Schedule.to_string t.model.Model.comm s);
            cert = t.cert;
          }
      in
      match Journal.truncate t.journal record with
      | Error e -> Error e
      | Ok () -> Ok (spec, digest_of t.model))

(* ------------------------------------------------------------------ *)
(* Startup: fresh init or journal replay.                              *)
(* ------------------------------------------------------------------ *)

let load_schedule m s =
  match Rt_base.Schedule.of_string m.Model.comm s with
  | Error e -> Error [ "schedule: " ^ e ]
  | Ok sched -> (
      match Rt_base.Schedule.validate m.Model.comm sched with
      | Error errs -> Error errs
      | Ok () ->
          if verifies m sched then Ok sched
          else Error [ "journaled schedule does not verify" ])

(* Re-validate one journaled certified state: digests and the trusted
   checker, exactly as at admit time. *)
let revalidate what m sched_s cert_d =
  if sched_s = "" then if cert_d = "" then Ok None else Error [ what ^ ": certificate digest without schedule" ]
  else
    match load_schedule m sched_s with
    | Error e -> Error (List.map (fun x -> what ^ ": " ^ x) e)
    | Ok sched -> (
        match certify_checked m sched with
        | Error e -> Error (List.map (fun x -> what ^ ": " ^ x) e)
        | Ok cd ->
            if cd <> cert_d then
              Error
                [
                  Printf.sprintf
                    "%s: certificate digest mismatch (journal %s, recomputed \
                     %s)"
                    what cert_d cd;
                ]
            else Ok (Some sched))

let seed_memo t m sched =
  let canon = Canon.of_model m in
  memo_store t canon (Canon.canonical_slots canon sched)

let replay t records =
  let step = function
    | Journal.Init _ -> Error [ "unexpected second init record" ]
    | Journal.Admit r -> (
        let ( let* ) = Result.bind in
        let* src = print_model t.model in
        let* candidate = insert_decl src r.decl in
        let* m' =
          match Rt_spec.Elaborate.load candidate with
          | Ok m -> Ok m
          | Error e -> Error e
        in
        if digest_of m' <> r.digest then
          Error
            [
              Printf.sprintf "admit %S: model digest mismatch (journal %s, \
                              replayed %s)" r.name r.digest (digest_of m');
            ]
        else
          let* sched =
            match revalidate ("admit " ^ r.name) m' r.schedule r.cert with
            | Ok (Some s) -> Ok s
            | Ok None -> Error [ "admit " ^ r.name ^ ": record has no schedule" ]
            | Error e -> Error e
          in
          t.model <- m';
          t.schedule <- Some sched;
          t.cert <- r.cert;
          seed_memo t m' sched;
          Ok ())
    | Journal.Retire r -> (
        let constraints' =
          List.filter
            (fun (c : Timing.t) -> c.Timing.name <> r.name)
            t.model.Model.constraints
        in
        if List.length constraints' = List.length t.model.Model.constraints
        then Error [ Printf.sprintf "retire %S: not resident" r.name ]
        else
          match Model.make ~comm:t.model.Model.comm ~constraints:constraints' with
          | exception Invalid_argument e -> Error [ e ]
          | m' ->
              if digest_of m' <> r.digest then
                Error
                  [
                    Printf.sprintf
                      "retire %S: model digest mismatch (journal %s, replayed \
                       %s)" r.name r.digest (digest_of m');
                  ]
              else (
                t.model <- m';
                if constraints' = [] then t.schedule <- None;
                let check =
                  match (t.schedule, r.cert) with
                  | Some sched, cert when cert <> "" -> (
                      match certify_checked m' sched with
                      | Error e -> Error e
                      | Ok cd when cd <> cert ->
                          Error
                            [
                              Printf.sprintf
                                "retire %S: certificate digest mismatch \
                                 (journal %s, recomputed %s)" r.name cert cd;
                            ]
                      | Ok _ -> Ok ())
                  | None, cert when cert <> "" ->
                      Error
                        [
                          Printf.sprintf
                            "retire %S: certificate digest without schedule"
                            r.name;
                        ]
                  | _ -> Ok ()
                in
                match check with
                | Error e -> Error e
                | Ok () ->
                    t.cert <- r.cert;
                    Ok ()))
  in
  let rec go i = function
    | [] -> Ok ()
    | r :: rest -> (
        match step r with
        | Ok () ->
            Rt_obs.Metrics.incr replayed_records;
            go (i + 1) rest
        | Error e ->
            Error
              (Printf.sprintf "journal replay failed at record %d: %s" i
                 (String.concat "; " e)))
  in
  go 2 records

let create ?pool ?startup_budget ~journal ?spec () =
  match Journal.load journal with
  | Error e -> Error ("journal: " ^ e)
  | Ok records -> (
      match Journal.open_append journal with
      | Error e -> Error e
      | Ok jh -> (
          let mk model =
            {
              model;
              schedule = None;
              cert = "";
              journal = jh;
              tables = Hashtbl.create 8;
              memo = Hashtbl.create 64;
              comp_cache = Hashtbl.create 64;
              pool;
            }
          in
          match records with
          | [] -> (
              match spec with
              | None ->
                  Journal.close jh;
                  Error "fresh start requires a base specification (--spec)"
              | Some src -> (
                  match Rt_spec.Elaborate.load src with
                  | Error errs ->
                      Journal.close jh;
                      Error (String.concat "; " errs)
                  | Ok m -> (
                      let t = mk m in
                      let startup =
                        if m.Model.constraints = [] then Ok None
                        else
                          let solved =
                            (* Component-wise first (one small solve per
                               interaction component instead of one big
                               one), undecomposed as the fail-closed
                               fallback — same ladder as admissions. *)
                            match
                              decomposed_solve ?budget:startup_budget
                                ~level:Full t m
                            with
                            | `Sched sched -> Ok sched
                            | `Definitive diags ->
                                Error (String.concat "; " diags)
                            | `Timeout reason -> Error reason
                            | `Skip -> (
                                match
                                  plain_solve ?budget:startup_budget
                                    ~level:Full t m
                                with
                                | Ok plan -> Ok plan.Synthesis.schedule
                                | Error err ->
                                    Error
                                      (Format.asprintf "%a"
                                         Synthesis.pp_error err))
                          in
                          match solved with
                          | Error e -> Error ("base system: " ^ e)
                          | Ok sched -> (
                              match certify_checked m sched with
                              | Error diags ->
                                  Error
                                    ("base system: "
                                    ^ String.concat "; " diags)
                              | Ok cd -> Ok (Some (sched, cd)))
                      in
                      match startup with
                      | Error e ->
                          Journal.close jh;
                          Error e
                      | Ok pair -> (
                          (match pair with
                          | Some (sched, cd) ->
                              t.schedule <- Some sched;
                              t.cert <- cd;
                              seed_memo t m sched
                          | None -> ());
                          let record =
                            Journal.Init
                              {
                                spec = src;
                                digest = digest_of m;
                                schedule =
                                  (match t.schedule with
                                  | None -> ""
                                  | Some s ->
                                      Rt_base.Schedule.to_string
                                        m.Model.comm s);
                                cert = t.cert;
                              }
                          in
                          match Journal.append jh record with
                          | Error e ->
                              Journal.close jh;
                              Error e
                          | Ok () -> Ok t))))
          | Journal.Init i :: rest -> (
              match Rt_spec.Elaborate.load i.spec with
              | Error errs ->
                  Journal.close jh;
                  Error ("journal init: " ^ String.concat "; " errs)
              | Ok m ->
                  if digest_of m <> i.digest then (
                    Journal.close jh;
                    Error
                      (Printf.sprintf
                         "journal init: model digest mismatch (journal %s, \
                          replayed %s)" i.digest (digest_of m)))
                  else (
                    let t = mk m in
                    match revalidate "init" m i.schedule i.cert with
                    | Error e ->
                        Journal.close jh;
                        Error (String.concat "; " e)
                    | Ok sched_opt -> (
                        (match sched_opt with
                        | Some sched ->
                            t.schedule <- Some sched;
                            t.cert <- i.cert;
                            seed_memo t m sched
                        | None -> ());
                        match replay t rest with
                        | Error e ->
                            Journal.close jh;
                            Error e
                        | Ok () -> Ok t)))
          | _ :: _ ->
              Journal.close jh;
              Error "journal does not start with an init record"))

let model t = t.model
let schedule t = t.schedule
let cert_digest t = t.cert
let memo_size t = Hashtbl.length t.memo
let resident_tables t = Hashtbl.length t.tables
let close t = Journal.close t.journal
