(** Newline framing with a hard per-frame byte limit.

    Both transports of [rtsynd] — the stdin/stdout jsonl loop and the
    socket listener — split their byte stream into frames here, so the
    max-frame policy (an oversized frame is answered with a structured
    error and the stream resynchronizes at the next newline — bounded
    memory, never a crash or a wedged connection) is enforced once, the
    same way, everywhere.

    The splitter is pure state over the fed bytes: chunk boundaries are
    irrelevant (a frame torn across any number of [feed] calls
    reassembles byte-identically), and an oversized frame never buffers
    more than [max_frame] bytes — the rest is counted and discarded
    until the terminating newline. *)

type t

type event =
  | Line of string
      (** One complete frame, terminating newline stripped.  At most
          [max_frame] bytes. *)
  | Oversized of int
      (** A frame exceeded [max_frame] and was dropped; the payload is
          the full byte length of the dropped frame.  The stream is
          already resynchronized: subsequent frames parse normally. *)

val create : max_frame:int -> t
(** [max_frame] is clamped to at least 1. *)

val max_frame : t -> int

val feed : t -> string -> event list
(** Feed one chunk; returns the completed events, oldest first. *)

val pending : t -> int
(** Bytes of the current partial frame (buffered plus already
    discarded), 0 when the stream sits on a frame boundary. *)

val finish : t -> [ `Clean | `Partial of int ]
(** End of stream.  [`Partial n] means the stream ended mid-frame ([n]
    bytes seen); the partial data is discarded and [t] is reset. *)
