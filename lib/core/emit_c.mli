(** C code generation: the final "automate the synthesis of code for
    time-critical applications" step.

    From a verified plan (model + static schedule) this emits a
    self-contained C translation unit:

    - one function hook per functional element ([void fe_<name>(void)]),
      to be implemented by the application;
    - the schedule table, one entry per slot;
    - [rt_tick()], the round-robin run-time scheduler the paper
      promises is "very efficient once a feasible static schedule has
      been found off-line" — a table lookup and an indirect call, meant
      to be driven by a periodic timer interrupt.

    With [-DRT_TEST_MAIN] the unit additionally compiles stub element
    implementations and a [main] that prints the element index executed
    at each slot for a requested number of slots — the test suite
    compiles the emitted code with a real C compiler and checks that
    the executed trace equals the schedule. *)

val element_identifier : string -> string
(** [element_identifier name] is the C identifier used for element
    [name]: non-alphanumeric characters become ['_'] and a leading
    digit is prefixed ([f_s#2] -> [fe_f_s_2]). *)

val emit : Model.t -> Schedule.t -> string
(** [emit m l] renders the C source.  Raises [Invalid_argument] if the
    schedule does not verify against the model, or if two element names
    collide after identifier sanitization. *)
