(** The state-space game engine for exact feasibility.

    Mok's Theorem 1 casts latency scheduling as a simulation game: the
    scheduler wins iff it can keep the play inside safe states forever,
    and because the state space is finite that happens iff a {e cycle}
    of safe states is reachable — the cycle's action word, read off as
    a slot sequence, is then a feasible static schedule.  This module
    plays that game directly instead of enumerating bounded schedule
    strings, for {e all} asynchronous task-graph constraints, not just
    single operations:

    - For models whose constraints are all single operations the state
      is the classic vector of per-constraint budgets (slots remaining
      for the constraint's next execution to finish) and transitions
      are macro-steps (a whole execution, or one idle slot).
    - For general task graphs the state is the canonical {e residue} of
      the trace: the last [d_max - 1] slots, with any execution block
      cut by the left edge remapped to idle (such a block can never
      again lie fully inside a future window, and remapping maximizes
      transposition hits).  Every window a future slot closes reads at
      most those slots, so the residue determines all future legality —
      each edge re-checks only the windows that just closed, via a
      trace built over at most [d_max] slots (the incremental window
      check), never over the whole prefix.

    Shared across the search, and across {!Rt_par.Pool} lanes:

    - a {b transposition table} ({!Rt_par.Shard_tbl}) of states proven
      {e dead} (no safe cycle reachable) — a path-independent fact, so
      lanes can consume each other's entries without changing the
      answer;
    - a {b dominance antichain}: a dead state also kills every state
      that is pointwise harder (for budget vectors: no larger in every
      component; for unit-weight residues: the same slots with some
      runs replaced by idles).  Dominance is disabled for weighted
      residues, where removing slots can re-align execution blocks and
      the order is unsound (see [docs/PERFORMANCE.md]).

    Verdicts are definitive: [Infeasible] means the full finite game
    graph was exhausted without finding a safe cycle — strictly
    stronger than the bounded enumerators' [Unknown].  Every [Feasible]
    cycle word is re-verified with {!Latency.meets_asynchronous} before
    being returned.

    With a pool, branches on the first one or two scheduling decisions
    fan out over the lanes; the lowest-index branch that finds a cycle
    wins and a shared {!Rt_par.Bound} aborts branches that can no
    longer win, so the returned schedule is bit-identical to the
    sequential one's.  Only [explored] (and, if the state budget binds,
    an [Unknown] cut-off) may differ between pooled and sequential
    runs. *)

type outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Timeout of string
      (** A caller-supplied {!Budget.t} ran out (the payload is the
          reason) before the game graph was exhausted.  Distinct from
          [Unknown]: the search was cut off by the caller's resource
          bound, not by the engine's own state cap. *)
  | Unknown of string

type stats = { explored : int; outcome : outcome }

type impl = [ `Packed | `Reference ]
(** Engine implementation selector.  [`Packed] (the default) runs the
    hardware-fast engine: states packed into flat machine words with
    guard bits (dominance = one word-parallel subtract-and-mask per
    word), zero-allocation successor generation over preallocated
    per-depth scratch, open-addressing flat transposition/gray tables,
    canonical (symmetry-sorted) dead-fact keys, a score-bucketed
    {!Rt_par.Antichain}, and a small-model bypass.  [`Reference] runs
    the frozen PR-4 engine ({!Game_ref}) unchanged — the oracle the
    packed engine is tested against.  Verdicts agree always; with the
    bypass disabled the returned schedules are bit-identical (pruning
    differences only skip provably cycle-free subtrees, so the first
    cycle found — and hence the schedule — is the same). *)

type table
(** A resident dead-fact (transposition) table.  "State [s] is dead" is
    a property of the model alone — independent of the path or budget
    under which it was proven — so a table may be reused across many
    {!solve} calls on the {e same} model (and granularity): facts a
    timed-out solve derived still speed up the next attempt.  Reuse
    across different models is unsound; key resident tables by model
    digest. *)

val table : ?cap:int -> unit -> table
(** [table ()] creates an empty resident table ([cap] defaults to the
    engine's 2M-entry cap; the cap evicts approximately-FIFO and only
    ever costs re-derivation). *)

val table_size : table -> int
(** Number of dead facts currently resident (approximate under
    concurrent use). *)

val solve :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?table:table ->
  ?max_states:int ->
  ?impl:impl ->
  ?bypass:bool ->
  granularity:[ `Unit | `Atomic ] ->
  Model.t ->
  stats
(** [solve ~granularity m] decides feasibility of [m]'s asynchronous
    constraints by reachable-cycle search over the game graph.

    [`Unit] plays one slot per edge and requires every used element to
    have unit weight (the caller — {!Exact.enumerate} — validates
    this); [`Atomic] plays one whole execution block (or one idle
    slot) per edge, keeping executions contiguous, matching
    {!Exact.enumerate_atomic} and {!Exact.solve_single_ops}.  When all
    constraints are single operations both granularities reduce to the
    budget-vector game and are solved as such.

    [max_states] (default 500_000) bounds the number of distinct
    states expanded; exhausting it yields [Unknown], never a wrong
    [Infeasible].  [budget] adds a caller-owned wall-clock/fuel bound
    checked cooperatively at every state expansion; exhausting it
    yields [Timeout].  With no [budget] the exploration is bit-for-bit
    the default path (the bench counters pin it).  [explored] counts
    expanded states.  Counters:
    {!Rt_par.Perf.game_states}, {!Rt_par.Perf.table_hits},
    {!Rt_par.Perf.table_misses}, {!Rt_par.Perf.dominance_kills}.

    [table] supplies a resident transposition table (see {!type-table})
    shared across solves of the same model; without it each solve gets
    a fresh one.  The transposition table is capped (2M entries, split
    over its shards) so adversarial long runs cannot grow it without
    bound; the cap evicts approximately-FIFO and only ever costs
    re-derivation.
    The default [max_states] keeps default runs far below the cap, so
    they never evict and stay bit-identical to the uncapped engine.
    Each solve publishes the final table size as the
    [Rt_obs.Metrics] gauge ["game/table_size"] and accumulates
    cap-forced drops on the counter ["game/table_evictions"].  The
    packed engine additionally publishes ["game/alloc_words"] (minor
    words allocated by the solve on the calling domain — near zero for
    packed budget games), ["game/antichain_evictions"] (dead facts the
    antichain cap forced out; the old engine dropped them silently)
    and the sampled probe-length histogram
    ["game/antichain_probe_len"]; all surface via [rtsyn --stats].

    [impl] selects the engine implementation (see {!type-impl});
    resident [table]s may be shared across both implementations of the
    same model — their key formats never collide — but facts only hit
    within the implementation that wrote them.

    [bypass] (default [true], [`Packed] only, inert under a [budget])
    first tries the small-model shortcut: concatenate every
    constraint's graph in topological order and verify that fixed
    cycle once.  Success returns it with [explored = 0] and no engine
    setup at all — this is what makes trivial admission probes and the
    unit-chains bench family faster than the DFS oracle.  Failure
    proves nothing and falls through to the engine.  Disable it when
    the engine's own first-found cycle must be returned (the
    bit-identity tests do). *)
