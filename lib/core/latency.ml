(* The containment search assigns execution instances to task-graph nodes
   by depth-first search in topological order with full backtracking.
   Task graphs are small (the paper's examples have <= 6 nodes) and a
   window of length d contains at most d/w instances per element, so the
   search space is tiny in practice; backtracking is required for
   correctness when several nodes map to the same element or when an
   early greedy choice starves a successor (see test_latency.ml for a
   concrete such case).

   Analyses that ask many window questions against one trace share a
   [ctx]: the topological order, predecessor function, sorted finish
   array and backtracking scratch are computed once per
   (trace, task graph) and reused across questions, instead of being
   rebuilt inside every call as the original implementation did.
   [periodic_response] additionally memoizes answers per
   (window start mod cycle): a well-formed schedule's instance
   structure repeats with the cycle, so the response of an invocation
   depends only on its phase residue.  The memo is keyed on the
   schedule's minimal repeating pattern, not its nominal length: an
   unrolled schedule (a short table repeated to some hyperperiod, as
   multiprocessor synthesis produces) answers every question with the
   period of the underlying pattern, so invocation phases that are
   distinct modulo the nominal length collapse onto few residues. *)

module Perf = Rt_par.Perf

type scratch = {
  assignment : Trace.instance option array;
  mutable used : (int * int) list;
      (* (elem, instance index) pairs claimed by assigned nodes — at
         most [size tg] entries, pushed/popped with stack discipline,
         so a list scan beats a hashtable on these microsecond-scale
         searches. *)
}

type ctx = {
  g : Comm_graph.t;
  tg : Task_graph.t;
  trace : Trace.t;
  order : int array;
  preds : int -> int list;
  scratch : scratch;
  mutable finishes : int array option;
      (* All distinct instance finishes of the task graph's elements,
         ascending; built lazily on the first completion question so
         pure containment checks don't pay for it. *)
}

let make_ctx g tg trace =
  {
    g;
    tg;
    trace;
    order = Array.of_list (Task_graph.topological_order tg);
    preds = Rt_graph.Digraph.pred (Task_graph.graph tg);
    scratch =
      { assignment = Array.make (Task_graph.size tg) None; used = [] };
    finishes = None;
  }

let finishes_of ctx =
  match ctx.finishes with
  | Some a -> a
  | None ->
      let a =
        Task_graph.elements_used ctx.tg
        |> List.concat_map (fun e ->
               Array.to_list (Trace.instances ctx.trace e)
               |> List.map (fun (i : Trace.instance) -> i.finish))
        |> List.sort_uniq Int.compare
        |> Array.of_list
      in
      ctx.finishes <- Some a;
      a

(* Core backtracking search; on success the witness assignment is left
   in [ctx.scratch.assignment]. *)
let search ctx ~t0 ~t1 =
  Perf.incr Perf.windows_checked;
  let sc = ctx.scratch in
  let assignment = sc.assignment in
  Array.fill assignment 0 (Array.length assignment) None;
  sc.used <- [];
  let order = ctx.order in
  let n = Array.length order in
  let tg = ctx.tg in
  let trace = ctx.trace in
  let rec assign pos =
    if pos = n then true
    else
      let v = order.(pos) in
      let e = Task_graph.element_of_node tg v in
      let ready =
        List.fold_left
          (fun acc u ->
            match assignment.(u) with
            | Some (inst : Trace.instance) -> max acc inst.finish
            | None -> assert false)
          t0 (ctx.preds v)
      in
      let insts = Trace.instances trace e in
      let start_idx =
        match Trace.first_index_at_or_after trace ~elem:e ~time:ready with
        | Some i -> i
        | None -> Array.length insts
      in
      let rec try_from i =
        if i >= Array.length insts then false
        else
          let inst = insts.(i) in
          if inst.start >= t1 || inst.finish > t1 then false
            (* starts are ascending, so later instances also overflow *)
          else if List.exists (fun (e', i') -> e' = e && i' = i) sc.used
          then try_from (i + 1)
          else begin
            assignment.(v) <- Some inst;
            sc.used <- (e, i) :: sc.used;
            if assign (pos + 1) then true
            else begin
              (* stack discipline: a failed [assign] leaves [used] as it
                 found it, so the head is exactly our push *)
              (sc.used <- (match sc.used with _ :: tl -> tl | [] -> []));
              assignment.(v) <- None;
              try_from (i + 1)
            end
          end
      in
      try_from start_idx
  in
  assign 0

let executes_within g tg trace ~t0 ~t1 =
  let ctx = make_ctx g tg trace in
  if search ctx ~t0 ~t1 then
    Some
      (List.init (Task_graph.size tg) (fun v ->
           match ctx.scratch.assignment.(v) with
           | Some inst -> (v, inst)
           | None -> assert false))
  else None

let contains_execution g tg trace ~t0 ~t1 =
  let ctx = make_ctx g tg trace in
  search ctx ~t0 ~t1

(* First index with [a.(i) > v] (array ascending), or [length a]. *)
let first_above a v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > v then hi := mid else lo := mid + 1
  done;
  !lo

(* Smallest window end: containment in [from, t1) is monotone in t1 and
   candidate ends are instance finishes.  [limit] bounds the trace
   horizon this question may look at (so several constraints can share
   one long trace and still answer exactly as if each had built its own
   shorter one). *)
let next_completion_ctx ?(floor = 0) ctx ~limit ~from =
  if search ctx ~t0:from ~t1:limit then begin
    let finishes = finishes_of ctx in
    (* [floor] is a caller-supplied lower bound on the answer (e.g. the
       completion of an earlier window start — completions are monotone
       in [from]); finishes below it need not be probed. *)
    let lo0 = max (first_above finishes from) (first_above finishes (floor - 1)) in
    let hi0 = first_above finishes limit - 1 in
    let rec bsearch lo hi =
      (* invariant: containment holds for finishes.(hi), fails below lo *)
      if lo >= hi then finishes.(hi)
      else
        let mid = (lo + hi) / 2 in
        if search ctx ~t0:from ~t1:finishes.(mid) then bsearch lo mid
        else bsearch (mid + 1) hi
    in
    Some (bsearch lo0 hi0)
  end
  else None

let next_completion g tg trace ~from =
  let ctx = make_ctx g tg trace in
  next_completion_ctx ctx ~limit:(Trace.horizon trace) ~from

module Cache = struct
  type t = ctx

  let create g tg trace = make_ctx g tg trace

  let next_completion c ~from =
    next_completion_ctx c ~limit:(Trace.horizon c.trace) ~from

  let contains_execution c ~t0 ~t1 = search c ~t0 ~t1
end

(* Horizon sufficient for every next_completion question asked below:
   each task-graph node's instance lies within (its weight + 1) cycles of
   its ready time once the schedule repeats, so (total weight + size + 3)
   cycles past the latest question time always suffices for well-formed
   schedules in which every element of the task graph occurs. *)
let analysis_horizon g tg sched ~last_question =
  let cycle = Schedule.length sched in
  let w = Task_graph.computation_time g tg in
  last_question + ((w + Task_graph.size tg + 3) * cycle)

let elements_all_present g tg sched =
  List.for_all
    (fun e -> Comm_graph.weight g e > 0 && Schedule.occurrences sched e > 0)
    (Task_graph.elements_used tg)

(* Instance periodicity: when each element's slot count per cycle is a
   whole number of executions, the trace's instance decomposition
   repeats with the cycle, so completion questions depend only on the
   question time modulo the cycle.  True for every schedule that passes
   [Schedule.validate]; checked explicitly so the memo is never applied
   to a trace where it would be unsound. *)
let instance_periodic g tg sched =
  List.for_all
    (fun e ->
      let w = Comm_graph.weight g e in
      w > 0 && Schedule.occurrences sched e mod w = 0)
    (Task_graph.elements_used tg)

(* Smallest divisor d of the schedule length such that the slot array
   repeats with period d.  Equals the length for schedules with no
   shorter pattern; strictly smaller for unrolled schedules. *)
let slot_period sched =
  let n = Schedule.length sched in
  let slots = Schedule.slots sched in
  let repeats d =
    n mod d = 0
    &&
    try
      for i = d to n - 1 do
        if slots.(i) <> slots.(i - d) then raise Exit
      done;
      true
    with Exit -> false
  in
  let rec first d = if d >= n then n else if repeats d then d else first (d + 1) in
  if n <= 1 then n else first 1

(* The soundness condition of [instance_periodic], checked at an
   arbitrary candidate period [d] dividing the length: slots must repeat
   with [d] and each element's occurrence count within one [d]-window
   must be a whole number of executions — then the trace's instance
   decomposition repeats with [d] and any completion question depends
   only on its time modulo [d]. *)
let instance_periodic_at g tg sched ~d =
  let slots = Schedule.slots sched in
  List.for_all
    (fun e ->
      let w = Comm_graph.weight g e in
      let occ = ref 0 in
      for i = 0 to d - 1 do
        match slots.(i) with
        | Schedule.Run e' when e' = e -> incr occ
        | _ -> ()
      done;
      w > 0 && !occ mod w = 0)
    (Task_graph.elements_used tg)

(* The period at which the residue memo (and the candidate enumeration
   of [latency_argmax_ctx]) may safely operate: the slot period when
   the instance decomposition also repeats there, the full length when
   only the full cycle qualifies, [None] when even the full cycle's
   decomposition is aperiodic (ill-formed schedule — no memo). *)
let memo_cycle ~slot_period:d g tg sched =
  let n = Schedule.length sched in
  if d < n && instance_periodic_at g tg sched ~d then Some d
  else if instance_periodic g tg sched then Some n
  else None

(* next_completion is a non-decreasing step function of the window
   start t, constant except where an instance of one of the task
   graph's elements stops being available — i.e. at t = start + 1.
   On each constancy interval, completion - t peaks at the left end,
   so it suffices to evaluate t = 0 and t = s + 1 for every instance
   start s within the first cycle.  Instance starts ascend, so the
   scan stops at the first start past the cycle instead of walking
   the whole trace. *)
let window_start_candidates ctx ~cycle =
  let trace = ctx.trace in
  let cands =
    List.concat_map
      (fun e ->
        let insts = Trace.instances trace e in
        let rec take i acc =
          if i >= Array.length insts then acc
          else
            let s = (insts.(i) : Trace.instance).start in
            if s + 1 >= cycle then acc else take (i + 1) ((s + 1) :: acc)
        in
        take 0 [])
      (Task_graph.elements_used ctx.tg)
  in
  List.sort_uniq Int.compare (0 :: cands)

let latency_argmax_ctx ctx ~cycle ~limit =
  let candidates = window_start_candidates ctx ~cycle in
  (* Candidates ascend, and next_completion is monotone in the window
     start, so each question's answer floors the next one's bisection
     range — the per-question cost drops from O(log horizon) searches
     to O(log gap). *)
  let rec worst ts ~floor acc =
    match ts with
    | [] -> Some acc
    | t :: rest -> (
        match next_completion_ctx ~floor ctx ~limit ~from:t with
        | None -> None
        | Some f ->
            let _, best_lat = acc in
            worst rest ~floor:f (if f - t > best_lat then (t, f - t) else acc))
  in
  worst candidates ~floor:0 (0, 0)

let latency_argmax g sched tg =
  if not (elements_all_present g tg sched) then None
  else begin
    let cycle = Schedule.length sched in
    let horizon = analysis_horizon g tg sched ~last_question:cycle in
    let trace = Trace.of_schedule g sched ~horizon in
    let ctx = make_ctx g tg trace in
    latency_argmax_ctx ctx ~cycle ~limit:horizon
  end

let latency g sched tg = Option.map snd (latency_argmax g sched tg)

let worst_window g sched tg =
  Option.map (fun (t, lat) -> (t, t + lat)) (latency_argmax g sched tg)

let meets_asynchronous g sched (c : Timing.t) =
  match latency g sched c.graph with
  | Some k -> k <= c.deadline
  | None -> false

(* Batched form of [meets_asynchronous]: one trace at the largest
   analysis horizon serves every constraint, each questioned under its
   own [limit] so the answers are exactly those of the per-constraint
   builds.  Verifying a candidate schedule against k constraints this
   way pays one [Trace.of_schedule] instead of k — on the game engine's
   small-model path the trace build is most of the solve. *)
let meets_all_asynchronous g sched cs =
  cs = []
  || (* Presence is a property of the schedule alone — reject before
        paying for the trace unroll (the bypass probes many candidate
        schedules that fail exactly here). *)
  List.for_all (fun (c : Timing.t) -> elements_all_present g c.graph sched) cs
  &&
  let cycle = Schedule.length sched in
  let horizon_of (c : Timing.t) =
    analysis_horizon g c.graph sched ~last_question:cycle
  in
  (* A yes/no question is cheaper than the argmax: the worst latency is
     within the deadline iff every candidate window [t, t + deadline)
     contains an execution — one containment search per candidate, no
     completion bisection and no sorted-finishes build.  Clamping the
     window end to the analysis horizon is exact (any completion lies
     within it) and dodges overflow on huge deadlines.  Window starts
     stay below the cycle, so the trace only needs to reach the last
     window end — usually cycle + deadline, far short of the full
     analysis horizon. *)
  let max_h =
    List.fold_left
      (fun acc (c : Timing.t) ->
        let l = horizon_of c in
        let need = if c.deadline >= l - cycle then l else cycle + c.deadline in
        max acc need)
      cycle cs
  in
  let trace = Trace.of_schedule g sched ~horizon:max_h in
  List.for_all
    (fun (c : Timing.t) ->
      let ctx = make_ctx g c.graph trace in
      let limit = horizon_of c in
      List.for_all
        (fun t ->
          let t1 = if c.deadline >= limit - t then limit else t + c.deadline in
          search ctx ~t0:t ~t1)
        (window_start_candidates ctx ~cycle))
    cs

(* The residue memo is capped: schedules with huge memo cycles (lcm-
   driven) would otherwise grow the table one entry per distinct
   residue for the whole run.  Eviction is FIFO over insertion order —
   each entry is a pure re-derivable answer, so dropping one costs a
   repeated containment search, never a different verdict.  The cap is
   far above every bench workload's residue count, so default runs
   never evict and the pinned cache_hits/cache_misses counters are
   unchanged. *)
let memo_cap = 1 lsl 16

let cache_size_gauge = Rt_obs.Metrics.gauge "cache/size"
let cache_evictions_ctr = Rt_obs.Metrics.counter "cache/evictions"

type memo = {
  m_cycle : int;
  m_tbl : (int, int option) Hashtbl.t;
  m_order : int Queue.t; (* insertion order, for FIFO eviction *)
}

let make_memo cycle =
  { m_cycle = cycle; m_tbl = Hashtbl.create 64; m_order = Queue.create () }

(* Store a fresh residue answer.  The residue is absent (we only store
   after a miss), so the queue holds each live key exactly once. *)
let memo_store memo r rel =
  if Hashtbl.length memo.m_tbl >= memo_cap then begin
    match Queue.take_opt memo.m_order with
    | Some oldest ->
        Hashtbl.remove memo.m_tbl oldest;
        Rt_obs.Metrics.incr cache_evictions_ctr
    | None -> ()
  end;
  Hashtbl.replace memo.m_tbl r rel;
  Queue.add r memo.m_order;
  Rt_obs.Metrics.set cache_size_gauge (Hashtbl.length memo.m_tbl)

(* Worst response over the periodic invocations, optionally memoized
   per (invocation time mod cycle).  [memo] must only be supplied when
   [instance_periodic] holds for the schedule the trace unrolls. *)
let periodic_response_ctx ?memo ctx ~limit (c : Timing.t) ~super =
  let n_invocations = super / c.period in
  let question t =
    match memo with
    | None -> next_completion_ctx ctx ~limit ~from:t
    | Some memo -> (
        let r = t mod memo.m_cycle in
        match Hashtbl.find_opt memo.m_tbl r with
        | Some rel ->
            Perf.incr Perf.cache_hits;
            Option.map (fun d -> t + d) rel
        | None ->
            Perf.incr Perf.cache_misses;
            let answer = next_completion_ctx ctx ~limit ~from:t in
            memo_store memo r (Option.map (fun f -> f - t) answer);
            answer)
  in
  let rec worst k acc =
    if k >= n_invocations then Some acc
    else
      let t = c.offset + (k * c.period) in
      match question t with
      | None -> None
      | Some f -> worst (k + 1) (max acc (f - t))
  in
  worst 0 0

let periodic_response g sched (c : Timing.t) =
  if not (elements_all_present g c.graph sched) then None
  else begin
    let cycle = Schedule.length sched in
    match Rt_graph.Intmath.lcm c.period cycle with
    | exception Rt_graph.Intmath.Overflow ->
        (* Phase structure too large to enumerate: report "no bound
           established" rather than crash. *)
        None
    | super ->
        let horizon = analysis_horizon g c.graph sched ~last_question:super in
        let trace = Trace.of_schedule g sched ~horizon in
        let ctx = make_ctx g c.graph trace in
        let memo =
          match
            memo_cycle ~slot_period:(slot_period sched) g c.graph sched
          with
          | Some d -> Some (make_memo d)
          | None -> None
        in
        periodic_response_ctx ?memo ctx ~limit:horizon c ~super
  end

let meets_periodic g sched (c : Timing.t) =
  match periodic_response g sched c with
  | Some r -> r <= c.deadline
  | None -> false

type verdict = {
  constraint_name : string;
  kind : Timing.kind;
  bound : int;
  achieved : int option;
  ok : bool;
}

let verdict_of (c : Timing.t) achieved =
  let ok = match achieved with Some k -> k <= c.deadline | None -> false in
  { constraint_name = c.name; kind = c.kind; bound = c.deadline; achieved; ok }

(* Cached verification: one trace long enough for every constraint's
   questions is unrolled once and shared; each constraint's questions
   are clamped to the horizon it would have used on its own, so the
   verdicts are identical to the uncached path. *)
let verify_cached (m : Model.t) sched =
  let g = m.comm in
  let cycle = Schedule.length sched in
  let plans =
    List.map
      (fun (c : Timing.t) ->
        if not (elements_all_present g c.graph sched) then `Unbounded c
        else
          match c.kind with
          | Timing.Asynchronous ->
              `Async (c, analysis_horizon g c.graph sched ~last_question:cycle)
          | Timing.Periodic -> (
              match Rt_graph.Intmath.lcm c.period cycle with
              | exception Rt_graph.Intmath.Overflow -> `Unbounded c
              | super ->
                  `Periodic
                    ( c,
                      super,
                      analysis_horizon g c.graph sched ~last_question:super )))
      m.constraints
  in
  let max_horizon =
    List.fold_left
      (fun acc -> function
        | `Unbounded _ -> acc
        | `Async (_, h) -> max acc h
        | `Periodic (_, _, h) -> max acc h)
      cycle plans
  in
  let trace = Trace.of_schedule g sched ~horizon:max_horizon in
  let sp = slot_period sched in
  List.map
    (function
      | `Unbounded c -> verdict_of c None
      | `Async ((c : Timing.t), h) ->
          let ctx = make_ctx g c.graph trace in
          (* The trace repeats with the memo cycle, so the worst window
             start lies within the first such cycle; enumerating only
             those candidates yields the same argmax. *)
          let acycle =
            match memo_cycle ~slot_period:sp g c.graph sched with
            | Some d -> d
            | None -> cycle
          in
          verdict_of c
            (Option.map snd (latency_argmax_ctx ctx ~cycle:acycle ~limit:h))
      | `Periodic ((c : Timing.t), super, h) ->
          let ctx = make_ctx g c.graph trace in
          let memo =
            match memo_cycle ~slot_period:sp g c.graph sched with
            | Some d -> Some (make_memo d)
            | None -> None
          in
          verdict_of c (periodic_response_ctx ?memo ctx ~limit:h c ~super))
    plans

let verify ?(cached = true) (m : Model.t) sched =
  (match Schedule.validate m.comm sched with
  | Ok () -> ()
  | Error errs ->
      invalid_arg ("Latency.verify: ill-formed schedule: " ^ String.concat "; " errs));
  Rt_obs.Tracer.span ~cat:"latency"
    (if cached then "latency/verify" else "latency/verify-uncached")
  @@ fun () ->
  if cached then verify_cached m sched
  else
    (* Reference path: per-constraint traces, no periodicity memo —
       the pre-cache engine, kept as an independent oracle for the
       property tests and the E14 baseline. *)
    let g = m.comm in
    let cycle = Schedule.length sched in
    List.map
      (fun (c : Timing.t) ->
        let achieved =
          if not (elements_all_present g c.graph sched) then None
          else
            match c.kind with
            | Timing.Asynchronous -> latency g sched c.graph
            | Timing.Periodic -> (
                match Rt_graph.Intmath.lcm c.period cycle with
                | exception Rt_graph.Intmath.Overflow -> None
                | super ->
                    let horizon =
                      analysis_horizon g c.graph sched ~last_question:super
                    in
                    let trace = Trace.of_schedule g sched ~horizon in
                    let ctx = make_ctx g c.graph trace in
                    periodic_response_ctx ctx ~limit:horizon c ~super)
        in
        verdict_of c achieved)
      m.constraints

let verify_budgeted ?cached ~budget (m : Model.t) sched =
  (* Cooperative cut between constraint analyses: each constraint's
     verdict is computed by the plain engine on a single-constraint
     submodel (identical verdicts — [verify] is per-constraint
     modular), with one budget check before each. *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (c : Timing.t) :: rest ->
        if not (Budget.spend budget 1) then
          Error
            (Option.value ~default:"budget exhausted" (Budget.exhausted budget))
        else
          let sub = Model.make ~comm:m.comm ~constraints:[ c ] in
          let v =
            match verify ?cached sub sched with
            | [ v ] -> v
            | _ -> assert false (* one constraint in, one verdict out *)
          in
          go (v :: acc) rest
  in
  go [] m.constraints

let all_ok vs = List.for_all (fun v -> v.ok) vs

let pp_verdict fmt v =
  Format.fprintf fmt "%s [%s] d=%d %s=%s: %s" v.constraint_name
    (Timing.kind_to_string v.kind)
    v.bound
    (match v.kind with
    | Timing.Asynchronous -> "latency"
    | Timing.Periodic -> "response")
    (match v.achieved with Some k -> string_of_int k | None -> "unbounded")
    (if v.ok then "OK" else "VIOLATED")
