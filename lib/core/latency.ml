(* The containment search assigns execution instances to task-graph nodes
   by depth-first search in topological order with full backtracking.
   Task graphs are small (the paper's examples have <= 6 nodes) and a
   window of length d contains at most d/w instances per element, so the
   search space is tiny in practice; backtracking is required for
   correctness when several nodes map to the same element or when an
   early greedy choice starves a successor (see test_latency.ml for a
   concrete such case). *)

let executes_within g tg trace ~t0 ~t1 =
  let order = Array.of_list (Task_graph.topological_order tg) in
  let n = Array.length order in
  let assignment = Array.make (Task_graph.size tg) None in
  let used : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let preds = Rt_graph.Digraph.pred (Task_graph.graph tg) in
  let rec assign pos =
    if pos = n then true
    else
      let v = order.(pos) in
      let e = Task_graph.element_of_node tg v in
      let ready =
        List.fold_left
          (fun acc u ->
            match assignment.(u) with
            | Some (inst : Trace.instance) -> max acc inst.finish
            | None -> assert false)
          t0 (preds v)
      in
      let insts = Trace.instances trace e in
      let start_idx =
        match Trace.first_index_at_or_after trace ~elem:e ~time:ready with
        | Some i -> i
        | None -> Array.length insts
      in
      let rec try_from i =
        if i >= Array.length insts then false
        else
          let inst = insts.(i) in
          if inst.start >= t1 || inst.finish > t1 then false
            (* starts are ascending, so later instances also overflow *)
          else if Hashtbl.mem used (e, i) then try_from (i + 1)
          else begin
            assignment.(v) <- Some inst;
            Hashtbl.add used (e, i) ();
            if assign (pos + 1) then true
            else begin
              Hashtbl.remove used (e, i);
              assignment.(v) <- None;
              try_from (i + 1)
            end
          end
      in
      try_from start_idx
  in
  ignore g;
  if assign 0 then
    Some
      (List.init (Task_graph.size tg) (fun v ->
           match assignment.(v) with
           | Some inst -> (v, inst)
           | None -> assert false))
  else None

let contains_execution g tg trace ~t0 ~t1 =
  Option.is_some (executes_within g tg trace ~t0 ~t1)

let next_completion g tg trace ~from =
  (* Binary search over the candidate window ends: containment in
     [from, t1) is monotone in t1.  Candidates are instance finishes. *)
  let horizon = Trace.horizon trace in
  if contains_execution g tg trace ~t0:from ~t1:horizon then begin
    let finishes =
      Task_graph.elements_used tg
      |> List.concat_map (fun e ->
             Array.to_list (Trace.instances trace e)
             |> List.filter_map (fun (i : Trace.instance) ->
                    if i.finish > from then Some i.finish else None))
      |> List.sort_uniq Int.compare
      |> Array.of_list
    in
    let rec bsearch lo hi =
      (* invariant: containment holds for finishes.(hi), fails below lo *)
      if lo >= hi then finishes.(hi)
      else
        let mid = (lo + hi) / 2 in
        if contains_execution g tg trace ~t0:from ~t1:finishes.(mid) then
          bsearch lo mid
        else bsearch (mid + 1) hi
    in
    Some (bsearch 0 (Array.length finishes - 1))
  end
  else None

(* Horizon sufficient for every next_completion question asked below:
   each task-graph node's instance lies within (its weight + 1) cycles of
   its ready time once the schedule repeats, so (total weight + size + 3)
   cycles past the latest question time always suffices for well-formed
   schedules in which every element of the task graph occurs. *)
let analysis_horizon g tg sched ~last_question =
  let cycle = Schedule.length sched in
  let w = Task_graph.computation_time g tg in
  last_question + ((w + Task_graph.size tg + 3) * cycle)

let elements_all_present g tg sched =
  List.for_all
    (fun e -> Comm_graph.weight g e > 0 && Schedule.occurrences sched e > 0)
    (Task_graph.elements_used tg)

let latency_argmax g sched tg =
  if not (elements_all_present g tg sched) then None
  else begin
    let cycle = Schedule.length sched in
    let horizon = analysis_horizon g tg sched ~last_question:cycle in
    let trace = Trace.of_schedule g sched ~horizon in
    (* next_completion is a non-decreasing step function of the window
       start t, constant except where an instance of one of the task
       graph's elements stops being available — i.e. at t = start + 1.
       On each constancy interval, completion - t peaks at the left end,
       so it suffices to evaluate t = 0 and t = s + 1 for every instance
       start s within the first cycle. *)
    let candidates =
      0
      :: (Task_graph.elements_used tg
         |> List.concat_map (fun e ->
                Array.to_list (Trace.instances trace e)
                |> List.filter_map (fun (i : Trace.instance) ->
                       if i.start + 1 < cycle then Some (i.start + 1) else None)))
      |> List.sort_uniq Int.compare
    in
    let rec worst ts acc =
      match ts with
      | [] -> Some acc
      | t :: rest -> (
          match next_completion g tg trace ~from:t with
          | None -> None
          | Some f ->
              let _, best_lat = acc in
              worst rest (if f - t > best_lat then (t, f - t) else acc))
    in
    worst candidates (0, 0)
  end

let latency g sched tg = Option.map snd (latency_argmax g sched tg)

let worst_window g sched tg =
  Option.map (fun (t, lat) -> (t, t + lat)) (latency_argmax g sched tg)

let meets_asynchronous g sched (c : Timing.t) =
  match latency g sched c.graph with
  | Some k -> k <= c.deadline
  | None -> false

let periodic_response g sched (c : Timing.t) =
  if not (elements_all_present g c.graph sched) then None
  else begin
    let cycle = Schedule.length sched in
    match Rt_graph.Intmath.lcm c.period cycle with
    | exception Rt_graph.Intmath.Overflow ->
        (* Phase structure too large to enumerate: report "no bound
           established" rather than crash. *)
        None
    | super ->
        let horizon = analysis_horizon g c.graph sched ~last_question:super in
        let trace = Trace.of_schedule g sched ~horizon in
        let n_invocations = super / c.period in
        let rec worst k acc =
          if k >= n_invocations then Some acc
          else
            let t = c.offset + (k * c.period) in
            match next_completion g c.graph trace ~from:t with
            | None -> None
            | Some f -> worst (k + 1) (max acc (f - t))
        in
        worst 0 0
  end

let meets_periodic g sched (c : Timing.t) =
  match periodic_response g sched c with
  | Some r -> r <= c.deadline
  | None -> false

type verdict = {
  constraint_name : string;
  kind : Timing.kind;
  bound : int;
  achieved : int option;
  ok : bool;
}

let verify (m : Model.t) sched =
  (match Schedule.validate m.comm sched with
  | Ok () -> ()
  | Error errs ->
      invalid_arg ("Latency.verify: ill-formed schedule: " ^ String.concat "; " errs));
  List.map
    (fun (c : Timing.t) ->
      let achieved =
        match c.kind with
        | Timing.Asynchronous -> latency m.comm sched c.graph
        | Timing.Periodic -> periodic_response m.comm sched c
      in
      let ok = match achieved with Some k -> k <= c.deadline | None -> false in
      { constraint_name = c.name; kind = c.kind; bound = c.deadline; achieved; ok })
    m.constraints

let all_ok vs = List.for_all (fun v -> v.ok) vs

let pp_verdict fmt v =
  Format.fprintf fmt "%s [%s] d=%d %s=%s: %s" v.constraint_name
    (Timing.kind_to_string v.kind)
    v.bound
    (match v.kind with
    | Timing.Asynchronous -> "latency"
    | Timing.Periodic -> "response")
    (match v.achieved with Some k -> string_of_int k | None -> "unbounded")
    (if v.ok then "OK" else "VIOLATED")
