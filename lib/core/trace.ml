include Rt_base.Trace
