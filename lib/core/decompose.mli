(** Interaction-component decomposition of a model.

    Two timing constraints {e interact} when their task graphs share a
    functional element: whatever a schedule does for one can affect the
    windows available to the other.  Constraints whose element sets are
    disjoint interact only through slot occupancy, which the interleave
    step below resolves.  The {e interaction graph} is therefore the
    constraint–element bipartite graph; its connected components
    partition the constraint set, and each component can be synthesized
    or decided independently.

    Component submodels keep the {e whole} communication graph, so all
    schedules remain over one shared element-id space and interleave
    without renaming; the exact engines and EDF derive their working
    element sets from the constraints, so an unconstrained element costs
    nothing.

    The interleave is {e not} sound by construction (it preserves each
    component schedule's internal spacing only approximately), so every
    caller must re-verify the merged schedule against the whole model
    and fall back to the undecomposed path on failure — decomposition is
    an accelerator, never an authority.  The one {e definitive} signal a
    component can produce is exact infeasibility: a component's
    constraints are a subset of the model's, so a completed exact search
    proving the submodel infeasible proves the whole model infeasible. *)

type component = {
  rank : int;  (** position in the deterministic component order *)
  indices : int list;
      (** indices into the model's constraint list, ascending *)
  constraints : Timing.t list;  (** in declaration order *)
  elements : int list;  (** sorted element ids the component touches *)
}

val components : Model.t -> component list
(** Connected components of the interaction graph, ordered by first
    constraint index (deterministic under constraint reordering within a
    component).  Elements no constraint touches belong to no component.
    A model with no constraints has no components. *)

val submodel : Model.t -> component -> Model.t
(** The component's constraints over the model's full communication
    graph. *)

val representatives : Model.t -> Model.t * int
(** [representatives m] drops constraints dominated by a sibling with
    the same kind, period, offset and task graph but a smaller-or-equal
    deadline, returning the reduced model and the number dropped.  Sound
    for verification-driven synthesis: a window of the minimum deadline
    is contained in every larger window over the same graph, for both
    asynchronous and periodic constraints.  Kept constraints appear in
    original order at their class's first position.  Callers that need
    the {e definitive}-infeasibility property keep it: the reduced
    constraint set is a subset of the original. *)

val interaction_key : Model.t -> component -> string
(** A structural key for the component: the sorted multiset of its
    constraints' (kind, period, deadline, offset, task graph over global
    element ids).  Equal keys mean the submodels are equal up to
    constraint names and order, so a schedule solving one solves the
    other — the basis of the daemon's component-schedule cache.  Always
    pair a cache hit with whole-model re-verification downstream. *)

val interleave :
  Comm_graph.t -> Schedule.t list -> (Schedule.t, string) result
(** Merge component schedules into one cycle of length
    [lcm] of the component cycle lengths.  Each component's maximal
    same-element slot runs are placed as atomic blocks (preserving
    non-pipelinable contiguity) at the first idle run at or after their
    native position, never earlier than the previous block of the same
    component (preserving intra-component execution order).  Fails —
    rather than producing a wrong schedule — when the lcm overflows or
    exceeds a safety cap, when blocks do not fit, or when the result is
    not well-formed.  The result {e must} still be verified against the
    whole model by the caller. *)

val map_components :
  ?pool:Rt_par.Pool.t ->
  solve:(sub:Model.t -> component -> 'a) ->
  Model.t ->
  component list ->
  'a list
(** Fan the components out on [pool] (order-preserving, deterministic;
    sequential without a pool or on a 1-job pool), calling
    [solve ~sub c] with [sub] = {!representatives} of {!submodel}.
    Updates the [decompose/*] metrics: the component counter, the
    largest-component gauge and the per-component solve-time histogram.
    Callers account [decompose/component_solves] (and [..._reuses])
    themselves, since only they know whether a component was answered
    from a cache. *)
