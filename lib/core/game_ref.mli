(** The frozen PR-4 game engine, kept as an independent oracle.

    This is the state-space simulation-game solver exactly as it stood
    before the packed-state rewrite in {!Game}: heap-allocated
    [int array] states, a linear CAS-list antichain, and a per-solve
    32-shard transposition table.  {!Game.solve ?impl} dispatches here
    with [~impl:`Reference]; the equivalence tests and bench E15 use it
    to pin the packed engine's verdicts and schedules bit-for-bit.

    Semantics, verdicts, counters and the pooled determinism guarantee
    are documented in {!Game} — the two engines implement the same
    contract. *)

type outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Timeout of string
      (** A caller-supplied {!Budget.t} ran out (the payload is the
          reason) before the game graph was exhausted.  Distinct from
          [Unknown]: the search was cut off by the caller's resource
          bound, not by the engine's own state cap. *)
  | Unknown of string

type stats = { explored : int; outcome : outcome }

type table = (int array, unit) Rt_par.Shard_tbl.t
(** A resident dead-fact (transposition) table.  Concrete (unlike the
    abstract {!Game.table}) so [Game] can thread one table through
    either implementation.  "State [s] is dead" is
    a property of the model alone — independent of the path or budget
    under which it was proven — so a table may be reused across many
    {!solve} calls on the {e same} model (and granularity): facts a
    timed-out solve derived still speed up the next attempt.  Reuse
    across different models is unsound; key resident tables by model
    digest. *)

val table : ?cap:int -> unit -> table
(** [table ()] creates an empty resident table ([cap] defaults to the
    engine's 2M-entry cap; the cap evicts approximately-FIFO and only
    ever costs re-derivation). *)

val table_size : table -> int
(** Number of dead facts currently resident (approximate under
    concurrent use). *)

val solve :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?table:table ->
  ?max_states:int ->
  granularity:[ `Unit | `Atomic ] ->
  Model.t ->
  stats
(** [solve ~granularity m] decides feasibility of [m]'s asynchronous
    constraints by reachable-cycle search over the game graph.

    [`Unit] plays one slot per edge and requires every used element to
    have unit weight (the caller — {!Exact.enumerate} — validates
    this); [`Atomic] plays one whole execution block (or one idle
    slot) per edge, keeping executions contiguous, matching
    {!Exact.enumerate_atomic} and {!Exact.solve_single_ops}.  When all
    constraints are single operations both granularities reduce to the
    budget-vector game and are solved as such.

    [max_states] (default 500_000) bounds the number of distinct
    states expanded; exhausting it yields [Unknown], never a wrong
    [Infeasible].  [budget] adds a caller-owned wall-clock/fuel bound
    checked cooperatively at every state expansion; exhausting it
    yields [Timeout].  With no [budget] the exploration is bit-for-bit
    the default path (the bench counters pin it).  [explored] counts
    expanded states.  Counters:
    {!Rt_par.Perf.game_states}, {!Rt_par.Perf.table_hits},
    {!Rt_par.Perf.table_misses}, {!Rt_par.Perf.dominance_kills}.

    [table] supplies a resident transposition table (see {!type-table})
    shared across solves of the same model; without it each solve gets
    a fresh one.  The transposition table is capped (2M entries, split
    over its shards) so adversarial long runs cannot grow it without
    bound; the cap evicts approximately-FIFO and only ever costs
    re-derivation.
    The default [max_states] keeps default runs far below the cap, so
    they never evict and stay bit-identical to the uncapped engine.
    Each solve publishes the final table size as the
    [Rt_obs.Metrics] gauge ["game/table_size"] and accumulates
    cap-forced drops on the counter ["game/table_evictions"]. *)
