type plan = {
  model_used : Model.t;
  schedule : Schedule.t;
  verdicts : Latency.verdict list;
  merge_report : Merge.report option;
  polling : (string * int * int) list;
  hyperperiod : int;
}

type error = { stage : string; message : string }

let fail stage fmt = Printf.ksprintf (fun message -> Error { stage; message }) fmt

(* Candidate polling periods for an asynchronous constraint with
   computation time w and latency bound d.  Any q with
   w <= d + 1 - q (the polling job fits its relative deadline
   D = d + 1 - q) and D <= q (at most one outstanding job) preserves the
   latency bound, because consecutive polling completions satisfy
   f_{k+1} <= r_k + q + D <= s_k + d + 1.  Larger q costs less processor
   time; smaller q leaves EDF more slack. *)
let polling_candidates ~w ~d =
  if w > d then []
  else begin
    let q_max = d + 1 - w in
    let q_min = (d + 1 + 1) / 2 (* ceil((d+1)/2), ensures D <= q *) in
    let q_min = max q_min 1 in
    let q_max = max q_max q_min in
    let mid = (q_min + q_max) / 2 in
    let exact =
      List.sort_uniq Int.compare [ q_max; mid; q_min ]
      |> List.rev (* cheapest first *)
      |> List.filter (fun q -> q >= 1 && d + 1 - q >= w && d + 1 - q <= q)
      |> List.map (fun q -> (q, d + 1 - q))
    in
    (* Harmonic fallbacks: power-of-two periods keep the hyperperiod of
       the whole job set small (and latency verification cheap), at the
       cost of polling somewhat more often than the exact candidates.
       First a constrained-deadline variant at the largest power of two
       below q_max, then the implicit-deadline variant at the largest
       power of two with 2q <= d + 1. *)
    let harmonic_tight =
      let q = Rt_graph.Intmath.pow2_floor (max 1 q_max) in
      let dl = d + 1 - q in
      if dl >= w && dl <= q then [ (q, dl) ] else []
    in
    let harmonic_implicit =
      let q = Rt_graph.Intmath.pow2_floor (max 1 ((d + 1) / 2)) in
      if q >= w then [ (q, q) ] else []
    in
    exact @ harmonic_tight @ harmonic_implicit
    |> List.sort_uniq compare
    |> List.sort (fun (qa, _) (qb, _) -> Int.compare qb qa)
  end

let rec synthesize ?(merge = true) ?(pipeline = true)
    ?(backend = Edf_cyclic.Edf) ?(max_hyperperiod = 1_000_000) (m : Model.t) =
  match synthesize_once ~merge ~pipeline ~backend ~max_hyperperiod m with
  | Ok plan -> Ok plan
  | Error e when merge ->
      (* Merging tightens the merged deadline to the minimum of the
         group, which can hurt (e.g. a heavy graph absorbed into a
         tight-deadline sibling); fall back to the unmerged model. *)
      (match synthesize ~merge:false ~pipeline ~backend ~max_hyperperiod m with
      | Ok plan -> Ok plan
      | Error _ -> Error e)
  | Error e -> Error e

and synthesize_once ~merge ~pipeline ~backend ~max_hyperperiod (m : Model.t) =
  (* Stage 1: merge shared periodic work. *)
  let m, merge_report =
    if merge then
      let m', r = Merge.apply m in
      (m', Some r)
    else (m, None)
  in
  (* Stage 2: software pipelining. *)
  let m = if pipeline then (Pipeline.rewrite m).Pipeline.model else m in
  let bad_periodic =
    List.find_opt
      (fun (c : Timing.t) -> c.offset + c.deadline > c.period)
      (Model.periodic m)
  in
  match bad_periodic with
  | Some c ->
      fail "periodic"
        "constraint %s has offset %d + deadline %d > period %d; the cyclic \
         constructor requires each job to fit its period slice"
        c.name c.offset c.deadline c.period
  | None -> (
      (* Stage 3+4: pick polling periods for the asynchronous
         constraints and dispatch everything with EDF.  Candidate
         configurations are tried cheapest-first. *)
      let asyncs = Model.asynchronous m in
      let periodics = Model.periodic m in
      let candidate_lists =
        List.map
          (fun (c : Timing.t) ->
            let w = Timing.computation_time m.comm c in
            (c, polling_candidates ~w ~d:c.deadline))
          asyncs
      in
      match
        List.find_opt (fun (_, cands) -> cands = []) candidate_lists
      with
      | Some ((c : Timing.t), _) ->
          fail "polling"
            "asynchronous constraint %s cannot meet its latency bound: \
             computation time %d exceeds deadline %d"
            c.name
            (Timing.computation_time m.comm c)
            c.deadline
      | None -> (
          (* Round r picks the r-th candidate of each constraint
             (clamped), moving uniformly from cheapest to most slack. *)
          let max_round =
            List.fold_left
              (fun acc (_, cands) -> max acc (List.length cands))
              1 candidate_lists
          in
          let nth_clamped l r = List.nth l (min r (List.length l - 1)) in
          let attempt r =
            let picks =
              List.map (fun (c, cands) -> (c, nth_clamped cands r)) candidate_lists
            in
            let periods =
              List.map (fun (c : Timing.t) -> c.period) periodics
              @ List.map (fun (_, (q, _)) -> q) picks
            in
            match Rt_graph.Intmath.lcm_list periods with
            | exception Rt_graph.Intmath.Overflow -> None
            | hyperperiod when hyperperiod > max_hyperperiod || hyperperiod < 1
              ->
                None
            | hyperperiod -> (
                let jobs =
                  List.concat_map
                    (Edf_cyclic.jobs_of_periodic ~horizon:hyperperiod)
                    periodics
                  @ List.concat_map
                      (fun ((c : Timing.t), (q, dl)) ->
                        Edf_cyclic.jobs_of_polling ~horizon:hyperperiod
                          ~name:c.name ~graph:c.graph ~period:q
                          ~rel_deadline:dl)
                      picks
                in
                match
                  Edf_cyclic.build ~policy:backend m.comm
                    ~horizon:hyperperiod jobs
                with
                | Error _ -> None
                | Ok sched ->
                    let verdicts = Latency.verify m sched in
                    if Latency.all_ok verdicts then
                      Some
                        {
                          model_used = m;
                          schedule = sched;
                          verdicts;
                          merge_report;
                          polling =
                            List.map
                              (fun ((c : Timing.t), (q, dl)) -> (c.name, q, dl))
                              picks;
                          hyperperiod;
                        }
                    else None)
          in
          let rec rounds r =
            if r >= max_round then
              fail "edf"
                "no polling configuration produced a feasible schedule \
                 (tried %d rounds); the model may be infeasible or beyond \
                 this heuristic"
                max_round
            else match attempt r with Some p -> Ok p | None -> rounds (r + 1)
          in
          rounds 0))

let pp_plan (_orig : Model.t) fmt (p : plan) =
  Format.fprintf fmt "@[<v>hyperperiod: %d@,schedule: %s@,load: %.3f@,"
    p.hyperperiod
    (Schedule.to_string p.model_used.Model.comm p.schedule)
    (Schedule.load p.schedule);
  (match p.merge_report with
  | Some r when r.Merge.merged_groups <> [] ->
      List.iter
        (fun (names, into) ->
          Format.fprintf fmt "merged: %s -> %s@," (String.concat ", " names)
            into)
        r.Merge.merged_groups;
      Format.fprintf fmt "work per round: %d -> %d@," r.Merge.time_before
        r.Merge.time_after
  | _ -> ());
  List.iter
    (fun (name, q, d) ->
      Format.fprintf fmt "polling: %s every %d slots, deadline %d@," name q d)
    p.polling;
  List.iter (fun v -> Format.fprintf fmt "%a@," Latency.pp_verdict v) p.verdicts;
  Format.fprintf fmt "@]"

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.stage e.message
