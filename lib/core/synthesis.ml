type plan = {
  model_used : Model.t;
  schedule : Schedule.t;
  verdicts : Latency.verdict list;
  merge_report : Merge.report option;
  polling : (string * int * int) list;
  hyperperiod : int;
}

type error = { stage : string; message : string }

let fail stage fmt = Printf.ksprintf (fun message -> Error { stage; message }) fmt

(* Candidate polling periods for an asynchronous constraint with
   computation time w and latency bound d.  Any q with
   w <= d + 1 - q (the polling job fits its relative deadline
   D = d + 1 - q) and D <= q (at most one outstanding job) preserves the
   latency bound, because consecutive polling completions satisfy
   f_{k+1} <= r_k + q + D <= s_k + d + 1.  Larger q costs less processor
   time; smaller q leaves EDF more slack. *)
let polling_candidates ~w ~d =
  if w > d then []
  else begin
    let q_max = d + 1 - w in
    let q_min = (d + 1 + 1) / 2 (* ceil((d+1)/2), ensures D <= q *) in
    let q_min = max q_min 1 in
    let q_max = max q_max q_min in
    let mid = (q_min + q_max) / 2 in
    let exact =
      List.sort_uniq Int.compare [ q_max; mid; q_min ]
      |> List.rev (* cheapest first *)
      |> List.filter (fun q -> q >= 1 && d + 1 - q >= w && d + 1 - q <= q)
      |> List.map (fun q -> (q, d + 1 - q))
    in
    (* Harmonic fallbacks: power-of-two periods keep the hyperperiod of
       the whole job set small (and latency verification cheap), at the
       cost of polling somewhat more often than the exact candidates.
       First a constrained-deadline variant at the largest power of two
       below q_max, then the implicit-deadline variant at the largest
       power of two with 2q <= d + 1. *)
    let harmonic_tight =
      let q = Rt_graph.Intmath.pow2_floor (max 1 q_max) in
      let dl = d + 1 - q in
      if dl >= w && dl <= q then [ (q, dl) ] else []
    in
    let harmonic_implicit =
      let q = Rt_graph.Intmath.pow2_floor (max 1 ((d + 1) / 2)) in
      if q >= w then [ (q, q) ] else []
    in
    (* One ordered dedup: largest period first (cheapest), ties broken
       by tighter relative deadline.  Replaces the old sort_uniq + re-sort
       pair, whose final order this comparator reproduces exactly (the
       re-sort was stable, so equal periods kept ascending deadlines). *)
    exact @ harmonic_tight @ harmonic_implicit
    |> List.sort_uniq (fun (qa, da) (qb, db) ->
           match Int.compare qb qa with 0 -> Int.compare da db | c -> c)
  end

(* Everything computed before candidate rounds are tried, for one
   merge-or-not variant of the model: stages 1 (merge) and 2
   (pipelining) applied, polling candidates chosen per asynchronous
   constraint.  Pure preparation — cheap, no schedule is built. *)
type prep = {
  model : Model.t;
  merge_report : Merge.report option;
  candidate_lists : (Timing.t * (int * int) list) list;
  periodics : Timing.t list;
  max_round : int;
}

let prepare ~merge ~pipeline (m : Model.t) =
  (* Stage 1: merge shared periodic work. *)
  let m, merge_report =
    if merge then
      let m', r = Merge.apply m in
      (m', Some r)
    else (m, None)
  in
  (* Stage 2: software pipelining. *)
  let m = if pipeline then (Pipeline.rewrite m).Pipeline.model else m in
  let bad_periodic =
    List.find_opt
      (fun (c : Timing.t) -> c.offset + c.deadline > c.period)
      (Model.periodic m)
  in
  match bad_periodic with
  | Some c ->
      fail "periodic"
        "constraint %s has offset %d + deadline %d > period %d; the cyclic \
         constructor requires each job to fit its period slice"
        c.name c.offset c.deadline c.period
  | None -> (
      (* Stage 3: pick polling-period candidates for the asynchronous
         constraints, cheapest first. *)
      let asyncs = Model.asynchronous m in
      let periodics = Model.periodic m in
      let candidate_lists =
        List.map
          (fun (c : Timing.t) ->
            let w = Timing.computation_time m.comm c in
            (c, polling_candidates ~w ~d:c.deadline))
          asyncs
      in
      match List.find_opt (fun (_, cands) -> cands = []) candidate_lists with
      | Some ((c : Timing.t), _) ->
          fail "polling"
            "asynchronous constraint %s cannot meet its latency bound: \
             computation time %d exceeds deadline %d"
            c.name
            (Timing.computation_time m.comm c)
            c.deadline
      | None ->
          (* Round r picks the r-th candidate of each constraint
             (clamped), moving uniformly from cheapest to most slack. *)
          let max_round =
            List.fold_left
              (fun acc (_, cands) -> max acc (List.length cands))
              1 candidate_lists
          in
          Ok { model = m; merge_report; candidate_lists; periodics; max_round })

(* Stage 4 for one candidate round: dispatch everything with EDF over
   the hyperperiod and verify.  Self-contained and effect-free apart
   from Perf counters, so rounds can be evaluated concurrently. *)
let attempt ~backend ~max_hyperperiod (p : prep) r =
  let nth_clamped l r = List.nth l (min r (List.length l - 1)) in
  let picks =
    List.map (fun (c, cands) -> (c, nth_clamped cands r)) p.candidate_lists
  in
  let periodics = p.periodics in
  let m = p.model in
  let periods =
    List.map (fun (c : Timing.t) -> c.period) periodics
    @ List.map (fun (_, (q, _)) -> q) picks
  in
  match Rt_graph.Intmath.lcm_list periods with
  | exception Rt_graph.Intmath.Overflow -> None
  | hyperperiod when hyperperiod > max_hyperperiod || hyperperiod < 1 -> None
  | hyperperiod -> (
      let jobs =
        List.concat_map
          (Edf_cyclic.jobs_of_periodic ~horizon:hyperperiod)
          periodics
        @ List.concat_map
            (fun ((c : Timing.t), (q, dl)) ->
              Edf_cyclic.jobs_of_polling ~horizon:hyperperiod ~name:c.name
                ~graph:c.graph ~period:q ~rel_deadline:dl)
            picks
      in
      match Edf_cyclic.build ~policy:backend m.comm ~horizon:hyperperiod jobs with
      | Error _ -> None
      | Ok sched ->
          Rt_par.Perf.incr Rt_par.Perf.schedules_built;
          let verdicts = Latency.verify m sched in
          if Latency.all_ok verdicts then
            Some
              {
                model_used = m;
                schedule = sched;
                verdicts;
                merge_report = p.merge_report;
                polling =
                  List.map
                    (fun ((c : Timing.t), (q, dl)) -> (c.name, q, dl))
                    picks;
                hyperperiod;
              }
          else None)

(* The exact game engine decides feasibility for the asynchronous
   constraints only, so consulting it is meaningful exactly when the
   model has no periodic constraints and falls in one of the two
   decidable classes of Theorem 2: all-unit weights (slot granularity)
   or all-single-operation graphs (execution granularity). *)
let exact_eligible (m : Model.t) =
  let asyncs = Model.asynchronous m in
  if Model.periodic m <> [] || asyncs = [] then None
  else begin
    let elements =
      List.concat_map
        (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
        asyncs
      |> List.sort_uniq Int.compare
    in
    let unit_weights =
      List.for_all (fun e -> Comm_graph.weight m.comm e = 1) elements
    in
    let single_ops =
      List.for_all (fun (c : Timing.t) -> Task_graph.size c.graph = 1) asyncs
    in
    if unit_weights then Some `Unit
    else if single_ops then Some `Atomic
    else None
  end

let exact_rescue ?pool ?budget ?game_table (m : Model.t) granularity
    primary_error =
  let stats =
    Rt_obs.Tracer.span ~cat:"synthesis" "synthesis/exact-rescue" (fun () ->
        match granularity with
        | `Unit -> Exact.enumerate ?pool ?budget ?table:game_table m
        | `Atomic -> Exact.solve_single_ops ?pool ?budget ?table:game_table m)
  in
  match stats.Exact.outcome with
  | Exact.Feasible schedule ->
      let verdicts = Latency.verify m schedule in
      if Latency.all_ok verdicts then
        Ok
          {
            model_used = m;
            schedule;
            verdicts;
            merge_report = None;
            polling = [];
            hyperperiod = Schedule.length schedule;
          }
      else Error primary_error
  | Exact.Infeasible ->
      fail "exact"
        "provably infeasible: the exact game engine exhausted the state \
         space (%d states) without finding a safe cycle"
        stats.Exact.explored
  | Exact.Timeout reason ->
      (* Graceful degradation: the rescue was cut off by the caller's
         budget, so the heuristic's own verdict stands — annotated so
         the caller knows the exact engine did not get to finish. *)
      Error
        {
          primary_error with
          message =
            primary_error.message
            ^ Printf.sprintf " (exact fallback cut off: %s)" reason;
        }
  | Exact.Unknown _ -> Error primary_error

let synthesize_plain ?pool ?budget ?game_table ~merge ~pipeline ~backend
    ~max_hyperperiod ~exact_fallback (m : Model.t) =
  (* Preference order: every round of the merged variant, cheapest
     first, then (when merging was requested) every round of the
     unmerged fallback — merging tightens the merged deadline to the
     minimum of the group, which can hurt (e.g. a heavy graph absorbed
     into a tight-deadline sibling).  The flattened (variant, round)
     array preserves this order, so taking the lowest-index success —
     sequentially or via [Pool.parallel_find_first] — returns exactly
     the plan the original sequential fallback chain returned; on total
     failure the reported error is the primary (merged) variant's, as
     before. *)
  let variants = if merge then [ true; false ] else [ false ] in
  let preps = List.map (fun mg -> prepare ~merge:mg ~pipeline m) variants in
  let primary_error =
    match List.hd preps with
    | Error e -> e
    | Ok p ->
        {
          stage = "edf";
          message =
            Printf.sprintf
              "no polling configuration produced a feasible schedule (tried \
               %d rounds); the model may be infeasible or beyond this \
               heuristic"
              p.max_round;
        }
  in
  let tasks =
    List.concat_map
      (function
        | Error _ -> []
        | Ok p -> List.init p.max_round (fun r -> (p, r)))
      preps
    |> Array.of_list
  in
  (* The budget is checked once per candidate round — a round is the
     natural cooperative grain here (each is one EDF construction plus
     verification); rounds already tried when the budget trips are kept. *)
  let rounds_tried = Atomic.make 0 in
  let run (p, r) =
    match budget with
    | Some b when not (Budget.spend b 1) -> None
    | _ ->
        Atomic.incr rounds_tried;
        Rt_obs.Tracer.span ~cat:"synthesis" "synthesis/round" (fun () ->
            attempt ~backend ~max_hyperperiod p r)
  in
  let found =
    Rt_par.Perf.time "synthesis" (fun () ->
        match pool with
        | Some pl when Rt_par.Pool.jobs pl > 1 && Array.length tasks > 1 ->
            Rt_par.Pool.parallel_find_first pl run tasks
        | _ ->
            let rec go i =
              if i >= Array.length tasks then None
              else
                match run tasks.(i) with Some _ as res -> res | None -> go (i + 1)
            in
            go 0)
  in
  match found with
  | Some plan -> Ok plan
  | None -> (
      match Option.bind budget Budget.exhausted with
      | Some reason when Atomic.get rounds_tried < Array.length tasks ->
          (* The budget cut the candidate sweep short.  Degrade
             gracefully: report how far the heuristic got instead of
             pretending the sweep was exhaustive (and skip the exact
             rescue — it would burn no fuel and learn nothing). *)
          fail "budget"
            "synthesis budget exhausted (%s) after %d of %d candidate \
             rounds; no feasible candidate found before the cut-off"
            reason (Atomic.get rounds_tried) (Array.length tasks)
      | _ -> (
          (* Heuristic exhausted.  When requested and the model lies in a
             decidable class, consult the exact game engine: a cycle gives
             a plan the heuristic missed; a completed search upgrades the
             error to a proof of infeasibility. *)
          match (exact_fallback, exact_eligible m) with
          | true, Some granularity ->
              exact_rescue ?pool ?budget ?game_table m granularity
                primary_error
          | _ -> Error primary_error))

(* Compositional path: solve each interaction component independently
   (see Decompose), interleave the component schedules and re-verify
   the merged schedule against the WHOLE model.  Anything short of a
   verified whole-model schedule falls back to the undecomposed sweep,
   with two exceptions that short-circuit it: a component's exact
   infeasibility (subset argument — definitive for the whole model) and
   an exhausted budget (retrying undecomposed would burn no fuel). *)
let synthesize_decomposed ?pool ?budget ~merge ~backend ~max_hyperperiod
    ~exact_fallback (m : Model.t) comps =
  let solve ~sub comp =
    Rt_par.Perf.incr Rt_par.Perf.decompose_component_solves;
    (* Component solves run with ~pipeline:false: the pipelining rewrite
       EXTENDS the communication graph per component, which would break
       the shared element-id space the interleave relies on.  The outer
       fan-out owns the pool; inner sweeps stay sequential so component
       counters are deterministic at any job count.  A caller-supplied
       game table is keyed to the whole model and is NOT forwarded. *)
    ( comp,
      synthesize_plain ?budget ~merge ~pipeline:false ~backend
        ~max_hyperperiod ~exact_fallback sub )
  in
  let results = Decompose.map_components ?pool ~solve m comps in
  let errors =
    List.filter_map
      (fun (comp, r) ->
        match r with Error e -> Some (comp, e) | Ok _ -> None)
      results
  in
  let names comp =
    String.concat ", "
      (List.map (fun (c : Timing.t) -> c.Timing.name) comp.Decompose.constraints)
  in
  match
    List.find_opt (fun (_, e) -> e.stage = "exact") errors
  with
  | Some (comp, e) ->
      `Done
        (fail "exact" "component {%s}: %s (a component's constraints are a \
                       subset of the model's, so this is definitive)"
           (names comp) e.message)
  | None -> (
      match List.find_opt (fun (_, e) -> e.stage = "budget") errors with
      | Some (_, e) -> `Done (Error e)
      | None ->
          if errors <> [] then `Fallback
          else
            let plans =
              List.map
                (fun (_, r) ->
                  match r with Ok p -> p | Error _ -> assert false)
                results
            in
            (match
               Decompose.interleave m.Model.comm
                 (List.map (fun p -> p.schedule) plans)
             with
            | Error _ -> `Fallback
            | Ok schedule ->
                let verdicts = Latency.verify m schedule in
                if Latency.all_ok verdicts then
                  `Done
                    (Ok
                       {
                         model_used = m;
                         schedule;
                         verdicts;
                         merge_report = None;
                         polling =
                           List.concat_map (fun p -> p.polling) plans;
                         hyperperiod = Schedule.length schedule;
                       })
                else `Fallback))

let synthesize ?pool ?budget ?game_table ?(merge = true) ?(pipeline = true)
    ?(backend = Edf_cyclic.Edf) ?(max_hyperperiod = 1_000_000)
    ?(exact_fallback = false) ?(decompose = false) (m : Model.t) =
  let plain () =
    synthesize_plain ?pool ?budget ?game_table ~merge ~pipeline ~backend
      ~max_hyperperiod ~exact_fallback m
  in
  if not decompose then plain ()
  else
    match Decompose.components m with
    | [] | [ _ ] -> plain () (* coupled or empty: nothing to split *)
    | comps -> (
        match
          Rt_par.Perf.time "decompose" (fun () ->
              synthesize_decomposed ?pool ?budget ~merge ~backend
                ~max_hyperperiod ~exact_fallback m comps)
        with
        | `Done r -> r
        | `Fallback -> plain ())

let pp_plan (_orig : Model.t) fmt (p : plan) =
  Format.fprintf fmt "@[<v>hyperperiod: %d@,schedule: %s@,load: %.3f@,"
    p.hyperperiod
    (Schedule.to_string p.model_used.Model.comm p.schedule)
    (Schedule.load p.schedule);
  (match p.merge_report with
  | Some r when r.Merge.merged_groups <> [] ->
      List.iter
        (fun (names, into) ->
          Format.fprintf fmt "merged: %s -> %s@," (String.concat ", " names)
            into)
        r.Merge.merged_groups;
      Format.fprintf fmt "work per round: %d -> %d@," r.Merge.time_before
        r.Merge.time_after
  | _ -> ());
  List.iter
    (fun (name, q, d) ->
      Format.fprintf fmt "polling: %s every %d slots, deadline %d@," name q d)
    p.polling;
  List.iter (fun v -> Format.fprintf fmt "%a@," Latency.pp_verdict v) p.verdicts;
  Format.fprintf fmt "@]"

let pp_error fmt e = Format.fprintf fmt "[%s] %s" e.stage e.message
