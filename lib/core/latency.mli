(** Latency analysis of static schedules — the core algorithm of the
    paper's latency-scheduling technique.

    An execution trace has latency [k] w.r.t. a timing constraint
    [(C,p,d)] iff it contains an execution of [C] in {e every} time
    window of length [>= k]; a static schedule is feasible w.r.t. the
    asynchronous constraints [T_a] iff its latency w.r.t. every
    [(C,p,d) ∈ T_a] is at most [d].  Because the induced trace is
    periodic and well-formed schedules repeat their instance structure
    with the cycle, all quantities below are computed exactly in finite
    time.

    Window convention: the window of length [d] starting at [t] consists
    of slots [t .. t+d-1]; an execution lies inside it iff every one of
    its slots does (instance [start >= t] and [finish <= t+d]). *)

val executes_within :
  Comm_graph.t ->
  Task_graph.t ->
  Trace.t ->
  t0:int ->
  t1:int ->
  (int * Trace.instance) list option
(** [executes_within g c tr ~t0 ~t1] searches for an execution of the
    task graph [c] entirely inside slots [\[t0, t1)]: an injective
    assignment of completed instances to task-graph nodes such that
    nodes map to instances of their elements, distinct nodes get
    distinct instances, and for every task-graph edge [u -> v] the
    instance of [u] finishes no later than the instance of [v] starts.
    Returns the node -> instance assignment, or [None].  Complete
    backtracking search (task graphs are small; candidate instances per
    window are few). *)

val contains_execution :
  Comm_graph.t -> Task_graph.t -> Trace.t -> t0:int -> t1:int -> bool
(** [contains_execution g c tr ~t0 ~t1] is
    [executes_within ... <> None]. *)

val next_completion :
  Comm_graph.t -> Task_graph.t -> Trace.t -> from:int -> int option
(** [next_completion g c tr ~from] is the smallest [f] such that the
    window [\[from, f)] contains an execution of [c], or [None] if no
    execution completes within the trace horizon. *)

module Cache : sig
  (** Reusable analysis state for asking many window questions against
      one (trace, task graph) pair.

      A cache holds the topological order, predecessor lists, the
      sorted array of instance finish times and the backtracking
      scratch buffers, all computed once instead of per question.
      Answers are identical to the corresponding context-free
      functions; only the work is shared.  A cache is single-domain
      state: create one per domain, do not share across domains. *)

  type t

  val create : Comm_graph.t -> Task_graph.t -> Trace.t -> t
  (** [create g c tr] prepares reusable state for questions about
      executions of [c] within [tr]. *)

  val next_completion : t -> from:int -> int option
  (** Same answer as {!val:next_completion} on the cache's trace. *)

  val contains_execution : t -> t0:int -> t1:int -> bool
  (** Same answer as {!val:contains_execution} on the cache's trace. *)
end

val latency : Comm_graph.t -> Schedule.t -> Task_graph.t -> int option
(** [latency g l c] is the least [k] such that the trace induced by [l]
    contains an execution of [c] in every window of length [k] —
    [Some k] — or [None] when no finite [k] works (some element of [c]
    never runs, or runs without completing executions).  Requires a
    schedule that passes [Schedule.validate]. *)

val worst_window : Comm_graph.t -> Schedule.t -> Task_graph.t -> (int * int) option
(** [worst_window g l c] is a window [(t0, t1)] witnessing the latency:
    [t0] is a start offset within the first cycle maximizing the wait,
    and [t1] the earliest completion of an execution of [c] starting at
    or after [t0] (so [t1 - t0 = latency]).  [None] when the latency is
    unbounded.  Useful for diagnosing why a bound is missed. *)

val meets_asynchronous : Comm_graph.t -> Schedule.t -> Timing.t -> bool
(** [meets_asynchronous g l c] tests [latency g l c.graph <= c.deadline]
    — i.e. every possible invocation of the asynchronous constraint
    meets its deadline under the round-robin scheduler. *)

val meets_all_asynchronous :
  Comm_graph.t -> Schedule.t -> Timing.t list -> bool
(** [meets_all_asynchronous g l cs] is
    [List.for_all (meets_asynchronous g l) cs], computed over one
    shared trace instead of one per constraint (each constraint is
    questioned under its own horizon, so the answers are identical).
    Prefer it when verifying a candidate schedule against a whole
    constraint set: the trace build dominates small verifications. *)

val periodic_response : Comm_graph.t -> Schedule.t -> Timing.t -> int option
(** [periodic_response g l c] is the worst-case response time over the
    periodic invocations at [offset, offset + p, ...] (exact:
    invocation phases repeat with [lcm p (length l)]): the maximum over invocations [t] of
    [completion - t] where [completion] is the earliest finish of an
    execution of [c.graph] inside [\[t, ∞)].  [None] if some invocation
    never completes, or if [lcm p (length l)] overflows the native
    integer range (the phase structure is then too large to
    enumerate). *)

val meets_periodic : Comm_graph.t -> Schedule.t -> Timing.t -> bool
(** [meets_periodic g l c] tests [periodic_response <= c.deadline]. *)

type verdict = {
  constraint_name : string;  (** Which constraint this verdict is about. *)
  kind : Timing.kind;
  bound : int;  (** The deadline [d] that had to be met. *)
  achieved : int option;
      (** Measured latency (asynchronous) or worst response (periodic);
          [None] when unbounded. *)
  ok : bool;  (** Whether the constraint is satisfied. *)
}
(** Verification outcome for one timing constraint. *)

val verify : ?cached:bool -> Model.t -> Schedule.t -> verdict list
(** [verify m l] checks the schedule against every constraint of the
    model (asynchronous ones via latency, periodic ones via worst
    response) and reports one verdict per constraint, in declaration
    order.  Raises [Invalid_argument] if [l] fails
    [Schedule.validate].

    With [cached] (the default) one trace long enough for every
    constraint is unrolled and shared, each constraint's questions are
    clamped to the horizon it would have used alone, and periodic
    responses are memoized per invocation phase (sound because a
    well-formed schedule's instance structure repeats with the cycle).
    [~cached:false] runs the plain per-constraint engine; both paths
    return identical verdicts — a property the test suite pins.

    The phase memo is size-capped (64Ki residues, FIFO eviction) so
    lcm-driven memo cycles cannot grow it without bound; an evicted
    entry only costs a repeated containment search, never a different
    verdict.  Current size and cap-forced drops are published as the
    [Rt_obs.Metrics] gauge ["cache/size"] and counter
    ["cache/evictions"]. *)

val verify_budgeted :
  ?cached:bool ->
  budget:Budget.t ->
  Model.t ->
  Schedule.t ->
  (verdict list, string) result
(** Budgeted {!verify}: the budget is checked (one fuel unit) before
    each constraint's analysis, so a spent budget cuts the report off
    with [Error reason] instead of analysing the remaining
    constraints.  Granularity is per constraint — one constraint's
    analysis, once started, runs to completion.  Verdicts are
    identical to {!verify}'s (the per-constraint engine is modular);
    only the cross-constraint trace sharing of the cached path is
    forgone. *)

val all_ok : verdict list -> bool
(** [all_ok vs] is true when every verdict is satisfied. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** One-line rendering of a verdict. *)
