(* Interaction-component decomposition.

   The interaction graph is bipartite (constraints on one side, the
   functional elements their task graphs touch on the other); two
   constraints are coupled iff they are connected in it, i.e. iff their
   element sets intersect transitively.  A tiny union-find over element
   ids computes the components in near-linear time; constraint grouping
   then follows from each constraint's first element.

   Everything here is untrusted machinery: the interleave can fail or
   (in principle) mis-space a component's executions, so callers always
   re-verify the merged schedule against the whole model and fall back
   to the undecomposed path — see Synthesis and the daemon Engine.  The
   only verdict taken at face value is a component's exact
   infeasibility, which transfers to the whole model because the
   component's constraints are a subset of it. *)

module Perf = Rt_par.Perf

type component = {
  rank : int;
  indices : int list;
  constraints : Timing.t list;
  elements : int list;
}

(* ------------------------------------------------------------------ *)
(* Union-find over element ids.                                       *)
(* ------------------------------------------------------------------ *)

let components (m : Model.t) =
  let n = Comm_graph.n_elements m.Model.comm in
  let parent = Array.init n Fun.id in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun (c : Timing.t) ->
      match Task_graph.elements_used c.graph with
      | [] -> () (* Model.make rejects empty task graphs *)
      | e :: rest -> List.iter (union e) rest)
    m.Model.constraints;
  (* Group constraints by the root of their first element, preserving
     declaration order within each group; components are then ordered by
     the index of their first constraint. *)
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i (c : Timing.t) ->
      let root = find (List.hd (Task_graph.elements_used c.graph)) in
      match Hashtbl.find_opt groups root with
      | Some cell -> cell := (i, c) :: !cell
      | None ->
          let cell = ref [ (i, c) ] in
          Hashtbl.replace groups root cell;
          order := root :: !order)
    m.Model.constraints;
  List.rev !order
  |> List.mapi (fun rank root ->
         let members = List.rev !(Hashtbl.find groups root) in
         let elements =
           List.concat_map
             (fun (_, (c : Timing.t)) -> Task_graph.elements_used c.graph)
             members
           |> List.sort_uniq Int.compare
         in
         {
           rank;
           indices = List.map fst members;
           constraints = List.map snd members;
           elements;
         })

let submodel (m : Model.t) comp =
  Model.make ~comm:m.Model.comm ~constraints:comp.constraints

(* ------------------------------------------------------------------ *)
(* Structural signatures.                                             *)
(* ------------------------------------------------------------------ *)

(* Task graph rendered over GLOBAL element ids, node order as declared.
   Two graphs with equal signatures demand the same executions, so the
   signature may stand in for the graph in dominance and cache keys. *)
let graph_sig (g : Task_graph.t) =
  let b = Buffer.create 32 in
  let size = Task_graph.size g in
  for v = 0 to size - 1 do
    if v > 0 then Buffer.add_char b ',';
    Buffer.add_string b (string_of_int (Task_graph.element_of_node g v))
  done;
  Buffer.add_char b '/';
  List.sort compare (Task_graph.edges g)
  |> List.iter (fun (u, v) ->
         Buffer.add_string b (Printf.sprintf "%d>%d;" u v));
  Buffer.contents b

let class_key (c : Timing.t) =
  Printf.sprintf "%c%d@%d:%s"
    (match c.kind with Timing.Periodic -> 'p' | Timing.Asynchronous -> 'a')
    c.period c.offset (graph_sig c.graph)

let constraint_sig (c : Timing.t) =
  Printf.sprintf "%s,d=%d" (class_key c) c.deadline

let representatives (m : Model.t) =
  (* Min-deadline dominance within a (kind, period, offset, graph)
     class: satisfying the tightest deadline satisfies every looser one
     over the same windows.  The survivor is an actual constraint of the
     model (no synthetic constraints), kept at its class's first
     position so output order is stable. *)
  let best = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (c : Timing.t) ->
      let k = class_key c in
      match Hashtbl.find_opt best k with
      | None ->
          Hashtbl.replace best k c;
          order := k :: !order
      | Some (kept : Timing.t) ->
          if c.deadline < kept.deadline then Hashtbl.replace best k c)
    m.Model.constraints;
  let constraints = List.rev_map (Hashtbl.find best) !order in
  let dropped = List.length m.Model.constraints - List.length constraints in
  if dropped = 0 then (m, 0)
  else (Model.make ~comm:m.Model.comm ~constraints, dropped)

let interaction_key (m : Model.t) comp =
  ignore m;
  comp.constraints
  |> List.map constraint_sig
  |> List.sort String.compare
  |> String.concat "|"

(* ------------------------------------------------------------------ *)
(* Interleaving component schedules.                                  *)
(* ------------------------------------------------------------------ *)

(* Cap on the merged cycle: mirrors Synthesis's default max_hyperperiod
   so a pathological lcm fails fast instead of allocating a huge
   array. *)
let max_interleave_cycle = 1 lsl 20

let interleave comm scheds =
  match scheds with
  | [] -> Error "interleave: no component schedules"
  | [ s ] -> Ok s
  | _ -> (
      match
        Rt_graph.Intmath.lcm_list (List.map Schedule.length scheds)
      with
      | exception Rt_graph.Intmath.Overflow ->
          Error "interleave: lcm of component cycle lengths overflows"
      | l when l > max_interleave_cycle ->
          Error
            (Printf.sprintf
               "interleave: merged cycle length %d exceeds the cap %d" l
               max_interleave_cycle)
      | l -> (
          let merged = Array.make l Schedule.Idle in
          let idle_at p = merged.(p) = Schedule.Idle in
          (* First position >= [from] where [len] contiguous idle slots
             fit without wrapping, or None.  Blocks are never placed
             before [from], so within one component the placed order
             matches the native order (executions keep their relative
             sequence, which matters for multi-element task graphs). *)
          let find_fit ~from ~len =
            let rec scan p =
              if p + len > l then None
              else begin
                let rec run k = k >= len || (idle_at (p + k) && run (k + 1)) in
                if run 0 then Some p else scan (p + 1)
              end
            in
            scan from
          in
          let exception No_fit of int in
          match
            List.iter
              (fun sched ->
                let slots = Schedule.unroll sched l in
                let cursor = ref 0 in
                let i = ref 0 in
                while !i < l do
                  match slots.(!i) with
                  | Schedule.Idle -> incr i
                  | Schedule.Run e ->
                      let j = ref !i in
                      while
                        !j < l
                        &&
                        match slots.(!j) with
                        | Schedule.Run e' -> e' = e
                        | Schedule.Idle -> false
                      do
                        incr j
                      done;
                      let len = !j - !i in
                      (match find_fit ~from:(max !i !cursor) ~len with
                      | None -> raise (No_fit e)
                      | Some p ->
                          Array.fill merged p len (Schedule.Run e);
                          cursor := p + len);
                      i := !j
                done)
              scheds
          with
          | exception No_fit e ->
              Error
                (Printf.sprintf
                   "interleave: no idle run for an execution block of \
                    element %d"
                   e)
          | () -> (
              let s = Schedule.of_array merged in
              match Schedule.validate comm s with
              | Ok () -> Ok s
              | Error errs ->
                  Error ("interleave: " ^ String.concat "; " errs))))

(* ------------------------------------------------------------------ *)
(* The generic fan-out driver.                                        *)
(* ------------------------------------------------------------------ *)

let largest_gauge = Rt_obs.Metrics.gauge "decompose/largest_component"
let solve_us = Rt_obs.Metrics.histogram "decompose/solve_us"

let map_components ?pool ~solve (m : Model.t) comps =
  Perf.add Perf.decompose_components (List.length comps);
  Rt_obs.Metrics.set largest_gauge
    (List.fold_left
       (fun acc c -> max acc (List.length c.constraints))
       0 comps);
  let tasks =
    Array.of_list
      (List.map (fun c -> (fst (representatives (submodel m c)), c)) comps)
  in
  let run (sub, c) =
    let t0 = Unix.gettimeofday () in
    let r =
      Rt_obs.Tracer.span ~cat:"decompose" "decompose/component" (fun () ->
          solve ~sub c)
    in
    Rt_obs.Metrics.observe solve_us
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
    r
  in
  match pool with
  | Some p when Rt_par.Pool.jobs p > 1 && Array.length tasks > 1 ->
      Array.to_list (Rt_par.Pool.parallel_map p run tasks)
  | _ -> Array.to_list (Array.map run tasks)
