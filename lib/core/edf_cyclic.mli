(** Cyclic schedule construction by earliest-deadline-first simulation.

    Builds one cycle of a static schedule by dispatching an explicit set
    of jobs (task-graph invocations with releases and absolute deadlines)
    under EDF over a finite horizon.  This is the engine behind the
    heuristic of the paper ("first computes a static schedule to satisfy
    the periodic timing constraints...") and behind the constructive
    proof of Theorem 3.

    Operations are dispatched {e non-preemptively at operation
    granularity}: once an operation (one task-graph node) starts it runs
    to completion.  After the software-pipelining rewrite every
    operation has unit weight, so this coincides with fully preemptive
    EDF; without the rewrite it models the fact that a non-pipelinable
    functional element cannot be split. *)

type job = {
  job_name : string;  (** For diagnostics, e.g. ["px@20"]. *)
  graph : Task_graph.t;  (** Operations to execute, with precedence. *)
  release : int;  (** Earliest start slot. *)
  abs_deadline : int;  (** Slot by which the whole job must finish. *)
}
(** One invocation of a timing constraint. *)

type failure = {
  failed_job : string;  (** Name of the first job to miss. *)
  at_time : int;  (** Slot at which the miss was detected. *)
  reason : string;  (** Human-readable explanation. *)
}
(** Why construction failed. *)

val jobs_of_periodic : horizon:int -> Timing.t -> job list
(** [jobs_of_periodic ~horizon c] expands the periodic constraint [c]
    into its invocations at [offset, offset + p, ...] below [horizon].
    Raises [Invalid_argument] if [c] is not periodic, or if
    [c.offset + c.deadline > c.period] (the construction requires every
    job to finish within its own period slice so the cycle boundary
    stays clean). *)

val jobs_of_polling :
  horizon:int -> name:string -> graph:Task_graph.t -> period:int ->
  rel_deadline:int -> job list
(** [jobs_of_polling ~horizon ~name ~graph ~period ~rel_deadline]
    expands a polling server executing [graph] every [period] slots with
    relative deadline [rel_deadline <= period] — the transformation that
    turns an asynchronous latency constraint into periodic work. *)

type policy =
  | Edf  (** Earliest absolute deadline first (optimal). *)
  | Dm
      (** Deadline-monotonic: jobs with smaller {e relative} deadlines
          always win, FIFO within a class — the fixed-priority
          alternative, for backend comparisons. *)

val build :
  ?policy:policy ->
  Comm_graph.t -> horizon:int -> job list -> (Schedule.t, failure) result
(** [build g ~horizon jobs] runs the dispatcher (default {!Edf}) for
    [horizon] slots.  Ties are broken by (key, release, name) so the
    result is deterministic.  Fails if any job misses its deadline or
    does not fit in the horizon.  All job deadlines must be
    [<= horizon] for the result to be a sound cycle.  Note the miss
    fast-path (checking only the queue head) is exact for EDF; under
    {!Dm} a miss is still always detected, at the latest when the job
    finishes late or the horizon ends. *)

val utilization : Comm_graph.t -> horizon:int -> job list -> float
(** Total work of the jobs divided by the horizon — a quick infeasibility
    screen ([> 1.0] can never succeed). *)
