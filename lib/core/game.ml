module Perf = Rt_par.Perf
module Pool = Rt_par.Pool
module Stbl = Rt_par.Shard_tbl
module Key = Rt_par.Shard_tbl.Int_array
module Ktbl = Hashtbl.Make (Rt_par.Shard_tbl.Int_array)
module Ac = Rt_par.Antichain

type outcome = Game_ref.outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Timeout of string
  | Unknown of string

type stats = Game_ref.stats = { explored : int; outcome : outcome }
type impl = [ `Packed | `Reference ]

let trivially_feasible () =
  { explored = 0; outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]) }

(* ------------------------------------------------------------------ *)
(* Branch fan-out (same scheme as Exact: lowest-index branch wins).    *)
(* ------------------------------------------------------------------ *)

let find_branches pool n_tasks branch =
  let branch i =
    Rt_obs.Tracer.span ~cat:"exact" "game/branch" (fun () -> branch i)
  in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      Pool.parallel_find_first p branch (Array.init n_tasks Fun.id)
  | _ ->
      let rec go i =
        if i >= n_tasks then None
        else match branch i with Some _ as r -> r | None -> go (i + 1)
      in
      go 0

(* ------------------------------------------------------------------ *)
(* Observability.                                                      *)
(* ------------------------------------------------------------------ *)

let table_size_gauge = Rt_obs.Metrics.gauge "game/table_size"
let table_evictions_ctr = Rt_obs.Metrics.counter "game/table_evictions"
let alloc_words_gauge = Rt_obs.Metrics.gauge "game/alloc_words"
let ac_evictions_ctr = Rt_obs.Metrics.counter "game/antichain_evictions"
let ac_probe_hist = Rt_obs.Metrics.histogram "game/antichain_probe_len"
let on_probe len = Rt_obs.Metrics.observe ac_probe_hist len

(* The antichain copies a ~256-pointer bucket spine per insert, so its
   score range is compressed to at most this many buckets. *)
let max_buckets = 256
let bucket_scale max_score = max 1 ((max_score + max_buckets - 1) / max_buckets)

let publish_antichain = function
  | Some ac -> Rt_obs.Metrics.add ac_evictions_ctr (Ac.evictions ac)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Expansion budget, shared by both games.                             *)
(* ------------------------------------------------------------------ *)

type ticker = {
  expanded : int Atomic.t;
  max_states : int;
  over_budget : bool Atomic.t;
  budget : Budget.t option;
  timed_out : bool Atomic.t;
}

let ticker ?budget ~max_states () =
  {
    expanded = Atomic.make 1 (* the initial state *);
    max_states;
    over_budget = Atomic.make false;
    budget;
    timed_out = Atomic.make false;
  }

(* One expansion ticket, or [false] when the global budget is spent.
   The caller-supplied [Budget.t] is spent first so a tripped budget
   never touches the expansion counters (with no budget this path is
   untouched — the bench counters pin it). *)
let try_expand tk =
  (match tk.budget with
  | None -> true
  | Some b ->
      Budget.spend b 1
      ||
      (Atomic.set tk.timed_out true;
       false))
  && (not (Atomic.get tk.over_budget))
  &&
  let n = Atomic.fetch_and_add tk.expanded 1 in
  if n >= tk.max_states then begin
    Atomic.set tk.over_budget true;
    false
  end
  else begin
    Perf.incr Perf.game_states;
    true
  end

let explored_of tk = min (Atomic.get tk.expanded) tk.max_states

let finish tk m asyncs ~tbl_size ~tbl_evictions result =
  Rt_obs.Metrics.set table_size_gauge tbl_size;
  Rt_obs.Metrics.add table_evictions_ctr tbl_evictions;
  match result with
  | Some sched ->
      let ok = Latency.meets_all_asynchronous m.Model.comm sched asyncs in
      {
        explored = explored_of tk;
        outcome =
          (if ok then Feasible sched
           else Unknown "internal: cycle schedule failed verification");
      }
  | None ->
      {
        explored = explored_of tk;
        outcome =
          (if Atomic.get tk.timed_out then
             Timeout
               (match Option.bind tk.budget Budget.exhausted with
               | Some reason -> reason
               | None -> "budget exhausted")
           else if Atomic.get tk.over_budget then
             Unknown
               (Printf.sprintf "state budget %d exhausted" tk.max_states)
           else Infeasible);
      }

(* ------------------------------------------------------------------ *)
(* Resident transposition tables (shared with the reference engine).   *)
(* ------------------------------------------------------------------ *)

let default_table_cap = 2 * 1024 * 1024

type table = Game_ref.table

let table ?(cap = default_table_cap) () =
  Stbl.create ~max_entries:cap ~hash:Key.hash ~equal:Key.equal 1024

let table_size = Stbl.length

(* ------------------------------------------------------------------ *)
(* Flat: an open-addressing set/map over fixed-width int-vector keys   *)
(* stored INLINE — slot i's key lives at keys.[i*wps ..], its hash     *)
(* code (0 = empty) in a contiguous int array, so membership probes    *)
(* touch one cache line of codes and allocate nothing.  Single-domain  *)
(* only: the packed game uses it for the branch-local gray set and the *)
(* sequential dead set.                                                *)
(* ------------------------------------------------------------------ *)

module Flat = struct
  type t = {
    wps : int;
    mutable size : int; (* slot count, power of two *)
    mutable codes : int array; (* 0 = empty; else hash lor min_int *)
    mutable vals : int array;
    mutable keys : int array; (* size * wps, inline key storage *)
    mutable count : int;
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ~wps size0 =
    let size = pow2 (max 16 size0) 16 in
    {
      wps;
      size;
      codes = Array.make size 0;
      vals = Array.make size 0;
      keys = Array.make (size * wps) 0;
      count = 0;
    }

  let fnv_prime = 0x100000001b3

  (* Inline FNV-1a over the packed words at [buf.(off) ..]. *)
  let code_of t buf off =
    let h = ref 0x3bf29ce484222325 in
    for i = off to off + t.wps - 1 do
      let v = Array.unsafe_get buf i in
      h := (!h lxor (v land 0xffffffff)) * fnv_prime;
      h := (!h lxor ((v asr 32) land 0x3fffffff)) * fnv_prime
    done;
    !h lor min_int

  let key_eq t slot buf off =
    let base = slot * t.wps in
    let rec go j =
      j >= t.wps
      || Array.unsafe_get t.keys (base + j) = Array.unsafe_get buf (off + j)
         && go (j + 1)
    in
    go 0

  (* Slot holding the key, or the empty slot where it belongs. *)
  let probe t buf off code =
    let mask = t.size - 1 in
    let i = ref (code land max_int land mask) in
    let res = ref (-1) in
    while !res < 0 do
      let c = Array.unsafe_get t.codes !i in
      if c = 0 then res := !i
      else if c = code && key_eq t !i buf off then res := !i
      else i := (!i + 1) land mask
    done;
    !res

  let resize t =
    let osize = t.size
    and ocodes = t.codes
    and ovals = t.vals
    and okeys = t.keys in
    let size = osize * 2 in
    t.size <- size;
    t.codes <- Array.make size 0;
    t.vals <- Array.make size 0;
    t.keys <- Array.make (size * t.wps) 0;
    let mask = size - 1 in
    for i = 0 to osize - 1 do
      let c = ocodes.(i) in
      if c <> 0 then begin
        let j = ref (c land max_int land mask) in
        while t.codes.(!j) <> 0 do
          j := (!j + 1) land mask
        done;
        t.codes.(!j) <- c;
        t.vals.(!j) <- ovals.(i);
        Array.blit okeys (i * t.wps) t.keys (!j * t.wps) t.wps
      end
    done

  let mem t buf off =
    let i = probe t buf off (code_of t buf off) in
    t.codes.(i) <> 0

  (* Value bound to the key, or -1 when absent (values here are depths,
     always >= 0). *)
  let find t buf off =
    let i = probe t buf off (code_of t buf off) in
    if t.codes.(i) = 0 then -1 else t.vals.(i)

  let insert t buf off v =
    if 4 * (t.count + 1) > 3 * t.size then resize t;
    let code = code_of t buf off in
    let i = probe t buf off code in
    if t.codes.(i) = 0 then begin
      t.codes.(i) <- code;
      Array.blit buf off t.keys (i * t.wps) t.wps;
      t.count <- t.count + 1
    end;
    t.vals.(i) <- v

  (* Backward-shift deletion: close the gap by pulling cluster entries
     back, so probes never cross a stale hole (no tombstones). *)
  let remove t buf off =
    let i = probe t buf off (code_of t buf off) in
    if t.codes.(i) <> 0 then begin
      let mask = t.size - 1 in
      t.codes.(i) <- 0;
      t.count <- t.count - 1;
      let gap = ref i in
      let k = ref ((i + 1) land mask) in
      let scanning = ref true in
      while !scanning do
        let c = t.codes.(!k) in
        if c = 0 then scanning := false
        else begin
          let home = c land max_int land mask in
          if (!k - home) land mask >= (!k - !gap) land mask then begin
            t.codes.(!gap) <- c;
            t.vals.(!gap) <- t.vals.(!k);
            Array.blit t.keys (!k * t.wps) t.keys (!gap * t.wps) t.wps;
            t.codes.(!k) <- 0;
            gap := !k
          end;
          k := (!k + 1) land mask
        end
      done
    end

  let reset t =
    Array.fill t.codes 0 t.size 0;
    t.count <- 0

  let count t = t.count
end

(* ------------------------------------------------------------------ *)
(* Packed budget-vector game: every constraint is a single operation.  *)
(*                                                                     *)
(* State: budget.(i) = slots remaining for constraint i's next         *)
(* execution to finish; live budgets sit in [1, d_max], so a state     *)
(* packs into ceil(n/k) words of k fields, each (bits+1) wide — one    *)
(* guard bit per field makes pointwise dominance a word-parallel       *)
(* subtract-and-mask (SWAR), and a packed word is never 0, so 0 marks  *)
(* an empty slot in the flat tables.  The DFS runs on preallocated     *)
(* per-depth scratch: successor generation writes into a reused field  *)
(* buffer, packs into a reused word buffer, and pushes by blitting     *)
(* into a flat stack — no lists, no closures, no per-state allocation. *)
(*                                                                     *)
(* Transposition keys are CANONICAL: constraints that are symmetric    *)
(* (equal weight and deadline, on interchangeable elements) have their *)
(* budget components sorted, so states reached by permuted play        *)
(* prefixes share one dead fact (Gonczarowski-style canonisation).     *)
(* Canonical keys feed the dead table and the antichain ONLY — cycle   *)
(* detection stays on raw states, so the returned schedule is          *)
(* bit-identical to the reference engine's.                            *)
(* ------------------------------------------------------------------ *)

type dead_store = D_flat of Flat.t | D_shard of (int array, unit) Stbl.t

let dead_mem store key =
  match store with
  | D_flat f -> Flat.mem f key 0
  | D_shard t -> Stbl.mem t key

let dead_add store key =
  match store with
  | D_flat f -> Flat.insert f key 0 0
  | D_shard t -> Stbl.add t (Array.copy key) ()

let dead_size = function
  | D_flat f -> Flat.count f
  | D_shard t -> Stbl.length t

let dead_evictions = function D_flat _ -> 0 | D_shard t -> Stbl.evictions t

let rec bits_needed v = if v = 0 then 0 else 1 + bits_needed (v lsr 1)

let solve_budget ?pool ?budget ?table ~max_states (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let specs =
    (* (element, weight, deadline) per constraint; single-op by
       construction (the caller validated the graphs). *)
    List.map
      (fun (c : Timing.t) ->
        let e = Task_graph.element_of_node c.graph 0 in
        (e, Comm_graph.weight m.comm e, c.deadline))
      asyncs
    |> Array.of_list
  in
  let n = Array.length specs in
  if n = 0 then trivially_feasible ()
  else begin
    let elements =
      Array.to_list specs |> List.map (fun (e, _, _) -> e)
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let n_el = Array.length elements in
    let c_e = Array.map (fun (e, _, _) -> e) specs in
    let c_w = Array.map (fun (_, w, _) -> w) specs in
    let c_d = Array.map (fun (_, _, d) -> d) specs in
    let el_w =
      Array.map
        (fun e ->
          let rec find i = if c_e.(i) = e then c_w.(i) else find (i + 1) in
          find 0)
        elements
    in
    let initially_dead = Array.exists (fun (_, w, d) -> d < w) specs in
    (* Necessary long-run rate condition (see Exact.solve_single_ops):
       element e must start an execution at least every d_i + 1 - w_e
       slots for its tightest constraint i; if those shares sum past 1
       the instance is certainly infeasible. *)
    let rate_overloaded =
      let tightest = Hashtbl.create 8 in
      Array.iter
        (fun (e, _, d) ->
          match Hashtbl.find_opt tightest e with
          | Some d' when d' <= d -> ()
          | _ -> Hashtbl.replace tightest e d)
        specs;
      let weight_of = Hashtbl.create 8 in
      Array.iter (fun (e, w, _) -> Hashtbl.replace weight_of e w) specs;
      let total =
        Hashtbl.fold
          (fun e d acc ->
            let w = Hashtbl.find weight_of e in
            if d + 1 - w <= 0 then acc +. infinity
            else acc +. (float_of_int w /. float_of_int (d + 1 - w)))
          tightest 0.0
      in
      total > 1.0 +. 1e-9
    in
    if initially_dead || rate_overloaded then
      { explored = 0; outcome = Infeasible }
    else begin
      let d_max = Array.fold_left max 1 c_d in
      let bits = bits_needed d_max in
      let stride = bits + 1 in
      if stride > 62 then
        (* Deadlines near 2^61 cannot pack; hand off to the reference
           engine rather than lose fields. *)
        Game_ref.solve ?pool ?budget ?table ~max_states ~granularity:`Atomic m
      else begin
        let k = max 1 (62 / stride) in
        let wps = (n + k - 1) / k in
        let fmask = (1 lsl bits) - 1 in
        let word_of = Array.init n (fun i -> i / k) in
        let shift_of = Array.init n (fun i -> i mod k * stride) in
        let hmask = Array.make wps 0 in
        for i = 0 to n - 1 do
          hmask.(word_of.(i)) <-
            hmask.(word_of.(i)) lor (1 lsl (shift_of.(i) + bits))
        done;
        (* Symmetry classes for canonicalisation.  Two constraints are
           interchangeable iff swapping their budget components is a
           game automorphism: either they watch the SAME element with
           equal deadlines, or they watch distinct elements of equal
           weight with equal deadlines where each element is watched by
           exactly that one constraint (so the swap extends to an
           element renaming). *)
        let classes =
          let occ = Hashtbl.create 8 in
          Array.iter
            (fun e ->
              Hashtbl.replace occ e
                (1 + Option.value ~default:0 (Hashtbl.find_opt occ e)))
            c_e;
          let groups = Hashtbl.create 8 in
          Array.iteri
            (fun i e ->
              let key =
                if Hashtbl.find occ e = 1 then `Solo (c_w.(i), c_d.(i))
                else `Shared (e, c_d.(i))
              in
              Hashtbl.replace groups key
                (i :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
            c_e;
          Hashtbl.fold
            (fun _ members acc ->
              match members with
              | _ :: _ :: _ -> Array.of_list (List.sort Int.compare members) :: acc
              | _ -> acc)
            groups []
          |> List.sort compare |> Array.of_list
        in
        let max_class =
          Array.fold_left (fun acc c -> max acc (Array.length c)) 1 classes
        in
        let pack src dst =
          for w = 0 to wps - 1 do
            Array.unsafe_set dst w 0
          done;
          for i = 0 to n - 1 do
            let w = Array.unsafe_get word_of i in
            Array.unsafe_set dst w
              (Array.unsafe_get dst w
              lor (Array.unsafe_get src i lsl Array.unsafe_get shift_of i))
          done
        in
        let unpack src off dst =
          for i = 0 to n - 1 do
            Array.unsafe_set dst i
              (Array.unsafe_get src (off + Array.unsafe_get word_of i)
               lsr Array.unsafe_get shift_of i
              land fmask)
          done
        in
        (* v pointwise <= d, word-parallel: with the guard bit set on d,
           per-field subtraction borrows (clearing the guard) exactly
           where d's field is smaller. *)
        let subsumed v d =
          let rec go w =
            w >= wps
            || ((Array.unsafe_get d w lor Array.unsafe_get hmask w)
                - Array.unsafe_get v w)
               land Array.unsafe_get hmask w
               = Array.unsafe_get hmask w
               && go (w + 1)
          in
          go 0
        in
        let field_sum v =
          let acc = ref 0 in
          for w = 0 to wps - 1 do
            let x = ref (Array.unsafe_get v w) in
            while !x <> 0 do
              acc := !acc + (!x land fmask);
              x := !x lsr stride
            done
          done;
          !acc
        in
        let scale = bucket_scale (n * d_max) in
        let score v = field_sum v / scale in
        let antichain =
          Ac.create ~on_probe ~subsumed ~score ~max_score:(n * d_max / scale)
            ()
        in
        let dead =
          match (table, pool) with
          | Some t, _ -> D_shard t
          | None, Some p when Pool.jobs p > 1 ->
              D_shard
                (Stbl.create ~max_entries:default_table_cap ~hash:Key.hash
                   ~equal:Key.equal 64)
          | _ -> D_flat (Flat.create ~wps 256)
        in
        let known_dead ckey =
          if dead_mem dead ckey then begin
            Perf.incr Perf.table_hits;
            true
          end
          else begin
            Perf.incr Perf.table_misses;
            if Ac.covered antichain ckey then begin
              Perf.incr Perf.dominance_kills;
              (* Promote the derived fact so future probes hit the
                 table. *)
              dead_add dead ckey;
              true
            end
            else false
          end
        in
        let mark_dead ckey =
          dead_add dead ckey;
          ignore (Ac.add antichain (Array.copy ckey))
        in
        let tk = ticker ?budget ~max_states () in
        Perf.incr Perf.game_states;
        let initial = Array.copy c_d in
        let init_packed = Array.make wps 0 in
        pack initial init_packed;
        let best = Rt_par.Bound.create () in
        (* Per-branch scratch: the whole DFS state, preallocated.  The
           stack grows by doubling; nothing in the inner loop
           allocates. *)
        let make_scratch () =
          ( ref 1024 (* depth capacity *),
            ref (Array.make (1024 * wps) 0) (* packed state per depth *),
            ref (Array.make 1024 0) (* next action index per depth *),
            ref (Array.make 1024 0) (* action into this depth *),
            ref (Array.make n 0) (* cur: unpacked top state *),
            ref (Array.make n 0) (* nxt: candidate successor *),
            Array.make n 0 (* canonical unpacked *),
            Array.make wps 0 (* packed successor *),
            Array.make wps 0 (* packed canonical *),
            Array.make max_class 0 (* class sort buffer *),
            Flat.create ~wps 64 (* gray: raw packed -> depth *) )
        in
        let fresh_scratch =
          match pool with
          | Some p when Pool.jobs p > 1 -> make_scratch
          | _ ->
              let sc = make_scratch () in
              fun () ->
                let _, _, _, _, _, _, _, _, _, _, gray = sc in
                Flat.reset gray;
                sc
        in
        let canonize src cbuf ckey cls_tmp =
          Array.blit src 0 cbuf 0 n;
          Array.iter
            (fun cls ->
              let len = Array.length cls in
              for j = 0 to len - 1 do
                cls_tmp.(j) <- cbuf.(cls.(j))
              done;
              (* insertion sort ascending; classes are tiny *)
              for j = 1 to len - 1 do
                let x = cls_tmp.(j) in
                let p = ref (j - 1) in
                while !p >= 0 && cls_tmp.(!p) > x do
                  cls_tmp.(!p + 1) <- cls_tmp.(!p);
                  decr p
                done;
                cls_tmp.(!p + 1) <- x
              done;
              for j = 0 to len - 1 do
                cbuf.(cls.(j)) <- cls_tmp.(j)
              done)
            classes;
          pack cbuf ckey
        in
        (* Successor of [cur] under action [a] (0..n_el-1 = run that
           element, n_el = idle), written into [nxt]; false when the
           move loses immediately. *)
        let step_into cur nxt a =
          if a = n_el then begin
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < n do
              let b = Array.unsafe_get cur !i - 1 in
              if b < Array.unsafe_get c_w !i then ok := false
              else Array.unsafe_set nxt !i b;
              incr i
            done;
            !ok
          end
          else begin
            let e = Array.unsafe_get elements a in
            let we = Array.unsafe_get el_w a in
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < n do
              let b = Array.unsafe_get cur !i in
              if Array.unsafe_get c_e !i = e then
                if b < we then ok := false
                else Array.unsafe_set nxt !i (Array.unsafe_get c_d !i + 1 - we)
              else if b < we + Array.unsafe_get c_w !i then ok := false
              else Array.unsafe_set nxt !i (b - we);
              incr i
            done;
            !ok
          end
        in
        let slots_of_actions acts =
          List.concat_map
            (fun a ->
              if a = n_el then [ Schedule.Idle ]
              else List.init el_w.(a) (fun _ -> Schedule.Run elements.(a)))
            acts
        in
        let exception Out_of_budget in
        let exception Aborted in
        (* Branch [bidx]: plays whose first action runs
           elements.(bidx).  An all-idle play cannot cycle (budgets
           strictly decrease), so every safe cycle reachable at all is
           reachable with a run first. *)
        let branch bidx =
          let cap, sbuf, aptr, via, curr, nxtr, cbuf, pbuf, ckey, cls_tmp, gray
              =
            fresh_scratch ()
          in
          let ensure d =
            if d >= !cap then begin
              let nc = 2 * !cap in
              let ns = Array.make (nc * wps) 0 in
              Array.blit !sbuf 0 ns 0 (!cap * wps);
              sbuf := ns;
              let na = Array.make nc 0 in
              Array.blit !aptr 0 na 0 !cap;
              aptr := na;
              let nv = Array.make nc 0 in
              Array.blit !via 0 nv 0 !cap;
              via := nv;
              cap := nc
            end
          in
          Array.blit init_packed 0 !sbuf 0 wps;
          Flat.insert gray init_packed 0 0;
          Array.blit initial 0 !curr 0 n;
          if not (step_into !curr !nxtr bidx) then None
          else begin
            pack !nxtr pbuf;
            canonize !nxtr cbuf ckey cls_tmp;
            if known_dead ckey then None
            else if not (try_expand tk) then None
            else begin
              let depth = ref 1 in
              (* push depth 1 *)
              Array.blit pbuf 0 !sbuf wps wps;
              (!via).(1) <- bidx;
              (!aptr).(1) <- 0;
              Flat.insert gray pbuf 0 1;
              (let t = !curr in
               curr := !nxtr;
               nxtr := t);
              let result = ref None in
              (try
                 let running = ref true in
                 while !running do
                   if Rt_par.Bound.get best < bidx then raise_notrace Aborted;
                   if !depth = 0 then running := false
                   else begin
                     let a = (!aptr).(!depth) in
                     if a > n_el then begin
                       (* frame exhausted: the state is dead *)
                       canonize !curr cbuf ckey cls_tmp;
                       mark_dead ckey;
                       Flat.remove gray !sbuf (!depth * wps);
                       decr depth;
                       if !depth > 0 then unpack !sbuf (!depth * wps) !curr
                     end
                     else begin
                       (!aptr).(!depth) <- a + 1;
                       if step_into !curr !nxtr a then begin
                         pack !nxtr pbuf;
                         let g = Flat.find gray pbuf 0 in
                         if g >= 0 then begin
                           (* safe cycle: actions into depths g+1..top,
                              then the closing action *)
                           let acts = ref [ a ] in
                           for j = !depth downto g + 1 do
                             acts := (!via).(j) :: !acts
                           done;
                           Rt_par.Bound.update_min best bidx;
                           result :=
                             Some
                               (Schedule.of_slots (slots_of_actions !acts));
                           running := false
                         end
                         else begin
                           canonize !nxtr cbuf ckey cls_tmp;
                           if known_dead ckey then ()
                           else if not (try_expand tk) then
                             raise_notrace Out_of_budget
                           else begin
                             incr depth;
                             ensure !depth;
                             Array.blit pbuf 0 !sbuf (!depth * wps) wps;
                             (!via).(!depth) <- a;
                             (!aptr).(!depth) <- 0;
                             Flat.insert gray pbuf 0 !depth;
                             let t = !curr in
                             curr := !nxtr;
                             nxtr := t
                           end
                         end
                       end
                     end
                   end
                 done
               with Out_of_budget | Aborted -> ());
              !result
            end
          end
        in
        let r =
          finish tk m asyncs ~tbl_size:(dead_size dead)
            ~tbl_evictions:(dead_evictions dead)
            (find_branches pool n_el branch)
        in
        publish_antichain (Some antichain);
        r
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Trace-residue game: general task-graph constraints.                 *)
(*                                                                     *)
(* The play is the infinite trace, built one slot ([`Unit]) or one     *)
(* whole execution block ([`Atomic]) per edge.  Appending at length l  *)
(* closes exactly the windows ending at l, and every such window reads *)
(* at most the last d_max slots, so legality is decided incrementally  *)
(* on a trace of bounded span.  Since all future checks read at most   *)
(* the last d_max - 1 existing slots, the state is that residue,       *)
(* canonicalized: a block cut by the residue's left edge can never     *)
(* again lie fully inside a window, so its slots are remapped to idle. *)
(* A repeated residue on one path closes a safe cycle; the slots laid  *)
(* between the two visits are a feasible static schedule.              *)
(*                                                                     *)
(* Vs. the reference engine: the per-solve dead table is a single      *)
(* open-addressing shard (64 slots, growing on demand) instead of 32   *)
(* preallocated shards of 1024 buckets — the old fixed cost dwarfed    *)
(* small solves — and the dominance antichain is the score-bucketed    *)
(* Rt_par.Antichain instead of a linearly scanned list.                *)
(* ------------------------------------------------------------------ *)

let residue_subsumed v d =
  (* Unit-weight slotwise order: v is d with some runs idled out, so
     any legal continuation of v is legal from d, and d's death kills
     v.  (Unsound for weighted blocks: removing slots re-aligns block
     decompositions; see docs/PERFORMANCE.md.)  Index 0 is the
     warm-up-length marker, never -1, so it is forced equal. *)
  Array.length v = Array.length d
  &&
  let n = Array.length v in
  let rec go i = i >= n || ((v.(i) = -1 || v.(i) = d.(i)) && go (i + 1)) in
  go 0

(* Productive-slot count: idling runs out can only lower it, so it is
   monotone for residue_subsumed (keys of different length never
   subsume each other and may share a bucket harmlessly). *)
let residue_score v =
  let acc = ref 0 in
  for i = 0 to Array.length v - 1 do
    if v.(i) >= 0 then incr acc
  done;
  !acc

type tshared = {
  dead : (int array, unit) Stbl.t;
  antichain : Ac.t option;
  tk : ticker;
}

let make_tshared ?budget ?table:dead_table ~pooled ~antichain ~max_states () =
  {
    dead =
      (match dead_table with
      | Some t -> t
      | None ->
          Stbl.create
            ~shards:(if pooled then 32 else 1)
            ~max_entries:default_table_cap ~hash:Key.hash ~equal:Key.equal 64);
    antichain;
    tk = ticker ?budget ~max_states ();
  }

let known_dead sh key =
  if Stbl.mem sh.dead key then begin
    Perf.incr Perf.table_hits;
    true
  end
  else begin
    Perf.incr Perf.table_misses;
    match sh.antichain with
    | Some ac when Ac.covered ac key ->
        Perf.incr Perf.dominance_kills;
        (* Promote the derived fact so future probes hit the table. *)
        Stbl.add sh.dead key ();
        true
    | _ -> false
  end

let mark_dead sh key =
  Stbl.add sh.dead key ();
  match sh.antichain with
  | Some ac -> ignore (Ac.add ac key)
  | None -> ()

type path = {
  mutable slots : int array; (* element id, or -1 for idle *)
  mutable starts : Bytes.t; (* '\001' where a block (or idle) begins *)
  mutable len : int;
}

let path_create () =
  { slots = Array.make 64 (-1); starts = Bytes.make 64 '\000'; len = 0 }

let path_push p v ~start =
  if p.len = Array.length p.slots then begin
    let n = 2 * p.len in
    let slots = Array.make n (-1) in
    Array.blit p.slots 0 slots 0 p.len;
    p.slots <- slots;
    let starts = Bytes.make n '\000' in
    Bytes.blit p.starts 0 starts 0 p.len;
    p.starts <- starts
  end;
  p.slots.(p.len) <- v;
  Bytes.set p.starts p.len (if start then '\001' else '\000');
  p.len <- p.len + 1

let solve_trace ?pool ?budget ?table ~max_states ~granularity (m : Model.t) =
  let asyncs = Model.asynchronous m in
  if asyncs = [] then trivially_feasible ()
  else begin
    let elements =
      List.concat_map
        (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
        asyncs
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let n_el = Array.length elements in
    let widths =
      Array.map
        (fun e ->
          match granularity with
          | `Unit -> 1
          | `Atomic -> Comm_graph.weight m.comm e)
        elements
    in
    let unit_weights =
      Array.for_all (fun e -> Comm_graph.weight m.comm e = 1) elements
    in
    let d_max =
      List.fold_left (fun acc (c : Timing.t) -> max acc c.deadline) 1 asyncs
    in
    let r = d_max - 1 in
    let pooled = match pool with Some p -> Pool.jobs p > 1 | None -> false in
    let antichain =
      if unit_weights then
        let scale = bucket_scale (r + 1) in
        Some
          (Ac.create ~on_probe ~subsumed:residue_subsumed
             ~score:(fun v -> residue_score v / scale)
             ~max_score:((r + 1) / scale)
             ())
      else None
    in
    let sh = make_tshared ?budget ?table ~pooled ~antichain ~max_states () in
    Perf.incr Perf.game_states;
    (* Windows ending at [l] (1-based length), over a trace spanning at
       most the last [d_max] slots.  The local trace starts at the
       first block boundary at or after [l - d_max]: a block cut by
       that edge began earlier, so it cannot lie fully inside any
       window ending at or after [l] and is safely dropped (dropping it
       also keeps Trace.of_slots from mis-grouping the remaining slots
       of its element). *)
    let check_windows path l =
      let base = l - min l d_max in
      let p0 = ref base in
      while !p0 < l && Bytes.get path.starts !p0 = '\000' do
        incr p0
      done;
      let k = l - !p0 in
      let local =
        Array.init k (fun j ->
            let v = path.slots.(!p0 + j) in
            if v < 0 then Schedule.Idle else Schedule.Run v)
      in
      let trace = Trace.of_slots m.Model.comm local in
      List.for_all
        (fun (c : Timing.t) ->
          c.deadline > l
          || Latency.contains_execution m.Model.comm c.graph trace
               ~t0:(max 0 (l - c.deadline - !p0))
               ~t1:k)
        asyncs
    in
    (* Append one action (element index, or [n_el] for idle), checking
       every window the new slots close; on failure the path is
       restored and [false] returned. *)
    let try_append path act =
      let l0 = path.len in
      if act = n_el then begin
        path_push path (-1) ~start:true;
        check_windows path (l0 + 1)
        ||
        (path.len <- l0;
         false)
      end
      else begin
        let e = elements.(act) and w = widths.(act) in
        let rec lay i =
          i >= w
          ||
          (path_push path e ~start:(i = 0);
           check_windows path (l0 + i + 1) && lay (i + 1))
        in
        if lay 0 then true
        else begin
          path.len <- l0;
          false
        end
      end
    in
    (* Canonical key: warm-up marker (min len r — all future windows of
       a longer play read strictly inside the path iff len >= r) then
       the last [min len r] slots with left-cut block tails idled. *)
    let key_of path =
      let l = path.len in
      let k = min l r in
      let base = l - k in
      let p0 = ref base in
      while !p0 < l && Bytes.get path.starts !p0 = '\000' do
        incr p0
      done;
      let key = Array.make (k + 1) (-1) in
      key.(0) <- k;
      for j = !p0 to l - 1 do
        key.(j - base + 1) <- path.slots.(j)
      done;
      key
    in
    let schedule_of path ~from =
      let slots = ref [] in
      for j = path.len - 1 downto from do
        slots :=
          (if path.slots.(j) < 0 then Schedule.Idle
           else Schedule.Run path.slots.(j))
          :: !slots
      done;
      Schedule.of_slots !slots
    in
    let best = Rt_par.Bound.create () in
    let all_actions = List.init (n_el + 1) Fun.id in
    let exception Cycle_at of int in
    let exception Out_of_budget in
    let exception Aborted in
    (* Branch [bidx]: plays opening with run [i0] then action [i1] —
       the first two levels of the sequential DFS, flattened in its
       visit order (idle first is never needed: feasibility is
       rotation-invariant, so some run can open the play). *)
    let n_branches = n_el * (n_el + 1) in
    let branch bidx =
      let i0 = bidx / (n_el + 1) and i1 = bidx mod (n_el + 1) in
      let path = path_create () in
      let gray = Ktbl.create 1024 in
      (* gray maps a state's key to the path length at that state. *)
      let initial_key = key_of path in
      Ktbl.replace gray initial_key 0;
      let frames = ref [] in
      (* Apply one prefix action; prefix states other than the deepest
         are only partially explored by this branch, so they are not
         dead-markable. *)
      let apply_prefix act ~remaining ~markable =
        if not (try_append path act) then `Stop
        else begin
          let key = key_of path in
          match Ktbl.find_opt gray key with
          | Some from -> `Cycle from
          | None ->
              if known_dead sh key then `Stop
              else if not (try_expand sh.tk) then raise Out_of_budget
              else begin
                Ktbl.replace gray key path.len;
                frames := (key, path.len, ref remaining, markable) :: !frames;
                `Ok
              end
        end
      in
      try
        match apply_prefix i0 ~remaining:[] ~markable:false with
        | `Stop -> None
        | `Cycle from ->
            Rt_par.Bound.update_min best bidx;
            Some (schedule_of path ~from)
        | `Ok -> (
            match apply_prefix i1 ~remaining:all_actions ~markable:true with
            | `Stop -> None
            | `Cycle from ->
                Rt_par.Bound.update_min best bidx;
                Some (schedule_of path ~from)
            | `Ok ->
                let rec loop () =
                  if Rt_par.Bound.get best < bidx then raise Aborted;
                  match !frames with
                  | [] -> None
                  | (key, plen, remaining, markable) :: rest -> (
                      match !remaining with
                      | [] ->
                          if markable then mark_dead sh key;
                          Ktbl.remove gray key;
                          frames := rest;
                          (match rest with
                          | (_, pl, _, _) :: _ -> path.len <- pl
                          | [] -> ());
                          loop ()
                      | a :: more ->
                          remaining := more;
                          if not (try_append path a) then loop ()
                          else begin
                            let k = key_of path in
                            match Ktbl.find_opt gray k with
                            | Some from -> raise (Cycle_at from)
                            | None ->
                                if known_dead sh k then begin
                                  path.len <- plen;
                                  loop ()
                                end
                                else if not (try_expand sh.tk) then
                                  raise Out_of_budget
                                else begin
                                  Ktbl.replace gray k path.len;
                                  frames :=
                                    (k, path.len, ref all_actions, true)
                                    :: !frames;
                                  loop ()
                                end
                          end)
                in
                loop ())
      with
      | Cycle_at from ->
          Rt_par.Bound.update_min best bidx;
          Some (schedule_of path ~from)
      | Out_of_budget | Aborted -> None
    in
    let res =
      finish sh.tk m asyncs
        ~tbl_size:(Stbl.length sh.dead)
        ~tbl_evictions:(Stbl.evictions sh.dead)
        (find_branches pool n_branches branch)
    in
    publish_antichain sh.antichain;
    res
  end

(* ------------------------------------------------------------------ *)
(* Small-model bypass: trivial instances skip engine setup entirely.   *)
(*                                                                     *)
(* Concatenating every constraint's task graph (topological order,     *)
(* whole executions back to back) and verifying the resulting cycle    *)
(* once is a few microseconds; when the deadlines are loose — the      *)
(* unit-chains bench family, most "obviously feasible" admission       *)
(* probes — it succeeds and the whole game apparatus is never built.   *)
(* A failed verification proves nothing and falls through to the       *)
(* engine, so the bypass is sound; it is skipped under a caller        *)
(* budget, where the engine's cooperative Timeout semantics must be    *)
(* preserved.                                                          *)
(* ------------------------------------------------------------------ *)

let bypass_max_slots = 64
let bypass_max_constraints = 8

let small_model_bypass (m : Model.t) asyncs =
  (* One traversal yields both the slot total (threshold check) and the
     element set (stage-0 candidates) — this path must stay cheaper
     than the DFS oracle's first schedule on trivial models. *)
  let eltss =
    List.map (fun (c : Timing.t) -> Task_graph.elements_used c.graph) asyncs
  in
  let total =
    List.fold_left
      (List.fold_left (fun acc e -> acc + Comm_graph.weight m.comm e))
      0 eltss
  in
  if total = 0 || total > bypass_max_slots
     || List.length asyncs > bypass_max_constraints
  then None
  else begin
    let feasible sched =
      (* The latency analysers accept some ill-formed cycles (instances
         re-form across the unroll boundary), so well-formedness is a
         separate, mandatory gate: every schedule this bypass returns
         must survive Schedule.validate downstream. *)
      (match Schedule.validate m.comm sched with
      | Ok () -> true
      | Error _ -> false)
      && Latency.meets_all_asynchronous m.Model.comm sched asyncs
    in
    (* Stage 0: a cycle running one element for exactly one execution
       block — the minimal schedule the DFS oracle tries first, and the
       common answer for tiny chain models.  Verifying it costs less
       than building the concatenation below. *)
    let elements = List.concat eltss |> List.sort_uniq Int.compare in
    let one_slot =
      List.find_map
        (fun e ->
          let w = Comm_graph.weight m.comm e in
          let sched =
            Schedule.of_slots (List.init w (fun _ -> Schedule.Run e))
          in
          if feasible sched then Some sched else None)
        elements
    in
    match one_slot with
    | Some _ -> one_slot
    | None ->
    let slots =
      List.concat_map
        (fun (c : Timing.t) ->
          List.concat_map
            (fun node ->
              let e = Task_graph.element_of_node c.graph node in
              List.init (Comm_graph.weight m.comm e) (fun _ -> Schedule.Run e))
            (Task_graph.topological_order c.graph))
        asyncs
    in
    let sched = Schedule.of_slots slots in
    if feasible sched then Some sched else None
  end

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let solve ?pool ?budget ?table ?(max_states = 500_000) ?(impl = `Packed)
    ?(bypass = true) ~granularity (m : Model.t) =
  match impl with
  | `Reference ->
      Game_ref.solve ?pool ?budget ?table ~max_states ~granularity m
  | `Packed -> (
      let asyncs = Model.asynchronous m in
      if asyncs = [] then trivially_feasible ()
      else
        (* The bypass runs outside [Perf.time]: stage timing is for the
           engines, and the extra histogram write would tax exactly the
           microsecond-scale solves the bypass exists to win. *)
        match
          if bypass && budget = None then
            Rt_obs.Tracer.span ~cat:"exact" "game/bypass" (fun () ->
                small_model_bypass m asyncs)
          else None
        with
        | Some sched -> { explored = 0; outcome = Feasible sched }
        | None ->
            Perf.time "game" @@ fun () ->
            let w0 = Gc.minor_words () in
            let result =
              if
                List.for_all
                  (fun (c : Timing.t) -> Task_graph.size c.graph = 1)
                  asyncs
              then solve_budget ?pool ?budget ?table ~max_states m
              else solve_trace ?pool ?budget ?table ~max_states ~granularity m
            in
            Rt_obs.Metrics.set alloc_words_gauge
              (int_of_float (Gc.minor_words () -. w0));
            result)
