(* The PR-4 game engine, frozen verbatim as an independent oracle for
   the packed rewrite in game.ml.  Every state is a heap-allocated
   [int array], the antichain is a flat CAS list scanned linearly, and
   the per-solve transposition table is a full 32-shard Shard_tbl —
   exactly the constant factors the packed engine removes.  Kept so
   equivalence tests and the E15 bench can compare the two
   implementations head-to-head on identical inputs. *)

module Perf = Rt_par.Perf
module Pool = Rt_par.Pool
module Stbl = Rt_par.Shard_tbl
module Key = Rt_par.Shard_tbl.Int_array
module Ktbl = Hashtbl.Make (Rt_par.Shard_tbl.Int_array)

type outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Timeout of string
  | Unknown of string

type stats = { explored : int; outcome : outcome }

let trivially_feasible () =
  { explored = 0; outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]) }

(* ------------------------------------------------------------------ *)
(* Branch fan-out (same scheme as Exact: lowest-index branch wins).    *)
(* ------------------------------------------------------------------ *)

let find_branches pool n_tasks branch =
  let branch i =
    Rt_obs.Tracer.span ~cat:"exact" "game/branch" (fun () -> branch i)
  in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      Pool.parallel_find_first p branch (Array.init n_tasks Fun.id)
  | _ ->
      let rec go i =
        if i >= n_tasks then None
        else match branch i with Some _ as r -> r | None -> go (i + 1)
      in
      go 0

(* ------------------------------------------------------------------ *)
(* Dominance antichain: pointwise-maximal dead states.                 *)
(*                                                                     *)
(* [subsumed v d] must mean "if d is dead then v is dead".  The cell   *)
(* holds an immutable list swapped by CAS, so lanes read it without    *)
(* locking; the list is kept an antichain (no element subsumes another)*)
(* and capped — dropping entries only loses pruning power, never       *)
(* soundness.                                                          *)
(* ------------------------------------------------------------------ *)

module Antichain = struct
  type t = { cell : int array list Atomic.t; cap : int }

  let create ?(cap = 512) () = { cell = Atomic.make []; cap }

  let covers ~subsumed t v =
    List.exists (fun d -> subsumed v d) (Atomic.get t.cell)

  let rec add ~subsumed t v =
    let cur = Atomic.get t.cell in
    if List.exists (fun d -> subsumed v d) cur then ()
    else
      let kept = List.filter (fun d -> not (subsumed d v)) cur in
      let kept =
        if List.length kept >= t.cap then
          match kept with [] -> [] | _ :: tl -> tl
        else kept
      in
      if not (Atomic.compare_and_set t.cell cur (v :: kept)) then
        add ~subsumed t v
end

(* ------------------------------------------------------------------ *)
(* State shared by every branch of one solve: the dead-state           *)
(* transposition table, the optional dominance antichain, and the      *)
(* global expansion budget.  Everything in here is path-independent:   *)
(* "state s is dead" holds regardless of which prefix reached s, so    *)
(* lanes may freely consume facts other lanes produced.                *)
(* ------------------------------------------------------------------ *)

type shared = {
  dead : (int array, unit) Stbl.t;
  antichain : Antichain.t option;
  subsumed : int array -> int array -> bool;
  expanded : int Atomic.t;
  max_states : int;
  over_budget : bool Atomic.t;
  budget : Budget.t option;
  timed_out : bool Atomic.t;
}

(* Default transposition-table cap: comfortably above the default
   [max_states] (each expansion adds at most one dead fact), so default
   runs never evict and stay bit-identical to the uncapped engine, while
   adversarial long runs stay bounded. *)
let default_table_cap = 2 * 1024 * 1024

(* A resident dead-fact table a caller may thread through several solves
   of the SAME model (and granularity): "state s is dead" is a property
   of the model alone, not of the path or budget that proved it, so a
   later solve may consume facts an earlier (even timed-out) solve
   derived.  Reusing a table across different models is unsound — the
   daemon keys its resident tables by model digest. *)
type table = (int array, unit) Stbl.t

let table ?(cap = default_table_cap) () =
  Stbl.create ~max_entries:cap ~hash:Key.hash ~equal:Key.equal 1024

let table_size = Stbl.length

let make_shared ?antichain ?budget ?table:dead_table
    ?(table_cap = default_table_cap) ~subsumed ~max_states () =
  {
    dead =
      (match dead_table with
      | Some t -> t
      | None ->
          Stbl.create ~max_entries:table_cap ~hash:Key.hash ~equal:Key.equal
            1024);
    antichain;
    subsumed;
    expanded = Atomic.make 1 (* the initial state *);
    max_states;
    over_budget = Atomic.make false;
    budget;
    timed_out = Atomic.make false;
  }

let known_dead sh key =
  if Stbl.mem sh.dead key then begin
    Perf.incr Perf.table_hits;
    true
  end
  else begin
    Perf.incr Perf.table_misses;
    match sh.antichain with
    | Some ac when Antichain.covers ~subsumed:sh.subsumed ac key ->
        Perf.incr Perf.dominance_kills;
        (* Promote the derived fact so future probes hit the table. *)
        Stbl.add sh.dead key ();
        true
    | _ -> false
  end

let mark_dead sh key =
  Stbl.add sh.dead key ();
  match sh.antichain with
  | Some ac -> Antichain.add ~subsumed:sh.subsumed ac key
  | None -> ()

(* One expansion ticket, or [false] when the global budget is spent.
   The caller-supplied [Budget.t] is spent first so a tripped budget
   never touches the expansion counters (with no budget this path is
   untouched — the bench counters pin it). *)
let try_expand sh =
  (match sh.budget with
  | None -> true
  | Some b ->
      Budget.spend b 1
      ||
      (Atomic.set sh.timed_out true;
       false))
  && (not (Atomic.get sh.over_budget))
  &&
  let n = Atomic.fetch_and_add sh.expanded 1 in
  if n >= sh.max_states then begin
    Atomic.set sh.over_budget true;
    false
  end
  else begin
    Perf.incr Perf.game_states;
    true
  end

let explored_of sh = min (Atomic.get sh.expanded) sh.max_states

(* Observability: final size of this solve's transposition table and how
   many facts its cap forced out (0 unless the run outgrew
   [default_table_cap]). *)
let table_size_gauge = Rt_obs.Metrics.gauge "game/table_size"
let table_evictions_ctr = Rt_obs.Metrics.counter "game/table_evictions"

let publish_table_stats sh =
  Rt_obs.Metrics.set table_size_gauge (Stbl.length sh.dead);
  Rt_obs.Metrics.add table_evictions_ctr (Stbl.evictions sh.dead)

let finish sh m asyncs result =
  publish_table_stats sh;
  match result with
  | Some sched ->
      let ok =
        List.for_all
          (fun c -> Latency.meets_asynchronous m.Model.comm sched c)
          asyncs
      in
      {
        explored = explored_of sh;
        outcome =
          (if ok then Feasible sched
           else Unknown "internal: cycle schedule failed verification");
      }
  | None ->
      {
        explored = explored_of sh;
        outcome =
          (if Atomic.get sh.timed_out then
             Timeout
               (match Option.bind sh.budget Budget.exhausted with
               | Some reason -> reason
               | None -> "budget exhausted")
           else if Atomic.get sh.over_budget then
             Unknown
               (Printf.sprintf "state budget %d exhausted" sh.max_states)
           else Infeasible);
      }

(* ------------------------------------------------------------------ *)
(* Budget-vector game: every constraint is a single operation.         *)
(*                                                                     *)
(* State: budget.(i) = slots remaining for constraint i's next         *)
(* execution to finish.  Transitions are macro-steps.  Dominance: a    *)
(* dead state with pointwise no-smaller budgets kills any state with   *)
(* pointwise no-larger budgets (less slack everywhere is strictly      *)
(* harder, and play from the laxer state can mimic any play from the   *)
(* harder one).                                                        *)
(* ------------------------------------------------------------------ *)

type action = A_idle | A_run of int

let budget_subsumed v d =
  (* v dead if d dead: v pointwise <= d. *)
  Array.length v = Array.length d
  &&
  let n = Array.length v in
  let rec go i = i >= n || (v.(i) <= d.(i) && go (i + 1)) in
  go 0

let solve_budget ?pool ?budget ?table ~max_states (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let specs =
    (* (element, weight, deadline) per constraint; single-op by
       construction (the caller validated the graphs). *)
    List.map
      (fun (c : Timing.t) ->
        let e = Task_graph.element_of_node c.graph 0 in
        (e, Comm_graph.weight m.comm e, c.deadline))
      asyncs
    |> Array.of_list
  in
  let n = Array.length specs in
  if n = 0 then trivially_feasible ()
  else begin
    let elements =
      Array.to_list specs |> List.map (fun (e, _, _) -> e)
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let weight_of = Hashtbl.create 8 in
    Array.iter (fun (e, w, _) -> Hashtbl.replace weight_of e w) specs;
    let initial = Array.init n (fun i -> let _, _, d = specs.(i) in d) in
    let initially_dead = Array.exists (fun (_, w, d) -> d < w) specs in
    (* Necessary long-run rate condition (see Exact.solve_single_ops):
       element e must start an execution at least every d_i + 1 - w_e
       slots for its tightest constraint i; if those shares sum past 1
       the instance is certainly infeasible. *)
    let rate_overloaded =
      let tightest = Hashtbl.create 8 in
      Array.iter
        (fun (e, _, d) ->
          match Hashtbl.find_opt tightest e with
          | Some d' when d' <= d -> ()
          | _ -> Hashtbl.replace tightest e d)
        specs;
      let total =
        Hashtbl.fold
          (fun e d acc ->
            let w = Hashtbl.find weight_of e in
            if d + 1 - w <= 0 then acc +. infinity
            else acc +. (float_of_int w /. float_of_int (d + 1 - w)))
          tightest 0.0
      in
      total > 1.0 +. 1e-9
    in
    if initially_dead || rate_overloaded then
      { explored = 0; outcome = Infeasible }
    else begin
      let step state = function
        | A_idle ->
            let ok = ref true in
            let next =
              Array.mapi
                (fun i b ->
                  let _, w, _ = specs.(i) in
                  let b' = b - 1 in
                  if b' < w then ok := false;
                  b')
                state
            in
            if !ok then Some next else None
        | A_run e ->
            let we = Hashtbl.find weight_of e in
            let ok = ref true in
            let next =
              Array.mapi
                (fun i b ->
                  let ei, wi, di = specs.(i) in
                  if ei = e then begin
                    if b < we then ok := false;
                    di + 1 - we
                  end
                  else begin
                    if b < we + wi then ok := false;
                    b - we
                  end)
                state
            in
            if !ok then Some next else None
      in
      let actions =
        Array.to_list (Array.map (fun e -> A_run e) elements) @ [ A_idle ]
      in
      let expand_action = function
        | A_idle -> [ Schedule.Idle ]
        | A_run e ->
            List.init (Hashtbl.find weight_of e) (fun _ -> Schedule.Run e)
      in
      let sh =
        make_shared ~antichain:(Antichain.create ()) ?budget ?table
          ~subsumed:budget_subsumed ~max_states ()
      in
      Perf.incr Perf.game_states;
      let best = Rt_par.Bound.create () in
      let n_el = Array.length elements in
      let exception Cycle of action list in
      let exception Out_of_budget in
      let exception Aborted in
      (* Branch [b]: plays whose first action runs element [b].  An
         all-idle play cannot cycle (budgets strictly decrease), so
         every safe cycle reachable at all is reachable with a run
         first: the initial state has pointwise-maximal budgets, hence
         can mimic the cycle's word starting from its first run. *)
      let branch bidx =
        let a0 = A_run elements.(bidx) in
        match step initial a0 with
        | None -> None
        | Some s1 ->
            if known_dead sh s1 then None
            else begin
              let gray = Ktbl.create 256 in
              Ktbl.replace gray initial ();
              (* Frames: (state, remaining actions, action towards the
                 current child, whether exhausting the frame proves the
                 state dead).  The initial frame is shared with every
                 other branch, so it must not be marked. *)
              let frames =
                ref [ (initial, ref [], ref (Some a0), false) ]
              in
              let push state =
                Ktbl.replace gray state ();
                frames := (state, ref actions, ref None, true) :: !frames
              in
              let result =
                try
                  if not (try_expand sh) then raise Out_of_budget;
                  push s1;
                  let rec loop () =
                    if Rt_par.Bound.get best < bidx then raise Aborted;
                    match !frames with
                    | [] -> None
                    | (state, remaining, via, markable) :: rest -> (
                        match !remaining with
                        | [] ->
                            if markable then mark_dead sh state;
                            Ktbl.remove gray state;
                            frames := rest;
                            loop ()
                        | a :: more -> (
                            remaining := more;
                            match step state a with
                            | None -> loop ()
                            | Some next ->
                                if Ktbl.mem gray next then begin
                                  (* Collect the actions along the
                                     cycle: from the frame holding
                                     [next] up to here, then [a]. *)
                                  via := Some a;
                                  let rec collect acc = function
                                    | [] -> assert false
                                    | (s, _, v, _) :: tl ->
                                        let acc =
                                          match !v with
                                          | Some act -> act :: acc
                                          | None -> acc
                                        in
                                        if Key.equal s next then acc
                                        else collect acc tl
                                  in
                                  raise (Cycle (collect [] !frames))
                                end
                                else if known_dead sh next then loop ()
                                else if not (try_expand sh) then
                                  raise Out_of_budget
                                else begin
                                  via := Some a;
                                  push next;
                                  loop ()
                                end))
                  in
                  loop ()
                with
                | Cycle cycle_actions ->
                    let slots = List.concat_map expand_action cycle_actions in
                    Rt_par.Bound.update_min best bidx;
                    Some (Schedule.of_slots slots)
                | Out_of_budget | Aborted -> None
              in
              result
            end
      in
      finish sh m asyncs (find_branches pool n_el branch)
    end
  end

(* ------------------------------------------------------------------ *)
(* Trace-residue game: general task-graph constraints.                 *)
(*                                                                     *)
(* The play is the infinite trace, built one slot ([`Unit]) or one     *)
(* whole execution block ([`Atomic]) per edge.  Appending at length l  *)
(* closes exactly the windows ending at l, and every such window reads *)
(* at most the last d_max slots, so legality is decided incrementally  *)
(* on a trace of bounded span.  Since all future checks read at most   *)
(* the last d_max - 1 existing slots, the state is that residue,       *)
(* canonicalized: a block cut by the residue's left edge can never     *)
(* again lie fully inside a window, so its slots are remapped to idle. *)
(* A repeated residue on one path closes a safe cycle; the slots laid  *)
(* between the two visits are a feasible static schedule.              *)
(* ------------------------------------------------------------------ *)

let residue_subsumed v d =
  (* Unit-weight slotwise order: v is d with some runs idled out, so
     any legal continuation of v is legal from d, and d's death kills
     v.  (Unsound for weighted blocks: removing slots re-aligns block
     decompositions; see docs/PERFORMANCE.md.)  Index 0 is the
     warm-up-length marker, never -1, so it is forced equal. *)
  Array.length v = Array.length d
  &&
  let n = Array.length v in
  let rec go i = i >= n || ((v.(i) = -1 || v.(i) = d.(i)) && go (i + 1)) in
  go 0

type path = {
  mutable slots : int array; (* element id, or -1 for idle *)
  mutable starts : Bytes.t; (* '\001' where a block (or idle) begins *)
  mutable len : int;
}

let path_create () =
  { slots = Array.make 64 (-1); starts = Bytes.make 64 '\000'; len = 0 }

let path_push p v ~start =
  if p.len = Array.length p.slots then begin
    let n = 2 * p.len in
    let slots = Array.make n (-1) in
    Array.blit p.slots 0 slots 0 p.len;
    p.slots <- slots;
    let starts = Bytes.make n '\000' in
    Bytes.blit p.starts 0 starts 0 p.len;
    p.starts <- starts
  end;
  p.slots.(p.len) <- v;
  Bytes.set p.starts p.len (if start then '\001' else '\000');
  p.len <- p.len + 1

let solve_trace ?pool ?budget ?table ~max_states ~granularity (m : Model.t) =
  let asyncs = Model.asynchronous m in
  if asyncs = [] then trivially_feasible ()
  else begin
    let elements =
      List.concat_map
        (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
        asyncs
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let n_el = Array.length elements in
    let widths =
      Array.map
        (fun e ->
          match granularity with
          | `Unit -> 1
          | `Atomic -> Comm_graph.weight m.comm e)
        elements
    in
    let unit_weights =
      Array.for_all (fun e -> Comm_graph.weight m.comm e = 1) elements
    in
    let d_max =
      List.fold_left (fun acc (c : Timing.t) -> max acc c.deadline) 1 asyncs
    in
    let r = d_max - 1 in
    let sh =
      make_shared
        ?antichain:(if unit_weights then Some (Antichain.create ()) else None)
        ?budget ?table ~subsumed:residue_subsumed ~max_states ()
    in
    Perf.incr Perf.game_states;
    (* Windows ending at [l] (1-based length), over a trace spanning at
       most the last [d_max] slots.  The local trace starts at the
       first block boundary at or after [l - d_max]: a block cut by
       that edge began earlier, so it cannot lie fully inside any
       window ending at or after [l] and is safely dropped (dropping it
       also keeps Trace.of_slots from mis-grouping the remaining slots
       of its element). *)
    let check_windows path l =
      let base = l - min l d_max in
      let p0 = ref base in
      while !p0 < l && Bytes.get path.starts !p0 = '\000' do
        incr p0
      done;
      let k = l - !p0 in
      let local =
        Array.init k (fun j ->
            let v = path.slots.(!p0 + j) in
            if v < 0 then Schedule.Idle else Schedule.Run v)
      in
      let trace = Trace.of_slots m.Model.comm local in
      List.for_all
        (fun (c : Timing.t) ->
          c.deadline > l
          || Latency.contains_execution m.Model.comm c.graph trace
               ~t0:(max 0 (l - c.deadline - !p0))
               ~t1:k)
        asyncs
    in
    (* Append one action (element index, or [n_el] for idle), checking
       every window the new slots close; on failure the path is
       restored and [false] returned. *)
    let try_append path act =
      let l0 = path.len in
      if act = n_el then begin
        path_push path (-1) ~start:true;
        check_windows path (l0 + 1)
        ||
        (path.len <- l0;
         false)
      end
      else begin
        let e = elements.(act) and w = widths.(act) in
        let rec lay i =
          i >= w
          ||
          (path_push path e ~start:(i = 0);
           check_windows path (l0 + i + 1) && lay (i + 1))
        in
        if lay 0 then true
        else begin
          path.len <- l0;
          false
        end
      end
    in
    (* Canonical key: warm-up marker (min len r — all future windows of
       a longer play read strictly inside the path iff len >= r) then
       the last [min len r] slots with left-cut block tails idled. *)
    let key_of path =
      let l = path.len in
      let k = min l r in
      let base = l - k in
      let p0 = ref base in
      while !p0 < l && Bytes.get path.starts !p0 = '\000' do
        incr p0
      done;
      let key = Array.make (k + 1) (-1) in
      key.(0) <- k;
      for j = !p0 to l - 1 do
        key.(j - base + 1) <- path.slots.(j)
      done;
      key
    in
    let schedule_of path ~from =
      let slots = ref [] in
      for j = path.len - 1 downto from do
        slots :=
          (if path.slots.(j) < 0 then Schedule.Idle
           else Schedule.Run path.slots.(j))
          :: !slots
      done;
      Schedule.of_slots !slots
    in
    let best = Rt_par.Bound.create () in
    let all_actions = List.init (n_el + 1) Fun.id in
    let exception Cycle_at of int in
    let exception Out_of_budget in
    let exception Aborted in
    (* Branch [bidx]: plays opening with run [i0] then action [i1] —
       the first two levels of the sequential DFS, flattened in its
       visit order (idle first is never needed: feasibility is
       rotation-invariant, so some run can open the play). *)
    let n_branches = n_el * (n_el + 1) in
    let branch bidx =
      let i0 = bidx / (n_el + 1) and i1 = bidx mod (n_el + 1) in
      let path = path_create () in
      let gray = Ktbl.create 1024 in
      (* gray maps a state's key to the path length at that state. *)
      let initial_key = key_of path in
      Ktbl.replace gray initial_key 0;
      let frames = ref [] in
      (* Apply one prefix action; prefix states other than the deepest
         are only partially explored by this branch, so they are not
         dead-markable. *)
      let apply_prefix act ~remaining ~markable =
        if not (try_append path act) then `Stop
        else begin
          let key = key_of path in
          match Ktbl.find_opt gray key with
          | Some from -> `Cycle from
          | None ->
              if known_dead sh key then `Stop
              else if not (try_expand sh) then raise Out_of_budget
              else begin
                Ktbl.replace gray key path.len;
                frames := (key, path.len, ref remaining, markable) :: !frames;
                `Ok
              end
        end
      in
      try
        match apply_prefix i0 ~remaining:[] ~markable:false with
        | `Stop -> None
        | `Cycle from ->
            Rt_par.Bound.update_min best bidx;
            Some (schedule_of path ~from)
        | `Ok -> (
            match apply_prefix i1 ~remaining:all_actions ~markable:true with
            | `Stop -> None
            | `Cycle from ->
                Rt_par.Bound.update_min best bidx;
                Some (schedule_of path ~from)
            | `Ok ->
                let rec loop () =
                  if Rt_par.Bound.get best < bidx then raise Aborted;
                  match !frames with
                  | [] -> None
                  | (key, plen, remaining, markable) :: rest -> (
                      match !remaining with
                      | [] ->
                          if markable then mark_dead sh key;
                          Ktbl.remove gray key;
                          frames := rest;
                          (match rest with
                          | (_, pl, _, _) :: _ -> path.len <- pl
                          | [] -> ());
                          loop ()
                      | a :: more ->
                          remaining := more;
                          if not (try_append path a) then loop ()
                          else begin
                            let k = key_of path in
                            match Ktbl.find_opt gray k with
                            | Some from -> raise (Cycle_at from)
                            | None ->
                                if known_dead sh k then begin
                                  path.len <- plen;
                                  loop ()
                                end
                                else if not (try_expand sh) then
                                  raise Out_of_budget
                                else begin
                                  Ktbl.replace gray k path.len;
                                  frames :=
                                    (k, path.len, ref all_actions, true)
                                    :: !frames;
                                  loop ()
                                end
                          end)
                in
                loop ())
      with
      | Cycle_at from ->
          Rt_par.Bound.update_min best bidx;
          Some (schedule_of path ~from)
      | Out_of_budget | Aborted -> None
    in
    finish sh m asyncs (find_branches pool n_branches branch)
  end

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let solve ?pool ?budget ?table ?(max_states = 500_000) ~granularity
    (m : Model.t) =
  Perf.time "game" @@ fun () ->
  let asyncs = Model.asynchronous m in
  if asyncs = [] then trivially_feasible ()
  else if
    List.for_all (fun (c : Timing.t) -> Task_graph.size c.graph = 1) asyncs
  then solve_budget ?pool ?budget ?table ~max_states m
  else solve_trace ?pool ?budget ?table ~max_states ~granularity m
