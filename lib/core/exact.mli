(** Exact feasibility deciders for latency scheduling.

    Two complete procedures, matching the two restricted problem classes
    of Theorem 2 (both of which are already strongly NP-hard):

    {ol
    {- {!enumerate}: exhaustive search over static schedules of bounded
       length for models whose elements all have unit computation time
       (Theorem 2 case (i): unit weights, chain task graphs).  With unit
       weights every slot string is well-formed, so the enumeration is
       complete up to the length bound.}
    {- {!solve_single_ops}: the finite {e simulation game} behind
       Theorem 1, specialised to models in which every task graph is a
       single operation (Theorem 2 case (ii)).  States track, per
       constraint, the remaining budget until the next execution must
       complete, plus the progress of the (contiguous) in-flight
       execution; a feasible trace exists iff a safe cycle through an
       execution-boundary state is reachable, and the cycle's action word
       is itself a feasible static schedule — a constructive reading of
       Theorem 1.}}

    Both deciders consider the asynchronous constraints only (the paper
    states its key results for [T_p = {}]). *)

type outcome =
  | Feasible of Schedule.t
      (** A feasible static schedule (verified before being returned). *)
  | Infeasible  (** Complete search proved no feasible schedule exists. *)
  | Unknown of string
      (** Resource bound hit before the search completed; the message
          says which. *)

type stats = {
  explored : int;  (** Schedules tested / states expanded. *)
  outcome : outcome;
}

val enumerate : ?pool:Rt_par.Pool.t -> ?max_len:int -> Model.t -> stats
(** [enumerate m] searches schedule lengths [1 .. max_len] (default 12)
    in increasing order; within a length, depth-first over slot strings
    with two prunings that preserve completeness: slot 0 is never idle
    (feasibility is rotation-invariant), and any fully decided window
    that lacks a required execution cuts the branch.  Raises
    [Invalid_argument] if some element used by an asynchronous
    constraint does not have unit weight.  [Infeasible] here means "no
    feasible schedule of length <= max_len"; it is reported as
    [Unknown] instead, since longer schedules could exist, unless
    [max_len] exceeds the instance's trivial upper bound.

    With [pool], top-level (length, first slot) branches of the search
    run concurrently; the lowest-index successful branch wins, so the
    returned schedule is bit-identical to the sequential one.  Only
    [explored] may differ (concurrent losing branches may test
    schedules the sequential search never reaches); with a pool of one
    lane it, too, is identical. *)

val enumerate_atomic : ?pool:Rt_par.Pool.t -> ?max_len:int -> Model.t -> stats
(** [enumerate_atomic m] searches for feasible schedules of up to
    [max_len] slots (default 16) at {e execution granularity}: each
    decision appends either one idle slot or one whole contiguous
    execution of an element.  For models whose elements are all
    non-pipelinable this enumeration is complete up to the length bound
    (any well-formed schedule is, after rotation, such a concatenation);
    for pipelinable elements it is sound but may miss schedules that
    interleave executions.  Same outcome and [pool] conventions as
    {!enumerate} (branches here are (length, opening execution)
    pairs). *)

val solve_single_ops : ?max_states:int -> Model.t -> stats
(** [solve_single_ops m] runs the simulation game (default bound: one
    million states).  Raises [Invalid_argument] if some asynchronous
    constraint's task graph is not a single operation.  [Infeasible]
    is definitive: no execution trace (and hence no static schedule)
    has the required latencies.  Weight-[w] executions are kept
    contiguous, matching non-pipelinable elements; for pipelinable
    elements this makes the verdict conservative (a [Feasible] answer
    is always correct).  A necessary long-run rate condition
    ([Σ_e w_e / (d_e + 1 - w_e) <= 1] over distinct elements with their
    tightest deadlines) is checked first, so overloaded instances are
    rejected without search. *)
