(** Exact feasibility deciders for latency scheduling.

    Two search families over the two restricted problem classes of
    Theorem 2 (both of which are already strongly NP-hard):

    {ol
    {- {!enumerate} / {!enumerate_atomic}: decide feasibility at slot
       granularity (Theorem 2 case (i): unit weights) or execution
       granularity (whole contiguous blocks).  Each comes with two
       engines: the default [`Game] plays Mok's Theorem-1 simulation
       game over canonical trace-residue states with a shared
       transposition table and dominance pruning ({!Game}), giving
       definitive [Infeasible] verdicts; [`Dfs] is the original bounded
       enumeration over schedule strings, kept as an independent oracle
       (its completeness argument is elementary, so the property tests
       check the engines against each other).}
    {- {!solve_single_ops}: the finite {e simulation game} behind
       Theorem 1, specialised to models in which every task graph is a
       single operation (Theorem 2 case (ii)).  States track, per
       constraint, the remaining budget until the next execution must
       complete; a feasible trace exists iff a safe cycle is reachable,
       and the cycle's action word is itself a feasible static schedule
       — a constructive reading of Theorem 1.  Since the re-expression
       on the game engine it shares the transposition table, dominance
       antichain and pool fan-out with the other solvers.}}

    Both deciders consider the asynchronous constraints only (the paper
    states its key results for [T_p = {}]). *)

type outcome = Game.outcome =
  | Feasible of Schedule.t
      (** A feasible static schedule (verified before being returned). *)
  | Infeasible  (** Complete search proved no feasible schedule exists. *)
  | Timeout of string
      (** The caller-supplied {!Budget.t} ran out before the search
          completed; the message says which resource. *)
  | Unknown of string
      (** The engine's own resource bound ([max_len]/[max_states]) hit
          before the search completed; the message says which. *)

type stats = Game.stats = {
  explored : int;  (** Schedules tested / states expanded. *)
  outcome : outcome;
}

type engine = [ `Dfs | `Game | `Game_ref ]
(** [`Game] (the default): reachable-cycle search over game states with
    memoization — definitive [Infeasible], no length bound, state
    budget [max_states].  Runs {!Game}'s packed implementation
    ([~impl:`Packed]).  [`Game_ref] is the same game played by the
    frozen reference engine ({!Game_ref}, [~impl:`Reference]) — slower,
    kept as an independent cross-check and as the packed engine's
    before/after benchmark peer.  [`Dfs]: the original bounded
    enumeration — answers are [Feasible] or [Unknown] (never
    [Infeasible]), bounded by [max_len]; slower but with an
    independent, elementary completeness argument, which keeps it
    useful as an oracle and for minimal-length-schedule queries (the
    game returns {e some} cycle, not the shortest one). *)

val enumerate :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?table:Game.table ->
  ?engine:engine ->
  ?max_len:int ->
  ?max_states:int ->
  Model.t ->
  stats
(** [enumerate m] decides feasibility at slot granularity.  Raises
    [Invalid_argument] if some element used by an asynchronous
    constraint does not have unit weight.

    [budget] bounds the whole solve by wall clock and/or fuel, checked
    cooperatively at every state expansion (game) or DFS node;
    exhausting it yields [Timeout].  With no [budget] the search is
    bit-for-bit the default path.  [table] supplies a resident
    {!Game.table} of dead facts reused across game-engine solves of the
    same model (ignored by [`Dfs]).

    With [~engine:`Dfs]: searches schedule lengths [1 .. max_len]
    (default 12) in increasing order; within a length, depth-first over
    slot strings with two prunings that preserve completeness: slot 0
    is never idle (feasibility is rotation-invariant), and any fully
    decided window that lacks a required execution cuts the branch.
    [Unknown] means "no feasible schedule of length <= max_len" —
    longer schedules could exist.  [max_states] is ignored.

    With [~engine:`Game] (default): plays the simulation game
    ({!Game.solve} with [`Unit] granularity); [max_len] is ignored and
    [max_states] (default 500_000) bounds the states expanded.
    [Infeasible] is definitive.

    With [pool], top-level branches of either engine's search run
    concurrently; the lowest-index successful branch wins, so the
    returned schedule is bit-identical to the sequential one.  Only
    [explored] may differ (concurrent losing branches may expand states
    the sequential search never reaches — and if the state budget binds,
    which side of it the search lands on); with a pool of one lane it,
    too, is identical. *)

val enumerate_atomic :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?table:Game.table ->
  ?engine:engine ->
  ?max_len:int ->
  ?max_states:int ->
  Model.t ->
  stats
(** [enumerate_atomic m] decides feasibility at {e execution
    granularity}: each decision appends either one idle slot or one
    whole contiguous execution of an element.  For models whose
    elements are all non-pipelinable this search is complete (any
    well-formed schedule is, after rotation, such a concatenation); for
    pipelinable elements it is sound but may miss schedules that
    interleave executions.  [~engine:`Dfs] bounds schedule length by
    [max_len] (default 16, branches are (length, opening execution)
    pairs); [~engine:`Game] (default) is {!Game.solve} with [`Atomic]
    granularity.  Same outcome and [pool] conventions as
    {!enumerate}. *)

val solve_single_ops :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?table:Game.table ->
  ?max_states:int ->
  Model.t ->
  stats
(** [solve_single_ops m] runs the simulation game (default bound: one
    million states).  Raises [Invalid_argument] if some asynchronous
    constraint's task graph is not a single operation.  [Infeasible]
    is definitive: no execution trace (and hence no static schedule)
    has the required latencies.  Weight-[w] executions are kept
    contiguous, matching non-pipelinable elements; for pipelinable
    elements this makes the verdict conservative (a [Feasible] answer
    is always correct).  A necessary long-run rate condition
    ([Σ_e w_e / (d_e + 1 - w_e) <= 1] over distinct elements with their
    tightest deadlines) is checked first, so overloaded instances are
    rejected without search.  With [pool] the first-action branches fan
    out with the usual lowest-index-wins determinism. *)

val solve_decomposed :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?engine:engine ->
  ?max_len:int ->
  ?max_states:int ->
  granularity:[ `Unit | `Atomic ] ->
  Model.t ->
  stats
(** [solve_decomposed ~granularity m] decides feasibility
    component-wise: split [m] into interaction components
    ({!Decompose.components}), decide each deduplicated component
    submodel independently with {!enumerate} ([`Unit]) or
    {!enumerate_atomic} ([`Atomic]) — fanned out on [pool], each inner
    search sequential with a fresh implicit table, so [explored] is the
    deterministic sum of per-component counts at any job level — and
    combine: any component [Infeasible] is [Infeasible] for the whole
    model (its constraints are a subset — definitive); otherwise the
    first [Timeout], then the first [Unknown], wins; when every
    component is [Feasible] the component schedules are interleaved
    ({!Decompose.interleave}) and the merged schedule re-verified
    against the {e whole} model's asynchronous constraints.  A failed
    interleave or re-verification degrades to [Unknown], never to a
    wrong definitive answer.  Single-component and empty models take
    the corresponding plain engine unchanged (with [pool]). *)
