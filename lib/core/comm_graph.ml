include Rt_base.Comm_graph
