let exec_of_assignment tg assignment : Certificate.exec =
  let x = Array.make (Task_graph.size tg) (0, 0) in
  List.iter
    (fun (v, (inst : Trace.instance)) ->
      x.(v) <- (inst.Trace.start, inst.Trace.finish))
    assignment;
  x

let exec_start (x : Certificate.exec) =
  Array.fold_left (fun a (s, _) -> min a s) max_int x

let super_of cycle (c : Timing.t) =
  match Rt_graph.Intmath.lcm c.Timing.period cycle with
  | s -> Some s
  | exception Rt_graph.Intmath.Overflow -> None

let schedule (m : Model.t) (l : Schedule.t) =
  match Schedule.validate m.Model.comm l with
  | Error es -> Error (String.concat "; " es)
  | Ok () -> (
      let g = m.Model.comm in
      let cycle = Schedule.length l in
      let horizon =
        List.fold_left
          (fun acc (c : Timing.t) ->
            match c.Timing.kind with
            | Timing.Asynchronous -> max acc (cycle + (2 * c.Timing.deadline) + 1)
            | Timing.Periodic -> (
                match super_of cycle c with
                | Some super -> max acc (super + c.Timing.deadline + 1)
                | None -> acc))
          cycle m.Model.constraints
      in
      let tr = Trace.of_schedule g l ~horizon in
      let witness (c : Timing.t) =
        let d = c.Timing.deadline in
        let tg = c.Timing.graph in
        match c.Timing.kind with
        | Timing.Asynchronous ->
            (* Greedy covering chain: the execution witnessing window
               start [t] has start [s >= t]; the next uncovered window
               start is [s + 1]. *)
            let rec chain acc t =
              match Latency.executes_within g tg tr ~t0:t ~t1:(t + d) with
              | None ->
                  Error
                    (Printf.sprintf
                       "constraint %s: no execution inside window [%d,%d)"
                       c.Timing.name t (t + d))
              | Some assignment ->
                  let x = exec_of_assignment tg assignment in
                  let s = exec_start x in
                  if s >= cycle - 1 then Ok (List.rev (x :: acc))
                  else chain (x :: acc) (s + 1)
            in
            Result.map (fun es -> Certificate.Async es) (chain [] 0)
        | Timing.Periodic -> (
            match super_of cycle c with
            | None ->
                Error
                  (Printf.sprintf
                     "constraint %s: lcm(period, cycle) overflows; cannot \
                      certify"
                     c.Timing.name)
            | Some super ->
                let n_inv = super / c.Timing.period in
                let execs = Array.make n_inv [||] in
                let rec fill k =
                  if k >= n_inv then Ok (Certificate.Periodic execs)
                  else
                    let t = c.Timing.offset + (k * c.Timing.period) in
                    match
                      Latency.executes_within g tg tr ~t0:t ~t1:(t + d)
                    with
                    | None ->
                        Error
                          (Printf.sprintf
                             "constraint %s: invocation at %d misses its \
                              deadline %d"
                             c.Timing.name t d)
                    | Some assignment ->
                        execs.(k) <- exec_of_assignment tg assignment;
                        fill (k + 1)
                in
                fill 0)
      in
      let rec all acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match witness c with
            | Ok w -> all ((c.Timing.name, w) :: acc) rest
            | Error e -> Error e)
      in
      match all [] m.Model.constraints with
      | Ok witnesses -> Ok (Certificate.make m l witnesses)
      | Error e -> Error e)

let plan (p : Synthesis.plan) = schedule p.Synthesis.model_used p.Synthesis.schedule
