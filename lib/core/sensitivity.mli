(** Sensitivity analysis: how much margin does a design have?

    Computer-aided design needs more than a yes/no feasibility answer —
    the engineer wants to know how far a parameter can be pushed before
    synthesis breaks.  Two standard questions are answered here by
    (monotone) search over re-parameterized models:

    - the tightest deadline a given constraint could be given while the
      system stays synthesizable;
    - the largest uniform slow-down of all periods/deadlines/separations
      (equivalently, the smallest processor speed-up) under which
      synthesis still succeeds. *)

val with_deadline : Model.t -> string -> int -> Model.t
(** [with_deadline m name d] is [m] with constraint [name]'s deadline
    replaced by [d].  Raises [Not_found] for unknown names,
    [Invalid_argument] for [d <= 0]. *)

val scaled_time : Model.t -> num:int -> den:int -> Model.t
(** [scaled_time m ~num ~den] multiplies every period, separation and
    deadline by [num/den] (rounded down, floored at 1) — the classical
    "processor speed" re-parameterization with weights fixed.  Raises
    [Invalid_argument] unless [num, den > 0]. *)

val tightest_deadline :
  ?synthesize:(Model.t -> bool) -> Model.t -> string -> int option
(** [tightest_deadline m name] is the smallest deadline of constraint
    [name] for which synthesis still succeeds, holding everything else
    fixed; [None] if even the current deadline fails.  Uses binary
    search, which is justified because the success predicate is
    monotone in the deadline for the polling/EDF synthesis pipeline.
    [synthesize] defaults to {!Synthesis.synthesize} succeeding. *)

val critical_speed :
  ?synthesize:(Model.t -> bool) -> ?resolution:int -> Model.t -> float option
(** [critical_speed m] estimates the smallest time-scale factor
    [>= 1/resolution] (default resolution 32) at which synthesis still
    succeeds when all timing parameters are multiplied by the factor —
    i.e. how much faster the environment could get.  A result of e.g.
    [0.75] means the system tolerates every period and deadline
    shrinking to 75%.  [None] if the unscaled model already fails. *)
