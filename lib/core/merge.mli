(** Shared-operation merging of same-period timing constraints.

    The paper's motivating observation: "if [p_x] is equal to [p_y] in
    the example control system, then there is no reason why [f_S] should
    be executed twice per period.  In the process model, there are two
    distinct calls to [f_S] and so the redundant work cannot be
    avoided."  Latency scheduling can avoid it because the graph model
    exposes which operations are common.

    Two {e periodic} constraints with the same period are invoked at the
    same instants, so a single execution of the union of their task
    graphs (identifying nodes that map to the same element) satisfies
    both, provided the union is still acyclic; the merged deadline is
    the minimum of the two.  An execution of the merged graph restricts
    to an execution of each original graph, so feasibility of the merged
    constraint implies feasibility of both originals.  Asynchronous
    constraints are never merged (their invocation instants are
    unrelated). *)

type report = {
  merged_groups : (string list * string) list;
      (** Original constraint names -> merged constraint name. *)
  time_before : int;  (** Summed computation time of all constraints before. *)
  time_after : int;  (** Summed computation time after merging. *)
}
(** What the merge achieved. *)

val mergeable : Timing.t -> Timing.t -> bool
(** [mergeable a b] holds when [a] and [b] are both periodic with equal
    periods and equal offsets (so they are invoked at the same
    instants), each uses every element at most once, and the union of
    their task graphs is acyclic. *)

val merge_pair : Timing.t -> Timing.t -> Timing.t option
(** [merge_pair a b] is the merged constraint when {!mergeable}. *)

val apply : Model.t -> Model.t * report
(** [apply m] greedily merges same-period periodic constraints of [m]
    (in declaration order) and returns the rewritten model together with
    a report.  Constraints that cannot merge are kept unchanged.  The
    communication graph is not modified. *)
