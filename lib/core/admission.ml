type verdict = Guaranteed of string | Impossible of string | Inconclusive

let deadline_check (m : Model.t) =
  let rec go = function
    | [] -> Ok ()
    | (c : Timing.t) :: rest ->
        let w = Timing.computation_time m.comm c in
        if w > c.deadline then
          Error
            (Printf.sprintf
               "constraint %s: computation time %d exceeds deadline %d" c.name
               w c.deadline)
        else
          let cp = Task_graph.critical_path m.comm c.graph in
          if cp > c.deadline then
            Error
              (Printf.sprintf
                 "constraint %s: critical path %d exceeds deadline %d" c.name
                 cp c.deadline)
          else go rest
  in
  go m.constraints

let rate_bound (m : Model.t) =
  (* Per element, the largest demand rate any single constraint imposes
     on it.  Two sound lower bounds on the long-run fraction of slots
     element e must occupy for a constraint (C, d) using it:

     - every window of d slots contains a complete execution of C and
       hence a complete instance of e (occ >= 1), so consecutive
       e-instances satisfy f_{k+1} <= s_k + d + 1: starts at most
       d + 1 - w_e apart, i.e. rate >= w_e / (d + 1 - w_e);
     - the execution's node matching is injective, so every window
       contains occ(e, C) complete distinct instances; disjoint windows
       use disjoint instances, giving rate >= occ * w_e / d.

     Distinct executions (and distinct constraints) may share
     instances, so per element we take the MAX over constraints rather
     than the sum; summing over distinct elements is then sound. *)
  let per_element = Hashtbl.create 16 in
  List.iter
    (fun (c : Timing.t) ->
      List.iter
        (fun e ->
          let occ = Task_graph.occurrences c.graph e in
          let w = Comm_graph.weight m.comm e in
          let rate =
            match c.kind with
            | Timing.Asynchronous ->
                (* Every window of d slots needs the instances. *)
                let spacing =
                  if c.deadline + 1 - w <= 0 then infinity
                  else float_of_int w /. float_of_int (c.deadline + 1 - w)
                in
                let density =
                  float_of_int (occ * w) /. float_of_int c.deadline
                in
                Float.max spacing density
            | Timing.Periodic ->
                (* Only the invocation windows [kp, kp+d] need them;
                   for d <= p those windows are disjoint (one bundle of
                   occ instances per period); for d > p an instance
                   may serve several overlapping invocations. *)
                if c.deadline <= c.period then
                  float_of_int (occ * w) /. float_of_int c.period
                else
                  float_of_int (occ * w)
                  /. float_of_int (c.period + c.deadline)
          in
          match Hashtbl.find_opt per_element e with
          | Some r when r >= rate -> ()
          | _ -> Hashtbl.replace per_element e rate)
        (Task_graph.elements_used c.graph))
    m.constraints;
  Hashtbl.fold (fun _ r acc -> acc +. r) per_element 0.0

let necessary (m : Model.t) =
  match deadline_check m with
  | Error e -> Error e
  | Ok () ->
      let r = rate_bound m in
      if r > 1.0 +. 1e-9 then
        Error
          (Printf.sprintf
             "element demand rate %.3f exceeds the processor (every element \
              must recur inside every deadline window)"
             r)
      else Ok ()

let demand_bound (m : Model.t) t =
  List.fold_left
    (fun acc (c : Timing.t) ->
      if Timing.is_periodic c && t >= c.deadline then
        acc
        + ((((t - c.deadline) / c.period) + 1)
          * Timing.computation_time m.comm c)
      else acc)
    0 m.constraints

let edf_periodic_applicable (m : Model.t) =
  Model.asynchronous m = []
  && Model.elements_shared m = []
  && List.for_all
       (fun (c : Timing.t) ->
         (* The certificate is realized by Edf_cyclic, which needs each
            job inside its own period slice; the demand-bound test
            below ignores offsets, which is conservative (synchronous
            release is the worst case). *)
         c.offset + c.deadline <= c.period)
       m.constraints
  && List.for_all
       (fun (c : Timing.t) ->
         List.for_all
           (fun e ->
             Comm_graph.weight m.comm e = 1 || Comm_graph.pipelinable m.comm e)
           (Task_graph.elements_used c.graph))
       m.constraints

let edf_periodic_feasible (m : Model.t) =
  (* Processor-demand criterion at every absolute deadline up to the
     hyperperiod plus the largest deadline. *)
  match Model.hyperperiod m with
  | exception Rt_graph.Intmath.Overflow -> false
  | hyper ->
      let max_d =
        List.fold_left
          (fun acc (c : Timing.t) -> max acc c.deadline)
          0 (Model.periodic m)
      in
      let bound = hyper + max_d in
      let points =
        List.concat_map
          (fun (c : Timing.t) ->
            let rec go t acc =
              if t > bound then acc else go (t + c.period) (t :: acc)
            in
            go c.deadline [])
          (Model.periodic m)
        |> List.sort_uniq Int.compare
      in
      List.for_all (fun t -> demand_bound m t <= t) points

let sufficient (m : Model.t) =
  if Theorem3.premises_hold m then Some "theorem3"
  else if edf_periodic_applicable m && edf_periodic_feasible m then
    Some "edf-periodic"
  else begin
    (* Shared elements defeat the direct EDF test, but merging
       same-period constraints removes the sharing while preserving
       soundness (a schedule for the merged model satisfies the
       original constraints). *)
    let merged, report = Merge.apply m in
    if
      report.Merge.merged_groups <> []
      && edf_periodic_applicable merged
      && edf_periodic_feasible merged
    then Some "edf-periodic-merged"
    else None
  end

let admit (m : Model.t) =
  match necessary m with
  | Error why -> Impossible why
  | Ok () -> (
      match sufficient m with
      | Some name -> Guaranteed name
      | None -> Inconclusive)
