type job = {
  job_name : string;
  graph : Task_graph.t;
  release : int;
  abs_deadline : int;
}

type failure = { failed_job : string; at_time : int; reason : string }

let jobs_of_periodic ~horizon (c : Timing.t) =
  if not (Timing.is_periodic c) then
    invalid_arg "Edf_cyclic.jobs_of_periodic: constraint is not periodic";
  if c.offset + c.deadline > c.period then
    invalid_arg
      (Printf.sprintf
         "Edf_cyclic.jobs_of_periodic: constraint %s has offset %d + \
          deadline %d > period %d (jobs would spill over the cycle \
          boundary, which the cyclic constructor does not support)"
         c.name c.offset c.deadline c.period);
  let rec go t acc =
    if t >= horizon then List.rev acc
    else
      go (t + c.period)
        ({
           job_name = Printf.sprintf "%s@%d" c.name t;
           graph = c.graph;
           release = t;
           abs_deadline = t + c.deadline;
         }
        :: acc)
  in
  go c.offset []

let jobs_of_polling ~horizon ~name ~graph ~period ~rel_deadline =
  if rel_deadline > period then
    invalid_arg "Edf_cyclic.jobs_of_polling: rel_deadline > period";
  let rec go t acc =
    if t >= horizon then List.rev acc
    else
      go (t + period)
        ({
           job_name = Printf.sprintf "%s@%d" name t;
           graph;
           release = t;
           abs_deadline = t + rel_deadline;
         }
        :: acc)
  in
  go 0 []

let utilization g ~horizon jobs =
  let work =
    List.fold_left
      (fun acc j -> acc + Task_graph.computation_time g j.graph)
      0 jobs
  in
  float_of_int work /. float_of_int horizon

(* Mutable per-job dispatch state. *)
type live = {
  spec : job;
  ops : (int * int) array; (* (element, weight) in topological order *)
  mutable op_idx : int;
  mutable op_done : int;
  total : int;
  mutable executed : int;
}

(* Minimal binary min-heap over live jobs, keyed by EDF order
   (deadline, release, name).  Keeping the dispatcher event-driven makes
   [build] O(horizon + n log n) instead of O(horizon * n), which matters
   for hyperperiods in the hundreds of thousands of slots. *)
module Heap = struct
  type 'a t = { mutable data : 'a array; mutable len : int; le : 'a -> 'a -> bool }

  let create le = { data = [||]; len = 0; le }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let rec up h i =
    let p = (i - 1) / 2 in
    if i > 0 && h.le h.data.(i) h.data.(p) then begin
      swap h i p;
      up h p
    end

  let rec down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let s = ref i in
    if l < h.len && h.le h.data.(l) h.data.(!s) then s := l;
    if r < h.len && h.le h.data.(r) h.data.(!s) then s := r;
    if !s <> i then begin
      swap h i !s;
      down h !s
    end

  let push h x =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (max 16 (2 * h.len)) x in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    up h (h.len - 1)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        down h 0
      end;
      Some top
    end

  let peek h = if h.len = 0 then None else Some h.data.(0)
end

type policy = Edf | Dm

let build ?(policy = Edf) g ~horizon jobs =
  let key (l : live) =
    match policy with
    | Edf -> (l.spec.abs_deadline, l.spec.release, l.spec.job_name)
    | Dm ->
        ( l.spec.abs_deadline - l.spec.release,
          l.spec.release,
          l.spec.job_name )
  in
  let lives =
    List.map
      (fun j ->
        let ops =
          Task_graph.straight_line j.graph
          |> List.map (fun e -> (e, Comm_graph.weight g e))
          |> List.filter (fun (_, w) -> w > 0)
          |> Array.of_list
        in
        let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 ops in
        { spec = j; ops; op_idx = 0; op_done = 0; total; executed = 0 })
      jobs
  in
  (* Future releases, ascending. *)
  let pending =
    ref
      (List.sort
         (fun a b ->
           compare
             (a.spec.release, a.spec.abs_deadline, a.spec.job_name)
             (b.spec.release, b.spec.abs_deadline, b.spec.job_name))
         lives)
  in
  let le a b = key a <= key b in
  let ready = Heap.create le in
  let slots = Array.make horizon Schedule.Idle in
  let finished l = l.executed >= l.total in
  let locked = ref None in
  let failure = ref None in
  let fail l t reason =
    if !failure = None then
      failure := Some { failed_job = l.spec.job_name; at_time = t; reason }
  in
  let t = ref 0 in
  while !failure = None && !t < horizon do
    let now = !t in
    (* Move newly released jobs into the ready heap. *)
    let rec release () =
      match !pending with
      | l :: rest when l.spec.release <= now ->
          pending := rest;
          Heap.push ready l;
          release ()
      | _ -> ()
    in
    release ();
    (* Under EDF the queue head has the earliest absolute deadline, so
       checking it suffices to catch misses early; under DM this is
       only a fast path — late finishes are still caught below. *)
    (match Heap.peek ready with
    | Some l when l.spec.abs_deadline <= now && not (finished l) ->
        fail l now "deadline passed with work remaining"
    | _ -> ());
    if !failure = None then begin
      let rec next_ready () =
        match Heap.pop ready with
        | None -> None
        | Some l -> if finished l then next_ready () else Some l
      in
      let chosen =
        match !locked with
        | Some l when not (finished l) -> Some l
        | _ ->
            locked := None;
            next_ready ()
      in
      (match chosen with
      | None -> slots.(now) <- Schedule.Idle
      | Some l ->
          let e, w = l.ops.(l.op_idx) in
          slots.(now) <- Schedule.Run e;
          l.op_done <- l.op_done + 1;
          l.executed <- l.executed + 1;
          if l.op_done = w then begin
            l.op_idx <- l.op_idx + 1;
            l.op_done <- 0;
            locked := None;
            if not (finished l) then Heap.push ready l
          end
          else locked := Some l;
          if finished l && now + 1 > l.spec.abs_deadline then
            fail l now "job finished past its deadline");
      incr t
    end
  done;
  match !failure with
  | Some f -> Error f
  | None -> (
      let unfinished =
        List.find_opt (fun l -> not (finished l)) lives
      in
      match unfinished with
      | Some l ->
          Error
            {
              failed_job = l.spec.job_name;
              at_time = horizon;
              reason = "job not finished within the horizon";
            }
      | None -> Ok (Schedule.of_array slots))
