type t = {
  deadline : float option; (* absolute Unix.gettimeofday deadline *)
  fuel : int Atomic.t option;
  reason : string option Atomic.t; (* sticky exhaustion reason *)
  started : float;
}

let create ?wall_s ?fuel () =
  (match wall_s with
  | Some w when w < 0.0 -> invalid_arg "Budget.create: negative wall_s"
  | _ -> ());
  (match fuel with
  | Some f when f < 0 -> invalid_arg "Budget.create: negative fuel"
  | _ -> ());
  let now = Unix.gettimeofday () in
  {
    deadline = Option.map (fun w -> now +. w) wall_s;
    fuel = Option.map Atomic.make fuel;
    reason = Atomic.make None;
    started = now;
  }

let exhausted b = Atomic.get b.reason

let trip b reason =
  (* First writer wins; later trips keep the original reason. *)
  ignore (Atomic.compare_and_set b.reason None (Some reason));
  false

let spend b n =
  match Atomic.get b.reason with
  | Some _ -> false
  | None -> (
      let fuel_ok =
        match b.fuel with
        | None -> true
        | Some f -> Atomic.fetch_and_add f (-n) > 0
      in
      if not fuel_ok then trip b "state budget exhausted"
      else
        match b.deadline with
        | None -> true
        | Some dl ->
            if Unix.gettimeofday () <= dl then true
            else trip b "wall-clock budget exhausted")

let wall_elapsed b = Unix.gettimeofday () -. b.started
