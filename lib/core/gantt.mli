(** ASCII Gantt rendering of static schedules — a terminal stand-in for
    CONSORT's graphical view.

    One row per functional element, one column per slot:

    {v
    t        0         1         2
             0123456789012345678901234567
    f_x      #-------- #---------#-------
    f_s      -##-------- ##------- ##----
    ...
    v}

    ['#'] marks a slot where the element runs, ['-'] a slot where it
    does not; every tenth column is labelled. *)

val render : ?width:int -> Comm_graph.t -> Schedule.t -> string
(** [render g l] draws one cycle of [l] (wrapped into chunks of [width]
    columns, default 72).  Elements that never run are omitted. *)

val render_window :
  ?width:int -> Comm_graph.t -> Schedule.t -> t0:int -> t1:int -> string
(** [render_window g l ~t0 ~t1] draws slots [t0 .. t1-1] of the induced
    trace (the schedule repeated round-robin). *)

val legend : Comm_graph.t -> Schedule.t -> string
(** Per-element slot counts: ["f_s: 20/260 slots (7.7%)"] lines. *)
