type report = {
  original_length : int;
  optimized_length : int;
  removed_idle : int;
  attempts : int;
}

let verifies m sched = Latency.all_ok (Latency.verify m sched)

let remove_slot slots i =
  Array.append (Array.sub slots 0 i)
    (Array.sub slots (i + 1) (Array.length slots - i - 1))

let trim_idle ?(max_rounds = 4) (m : Model.t) sched =
  if not (verifies m sched) then
    invalid_arg "Optimize.trim_idle: input schedule does not verify";
  let attempts = ref 0 in
  let current = ref (Schedule.slots sched) in
  let changed = ref true in
  let round = ref 0 in
  while !changed && !round < max_rounds do
    changed := false;
    incr round;
    (* Right to left so indices of earlier candidates stay valid. *)
    let i = ref (Array.length !current - 1) in
    while !i >= 0 do
      (if !current.(!i) = Schedule.Idle && Array.length !current > 1 then begin
         incr attempts;
         let candidate = remove_slot !current !i in
         let cand_sched = Schedule.of_array candidate in
         if
           Schedule.validate m.Model.comm cand_sched = Ok ()
           && verifies m cand_sched
         then begin
           current := candidate;
           changed := true
         end
       end);
      decr i
    done
  done;
  let optimized = Schedule.of_array !current in
  ( optimized,
    {
      original_length = Schedule.length sched;
      optimized_length = Schedule.length optimized;
      removed_idle = Schedule.length sched - Schedule.length optimized;
      attempts = !attempts;
    } )

let canonical_rotation sched =
  let n = Schedule.length sched in
  let key s =
    Array.to_list (Schedule.slots s)
    |> List.map (function Schedule.Idle -> max_int | Schedule.Run e -> e)
  in
  let best = ref sched in
  for k = 1 to n - 1 do
    let r = Schedule.rotate sched k in
    if key r < key !best then best := r
  done;
  !best

let slack_profile (m : Model.t) sched =
  let verdicts = Latency.verify m sched in
  if not (Latency.all_ok verdicts) then
    invalid_arg "Optimize.slack_profile: schedule does not verify";
  List.map
    (fun (v : Latency.verdict) ->
      match v.achieved with
      | Some k -> (v.constraint_name, v.bound - k)
      | None -> assert false)
    verdicts

let fundamental_period sched =
  let slots = Schedule.slots sched in
  let n = Array.length slots in
  let divides p =
    let rec ok i = i >= n || (slots.(i) = slots.(i mod p) && ok (i + 1)) in
    ok p
  in
  let rec smallest p =
    if p >= n then sched
    else if n mod p = 0 && divides p then
      Schedule.of_array (Array.sub slots 0 p)
    else smallest (p + 1)
  in
  smallest 1

let total_idle = Schedule.idle_slots
