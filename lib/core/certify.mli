(** Certificate construction — the untrusted half of the trust split.

    Builds the per-constraint window witnesses of
    {!Rt_check.Certificate} from a schedule, using the full analysis
    stack ({!Latency}, {!Trace}).  Nothing here is trusted: every
    certificate is re-validated by {!Rt_check.Checker}, which shares
    no code with this module beyond the model vocabulary.

    Certification is a pure function of [(model, schedule)], so every
    engine's output can be certified at the API boundary without
    perturbing the engine's own exploration (the bench counters pin
    the default path bit-for-bit). *)

val schedule : Model.t -> Schedule.t -> (Certificate.t, string) result
(** [schedule m l] extracts witnesses for every constraint of [m]:
    for an asynchronous constraint, a covering chain of executions
    (greedy: the execution witnessing window start [t] yields the next
    window start); for a periodic constraint, one execution per
    invocation phase over [lcm(period, cycle)].  Fails if [l] is not
    well-formed or some window has no execution — i.e. if the
    schedule is not actually feasible. *)

val plan : Synthesis.plan -> (Certificate.t, string) result
(** [plan p] certifies [p.schedule] against [p.model_used] (the model
    the synthesis pipeline actually scheduled, after merging or
    pipelining rewrites — the same model {!Rt_spec.Persist} stores). *)
