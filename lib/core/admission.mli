(** Analytic admission control: decide (parts of) feasibility without
    constructing a schedule.

    Three-valued: a model is {e impossible} when it violates a
    necessary condition (no execution trace at all can meet the
    constraints), {e guaranteed} when it satisfies a sufficient
    condition backed by a constructive scheduler, and
    {e inconclusive} otherwise — Theorem 2 says the exact boundary is
    strongly NP-hard, so a gap is unavoidable for a fast test. *)

type verdict =
  | Guaranteed of string
      (** Feasible; the payload names the sufficient condition that
          fired ("theorem3" or "edf-periodic"). *)
  | Impossible of string
      (** Infeasible; the payload names the violated necessary
          condition. *)
  | Inconclusive
      (** Neither test fired; run {!Synthesis.synthesize} or
          {!Exact}. *)

val deadline_check : Model.t -> (unit, string) result
(** Necessary: every constraint's computation time fits its deadline
    ([w_i <= d_i]); for periodic constraints the critical path must
    also fit. *)

val rate_bound : Model.t -> float
(** The element-rate lower bound on processor share.  For an
    asynchronous constraint [(C, d)], {e every} window of [d] slots
    must contain [occ(e,C)] complete distinct instances of each element
    [e] it uses, forcing a rate of at least
    [max (w_e / (d + 1 - w_e)) (occ * w_e / d)]; for a periodic
    constraint only the invocation windows matter, giving
    [occ * w_e / p] (disjoint windows when [d <= p]) or
    [occ * w_e / (p + d)] otherwise.  Instances may be shared between
    constraints (and between overlapping executions), so per element
    the {e maximum} demand over constraints is taken, and the bound is
    the sum over elements.  A value [> 1.0] is a certificate of
    infeasibility. *)

val necessary : Model.t -> (unit, string) result
(** All necessary conditions ({!deadline_check} and [rate_bound <= 1]). *)

val sufficient : Model.t -> string option
(** [Some name] when a sufficient condition fires:
    - ["theorem3"]: the paper's Theorem 3 premises hold;
    - ["edf-periodic"]: no asynchronous constraints, no element is
      shared between constraints, every element pipelinable or of unit
      weight, [offset + deadline <= period] for every constraint (so
      [Edf_cyclic] can realize the certificate), and the processor-
      demand criterion holds — classic exact EDF schedulability (the
      demand test ignores offsets, which is conservative: synchronous
      release is the worst case);
    - ["edf-periodic-merged"]: the same test passes after
      [Merge.apply] removed the element sharing (sound: a schedule for
      the merged model satisfies the original constraints). *)

val admit : Model.t -> verdict
(** Combine: {!necessary} else [Impossible]; {!sufficient} else
    [Inconclusive]. *)

val demand_bound : Model.t -> int -> int
(** [demand_bound m t] is the total work of periodic jobs that must
    complete within any interval of length [t] under synchronous
    release: [Σ max(0, (t - d_i)/p_i + 1) * w_i] over periodic
    constraints.  The building block of the ["edf-periodic"] test. *)
