include Rt_base.Task_graph
