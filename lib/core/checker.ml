include Rt_check.Checker
