type level = Low | Medium | High

let rank = function Low -> 0 | Medium -> 1 | High -> 2

let compare_level a b = compare (rank a) (rank b)

let at_least a b = rank a >= rank b

let level_to_string = function
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "low" -> Ok Low
  | "medium" | "med" -> Ok Medium
  | "high" -> Ok High
  | other -> Error (Printf.sprintf "unknown criticality level %S" other)

let all_levels = [ Low; Medium; High ]

type assignment = (string * level) list

let make (m : Model.t) pairs =
  let errs = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      (match Model.find m name with
      | _ -> ()
      | exception Not_found ->
          errs := Printf.sprintf "unknown constraint %S" name :: !errs);
      if Hashtbl.mem seen name then
        errs := Printf.sprintf "duplicate assignment for %S" name :: !errs
      else Hashtbl.add seen name ())
    pairs;
  if !errs = [] then Ok pairs else Error (List.rev !errs)

let level_of assignment name =
  Option.value ~default:High (List.assoc_opt name assignment)

let of_spec s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.index_opt part '=' with
        | None ->
            Error
              (Printf.sprintf "bad criticality item %S (want NAME=LEVEL)" part)
        | Some i -> (
            let name = String.trim (String.sub part 0 i) in
            let lvl =
              String.sub part (i + 1) (String.length part - i - 1)
            in
            if name = "" then
              Error (Printf.sprintf "bad criticality item %S (empty name)" part)
            else
              match level_of_string lvl with
              | Ok l -> go ((name, l) :: acc) rest
              | Error e -> Error e))
  in
  go [] parts

let to_spec assignment =
  String.concat ","
    (List.map (fun (n, l) -> n ^ "=" ^ level_to_string l) assignment)

let partition (m : Model.t) assignment =
  List.map
    (fun (c : Timing.t) -> (c.name, level_of assignment c.name))
    m.constraints

let pp_level fmt l = Format.pp_print_string fmt (level_to_string l)

let pp fmt assignment =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (n, l) -> Format.fprintf fmt "%s=%a" n pp_level l))
    assignment
