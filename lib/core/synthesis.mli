(** Top-level synthesis driver: from a graph-based model to a verified
    static schedule.

    Implements the paper's heuristic pipeline: "we can employ a good
    heuristic algorithm which first computes a static schedule to
    satisfy the periodic timing constraints and then incorporates
    additional operations to satisfy the asynchronous timing
    constraints."  Concretely:

    {ol
    {- optionally merge same-period periodic constraints so shared
       operations execute once ({!Merge});}
    {- optionally software-pipeline multi-unit elements so EDF can
       preempt at unit granularity ({!Pipeline});}
    {- turn each asynchronous constraint [(C,p,d)] into a polling
       periodic task with period [q] and relative deadline [D] such
       that [q + D <= d + 1] and [D >= w], trying a small set of
       candidate [q]s from cheapest ([q = d + 1 - w], least processor
       time) down to most slack ([q = D = ⌈(d+1)/2⌉]), including
       power-of-two variants that keep the overall hyperperiod — and
       hence verification cost — small;}
    {- dispatch all jobs with EDF over the hyperperiod
       ({!Edf_cyclic});}
    {- verify the resulting schedule against the (rewritten)
       constraints with the independent latency analyser
       ({!Latency.verify}) — synthesis only returns schedules whose
       verdicts all pass.}} *)

type plan = {
  model_used : Model.t;
      (** The model actually scheduled (after merge / pipelining). *)
  schedule : Schedule.t;  (** One cycle of the synthesized schedule. *)
  verdicts : Latency.verdict list;
      (** All-pass verification of [model_used] against [schedule]. *)
  merge_report : Merge.report option;
      (** Present when merging was enabled and applied. *)
  polling : (string * int * int) list;
      (** Asynchronous constraint name, polling period [q], polling
          relative deadline [D]. *)
  hyperperiod : int;  (** Cycle length of the schedule. *)
}
(** A successful synthesis outcome. *)

type error = {
  stage : string;  (** Which stage gave up. *)
  message : string;  (** Why. *)
}
(** A diagnosable failure. *)

val polling_candidates : w:int -> d:int -> (int * int) list
(** [polling_candidates ~w ~d] is the ordered list of
    [(period q, relative deadline D)] candidates for polling an
    asynchronous constraint of computation time [w] and latency bound
    [d]: every candidate satisfies [q + D <= d + 1], [D >= w] and
    [D <= q] (so consecutive polling completions cover every window of
    length [d]), listed cheapest first — descending [q], ties broken by
    ascending [D] — with no duplicates.  Empty iff [w > d]. *)

val synthesize :
  ?pool:Rt_par.Pool.t ->
  ?budget:Budget.t ->
  ?game_table:Game.table ->
  ?merge:bool ->
  ?pipeline:bool ->
  ?backend:Edf_cyclic.policy ->
  ?max_hyperperiod:int ->
  ?exact_fallback:bool ->
  ?decompose:bool ->
  Model.t ->
  (plan, error) Stdlib.result
(** [synthesize m] runs the pipeline above.  [merge] and [pipeline]
    default to [true]; [backend] selects the dispatcher for step 4
    (default [Edf_cyclic.Edf]; [Dm] gives the fixed-priority
    alternative, useful for backend comparisons); [max_hyperperiod]
    (default 1_000_000 slots) caps the cycle length.  Periodic
    constraints must satisfy [offset + deadline <= period].  A [plan]
    is returned only if verification passes.

    [exact_fallback] (default [false]): when the heuristic fails on a
    purely asynchronous model in one of Theorem 2's decidable classes
    (all-unit weights, or all-single-operation graphs), consult the
    exact game engine ({!Exact}).  A game cycle becomes the plan (no
    polling rewrite; [polling = []], [merge_report = None]); a
    completed search upgrades the error to stage ["exact"] with a
    proof of infeasibility; a state-budget [Unknown] leaves the
    original heuristic error untouched.

    [game_table] supplies a resident {!Game.table} threaded into the
    exact fallback, so dead facts survive across repeated synthesis
    attempts on the same model (the daemon's warm-solve path); it is
    only sound to reuse a table for one model.

    [budget] bounds the whole synthesis cooperatively, checked once per
    candidate round and threaded into the exact fallback.  Degradation
    is graceful, never an exception: rounds completed before the
    cut-off still count (a feasible plan found early is returned
    normally); if the budget trips mid-sweep the error has stage
    ["budget"] and says how many rounds ran; if only the exact rescue
    is cut off, the heuristic's own error stands, annotated with the
    cut-off reason.

    With [pool], candidate configurations — every polling round of the
    merged variant followed by every round of the unmerged fallback —
    are dispatched and verified concurrently; the first success in
    preference order wins, so the returned plan (and, on failure, the
    reported error) is identical to the sequential result.

    [decompose] (default [false]; the [rtsyn synth] CLI turns it on):
    split the model into interaction components ({!Decompose}), solve
    each component independently — deduplicated by
    {!Decompose.representatives}, fanned out on [pool], each inner sweep
    sequential and without the caller's [game_table] (which is keyed to
    the whole model) — then interleave the component schedules and
    re-verify the merged schedule against the whole model.  Fail-closed:
    any interleave or verification failure falls back to the
    undecomposed pipeline, so a returned plan is always whole-model
    verified.  Two component outcomes short-circuit the fallback: a
    component's stage-["exact"] infeasibility is definitive for the
    whole model (its constraints are a subset), and a stage-["budget"]
    error propagates (retrying undecomposed would burn no fuel).
    Single-component and empty models take the plain path unchanged. *)

val pp_plan : Model.t -> Format.formatter -> plan -> unit
(** Render a plan (schedule, polling choices, verdicts) for humans;
    the first argument is the original model, used for naming. *)

val pp_error : Format.formatter -> error -> unit
(** Render a failure. *)
