include Rt_base.Schedule
