(** Software pipelining: decompose functional elements into chains of
    unit-time sub-functions.

    "To improve efficiency, we can reduce the size of critical sections
    by software pipelining, i.e., decomposing a functional element into
    a chain of sub-functions each of which has the same computation
    time.  (We now see one of the virtues of the graph-based model: all
    the data dependencies are made explicit and hence software
    pipelining can be easily automated.)"

    The rewrite turns every {e pipelinable} element of weight [w > 1]
    into a chain of [w] unit-weight stages [e#1 -> e#2 -> ... -> e#w];
    task-graph nodes mapping to [e] become chains of stage nodes, with
    incoming precedence edges attached to the first stage and outgoing
    ones to the last.  Non-pipelinable elements and unit-weight elements
    are left untouched.  The rewrite preserves computation times and
    constraint satisfaction: a schedule is feasible for the rewritten
    model iff the corresponding stage-interleaved discipline is feasible
    for the original. *)

type origin = {
  orig_elem : int;  (** Element of the source model this stage came from. *)
  stage : int;  (** 0-based stage number ([0] for untouched elements). *)
  stages : int;  (** Total number of stages of the original element. *)
}
(** Provenance of a rewritten element. *)

type t = {
  model : Model.t;  (** The rewritten model (all stages unit weight). *)
  origin : origin array;  (** Indexed by rewritten element id. *)
  first_stage : int array;  (** Original element id -> first stage id. *)
  last_stage : int array;  (** Original element id -> last stage id. *)
}
(** Result of the rewrite. *)

val rewrite : Model.t -> t
(** [rewrite m] applies the pipelining transformation to every
    pipelinable multi-unit element of [m]. *)

val is_fully_pipelined : Model.t -> bool
(** True when every element used by some constraint has unit weight —
    i.e. {!rewrite} would be the identity on the schedulable part. *)

val stage_name : string -> int -> int -> string
(** [stage_name base i n] is the name given to stage [i] of an
    [n]-stage decomposition of element [base] (e.g. ["f_s#2"]); exposed
    so reports can relate stages back to their elements. *)
