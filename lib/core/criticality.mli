(** Criticality levels for timing constraints.

    Mixed-criticality degradation needs to know which constraints the
    system may sacrifice under overload: a {!level} is attached to each
    timing constraint by name, and {!Modes} sheds or stretches the
    low-criticality ones when deriving degraded modes.  Constraints
    without an explicit assignment default to {!High} — the safe
    default: nothing is shed unless the designer marked it
    expendable. *)

type level = Low | Medium | High

val compare_level : level -> level -> int
(** Total order [Low < Medium < High]. *)

val at_least : level -> level -> bool
(** [at_least a b] is [compare_level a b >= 0]. *)

val level_to_string : level -> string
(** ["low"], ["medium"] or ["high"]. *)

val level_of_string : string -> (level, string) result
(** Inverse of {!level_to_string} (case-insensitive; accepts ["med"]). *)

val all_levels : level list
(** [[Low; Medium; High]] in ascending order. *)

type assignment = (string * level) list
(** Constraint name -> level.  Missing names default to {!High}. *)

val make : Model.t -> (string * level) list -> (assignment, string list) result
(** [make m pairs] validates an assignment against a model: every name
    must be a constraint of [m] and appear at most once. *)

val level_of : assignment -> string -> level
(** [level_of a name] is the assigned level, defaulting to {!High}. *)

val of_spec : string -> (assignment, string) result
(** Parses ["pz=low,px=high"] — comma-separated [NAME=LEVEL] items —
    as used by the [rtsyn faultsim --criticality] flag.  Does not
    validate names against a model; combine with {!make}. *)

val to_spec : assignment -> string
(** Inverse of {!of_spec}. *)

val partition : Model.t -> assignment -> (string * level) list
(** Every constraint of the model with its effective level, in
    declaration order. *)

val pp_level : Format.formatter -> level -> unit
val pp : Format.formatter -> assignment -> unit
