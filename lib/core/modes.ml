type mode = {
  name : string;
  threshold : Criticality.level;
  model : Model.t;
  plan : Synthesis.plan;
  dropped : string list;
  stretched : (string * int * int) list;
}

type derivation = { stretch : int; max_hyperperiod : int }

let default_derivation = { stretch = 1; max_hyperperiod = 1_000_000 }

let stretch_constraint ~factor (c : Timing.t) =
  if factor <= 1 then (c, None)
  else
    match c.kind with
    | Timing.Periodic ->
        let c' =
          Timing.make ~name:c.name ~graph:c.graph
            ~period:(c.period * factor)
            ~deadline:(c.deadline * factor)
            ~kind:Timing.Periodic
        in
        let c' =
          if c.offset = 0 then c' else Timing.with_offset c' (c.offset * factor)
        in
        (c', Some (c.name, c.period, c.period * factor))
    | Timing.Asynchronous ->
        (* The environment's invocation rate is not ours to slow down:
           the minimum separation is kept, only the promised deadline is
           relaxed. *)
        let c' =
          Timing.make ~name:c.name ~graph:c.graph ~period:c.period
            ~deadline:(c.deadline * factor)
            ~kind:Timing.Asynchronous
        in
        (c', Some (c.name, c.deadline, c.deadline * factor))

let degraded_constraints ?(derivation = default_derivation) (m : Model.t)
    assignment ~threshold =
  let dropped = ref [] and stretched = ref [] in
  let kept =
    List.filter_map
      (fun (c : Timing.t) ->
        let level = Criticality.level_of assignment c.name in
        if not (Criticality.at_least level threshold) then begin
          dropped := c.name :: !dropped;
          None
        end
        else if Criticality.at_least level Criticality.High then Some c
        else begin
          let c', note = stretch_constraint ~factor:derivation.stretch c in
          Option.iter (fun n -> stretched := n :: !stretched) note;
          Some c'
        end)
      m.constraints
  in
  (kept, List.rev !dropped, List.rev !stretched)

let synthesize_mode ~name ~threshold (m : Model.t) constraints ~dropped
    ~stretched ~max_hyperperiod =
  if constraints = [] then
    Error (Printf.sprintf "mode %s retains no constraint" name)
  else
    match Model.validate ~comm:m.comm ~constraints with
    | Error errs ->
        Error
          (Printf.sprintf "mode %s is invalid: %s" name
             (String.concat "; " errs))
    | Ok () -> (
        let model = Model.make ~comm:m.comm ~constraints in
        (* Merging renames constraints and pipelining rewrites the
           communication graph; both would break the identity of
           elements and constraints that fault plans, criticality
           assignments and watchdog reports rely on, so mode schedules
           are synthesized with the model exactly as written. *)
        match
          Synthesis.synthesize ~merge:false ~pipeline:false ~max_hyperperiod
            model
        with
        | Error e ->
            Error
              (Format.asprintf "mode %s does not synthesize: %a" name
                 Synthesis.pp_error e)
        | Ok plan -> Ok { name; threshold; model; plan; dropped; stretched })

let primary ?(derivation = default_derivation) (m : Model.t) =
  synthesize_mode ~name:"primary" ~threshold:Criticality.Low m m.constraints
    ~dropped:[] ~stretched:[] ~max_hyperperiod:derivation.max_hyperperiod

let degrade ?(derivation = default_derivation) (m : Model.t) assignment
    ~threshold =
  let kept, dropped, stretched =
    degraded_constraints ~derivation m assignment ~threshold
  in
  let name = "degraded-" ^ Criticality.level_to_string threshold in
  synthesize_mode ~name ~threshold m kept ~dropped ~stretched
    ~max_hyperperiod:derivation.max_hyperperiod

let derive ?(derivation = default_derivation) (m : Model.t) assignment =
  match primary ~derivation m with
  | Error e -> Error e
  | Ok prim ->
      let rec go acc = function
        | [] -> Ok (prim :: List.rev acc)
        | threshold :: rest -> (
            let kept, dropped, stretched =
              degraded_constraints ~derivation m assignment ~threshold
            in
            if dropped = [] && stretched = [] then go acc rest
            else
              let name =
                "degraded-" ^ Criticality.level_to_string threshold
              in
              match
                synthesize_mode ~name ~threshold m kept ~dropped ~stretched
                  ~max_hyperperiod:derivation.max_hyperperiod
              with
              | Error e -> Error e
              | Ok mode -> go (mode :: acc) rest)
      in
      go [] [ Criticality.Medium; Criticality.High ]

let find modes name = List.find_opt (fun md -> md.name = name) modes

let of_schedule ?(name = "primary") (m : Model.t) sched =
  match Schedule.validate m.Model.comm sched with
  | Error errs ->
      Error
        (Printf.sprintf "mode %s: ill-formed schedule: %s" name
           (String.concat "; " errs))
  | Ok () ->
      Ok
        {
          name;
          threshold = Criticality.Low;
          model = m;
          plan =
            {
              Synthesis.model_used = m;
              schedule = sched;
              verdicts = Latency.verify m sched;
              merge_report = None;
              polling = [];
              hyperperiod = Schedule.length sched;
            };
          dropped = [];
          stretched = [];
        }

(* ------------------------------------------------------------------ *)
(* Mode-change protocol: the analyzed transition bound                 *)
(* ------------------------------------------------------------------ *)

let transition_slots ~check_period =
  if check_period <= 0 then invalid_arg "Modes.transition_slots: period <= 0";
  (* Worst-case slots from an overrun coming into existence (the
     nominal completion instant passing without completion) to the
     degraded schedule being in force: the watchdog observes the
     violation at its next check instant (up to [check_period - 1]
     slots later) and the new table takes effect at the following slot
     boundary (one more slot). *)
  check_period

let admits_transition ~check_period mode =
  let bound = transition_slots ~check_period in
  let bad =
    List.filter_map
      (fun (v : Latency.verdict) ->
        match v.achieved with
        | None ->
            Some
              (Printf.sprintf "%s: unbounded response in mode %s"
                 v.constraint_name mode.name)
        | Some k ->
            if k + bound <= v.bound then None
            else
              Some
                (Printf.sprintf
                   "%s: response %d + transition %d exceeds deadline %d"
                   v.constraint_name k bound v.bound))
      mode.plan.Synthesis.verdicts
  in
  if bad = [] then Ok () else Error bad

let pp fmt mode =
  Format.fprintf fmt
    "@[<v>mode %s (threshold %a): %d constraint(s), cycle %d@,"
    mode.name Criticality.pp_level mode.threshold
    (List.length mode.model.Model.constraints)
    (Schedule.length mode.plan.Synthesis.schedule);
  if mode.dropped <> [] then
    Format.fprintf fmt "  shed: %s@," (String.concat " " mode.dropped);
  List.iter
    (fun (name, before, after) ->
      Format.fprintf fmt "  stretched %s: %d -> %d@," name before after)
    mode.stretched;
  Format.fprintf fmt "@]"
