include Rt_base.Model
