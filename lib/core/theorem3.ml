type result = {
  pipelined : Pipeline.t;
  schedule : Schedule.t;
  polling_periods : (string * int) list;
  verdicts : Latency.verdict list;
}

let premises_hold m =
  match Model.theorem3_premises m with Ok () -> true | Error _ -> false

let schedule ?(max_hyperperiod = 1_000_000) (m : Model.t) =
  match Model.theorem3_premises m with
  | Error errs ->
      Error ("Theorem 3 premises violated: " ^ String.concat "; " errs)
  | Ok () -> (
      let pipelined = Pipeline.rewrite m in
      let pm = pipelined.Pipeline.model in
      let polling =
        List.map
          (fun (c : Timing.t) ->
            let q = (c.deadline + 1) / 2 in
            (c, q))
          pm.Model.constraints
      in
      match
        Rt_graph.Intmath.lcm_list (List.map (fun (_, q) -> q) polling)
      with
      | exception Rt_graph.Intmath.Overflow ->
          Error "hyperperiod overflows the native integer range"
      | hyperperiod ->
          if hyperperiod > max_hyperperiod then
            Error
              (Printf.sprintf "hyperperiod %d exceeds the cap %d" hyperperiod
                 max_hyperperiod)
          else begin
            let jobs =
              List.concat_map
                (fun ((c : Timing.t), q) ->
                  Edf_cyclic.jobs_of_polling ~horizon:hyperperiod ~name:c.name
                    ~graph:c.graph ~period:q ~rel_deadline:q)
                polling
            in
            match Edf_cyclic.build pm.Model.comm ~horizon:hyperperiod jobs with
            | Error f ->
                (* Cannot happen when the premises hold: utilization <= 1
                   with implicit deadlines and unit-weight operations. *)
                Error
                  (Printf.sprintf
                     "internal: EDF failed on job %s at %d (%s) despite the \
                      premises"
                     f.failed_job f.at_time f.reason)
            | Ok sched ->
                let verdicts = Latency.verify pm sched in
                if not (Latency.all_ok verdicts) then
                  Error "internal: constructed schedule failed verification"
                else
                  Ok
                    {
                      pipelined;
                      schedule = sched;
                      polling_periods =
                        List.map (fun ((c : Timing.t), q) -> (c.name, q)) polling;
                      verdicts;
                    }
          end)
