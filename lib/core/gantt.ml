let active_elements g sched =
  List.filter
    (fun (e : Element.t) -> Schedule.occurrences sched e.id > 0)
    (Comm_graph.elements g)

let render_window ?(width = 72) g sched ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Gantt.render_window: empty window";
  let elements = active_elements g sched in
  let name_w =
    List.fold_left
      (fun acc (e : Element.t) -> max acc (String.length e.name))
      1 elements
    + 2
  in
  let buf = Buffer.create 1024 in
  let chunk_start = ref t0 in
  while !chunk_start < t1 do
    let chunk_end = min t1 (!chunk_start + width) in
    (* Tens ruler. *)
    Buffer.add_string buf (Printf.sprintf "%-*s" name_w "t");
    for t = !chunk_start to chunk_end - 1 do
      Buffer.add_char buf
        (if t mod 10 = 0 then
           String.get (string_of_int (t / 10 mod 10)) 0
         else ' ')
    done;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "%-*s" name_w "");
    for t = !chunk_start to chunk_end - 1 do
      Buffer.add_string buf (string_of_int (t mod 10))
    done;
    Buffer.add_char buf '\n';
    List.iter
      (fun (e : Element.t) ->
        Buffer.add_string buf (Printf.sprintf "%-*s" name_w e.name);
        for t = !chunk_start to chunk_end - 1 do
          Buffer.add_char buf
            (match Schedule.slot sched t with
            | Schedule.Run x when x = e.id -> '#'
            | _ -> '-')
        done;
        Buffer.add_char buf '\n')
      elements;
    chunk_start := chunk_end;
    if !chunk_start < t1 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let render ?width g sched =
  render_window ?width g sched ~t0:0 ~t1:(Schedule.length sched)

let legend g sched =
  let n = Schedule.length sched in
  active_elements g sched
  |> List.map (fun (e : Element.t) ->
         let occ = Schedule.occurrences sched e.id in
         Printf.sprintf "%s: %d/%d slots (%.1f%%)" e.name occ n
           (100.0 *. float_of_int occ /. float_of_int n))
  |> String.concat "\n"
