let rebuild (m : Model.t) ~f =
  let constraints = List.map f m.Model.constraints in
  Model.make ~comm:m.Model.comm ~constraints

let with_deadline (m : Model.t) name d =
  if d <= 0 then invalid_arg "Sensitivity.with_deadline: deadline must be positive";
  ignore (Model.find m name);
  rebuild m ~f:(fun (c : Timing.t) ->
      if c.name = name then begin
        let c' =
          Timing.make ~name:c.name ~graph:c.graph ~period:c.period ~deadline:d
            ~kind:c.kind
        in
        if c.offset = 0 || Timing.is_asynchronous c then c'
        else Timing.with_offset c' c.offset
      end
      else c)

let scaled_time (m : Model.t) ~num ~den =
  if num <= 0 || den <= 0 then invalid_arg "Sensitivity.scaled_time";
  rebuild m ~f:(fun (c : Timing.t) ->
      let period = max 1 (c.period * num / den) in
      let c' =
        Timing.make ~name:c.name ~graph:c.graph ~period
          ~deadline:(max 1 (c.deadline * num / den))
          ~kind:c.kind
      in
      let offset = min (c.offset * num / den) (period - 1) in
      if offset = 0 || Timing.is_asynchronous c then c'
      else Timing.with_offset c' offset)

let default_synthesize m =
  match Synthesis.synthesize m with Ok _ -> true | Error _ -> false

let tightest_deadline ?(synthesize = default_synthesize) (m : Model.t) name =
  let c = Model.find m name in
  if not (synthesize m) then None
  else begin
    (* Smallest feasible d in [1, current]; success is monotone in d. *)
    let ok d = synthesize (with_deadline m name d) in
    let rec bsearch lo hi =
      (* invariant: ok hi, not (ok (lo - 1)) conceptually; lo <= hi *)
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if ok mid then bsearch lo mid else bsearch (mid + 1) hi
    in
    Some (bsearch 1 c.deadline)
  end

let critical_speed ?(synthesize = default_synthesize) ?(resolution = 32)
    (m : Model.t) =
  if resolution < 1 then invalid_arg "Sensitivity.critical_speed";
  if not (synthesize m) then None
  else begin
    (* Find the smallest num in [1, resolution] (denominator
       [resolution]) that still synthesizes; monotone in num. *)
    let ok num = synthesize (scaled_time m ~num ~den:resolution) in
    let rec bsearch lo hi =
      if lo >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if ok mid then bsearch lo mid else bsearch (mid + 1) hi
    in
    let num = bsearch 1 resolution in
    Some (float_of_int num /. float_of_int resolution)
  end
