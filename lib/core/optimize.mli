(** Post-optimization of static schedules.

    The paper motivates the whole enterprise with processor economy:
    "processor power is still at a premium ... software for these
    applications needs to be highly optimized".  A schedule produced by
    the EDF constructor is feasible but not minimal: it may contain
    idle slots that could be dropped (shortening the cycle and hence
    the table the run-time scheduler stores) and it has an arbitrary
    phase.  Every transformation here re-verifies with {!Latency}, so
    optimized schedules are feasible by construction.

    Caution: dropping idle slots changes the alignment between the
    cycle and periodic invocation instants, so each removal is accepted
    only if full verification still passes. *)

type report = {
  original_length : int;
  optimized_length : int;
  removed_idle : int;  (** Idle slots dropped. *)
  attempts : int;  (** Candidate removals tried. *)
}

val trim_idle : ?max_rounds:int -> Model.t -> Schedule.t -> Schedule.t * report
(** [trim_idle m l] greedily removes idle slots (right to left), keeping
    a removal only when [Latency.verify] still passes; repeats up to
    [max_rounds] (default 4) passes or until a fixpoint.  Returns the
    shortened schedule and a report.  The input must verify; raises
    [Invalid_argument] otherwise. *)

val canonical_rotation : Schedule.t -> Schedule.t
(** [canonical_rotation l] is the lexicographically smallest rotation of
    [l] (idle sorting last) — a canonical form for comparing schedules
    produced by different routes.  Rotation preserves asynchronous
    latencies; it generally does NOT preserve periodic-response
    verdicts, so this is a comparison device, not an optimization. *)

val slack_profile : Model.t -> Schedule.t -> (string * int) list
(** [slack_profile m l] reports, per constraint, the margin
    [deadline - achieved] (latency for asynchronous constraints, worst
    response for periodic ones).  Raises [Invalid_argument] if the
    schedule does not verify. *)

val fundamental_period : Schedule.t -> Schedule.t
(** [fundamental_period l] is the shortest schedule whose round-robin
    repetition induces exactly the same trace as [l]: if the cycle is
    [k] copies of a shorter word, the word is returned (the run-time
    table shrinks by [k] with no behavioural change at all); otherwise
    [l] itself.  EDF over a hyperperiod often produces such repetition
    when the job pattern has a smaller period than the lcm. *)

val total_idle : Schedule.t -> int
(** Idle slots per cycle (convenience re-export). *)
