module Perf = Rt_par.Perf
module Pool = Rt_par.Pool

type outcome = Game.outcome =
  | Feasible of Schedule.t
  | Infeasible
  | Timeout of string
  | Unknown of string

type stats = Game.stats = { explored : int; outcome : outcome }
type engine = [ `Dfs | `Game | `Game_ref ]

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration for unit-weight models (Theorem 2 case (i)). *)
(* ------------------------------------------------------------------ *)

(* Both enumerators share one parallelization scheme: the search space
   is flattened into branches indexed by (schedule length, first
   decision), in the lexicographic order the sequential search visits
   them, and the answer is the lowest-index branch that finds a
   schedule.  Run left-to-right this visits exactly the sequential
   search's schedules in the sequential order; run on a pool, branches
   proceed concurrently but the lowest-index success still wins
   ([Pool.parallel_find_first]) and a shared {!Rt_par.Bound} cell lets
   branches that can no longer win abandon their DFS mid-flight.
   Either way the returned schedule is bit-identical to the sequential
   one; only [explored] may differ under a pool (losing branches may
   have tested schedules the sequential search never reached). *)

let find_branches pool n_tasks branch =
  let branch i =
    Rt_obs.Tracer.span ~cat:"exact" "dfs/branch" (fun () -> branch i)
  in
  match pool with
  | Some p when Pool.jobs p > 1 ->
      Pool.parallel_find_first p branch (Array.init n_tasks Fun.id)
  | _ ->
      let rec go i =
        if i >= n_tasks then None
        else match branch i with Some _ as r -> r | None -> go (i + 1)
      in
      go 0

(* After a fruitless search, a spent caller budget means the verdict is
   a cut-off, not an exhaustive negative. *)
let no_schedule budget explored ~max_len =
  match Option.bind budget Budget.exhausted with
  | Some reason -> { explored; outcome = Timeout reason }
  | None ->
      {
        explored;
        outcome =
          Unknown
            (Printf.sprintf "no feasible schedule of length <= %d" max_len);
      }

let enumerate ?pool ?budget ?table ?(engine = `Game) ?(max_len = 12)
    ?(max_states = 500_000) (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let elements =
    List.concat_map
      (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
      asyncs
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun e ->
      if Comm_graph.weight m.comm e <> 1 then
        invalid_arg
          (Printf.sprintf
             "Exact.enumerate: element %s has weight %d, only unit weights \
              are supported"
             (Comm_graph.element m.comm e).Element.name
             (Comm_graph.weight m.comm e)))
    elements;
  match engine with
  | (`Game | `Game_ref) as g ->
      let impl = if g = `Game then `Packed else `Reference in
      Game.solve ?pool ?budget ?table ~max_states ~impl ~granularity:`Unit m
  | `Dfs ->
      if asyncs = [] then
        {
          explored = 0;
          outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]);
        }
      else begin
        let explored = Atomic.make 0 in
        let symbols =
          Array.of_list (List.map (fun e -> Schedule.Run e) elements)
        in
        (* Hoisted once per solve: the per-position choice order.  The
           inner DFS used to rebuild this list at every node. *)
        let choices = Array.to_list symbols @ [ Schedule.Idle ] in
        let feasible sched =
          List.for_all
            (fun c -> Latency.meets_asynchronous m.comm sched c)
            asyncs
        in
        (* Window ending exactly at [len] is fully decided once [len]
           slots are fixed: if it lacks a required execution the branch
           is dead (the trace within the first cycle is exactly the
           prefix). *)
        let prefix_ok slots len =
          let prefix = Array.sub slots 0 len in
          let trace = Trace.of_slots m.comm prefix in
          List.for_all
            (fun (c : Timing.t) ->
              c.deadline > len
              || Latency.contains_execution m.comm c.graph trace
                   ~t0:(len - c.deadline) ~t1:len)
            asyncs
        in
        let n_sym = Array.length symbols in
        let best = Rt_par.Bound.create () in
        let exception Aborted in
        (* Branch [idx]: schedules of length [idx / n_sym + 1] whose
           first slot is [symbols.(idx mod n_sym)] (slot 0 is never
           idle: feasibility is rotation-invariant). *)
        let branch idx =
          let n = (idx / n_sym) + 1 in
          let first = symbols.(idx mod n_sym) in
          let slots = Array.make n Schedule.Idle in
          let local = ref 0 in
          let nodes = ref 0 in
          let result = ref None in
          let rec dfs pos =
            if Rt_par.Bound.get best < idx then raise Aborted;
            (match budget with
            | Some b when not (Budget.spend b 1) -> raise Aborted
            | _ -> ());
            incr nodes;
            if !result <> None then ()
            else if pos = n then begin
              incr local;
              let sched = Schedule.of_array slots in
              if feasible sched then begin
                result := Some sched;
                Rt_par.Bound.update_min best idx
              end
            end
            else
              List.iter
                (fun sym ->
                  if !result = None then begin
                    slots.(pos) <- sym;
                    if prefix_ok slots (pos + 1) then dfs (pos + 1)
                  end)
                choices
          in
          slots.(0) <- first;
          (try if prefix_ok slots 1 then dfs 1 with Aborted -> ());
          Perf.add Perf.dfs_nodes !nodes;
          ignore (Atomic.fetch_and_add explored !local);
          !result
        in
        match find_branches pool (max_len * n_sym) branch with
        | Some sched ->
            { explored = Atomic.get explored; outcome = Feasible sched }
        | None -> no_schedule budget (Atomic.get explored) ~max_len
      end

(* ------------------------------------------------------------------ *)
(* Execution-granularity enumeration: complete for atomic elements.    *)
(* ------------------------------------------------------------------ *)

let enumerate_atomic ?pool ?budget ?table ?(engine = `Game) ?(max_len = 16)
    ?(max_states = 500_000) (m : Model.t) =
  match engine with
  | (`Game | `Game_ref) as g ->
      let impl = if g = `Game then `Packed else `Reference in
      Game.solve ?pool ?budget ?table ~max_states ~impl ~granularity:`Atomic m
  | `Dfs ->
      let asyncs = Model.asynchronous m in
      let elements =
        List.concat_map
          (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
          asyncs
        |> List.sort_uniq Int.compare
      in
      if asyncs = [] then
        {
          explored = 0;
          outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]);
        }
      else begin
        let explored = Atomic.make 0 in
        let weights =
          List.map (fun e -> (e, Comm_graph.weight m.comm e)) elements
        in
        let warr = Array.of_list weights in
        (* Hoisted once per solve: choices in the order the DFS tries
           them — whole execution blocks first, then one idle slot. *)
        let choices =
          List.map (fun (e, w) -> `Block (e, w)) weights @ [ `IdleSlot ]
        in
        let feasible sched =
          List.for_all
            (fun c -> Latency.meets_asynchronous m.comm sched c)
            asyncs
        in
        let prefix_ok slots len =
          let prefix = Array.sub slots 0 len in
          let trace = Trace.of_slots m.comm prefix in
          List.for_all
            (fun (c : Timing.t) ->
              c.deadline > len
              || Latency.contains_execution m.comm c.graph trace
                   ~t0:(len - c.deadline) ~t1:len)
            asyncs
        in
        let n_w = Array.length warr in
        let best = Rt_par.Bound.create () in
        let exception Aborted in
        (* Branch [idx]: schedules of length [idx / n_w + 1] opening
           with a whole execution of element [warr.(idx mod n_w)]
           (position 0 must start an execution — rotation symmetry).
           Choices thereafter: one whole execution of an element
           (w slots) or one idle slot. *)
        let branch idx =
          let n = (idx / n_w) + 1 in
          let e0, w0 = warr.(idx mod n_w) in
          if w0 > n then None
          else begin
            let slots = Array.make n Schedule.Idle in
            let local = ref 0 in
            let nodes = ref 0 in
            let result = ref None in
            let rec dfs pos =
              if Rt_par.Bound.get best < idx then raise Aborted;
              (match budget with
              | Some b when not (Budget.spend b 1) -> raise Aborted
              | _ -> ());
              incr nodes;
              if !result <> None then ()
              else if pos = n then begin
                incr local;
                let sched = Schedule.of_array slots in
                if feasible sched then begin
                  result := Some sched;
                  Rt_par.Bound.update_min best idx
                end
              end
              else
                List.iter
                  (fun choice ->
                    if !result = None then
                      match choice with
                      | `Block (e, w) ->
                          if pos + w <= n then begin
                            for i = pos to pos + w - 1 do
                              slots.(i) <- Schedule.Run e
                            done;
                            (* Check every window completed while
                               laying the block. *)
                            let rec all_ok l =
                              l > pos + w || (prefix_ok slots l && all_ok (l + 1))
                            in
                            if all_ok (pos + 1) then dfs (pos + w)
                          end
                      | `IdleSlot ->
                          if pos > 0 then begin
                            slots.(pos) <- Schedule.Idle;
                            if prefix_ok slots (pos + 1) then dfs (pos + 1)
                          end)
                  choices
            in
            (try
               for i = 0 to w0 - 1 do
                 slots.(i) <- Schedule.Run e0
               done;
               let rec all_ok l =
                 l > w0 || (prefix_ok slots l && all_ok (l + 1))
               in
               if all_ok 1 then dfs w0
             with Aborted -> ());
            Perf.add Perf.dfs_nodes !nodes;
            ignore (Atomic.fetch_and_add explored !local);
            !result
          end
        in
        match find_branches pool (max_len * n_w) branch with
        | Some sched ->
            { explored = Atomic.get explored; outcome = Feasible sched }
        | None -> no_schedule budget (Atomic.get explored) ~max_len
      end

(* ------------------------------------------------------------------ *)
(* The simulation game for single-operation constraints (Theorem 1 /
   Theorem 2 case (ii)), re-expressed on the game engine: the budget
   vector of Exact's original hand-rolled DFS is exactly Game's
   single-op state, and the engine adds the shared transposition
   table, dominance pruning and pool fan-out on top.                   *)
(* ------------------------------------------------------------------ *)

let solve_single_ops ?pool ?budget ?table ?(max_states = 1_000_000)
    (m : Model.t) =
  let asyncs = Model.asynchronous m in
  List.iter
    (fun (c : Timing.t) ->
      if Task_graph.size c.graph <> 1 then
        invalid_arg
          (Printf.sprintf
             "Exact.solve_single_ops: constraint %s is not a single operation"
             c.name))
    asyncs;
  Game.solve ?pool ?budget ?table ~max_states ~granularity:`Atomic m

(* ------------------------------------------------------------------ *)
(* Component-wise exact decision (sum of small exponentials instead of *)
(* one big one).  Per-component verdict algebra:                       *)
(*   - any Infeasible  -> Infeasible  (subset argument: definitive)    *)
(*   - else any Timeout -> Timeout    (the search was cut short)       *)
(*   - else any Unknown -> Unknown                                     *)
(*   - all Feasible     -> interleave + re-verify the whole model;     *)
(*                         a failed interleave degrades to Unknown,    *)
(*                         never to a wrong Feasible/Infeasible.       *)
(* ------------------------------------------------------------------ *)

let solve_decomposed ?pool ?budget ?(engine = `Game) ?max_len ?max_states
    ~granularity (m : Model.t) =
  let plain ?pool ?table m =
    match granularity with
    | `Unit -> enumerate ?pool ?budget ?table ~engine ?max_len ?max_states m
    | `Atomic ->
        enumerate_atomic ?pool ?budget ?table ~engine ?max_len ?max_states m
  in
  match Decompose.components m with
  | [] | [ _ ] -> plain ?pool m
  | comps -> (
      let solve ~sub _comp =
        Perf.incr Perf.decompose_component_solves;
        (* Fresh implicit table per component; the inner search runs
           sequentially — the outer fan-out owns the pool — so explored
           counts are deterministic at any job count. *)
        plain sub
      in
      let results = Decompose.map_components ?pool ~solve m comps in
      let explored =
        List.fold_left (fun acc s -> acc + s.explored) 0 results
      in
      let first pred =
        List.find_opt (fun s -> pred s.outcome) results
        |> Option.map (fun s -> s.outcome)
      in
      match first (function Infeasible -> true | _ -> false) with
      | Some _ -> { explored; outcome = Infeasible }
      | None -> (
          match first (function Timeout _ -> true | _ -> false) with
          | Some o -> { explored; outcome = o }
          | None -> (
              match first (function Unknown _ -> true | _ -> false) with
              | Some o -> { explored; outcome = o }
              | None -> (
                  let scheds =
                    List.map
                      (fun s ->
                        match s.outcome with
                        | Feasible sched -> sched
                        | _ -> assert false)
                      results
                  in
                  match Decompose.interleave m.Model.comm scheds with
                  | Error e -> { explored; outcome = Unknown e }
                  | Ok sched ->
                      if
                        Latency.meets_all_asynchronous m.Model.comm sched
                          (Model.asynchronous m)
                      then { explored; outcome = Feasible sched }
                      else
                        {
                          explored;
                          outcome =
                            Unknown
                              "components feasible, but the interleaved \
                               schedule failed whole-model verification";
                        }))))
