module Perf = Rt_par.Perf
module Pool = Rt_par.Pool

type outcome = Feasible of Schedule.t | Infeasible | Unknown of string

type stats = { explored : int; outcome : outcome }

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration for unit-weight models (Theorem 2 case (i)). *)
(* ------------------------------------------------------------------ *)

(* Both enumerators share one parallelization scheme: the search space
   is flattened into branches indexed by (schedule length, first
   decision), in the lexicographic order the sequential search visits
   them, and the answer is the lowest-index branch that finds a
   schedule.  Run left-to-right this visits exactly the sequential
   search's schedules in the sequential order; run on a pool, branches
   proceed concurrently but the lowest-index success still wins
   ([Pool.parallel_find_first]) and a shared {!Rt_par.Bound} cell lets
   branches that can no longer win abandon their DFS mid-flight.
   Either way the returned schedule is bit-identical to the sequential
   one; only [explored] may differ under a pool (losing branches may
   have tested schedules the sequential search never reached). *)

let find_branches pool n_tasks branch =
  match pool with
  | Some p when Pool.jobs p > 1 ->
      Pool.parallel_find_first p branch (Array.init n_tasks Fun.id)
  | _ ->
      let rec go i =
        if i >= n_tasks then None
        else match branch i with Some _ as r -> r | None -> go (i + 1)
      in
      go 0

let enumerate ?pool ?(max_len = 12) (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let elements =
    List.concat_map
      (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
      asyncs
    |> List.sort_uniq Int.compare
  in
  List.iter
    (fun e ->
      if Comm_graph.weight m.comm e <> 1 then
        invalid_arg
          (Printf.sprintf
             "Exact.enumerate: element %s has weight %d, only unit weights \
              are supported"
             (Comm_graph.element m.comm e).Element.name
             (Comm_graph.weight m.comm e)))
    elements;
  if asyncs = [] then
    { explored = 0; outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]) }
  else begin
    let explored = Atomic.make 0 in
    let symbols = Array.of_list (List.map (fun e -> Schedule.Run e) elements) in
    let feasible sched =
      List.for_all (fun c -> Latency.meets_asynchronous m.comm sched c) asyncs
    in
    (* Window ending exactly at [len] is fully decided once [len] slots
       are fixed: if it lacks a required execution the branch is dead
       (the trace within the first cycle is exactly the prefix). *)
    let prefix_ok slots len =
      let prefix = Array.sub slots 0 len in
      let trace = Trace.of_slots m.comm prefix in
      List.for_all
        (fun (c : Timing.t) ->
          c.deadline > len
          || Latency.contains_execution m.comm c.graph trace
               ~t0:(len - c.deadline) ~t1:len)
        asyncs
    in
    let n_sym = Array.length symbols in
    let best = Rt_par.Bound.create () in
    let exception Aborted in
    (* Branch [idx]: schedules of length [idx / n_sym + 1] whose first
       slot is [symbols.(idx mod n_sym)] (slot 0 is never idle:
       feasibility is rotation-invariant). *)
    let branch idx =
      let n = (idx / n_sym) + 1 in
      let first = symbols.(idx mod n_sym) in
      let slots = Array.make n Schedule.Idle in
      let local = ref 0 in
      let nodes = ref 0 in
      let result = ref None in
      let rec dfs pos =
        if Rt_par.Bound.get best < idx then raise Aborted;
        incr nodes;
        if !result <> None then ()
        else if pos = n then begin
          incr local;
          let sched = Schedule.of_array slots in
          if feasible sched then begin
            result := Some sched;
            Rt_par.Bound.update_min best idx
          end
        end
        else
          List.iter
            (fun sym ->
              if !result = None then begin
                slots.(pos) <- sym;
                if prefix_ok slots (pos + 1) then dfs (pos + 1)
              end)
            (Array.to_list symbols @ [ Schedule.Idle ])
      in
      slots.(0) <- first;
      (try if prefix_ok slots 1 then dfs 1 with Aborted -> ());
      Perf.add Perf.dfs_nodes !nodes;
      ignore (Atomic.fetch_and_add explored !local);
      !result
    in
    match find_branches pool (max_len * n_sym) branch with
    | Some sched -> { explored = Atomic.get explored; outcome = Feasible sched }
    | None ->
        {
          explored = Atomic.get explored;
          outcome =
            Unknown
              (Printf.sprintf "no feasible schedule of length <= %d" max_len);
        }
  end

(* ------------------------------------------------------------------ *)
(* Execution-granularity enumeration: complete for atomic elements.    *)
(* ------------------------------------------------------------------ *)

let enumerate_atomic ?pool ?(max_len = 16) (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let elements =
    List.concat_map
      (fun (c : Timing.t) -> Task_graph.elements_used c.graph)
      asyncs
    |> List.sort_uniq Int.compare
  in
  if asyncs = [] then
    { explored = 0; outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]) }
  else begin
    let explored = Atomic.make 0 in
    let weights = List.map (fun e -> (e, Comm_graph.weight m.comm e)) elements in
    let warr = Array.of_list weights in
    let feasible sched =
      List.for_all (fun c -> Latency.meets_asynchronous m.comm sched c) asyncs
    in
    let prefix_ok slots len =
      let prefix = Array.sub slots 0 len in
      let trace = Trace.of_slots m.comm prefix in
      List.for_all
        (fun (c : Timing.t) ->
          c.deadline > len
          || Latency.contains_execution m.comm c.graph trace
               ~t0:(len - c.deadline) ~t1:len)
        asyncs
    in
    let n_w = Array.length warr in
    let best = Rt_par.Bound.create () in
    let exception Aborted in
    (* Branch [idx]: schedules of length [idx / n_w + 1] opening with a
       whole execution of element [warr.(idx mod n_w)] (position 0 must
       start an execution — rotation symmetry).  Choices thereafter:
       one whole execution of an element (w slots) or one idle slot. *)
    let branch idx =
      let n = (idx / n_w) + 1 in
      let e0, w0 = warr.(idx mod n_w) in
      if w0 > n then None
      else begin
        let slots = Array.make n Schedule.Idle in
        let local = ref 0 in
        let nodes = ref 0 in
        let result = ref None in
        let rec dfs pos =
          if Rt_par.Bound.get best < idx then raise Aborted;
          incr nodes;
          if !result <> None then ()
          else if pos = n then begin
            incr local;
            let sched = Schedule.of_array slots in
            if feasible sched then begin
              result := Some sched;
              Rt_par.Bound.update_min best idx
            end
          end
          else begin
            List.iter
              (fun (e, w) ->
                if !result = None && pos + w <= n then begin
                  for i = pos to pos + w - 1 do
                    slots.(i) <- Schedule.Run e
                  done;
                  (* Check every window completed while laying the block. *)
                  let rec all_ok l =
                    l > pos + w || (prefix_ok slots l && all_ok (l + 1))
                  in
                  if all_ok (pos + 1) then dfs (pos + w)
                end)
              weights;
            if !result = None && pos > 0 then begin
              slots.(pos) <- Schedule.Idle;
              if prefix_ok slots (pos + 1) then dfs (pos + 1)
            end
          end
        in
        (try
           for i = 0 to w0 - 1 do
             slots.(i) <- Schedule.Run e0
           done;
           let rec all_ok l = l > w0 || (prefix_ok slots l && all_ok (l + 1)) in
           if all_ok 1 then dfs w0
         with Aborted -> ());
        Perf.add Perf.dfs_nodes !nodes;
        ignore (Atomic.fetch_and_add explored !local);
        !result
      end
    in
    match find_branches pool (max_len * n_w) branch with
    | Some sched -> { explored = Atomic.get explored; outcome = Feasible sched }
    | None ->
        {
          explored = Atomic.get explored;
          outcome =
            Unknown
              (Printf.sprintf "no feasible schedule of length <= %d" max_len);
        }
  end

(* ------------------------------------------------------------------ *)
(* The simulation game for single-operation constraints (Theorem 1 /
   Theorem 2 case (ii)).                                               *)
(* ------------------------------------------------------------------ *)

type action = A_idle | A_run of int

let solve_single_ops ?(max_states = 1_000_000) (m : Model.t) =
  let asyncs = Model.asynchronous m in
  let specs =
    (* (element, weight, deadline) per constraint *)
    List.map
      (fun (c : Timing.t) ->
        if Task_graph.size c.graph <> 1 then
          invalid_arg
            (Printf.sprintf
               "Exact.solve_single_ops: constraint %s is not a single \
                operation"
               c.name);
        let e = Task_graph.element_of_node c.graph 0 in
        (e, Comm_graph.weight m.comm e, c.deadline))
      asyncs
    |> Array.of_list
  in
  let n = Array.length specs in
  if n = 0 then
    { explored = 0; outcome = Feasible (Schedule.of_slots [ Schedule.Idle ]) }
  else begin
    let elements =
      Array.to_list specs |> List.map (fun (e, _, _) -> e)
      |> List.sort_uniq Int.compare |> Array.of_list
    in
    let weight_of = Hashtbl.create 8 in
    Array.iter (fun (e, w, _) -> Hashtbl.replace weight_of e w) specs;
    (* A state is the vector of budgets: budget i = number of ticks left
       for the next execution of constraint i's operation to finish.
       Transitions are macro-steps (whole executions are contiguous). *)
    let initial = Array.init n (fun i -> let (_, _, d) = specs.(i) in d) in
    let initially_dead =
      Array.exists (fun (_, w, d) -> d < w) specs
    in
    let step state = function
      | A_idle ->
          let ok = ref true in
          let next =
            Array.mapi
              (fun i b ->
                let (_, w, _) = specs.(i) in
                let b' = b - 1 in
                if b' < w then ok := false;
                b')
              state
          in
          if !ok then Some next else None
      | A_run e ->
          let we = Hashtbl.find weight_of e in
          let ok = ref true in
          let next =
            Array.mapi
              (fun i b ->
                let (ei, wi, di) = specs.(i) in
                if ei = e then begin
                  if b < we then ok := false;
                  di + 1 - we
                end
                else begin
                  if b < we + wi then ok := false;
                  b - we
                end)
              state
          in
          if !ok then Some next else None
    in
    let actions =
      Array.to_list (Array.map (fun e -> A_run e) elements) @ [ A_idle ]
    in
    let expand_action = function
      | A_idle -> [ Schedule.Idle ]
      | A_run e ->
          List.init (Hashtbl.find weight_of e) (fun _ -> Schedule.Run e)
    in
    (* Necessary long-run rate condition: an execution of element e must
       start at least every d_i + 1 - w_e slots for each constraint i on
       e (coverage of consecutive d_i-windows), i.e. element e consumes
       at least w_e / (min_i d_i + 1 - w_e) of the processor.  If these
       shares sum past 1 the instance is certainly infeasible, which
       spares the game an exhaustive search on overloaded instances. *)
    let rate_overloaded =
      let tightest = Hashtbl.create 8 in
      Array.iter
        (fun (e, _, d) ->
          match Hashtbl.find_opt tightest e with
          | Some d' when d' <= d -> ()
          | _ -> Hashtbl.replace tightest e d)
        specs;
      let total =
        Hashtbl.fold
          (fun e d acc ->
            let w = Hashtbl.find weight_of e in
            if d + 1 - w <= 0 then acc +. infinity
            else acc +. (float_of_int w /. float_of_int (d + 1 - w)))
          tightest 0.0
      in
      total > 1.0 +. 1e-9
    in
    if initially_dead || rate_overloaded then
      { explored = 0; outcome = Infeasible }
    else begin
      (* Iterative DFS looking for a reachable cycle among safe states. *)
      let module Tbl = Hashtbl in
      let color : (int array, [ `Gray | `Black ]) Tbl.t = Tbl.create 4096 in
      let explored = ref 0 in
      let exception Cycle of action list in
      let exception Out_of_budget in
      (* Stack frames: (state, remaining actions, action taken towards
         the current child).  The head of the list is the top. *)
      let result =
        try
          let stack =
            ref [ (initial, ref actions, ref None) ]
          in
          Tbl.replace color initial `Gray;
          incr explored;
          let rec loop () =
            match !stack with
            | [] -> Infeasible
            | (state, remaining, via) :: rest -> (
                match !remaining with
                | [] ->
                    Tbl.replace color state `Black;
                    stack := rest;
                    loop ()
                | a :: more -> (
                    remaining := more;
                    match step state a with
                    | None -> loop ()
                    | Some next -> (
                        match Tbl.find_opt color next with
                        | Some `Black -> loop ()
                        | Some `Gray ->
                            (* Collect the actions along the cycle: from
                               the frame holding [next] up to here, then
                               the closing action [a]. *)
                            via := Some a;
                            let rec collect acc = function
                              | [] -> assert false
                              | (s, _, v) :: tl ->
                                  let acc =
                                    match !v with
                                    | Some act -> act :: acc
                                    | None -> acc
                                  in
                                  if s = next then acc else collect acc tl
                            in
                            raise (Cycle (collect [] !stack))
                        | None ->
                            if !explored >= max_states then
                              raise Out_of_budget;
                            incr explored;
                            via := Some a;
                            Tbl.replace color next `Gray;
                            stack := (next, ref actions, ref None) :: !stack;
                            loop ())))
          in
          loop ()
        with
        | Cycle cycle_actions ->
            let slots = List.concat_map expand_action cycle_actions in
            let sched = Schedule.of_slots slots in
            (* The cycle word is safe from any state dominating the cycle
               entry, in particular from the initial state; double-check
               with the independent latency analyser. *)
            if
              List.for_all
                (fun c -> Latency.meets_asynchronous m.comm sched c)
                asyncs
            then Feasible sched
            else
              Unknown "internal: cycle schedule failed verification"
        | Out_of_budget ->
            Unknown (Printf.sprintf "state budget %d exhausted" max_states)
      in
      Perf.add Perf.dfs_nodes !explored;
      { explored = !explored; outcome = result }
    end
  end
