(** Constructive scheduler for the paper's sufficient condition
    (Theorem 3).

    If (i) [Σ w_i/d_i <= 1/2], (ii) [⌈d_i/2⌉ >= w_i], and (iii) all
    functional elements can be pipelined, a feasible static schedule
    always exists.  The construction implemented here:

    {ol
    {- software-pipeline the model so that every operation has unit
       weight;}
    {- turn every constraint [(C_i, p_i, d_i)] into a polling periodic
       task executing [C_i] with period and relative deadline
       [q_i = ⌈d_i/2⌉] — premise (ii) gives [q_i >= w_i], and premise
       (i) gives [Σ w_i/q_i <= 2 Σ w_i/d_i <= 1];}
    {- dispatch the polling jobs with EDF over the hyperperiod
       [lcm q_i]; utilization [<= 1] with implicit deadlines makes EDF
       succeed, so every job [k] of constraint [i] finishes by
       [(k+1) q_i].}}

    The result satisfies every latency bound: consecutive executions of
    [C_i] have [f_{k+1} <= r_k + 2 q_i <= s_k + d_i + 1] and
    [f_0 <= q_i <= d_i], so every window of [d_i] slots contains a
    complete execution — for asynchronous constraints this covers every
    possible invocation instant, and for periodic ones a fortiori every
    invocation at [k p_i]. *)

type result = {
  pipelined : Pipeline.t;  (** The rewritten model actually scheduled. *)
  schedule : Schedule.t;  (** One hyperperiod of the static schedule. *)
  polling_periods : (string * int) list;
      (** Constraint name -> chosen polling period [q_i]. *)
  verdicts : Latency.verdict list;
      (** Verification of the rewritten model against the schedule. *)
}

val schedule : ?max_hyperperiod:int -> Model.t -> (result, string) Stdlib.result
(** [schedule m] checks the three premises and runs the construction.
    [Error] carries the violated premises, a hyperperiod overflow
    (default cap 1_000_000 slots), or — never observed, asserted
    against — an EDF failure.  On success the verdicts are all
    satisfied. *)

val premises_hold : Model.t -> bool
(** Convenience wrapper around [Model.theorem3_premises]. *)
