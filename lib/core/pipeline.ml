type origin = { orig_elem : int; stage : int; stages : int }

type t = {
  model : Model.t;
  origin : origin array;
  first_stage : int array;
  last_stage : int array;
}

let stage_name base i n = if n = 1 then base else Printf.sprintf "%s#%d" base i

let rewrite (m : Model.t) =
  let g = m.comm in
  let n = Comm_graph.n_elements g in
  (* Decide the stage count of every element. *)
  let stages_of =
    Array.init n (fun e ->
        let w = Comm_graph.weight g e in
        if w > 1 && Comm_graph.pipelinable g e then w else 1)
  in
  let first_stage = Array.make n 0 in
  let last_stage = Array.make n 0 in
  let specs = ref [] (* reversed element specs *) in
  let origins = ref [] in
  let next_id = ref 0 in
  for e = 0 to n - 1 do
    let elem = Comm_graph.element g e in
    let k = stages_of.(e) in
    first_stage.(e) <- !next_id;
    for i = 1 to k do
      let name = stage_name elem.Element.name i k in
      let weight = if k = 1 then elem.Element.weight else 1 in
      specs := (name, weight, elem.Element.pipelinable) :: !specs;
      origins := { orig_elem = e; stage = i - 1; stages = k } :: !origins;
      incr next_id
    done;
    last_stage.(e) <- !next_id - 1
  done;
  let elem_specs = List.rev !specs in
  let origin = Array.of_list (List.rev !origins) in
  let name_of id =
    let o = origin.(id) in
    stage_name (Comm_graph.element g o.orig_elem).Element.name (o.stage + 1)
      o.stages
  in
  (* Internal chain edges plus the images of the original edges. *)
  let chain_edges = ref [] in
  for e = 0 to n - 1 do
    for i = first_stage.(e) to last_stage.(e) - 1 do
      chain_edges := (name_of i, name_of (i + 1)) :: !chain_edges
    done
  done;
  let mapped_edges =
    Rt_graph.Digraph.edges (Comm_graph.graph g)
    |> List.map (fun (u, v) ->
           (name_of last_stage.(u), name_of first_stage.(v)))
  in
  let comm =
    Comm_graph.create ~elements:elem_specs
      ~edges:(List.rev !chain_edges @ mapped_edges)
  in
  (* Rewrite a task graph: each node becomes a chain of stage nodes. *)
  let rewrite_graph tg =
    let size = Task_graph.size tg in
    let node_first = Array.make size 0 in
    let node_last = Array.make size 0 in
    let new_nodes = ref [] in
    let count = ref 0 in
    for v = 0 to size - 1 do
      let e = Task_graph.element_of_node tg v in
      node_first.(v) <- !count;
      for i = first_stage.(e) to last_stage.(e) do
        new_nodes := i :: !new_nodes;
        incr count
      done;
      node_last.(v) <- !count - 1
    done;
    let nodes = Array.of_list (List.rev !new_nodes) in
    let internal =
      List.concat
        (List.init size (fun v ->
             List.init
               (node_last.(v) - node_first.(v))
               (fun i -> (node_first.(v) + i, node_first.(v) + i + 1))))
    in
    let mapped =
      List.map
        (fun (u, v) -> (node_last.(u), node_first.(v)))
        (Task_graph.edges tg)
    in
    Task_graph.create ~nodes ~edges:(internal @ mapped)
  in
  let constraints =
    List.map
      (fun (c : Timing.t) ->
        let c' =
          Timing.make ~name:c.name ~graph:(rewrite_graph c.graph)
            ~period:c.period ~deadline:c.deadline ~kind:c.kind
        in
        if c.offset = 0 || Timing.is_asynchronous c then c'
        else Timing.with_offset c' c.offset)
      m.constraints
  in
  let model = Model.make ~comm ~constraints in
  { model; origin; first_stage; last_stage }

let is_fully_pipelined (m : Model.t) =
  List.for_all
    (fun (c : Timing.t) ->
      List.for_all
        (fun e -> Comm_graph.weight m.comm e = 1)
        (Task_graph.elements_used c.graph))
    m.constraints
