include Rt_base.Element
