type report = {
  merged_groups : (string list * string) list;
  time_before : int;
  time_after : int;
}

let at_most_once (c : Timing.t) =
  List.for_all
    (fun e -> Task_graph.occurrences c.graph e <= 1)
    (Task_graph.elements_used c.graph)

(* Union of two task graphs, identifying nodes by the element they map
   to.  Returns None if the union has a cycle. *)
let union_graphs a b =
  let elems =
    List.sort_uniq Int.compare
      (Task_graph.elements_used a @ Task_graph.elements_used b)
  in
  let nodes = Array.of_list elems in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i e -> Hashtbl.replace index e i) nodes;
  let edge_of tg (u, v) =
    ( Hashtbl.find index (Task_graph.element_of_node tg u),
      Hashtbl.find index (Task_graph.element_of_node tg v) )
  in
  let edges =
    List.map (edge_of a) (Task_graph.edges a)
    @ List.map (edge_of b) (Task_graph.edges b)
    |> List.sort_uniq compare
  in
  match Task_graph.create ~nodes ~edges with
  | tg -> Some tg
  | exception Invalid_argument _ -> None

let merge_pair (a : Timing.t) (b : Timing.t) =
  if
    Timing.is_periodic a && Timing.is_periodic b
    && a.period = b.period
    && a.offset = b.offset
    && at_most_once a && at_most_once b
  then
    match union_graphs a.graph b.graph with
    | Some graph ->
        let merged =
          Timing.make
            ~name:(a.name ^ "_and_" ^ b.name)
            ~graph ~period:a.period
            ~deadline:(min a.deadline b.deadline)
            ~kind:Timing.Periodic
        in
        Some (if a.offset = 0 then merged else Timing.with_offset merged a.offset)
    | None -> None
  else None

let mergeable a b = Option.is_some (merge_pair a b)

let apply (m : Model.t) =
  let time c = Timing.computation_time m.comm c in
  let time_before =
    List.fold_left (fun acc c -> acc + time c) 0 m.constraints
  in
  (* Greedy left-to-right, bucketed: merge_pair only ever succeeds for
     periodic constraints sharing (period, offset), so each periodic
     constraint need only be offered to the accumulators of its own
     bucket — the scan drops from O(n^2) over the whole constraint list
     to near-linear at 10k loosely-mergeable constraints.  Within a
     bucket the first-compatible-accumulator order is the original one,
     so the resulting groups (and the output order, tracked by arrival
     rank) are exactly those of the unbucketed scan. *)
  let accs = ref [] (* cells in reverse arrival order *) in
  let buckets : (int * int, (Timing.t * string list) ref Queue.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let push cell = accs := cell :: !accs in
  List.iter
    (fun (c : Timing.t) ->
      if not (Timing.is_periodic c) then push (ref (c, [ c.name ]))
      else begin
        let key = (c.period, c.offset) in
        let bucket =
          match Hashtbl.find_opt buckets key with
          | Some b -> b
          | None ->
              let b = Queue.create () in
              Hashtbl.replace buckets key b;
              b
        in
        let absorbed =
          Queue.fold
            (fun done_ cell ->
              done_
              ||
              let merged, names = !cell in
              match merge_pair merged c with
              | Some m' ->
                  cell := (m', names @ [ c.Timing.name ]);
                  true
              | None -> false)
            false bucket
        in
        if not absorbed then begin
          let cell = ref (c, [ c.name ]) in
          Queue.add cell bucket;
          push cell
        end
      end)
    m.constraints;
  let accs = List.rev_map (fun cell -> !cell) !accs in
  let constraints = List.map fst accs in
  let merged_groups =
    List.filter_map
      (fun ((c : Timing.t), names) ->
        if List.length names > 1 then Some (names, c.name) else None)
      accs
  in
  let model = Model.make ~comm:m.comm ~constraints in
  let time_after =
    List.fold_left (fun acc c -> acc + time c) 0 constraints
  in
  (model, { merged_groups; time_before; time_after })
