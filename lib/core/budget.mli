(** Cooperative engine budgets: wall-clock deadline + state-count fuel.

    A hostile (or merely NP-hard — Theorem 2) model can pin the exact
    engines arbitrarily long.  A [Budget.t] bounds a solve: engines
    call {!spend} at every branch expansion and stop cooperatively
    once either resource runs out, returning a distinguished [Timeout]
    verdict instead of hanging.

    A budget is shared state: one [t] threaded through a whole solve,
    including every pool lane (all fields are atomics).  Exhaustion is
    sticky — once spent, every later {!spend} is [false] —
    so concurrent lanes wind down promptly.  With no budget the
    engines' exploration is untouched (the bench counters pin the
    default path exactly). *)

type t

val create : ?wall_s:float -> ?fuel:int -> unit -> t
(** [create ()] starts the clock now.  [wall_s] is the wall-clock
    allowance in seconds; [fuel] the number of {!spend} units (state
    expansions).  Omitted resources are unlimited.  Raises
    [Invalid_argument] on a negative allowance. *)

val spend : t -> int -> bool
(** [spend b n] consumes [n] fuel units and checks the clock; [false]
    once the budget is exhausted (and forever after).  Safe to call
    from any domain. *)

val exhausted : t -> string option
(** The reason the budget ran out, once it has. *)

val wall_elapsed : t -> float
(** Seconds since {!create} (for reporting). *)
