(** Degraded operating modes and the mode-change protocol.

    The paper poses fault tolerance as the model's open direction; this
    module supplies the {e scheduling} half of an answer: from a model
    and a {!Criticality.assignment}, derive degraded variants that shed
    the low-criticality constraints (and stretch the timing of the
    medium ones), pre-synthesize a verified static schedule for each,
    and analyze the mode-change transition so that switching under an
    overrun provably keeps the retained constraints' deadlines.

    A {e mode} is a model variant with its pre-synthesized schedule.
    [derive] returns the primary mode (all constraints, unmodified)
    followed by at most two degraded modes:

    - [degraded-medium]: constraints of level [>= Medium] retained
      (Medium ones stretched by the derivation factor), [Low] shed;
    - [degraded-high]: only [High] constraints retained, unmodified.

    Thresholds that would change nothing are skipped.  All schedules
    are synthesized and verified offline — the run-time mode switch is
    a table swap, never a search. *)

type mode = {
  name : string;  (** ["primary"] or ["degraded-<level>"]. *)
  threshold : Criticality.level;
      (** Constraints with level [>= threshold] are retained. *)
  model : Model.t;  (** The degraded model actually scheduled. *)
  plan : Synthesis.plan;  (** Verified schedule for [model]. *)
  dropped : string list;  (** Shed constraint names. *)
  stretched : (string * int * int) list;
      (** [(name, before, after)]: stretched period (periodic) or
          deadline (asynchronous). *)
}

type derivation = {
  stretch : int;
      (** Factor applied to retained constraints below [High]: periodic
          periods/deadlines (and offsets) are multiplied by it;
          asynchronous deadlines only ([1] = shed-only degradation). *)
  max_hyperperiod : int;  (** Passed through to {!Synthesis.synthesize}. *)
}

val default_derivation : derivation
(** [{stretch = 1; max_hyperperiod = 1_000_000}]. *)

val primary : ?derivation:derivation -> Model.t -> (mode, string) result
(** The undegraded mode: the model as given, synthesized and verified. *)

val degraded_constraints :
  ?derivation:derivation ->
  Model.t ->
  Criticality.assignment ->
  threshold:Criticality.level ->
  Timing.t list * string list * (string * int * int) list
(** The model surgery behind {!degrade}, without synthesis:
    [(kept, dropped, stretched)] where constraints below [threshold]
    are shed and retained constraints below [High] are stretched by the
    derivation factor (periodic: period, deadline and offset;
    asynchronous: deadline only, the environment's separation is not
    ours to slow down).  Exposed so multiprocessor contingency
    synthesis can degrade a model before re-partitioning, reusing
    exactly the uniprocessor degradation semantics. *)

val degrade :
  ?derivation:derivation ->
  Model.t ->
  Criticality.assignment ->
  threshold:Criticality.level ->
  (mode, string) result
(** One degraded mode at the given threshold.  Fails if every
    constraint would be shed, the degraded model does not validate, or
    synthesis fails. *)

val derive :
  ?derivation:derivation ->
  Model.t ->
  Criticality.assignment ->
  (mode list, string) result
(** Primary plus every distinct degraded mode, as described above.  The
    head of the list is always the primary mode. *)

val find : mode list -> string -> mode option
(** Look a mode up by name. *)

val of_schedule :
  ?name:string -> Model.t -> Schedule.t -> (mode, string) result
(** [of_schedule m sched] wraps a hand-built schedule as a mode (name
    defaults to ["primary"]): the schedule is validated and verified
    against [m], but feasibility is {e not} required — replaying a
    schedule with failing verdicts is a legitimate experiment. *)

val transition_slots : check_period:int -> int
(** The analyzed mode-change bound: worst-case slots from an overrun
    coming into existence (nominal completion passes without the
    execution finishing) to the degraded schedule being in force, for a
    watchdog checking every [check_period] slots — [check_period - 1]
    detection slots plus one slot for the table swap to take effect.
    Raises [Invalid_argument] if [check_period <= 0]. *)

val admits_transition :
  check_period:int -> mode -> (unit, string list) result
(** [admits_transition ~check_period mode] checks, for every constraint
    retained by [mode], that its verified response bound in the mode
    plus {!transition_slots} still fits its deadline — i.e. an
    invocation arriving during the switch is still served in time.
    Returns the violating constraints otherwise. *)

val pp : Format.formatter -> mode -> unit
(** Multi-line rendering: name, retained count, shed and stretched
    constraints. *)
