include Rt_base.Timing
