(** Scheduling of the communication network (a shared bus).

    The "similar-looking problem" of the paper: transmissions are unit-
    slot preemptible work items with releases and deadlines, dispatched
    EDF on a single bus.  Optimality of EDF on one resource makes this
    decision exact for the given windows. *)

type item = {
  item_name : string;
  release : int;
  abs_deadline : int;
  cost : int;  (** Bus slots needed. *)
}

type bus_schedule = string option array
(** Slot -> transmitting item name ([None] = bus idle). *)

val schedule : horizon:int -> item list -> (bus_schedule, string) result
(** [schedule ~horizon items] dispatches all items EDF-preemptively;
    fails naming the first item to miss its deadline.  Deterministic
    tie-breaks. *)

val utilization : horizon:int -> item list -> float
(** Total cost over horizon. *)
