(** Scheduling of the communication network (a shared bus).

    The "similar-looking problem" of the paper: transmissions are unit-
    slot preemptible work items with releases and deadlines, dispatched
    EDF on a single bus.  Optimality of EDF on one resource makes this
    decision exact for the given windows.

    {2 Retransmission slack (ARQ)}

    A bus that can lose or corrupt transmissions needs {e slack}: every
    lost slot must be repeated.  {!schedule_arq} synthesizes the bus
    reservation with each item's cost inflated by [k] slots.  The
    analyzed bound: a lost slot consumes budget of exactly the item
    transmitting it, and an item only transmits inside its own
    [\[release, deadline)] window, so if at most [k] fault slots land in
    every item's window, every item's realized demand is at most
    [cost + k] — the demand the reservation was verified against.  EDF
    optimality on one resource then guarantees every deadline is still
    met (see {!Rt_sim.Net_fault} for the simulation side, and
    [docs/DISTRIBUTED.md] for the full argument). *)

type item = {
  item_name : string;
  release : int;
  abs_deadline : int;
  cost : int;  (** Bus slots needed. *)
}

type bus_schedule = string option array
(** Slot -> transmitting item name ([None] = bus idle). *)

type miss = {
  missed : string;  (** Item that cannot meet its deadline. *)
  miss_deadline : int;  (** Its absolute deadline (or the horizon). *)
  short : int;  (** Slots still untransmitted at that instant. *)
}

val schedule : horizon:int -> item list -> (bus_schedule, miss list) result
(** [schedule ~horizon items] dispatches all items EDF-preemptively;
    on failure the error carries {e every} item that misses (each
    infeasible item is dropped at its deadline so the remaining items
    are still dispatched and diagnosed) — complete infeasibility
    evidence for contingency synthesis, not just the first victim.
    Misses are ordered by (deadline, name).  Deterministic
    tie-breaks. *)

val schedule_arq :
  horizon:int -> k:int -> item list -> (bus_schedule, miss list) result
(** [schedule_arq ~horizon ~k items] is {!schedule} with every item's
    cost inflated by [k] retransmission slots: a successful reservation
    absorbs up to [k] lost/corrupted transmissions per item window (the
    analyzed bound above).  [k = 0] coincides with {!schedule}.  Raises
    [Invalid_argument] if [k < 0]. *)

val arq_tolerance : horizon:int -> ?max_k:int -> item list -> int option
(** [arq_tolerance ~horizon items] is the largest [k <= max_k] (default
    16) for which {!schedule_arq} succeeds — the number of per-window
    losses the bus can absorb; [None] if even [k = 0] is infeasible.
    Monotone in [k], found by linear search from 0. *)

val utilization : horizon:int -> item list -> float
(** Total cost over horizon. *)

val miss_to_string : miss -> string
(** ["m1: 2 slot(s) short at deadline 7"]. *)

val pp_miss : Format.formatter -> miss -> unit

val misses_to_string : miss list -> string
(** Semicolon-joined {!miss_to_string} — for embedding in error
    strings. *)
