open Rt_core

type t = { n_procs : int; assignment : int array }

let single g = { n_procs = 1; assignment = Array.make (Comm_graph.n_elements g) 0 }

let loads g t =
  let l = Array.make t.n_procs 0 in
  Array.iteri
    (fun e proc -> l.(proc) <- l.(proc) + Comm_graph.weight g e)
    t.assignment;
  l

let cut_edges g t =
  Rt_graph.Digraph.edges (Comm_graph.graph g)
  |> List.filter (fun (u, v) -> t.assignment.(u) <> t.assignment.(v))

let max_load g t = Array.fold_left max 0 (loads g t)

let greedy g ~n_procs =
  if n_procs < 1 then invalid_arg "Partition.greedy";
  let n = Comm_graph.n_elements g in
  let assignment = Array.make n (-1) in
  let load = Array.make n_procs 0 in
  let order =
    List.init n Fun.id
    |> List.sort (fun a b ->
           compare
             (- Comm_graph.weight g a, a)
             (- Comm_graph.weight g b, b))
  in
  let digraph = Comm_graph.graph g in
  List.iter
    (fun e ->
      let affinity proc =
        let count rel =
          List.length (List.filter (fun x -> assignment.(x) = proc) rel)
        in
        count (Rt_graph.Digraph.succ digraph e)
        + count (Rt_graph.Digraph.pred digraph e)
      in
      let best = ref 0 in
      for proc = 1 to n_procs - 1 do
        let score p = (load.(p) - affinity p, p) in
        if score proc < score !best then best := proc
      done;
      assignment.(e) <- !best;
      load.(!best) <- load.(!best) + Comm_graph.weight g e)
    order;
  { n_procs; assignment }

let refine ?(avoid = []) g t =
  let assignment = Array.copy t.assignment in
  let t' = { t with assignment } in
  let digraph = Comm_graph.graph g in
  let cut_count a =
    List.length
      (List.filter
         (fun (u, v) -> a.(u) <> a.(v))
         (Rt_graph.Digraph.edges digraph))
  in
  let bound = max_load g t in
  let improved = ref true in
  while !improved do
    improved := false;
    for e = 0 to Comm_graph.n_elements g - 1 do
      let here = assignment.(e) in
      let current_cut = cut_count assignment in
      for proc = 0 to t.n_procs - 1 do
        if proc <> assignment.(e) && not (List.mem proc avoid) then begin
          let old = assignment.(e) in
          assignment.(e) <- proc;
          let new_cut = cut_count assignment in
          let ls = loads g t' in
          if new_cut < current_cut && Array.for_all (fun l -> l <= bound) ls
          then improved := true
          else assignment.(e) <- old
        end
      done;
      ignore here
    done
  done;
  t'

let repair g t ~dead =
  if t.n_procs < 2 then Error "Partition.repair: no surviving processor"
  else if dead < 0 || dead >= t.n_procs then
    Error (Printf.sprintf "Partition.repair: processor %d out of range" dead)
  else begin
    let assignment = Array.copy t.assignment in
    let load = Array.make t.n_procs 0 in
    Array.iteri
      (fun e proc ->
        if proc <> dead then load.(proc) <- load.(proc) + Comm_graph.weight g e)
      assignment;
    let displaced =
      List.filter
        (fun e -> assignment.(e) = dead)
        (List.init (Comm_graph.n_elements g) Fun.id)
      |> List.sort (fun a b ->
             compare
               (- Comm_graph.weight g a, a)
               (- Comm_graph.weight g b, b))
    in
    let digraph = Comm_graph.graph g in
    List.iter
      (fun e ->
        assignment.(e) <- -1;
        let affinity proc =
          let count rel =
            List.length (List.filter (fun x -> assignment.(x) = proc) rel)
          in
          count (Rt_graph.Digraph.succ digraph e)
          + count (Rt_graph.Digraph.pred digraph e)
        in
        let best = ref (if dead = 0 then 1 else 0) in
        for proc = 0 to t.n_procs - 1 do
          if proc <> dead then begin
            let score p = (load.(p) - affinity p, p) in
            if score proc < score !best then best := proc
          end
        done;
        assignment.(e) <- !best;
        load.(!best) <- load.(!best) + Comm_graph.weight g e)
      displaced;
    Ok { t with assignment }
  end

let pp g fmt t =
  for proc = 0 to t.n_procs - 1 do
    let members =
      List.filter
        (fun e -> t.assignment.(e) = proc)
        (List.init (Comm_graph.n_elements g) Fun.id)
      |> List.map (fun e -> (Comm_graph.element g e).Element.name)
    in
    Format.fprintf fmt "p%d: {%s}%s" proc (String.concat " " members)
      (if proc < t.n_procs - 1 then " " else "")
  done
