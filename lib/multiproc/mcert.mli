(** Certificate builders for multiprocessor synthesis.

    Maps the engine-side artifacts ({!Msched.result},
    {!Contingency.table}) onto the trusted certificate vocabulary
    ([Rt_check.Certificate.mp] / [mp_table]) that the independent
    checker re-validates.  The mapping is purely structural — window
    offsets, piece contents and bus reservations are copied verbatim;
    the checker re-derives every claim from the model, so nothing here
    is trusted. *)

val result_cert : Rt_core.Model.t -> Msched.result -> Rt_core.Certificate.mp
(** [result_cert m r] is the certificate for a nominal synthesis of the
    full model [m]: no dropped constraints, no overrides.  Message
    pieces carry the full reserved cost ([msg_cost + arq_slack] bus
    slots), matching both the decomposition windows and the bus
    reservation, so the checker's replay counts exactly the slots EDF
    laid down. *)

val scenario_cert :
  Rt_core.Model.t -> Contingency.scenario -> Rt_core.Certificate.mp
(** [scenario_cert m s] is the certificate for a contingency scenario
    of the {e original} model [m] (the digest binds to [m], not to the
    degraded variant): [s.dropped] becomes the certificate's dropped
    list and every stretch note becomes a [(name, period, deadline)]
    override with the {e effective} parameters the degraded plans were
    decomposed against — a periodic stretch multiplies period and
    deadline by the same factor, an asynchronous stretch relaxes only
    the deadline (the environment's invocation rate is not ours to slow
    down). *)

val table_cert :
  Rt_core.Model.t -> Contingency.table -> Rt_core.Certificate.mp_table
(** [table_cert m t] packages the nominal system plus every {e
    feasible} scenario (infeasible crash slots carry no schedule to
    certify) with the table's reconfiguration bounds. *)
