(** Pre-synthesized contingency schedules for single-processor crashes.

    The paper decomposes multiprocessor synthesis into per-processor
    synthesis plus a network scheduling problem; this module extends
    the decomposition to processor failures.  For every scenario
    "processor [p] crashed", the elements assigned to [p] are
    re-placed on the survivors ({!Partition.repair}, keeping every
    surviving assignment so migration only moves the dead processor's
    state), the placement is polished with {!Partition.refine}
    [~avoid:[p]], and the whole system — per-processor schedules plus
    bus — is re-synthesized and window-verified offline
    ({!Msched.synthesize_with}).  When the full constraint set does not
    fit the surviving capacity and a criticality assignment is given,
    the scenario degrades exactly like the uniprocessor modes do
    ([Rt_core.Modes.degraded_constraints]): shed below a threshold,
    stretch the retained sub-High constraints.

    The run-time failover is therefore a table swap, never a search,
    and its latency is an analyzed constant:

    {v reconfig_bound = detect_bound + 1 (table swap) + migration v}

    Phase alignment costs nothing because every synthesized table is
    indexed by absolute time modulo its hyperperiod — the contingency
    table is consulted at the same absolute slots the nominal one would
    have been.  {!admits_reconfiguration} checks the bound against each
    constraint's measured slack ([deadline - worst response], from
    {!Msched.response_bounds}): an invocation already in flight when
    the crash hits either completes under the nominal table or is the
    (bounded) collateral of the crash; every invocation arriving
    [reconfig_bound] slots after the crash is served entirely by the
    verified contingency table. *)

type scenario = {
  dead : int;  (** The crashed processor this scenario covers. *)
  threshold : Rt_core.Criticality.level option;
      (** [None]: the full model fits the survivors.  [Some l]: the
          scenario runs degraded at threshold [l]. *)
  result : Msched.result;
      (** Verified survivors + bus schedules; processor [dead] is idle
          in [result.processor_schedules]. *)
  dropped : string list;  (** Constraints shed by the degradation. *)
  stretched : (string * int * int) list;
      (** [(name, before, after)] stretched periods/deadlines. *)
}

type table = {
  nominal : Msched.result;  (** The no-crash system. *)
  scenarios : (scenario, string) result array;
      (** Index = crashed processor id; [Error] carries the reason no
          schedule (even degraded) exists for that crash. *)
  detect_bound : int;
      (** Slots from crash to detection (the heartbeat bound, supplied
          by the caller — this library does not know the detector). *)
  migration : int;  (** Slots to move the dead processor's state. *)
  reconfig_bound : int;  (** [detect_bound + 1 + migration]. *)
}

val synthesize :
  ?pool:Rt_par.Pool.t ->
  ?criticality:Rt_core.Criticality.assignment ->
  ?derivation:Rt_core.Modes.derivation ->
  ?msg_cost:int ->
  ?max_hyperperiod:int ->
  ?migration:int ->
  detect_bound:int ->
  Rt_core.Model.t ->
  Msched.result ->
  (table, string) result
(** [synthesize ~detect_bound m nominal] builds the contingency table
    for every single-processor crash of [nominal]'s partition.  Each
    scenario first tries the full model; when that fails and
    [criticality] is given, degraded thresholds [Medium] then [High]
    are tried in order (with [derivation], default
    [Modes.default_derivation]).  [msg_cost] defaults to [nominal]'s;
    the nominal ARQ slack is inherited by every scenario.  [migration]
    defaults to [0] (state is checkpointed over the bus continuously).
    Errors only on invalid arguments ([detect_bound < 0], [migration <
    0], single-processor nominal); an infeasible scenario is recorded
    in its [scenarios] slot, not a synthesis failure.

    With [pool], the crash scenarios (one per processor) are
    synthesized concurrently; each is a deterministic function of its
    index, so the resulting table is identical to the sequential
    one. *)

val feasible_scenarios : table -> scenario list
(** The scenarios that have a verified schedule, by dead processor. *)

val admits_reconfiguration :
  Rt_core.Model.t -> table -> (unit, string list) result
(** For every feasible scenario and every constraint it retains, check
    [reconfig_bound <= deadline - response] where [response] is the
    constraint's measured worst response under the {e nominal} table
    ({!Msched.response_bounds}) — an invocation that arrived just
    before the crash must absorb the whole reconfiguration latency and
    still meet its (possibly stretched) scenario deadline.  Returns
    every violation otherwise. *)

val pp : Rt_core.Model.t -> Format.formatter -> table -> unit
(** Multi-line rendering: bound accounting, then one line per crash
    scenario (feasible / degraded-at-threshold / infeasible). *)
