(* Keep the sibling Decompose (multiprocessor windows) visible across
   the open of Rt_core, which now also exports a Decompose. *)
module Mp_decompose = Decompose
open Rt_core
module Decompose = Mp_decompose

type scenario = {
  dead : int;
  threshold : Criticality.level option;
  result : Msched.result;
  dropped : string list;
  stretched : (string * int * int) list;
}

type table = {
  nominal : Msched.result;
  scenarios : (scenario, string) result array;
  detect_bound : int;
  migration : int;
  reconfig_bound : int;
}

(* A plan's windows tile [0, deadline], so the last window's end is the
   constraint's (possibly stretched) relative deadline. *)
let plan_deadline (plan : Decompose.plan) =
  match List.rev plan.Decompose.pieces with
  | [] -> 0
  | last :: _ -> last.Decompose.end_off

let scenario_for ?criticality ?derivation ~msg_cost ~arq_slack
    ~max_hyperperiod (m : Model.t) nominal ~dead =
  match Partition.repair m.comm nominal.Msched.partition ~dead with
  | Error e -> Error e
  | Ok repaired -> (
      let partition = Partition.refine ~avoid:[ dead ] m.comm repaired in
      let attempt model =
        Msched.synthesize_with ~msg_cost ~arq_slack ~max_hyperperiod model
          partition
      in
      match attempt m with
      | Ok result ->
          Ok { dead; threshold = None; result; dropped = []; stretched = [] }
      | Error full_err -> (
          let degraded threshold =
            match criticality with
            | None -> None
            | Some assignment -> (
                let kept, dropped, stretched =
                  Modes.degraded_constraints ?derivation m assignment
                    ~threshold
                in
                (* Skip thresholds that change nothing: that attempt
                   already failed as the full model. *)
                if kept = [] || (dropped = [] && stretched = []) then None
                else
                  match Model.validate ~comm:m.comm ~constraints:kept with
                  | Error _ -> None
                  | Ok () -> (
                      let model = Model.make ~comm:m.comm ~constraints:kept in
                      match attempt model with
                      | Error _ -> None
                      | Ok result ->
                          Some
                            {
                              dead;
                              threshold = Some threshold;
                              result;
                              dropped;
                              stretched;
                            }))
          in
          match degraded Criticality.Medium with
          | Some s -> Ok s
          | None -> (
              match degraded Criticality.High with
              | Some s -> Ok s
              | None -> Error full_err)))

let synthesize ?pool ?criticality ?derivation ?msg_cost
    ?(max_hyperperiod = 1_000_000) ?(migration = 0) ~detect_bound (m : Model.t)
    (nominal : Msched.result) =
  let n_procs = nominal.Msched.partition.Partition.n_procs in
  if detect_bound < 0 then Error "Contingency.synthesize: negative detect_bound"
  else if migration < 0 then Error "Contingency.synthesize: negative migration"
  else if n_procs < 2 then
    Error "Contingency.synthesize: a single-processor system has no survivors"
  else begin
    let msg_cost =
      match msg_cost with Some c -> c | None -> nominal.Msched.msg_cost
    in
    let build dead =
      let go () =
        scenario_for ?criticality ?derivation ~msg_cost
          ~arq_slack:nominal.Msched.arq_slack ~max_hyperperiod m nominal ~dead
      in
      if Rt_obs.Tracer.enabled () then
        Rt_obs.Tracer.span ~cat:"contingency"
          ("scenario/p" ^ string_of_int dead)
          go
      else go ()
    in
    (* Scenarios are independent (one per crashed processor) and each
       is a deterministic function of its index, so the order-preserving
       parallel map yields the same table the sequential loop builds. *)
    let scenarios =
      Rt_par.Perf.time "contingency" (fun () ->
          match pool with
          | Some p when Rt_par.Pool.jobs p > 1 && n_procs > 1 ->
              Rt_par.Pool.parallel_map p build (Array.init n_procs Fun.id)
          | _ -> Array.init n_procs build)
    in
    Ok
      {
        nominal;
        scenarios;
        detect_bound;
        migration;
        reconfig_bound = detect_bound + 1 + migration;
      }
  end

let feasible_scenarios t =
  Array.to_list t.scenarios
  |> List.filter_map (function Ok s -> Some s | Error _ -> None)

let admits_reconfiguration (m : Model.t) t =
  let responses = Msched.response_bounds m t.nominal in
  let errs = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun (plan : Decompose.plan) ->
          let name = plan.Decompose.constraint_name in
          match List.assoc_opt name responses with
          | None -> ()
          | Some response ->
              let deadline = plan_deadline plan in
              if response + t.reconfig_bound > deadline then
                errs :=
                  Printf.sprintf
                    "crash of processor %d: %s response %d + reconfiguration \
                     %d exceeds deadline %d"
                    s.dead name response t.reconfig_bound deadline
                  :: !errs)
        s.result.Msched.plans)
    (feasible_scenarios t);
  match List.rev !errs with [] -> Ok () | es -> Error es

let pp (m : Model.t) fmt t =
  ignore m;
  Format.fprintf fmt
    "@[<v>reconfiguration bound: %d (detect %d + swap 1 + migrate %d)@,"
    t.reconfig_bound t.detect_bound t.migration;
  Array.iteri
    (fun dead -> function
      | Ok s ->
          let tag =
            match s.threshold with
            | None -> "full service"
            | Some l ->
                Printf.sprintf "degraded at %s (shed: %s)"
                  (Criticality.level_to_string l)
                  (String.concat ", " s.dropped)
          in
          Format.fprintf fmt "crash p%d: %s, hyperperiod %d@," dead tag
            s.result.Msched.hyperperiod
      | Error e -> Format.fprintf fmt "crash p%d: INFEASIBLE (%s)@," dead e)
    t.scenarios;
  Format.fprintf fmt "@]"
