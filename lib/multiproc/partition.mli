(** Assignment of functional elements to processors.

    The paper notes that the graph-based model was formulated "such that
    for a multiprocessor architecture, the synthesis problem can be
    decomposed into a set of single processor synthesis problems and a
    similar-looking problem for scheduling the communication network".
    The first step of that decomposition is placing the functional
    elements; data transmissions whose endpoints land on different
    processors become network messages. *)

type t = {
  n_procs : int;
  assignment : int array;  (** Element id -> processor in [0..n_procs-1]. *)
}

val single : Rt_core.Comm_graph.t -> t
(** Everything on processor 0. *)

val greedy : Rt_core.Comm_graph.t -> n_procs:int -> t
(** Longest-processing-time placement with communication affinity:
    elements are placed heaviest-first on the processor minimizing
    [load - affinity], where affinity counts communication-graph
    neighbours already resident.  Deterministic. *)

val refine : ?avoid:int list -> Rt_core.Comm_graph.t -> t -> t
(** One hill-climbing pass: move single elements between processors when
    that strictly reduces the number of cut edges without pushing any
    processor's load above the current maximum.  Idempotent when no such
    move exists.  Invariants (property-tested): the refined partition's
    [max_load] never exceeds the input's, and its [cut_edges] list never
    grows.  Moves never target a processor in [avoid] (default none) —
    used by contingency synthesis to keep elements off a crashed
    processor. *)

val repair : Rt_core.Comm_graph.t -> t -> dead:int -> (t, string) result
(** [repair g t ~dead] re-places the elements assigned to processor
    [dead] onto the survivors, keeping every surviving assignment
    untouched: the displaced elements are placed heaviest-first on the
    surviving processor minimizing [load - affinity] — the same
    heuristic as {!greedy}, seeded with the surviving assignment.  The
    result keeps [n_procs] (processor ids stay stable); processor
    [dead] ends up empty.  Errors when [t.n_procs < 2] or [dead] is out
    of range.  Deterministic. *)

val loads : Rt_core.Comm_graph.t -> t -> int array
(** Summed element weight per processor. *)

val cut_edges : Rt_core.Comm_graph.t -> t -> (int * int) list
(** Communication edges whose endpoints are on different processors. *)

val max_load : Rt_core.Comm_graph.t -> t -> int
(** Largest per-processor load. *)

val pp : Rt_core.Comm_graph.t -> Format.formatter -> t -> unit
(** Render as ["p0: {f_x f_s} p1: {f_y}"]. *)
