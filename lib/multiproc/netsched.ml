type item = { item_name : string; release : int; abs_deadline : int; cost : int }

type bus_schedule = string option array

type live = { spec : item; mutable remaining : int }

let schedule ~horizon items =
  let lives =
    List.map (fun i -> { spec = i; remaining = i.cost }) items
    |> List.sort (fun a b ->
           compare
             (a.spec.abs_deadline, a.spec.release, a.spec.item_name)
             (b.spec.abs_deadline, b.spec.release, b.spec.item_name))
    |> Array.of_list
  in
  let slots = Array.make horizon None in
  let failed = ref None in
  for t = 0 to horizon - 1 do
    if !failed = None then begin
      Array.iter
        (fun l ->
          if l.remaining > 0 && l.spec.release <= t && l.spec.abs_deadline <= t
          then if !failed = None then failed := Some l.spec.item_name)
        lives;
      if !failed = None then begin
        let ready =
          Array.fold_left
            (fun acc l ->
              match acc with
              | Some _ -> acc
              | None ->
                  if l.remaining > 0 && l.spec.release <= t then Some l
                  else None)
            None lives
        in
        match ready with
        | None -> ()
        | Some l ->
            slots.(t) <- Some l.spec.item_name;
            l.remaining <- l.remaining - 1
      end
    end
  done;
  match !failed with
  | Some name -> Error (Printf.sprintf "message %s missed its deadline" name)
  | None -> (
      match
        Array.fold_left
          (fun acc l ->
            match acc with
            | Some _ -> acc
            | None -> if l.remaining > 0 then Some l.spec.item_name else None)
          None lives
      with
      | Some name ->
          Error (Printf.sprintf "message %s not transmitted within the horizon" name)
      | None -> Ok slots)

let utilization ~horizon items =
  float_of_int (List.fold_left (fun acc i -> acc + i.cost) 0 items)
  /. float_of_int horizon
