type item = { item_name : string; release : int; abs_deadline : int; cost : int }

type bus_schedule = string option array

type miss = { missed : string; miss_deadline : int; short : int }

type live = { spec : item; mutable remaining : int }

let schedule ~horizon items =
  let lives =
    List.map (fun i -> { spec = i; remaining = i.cost }) items
    |> List.sort (fun a b ->
           compare
             (a.spec.abs_deadline, a.spec.release, a.spec.item_name)
             (b.spec.abs_deadline, b.spec.release, b.spec.item_name))
    |> Array.of_list
  in
  let slots = Array.make horizon None in
  let misses = ref [] in
  let record l ~at =
    misses :=
      { missed = l.spec.item_name; miss_deadline = at; short = l.remaining }
      :: !misses;
    (* Drop the infeasible item so the remaining traffic is still
       dispatched and diagnosed: the caller gets every miss, not just
       the first. *)
    l.remaining <- 0
  in
  for t = 0 to horizon - 1 do
    Array.iter
      (fun l ->
        if l.remaining > 0 && l.spec.abs_deadline <= t then
          record l ~at:l.spec.abs_deadline)
      lives;
    let ready =
      Array.fold_left
        (fun acc l ->
          match acc with
          | Some _ -> acc
          | None ->
              if l.remaining > 0 && l.spec.release <= t then Some l else None)
        None lives
    in
    match ready with
    | None -> ()
    | Some l ->
        slots.(t) <- Some l.spec.item_name;
        l.remaining <- l.remaining - 1
  done;
  Array.iter
    (fun l ->
      if l.remaining > 0 then record l ~at:(min l.spec.abs_deadline horizon))
    lives;
  match !misses with
  | [] -> Ok slots
  | ms ->
      Error
        (List.sort
           (fun a b ->
             compare (a.miss_deadline, a.missed) (b.miss_deadline, b.missed))
           ms)

let schedule_arq ~horizon ~k items =
  if k < 0 then invalid_arg "Netsched.schedule_arq: negative k";
  schedule ~horizon
    (List.map (fun i -> { i with cost = i.cost + k }) items)

let arq_tolerance ~horizon ?(max_k = 16) items =
  let rec go best k =
    if k > max_k then best
    else
      match schedule_arq ~horizon ~k items with
      | Ok _ -> go (Some k) (k + 1)
      | Error _ -> best
  in
  go None 0

let utilization ~horizon items =
  float_of_int (List.fold_left (fun acc i -> acc + i.cost) 0 items)
  /. float_of_int horizon

let miss_to_string m =
  Printf.sprintf "%s: %d slot(s) short at deadline %d" m.missed m.short
    m.miss_deadline

let pp_miss fmt m = Format.pp_print_string fmt (miss_to_string m)

let misses_to_string ms = String.concat "; " (List.map miss_to_string ms)
