(** End-to-end multiprocessor synthesis: partition, decompose, schedule
    each processor, schedule the bus.

    Feasibility is compositional: every segment and message is given a
    window inside its constraint's invocation interval ({!Decompose});
    per-processor EDF meets every segment window
    ([Rt_core.Edf_cyclic]); bus EDF meets every message window
    ({!Netsched}); chained windows imply the end-to-end deadline.  The
    per-processor schedules are additionally re-verified with
    [Rt_core.Latency] window checks at the segment level. *)

type result = {
  partition : Partition.t;
  plans : Decompose.plan list;
  hyperperiod : int;
  processor_schedules : Rt_core.Schedule.t array;
      (** One cycle per processor (idle where another processor works). *)
  bus : Netsched.bus_schedule;
  proc_loads : float array;  (** Busy fraction per processor. *)
  bus_load : float;
  cut : int;  (** Number of cut communication edges. *)
  msg_cost : int;  (** Real bus slots per cross-processor transmission. *)
  arq_slack : int;
      (** Retransmission slots reserved {e per message} on top of
          [msg_cost]: every message window and the bus reservation carry
          [msg_cost + arq_slack] slots, so up to [arq_slack] lost or
          corrupted transmissions per message window are absorbed
          without any deadline miss (the {!Netsched.schedule_arq}
          bound). *)
}

val synthesize :
  ?n_procs:int ->
  ?msg_cost:int ->
  ?arq_slack:int ->
  ?max_hyperperiod:int ->
  Rt_core.Model.t ->
  (result, string) Stdlib.result
(** [synthesize m] runs the whole flow ([n_procs] defaults to 2,
    [msg_cost] to 1, [arq_slack] to 0, [max_hyperperiod] to 1_000_000).
    Periodic constraints must have [deadline <= period] and zero
    offset.  Window allotment strategies are tried in order
    (proportional, back-loaded, front-loaded) until one yields feasible
    per-processor and bus schedules; the reported error is the first
    strategy's when all fail.  On success, every piece of every
    constraint meets its window. *)

val synthesize_with :
  ?msg_cost:int ->
  ?arq_slack:int ->
  ?max_hyperperiod:int ->
  Rt_core.Model.t ->
  Partition.t ->
  (result, string) Stdlib.result
(** Like {!synthesize} but from a caller-supplied partition instead of
    the built-in greedy+refine placement — the entry point for
    contingency synthesis, which re-partitions around a dead processor
    with {!Partition.repair} and must keep the surviving assignment.
    [n_procs] is the partition's. *)

val response_bounds : Rt_core.Model.t -> result -> (string * int) list
(** [response_bounds m r] measures, per constraint (by name, in plan
    order), the worst realized end-to-end response over one
    hyperperiod: for every invocation, each piece's completion is
    located in the assembled tables (processor schedules for segments,
    the bus reservation for messages — counting the full reserved
    [msg_cost + arq_slack] slots, conservatively) and the response is
    the final piece's completion minus the arrival.  The slack
    [deadline - bound] is what a reconfiguration latency must fit
    into ({!Contingency.admits_reconfiguration}). *)

val verify : Rt_core.Model.t -> result -> (unit, string list) Stdlib.result
(** [verify m r] independently re-checks the assembled system: for
    every constraint invocation within the hyperperiod and every piece
    of its plan, the owning processor's schedule must contain the
    segment's operations (in order, each within the piece's window),
    and the bus schedule must carry each message's slots within its
    window.  Element occurrences are counted per window, so when two
    constraints share an element on one processor inside overlapping
    windows the check is conservative in their favour; all workloads
    produced by {!Decompose} give each op its own window chain, and the
    EDF constructors guarantee the stronger property.  Returns all
    diagnostics on failure. *)

val pp_result : Rt_core.Model.t -> Format.formatter -> result -> unit
(** Human-readable summary (partition, loads, cut, feasibility). *)
