(* [Decompose] below is THIS library's multiprocessor decomposition,
   not Rt_core.Decompose (interaction components) — re-bind it across
   the open, which would otherwise shadow the sibling. *)
module Mp_decompose = Decompose
open Rt_core
module Decompose = Mp_decompose

let cert_piece (w : Decompose.windowed) =
  match w.Decompose.piece with
  | Decompose.Segment s ->
      Certificate.Mp_segment
        {
          processor = s.processor;
          ops = s.ops;
          start_off = w.Decompose.start_off;
          end_off = w.Decompose.end_off;
        }
  | Decompose.Message msg ->
      Certificate.Mp_message
        {
          cost = msg.cost;
          start_off = w.Decompose.start_off;
          end_off = w.Decompose.end_off;
        }

let cert_plan (p : Decompose.plan) =
  {
    Certificate.source = p.Decompose.constraint_name;
    period = p.Decompose.period;
    pieces = List.map cert_piece p.Decompose.pieces;
  }

let build m (r : Msched.result) ~dropped ~overrides =
  Certificate.mp_make m ~hyperperiod:r.Msched.hyperperiod
    ~processors:r.Msched.processor_schedules ~bus:r.Msched.bus
    ~plans:(List.map cert_plan r.Msched.plans)
    ~dropped ~overrides ()

let result_cert m r = build m r ~dropped:[] ~overrides:[]

(* A stretch note is (name, before, after); which parameter it records
   depends on the kind (see Modes.stretch_constraint): periodic notes
   carry the period (deadline scaled by the same factor), asynchronous
   notes carry the deadline (minimum separation untouched). *)
let overrides_of (m : Model.t) stretched =
  List.map
    (fun (name, before, after) ->
      match
        List.find_opt
          (fun (c : Timing.t) -> c.Timing.name = name)
          m.Model.constraints
      with
      | None -> (name, 0, 0) (* unknown constraint: the checker rejects *)
      | Some c -> (
          match c.Timing.kind with
          | Timing.Periodic ->
              if before <= 0 then (name, 0, 0)
              else (name, after, c.Timing.deadline * after / before)
          | Timing.Asynchronous -> (name, c.Timing.period, after)))
    stretched

let scenario_cert m (s : Contingency.scenario) =
  build m s.Contingency.result ~dropped:s.Contingency.dropped
    ~overrides:(overrides_of m s.Contingency.stretched)

let table_cert m (t : Contingency.table) =
  {
    Certificate.t_nominal = result_cert m t.Contingency.nominal;
    t_scenarios =
      List.map
        (fun (s : Contingency.scenario) ->
          (s.Contingency.dead, scenario_cert m s))
        (Contingency.feasible_scenarios t);
    t_detect = t.Contingency.detect_bound;
    t_migration = t.Contingency.migration;
    t_reconfig = t.Contingency.reconfig_bound;
  }
