(* Keep the sibling Decompose (multiprocessor windows) visible across
   the open of Rt_core, which now also exports a Decompose. *)
module Mp_decompose = Decompose
open Rt_core
module Decompose = Mp_decompose

type result = {
  partition : Partition.t;
  plans : Decompose.plan list;
  hyperperiod : int;
  processor_schedules : Schedule.t array;
  bus : Netsched.bus_schedule;
  proc_loads : float array;
  bus_load : float;
  cut : int;
  msg_cost : int;
  arq_slack : int;
}

let rec attempt_strategies m (partition : Partition.t) ~msg_cost ~arq_slack
    ~max_hyperperiod = function
  | [] -> Error "no window-allotment strategy produced a feasible system"
  | strategy :: rest -> (
      let n_procs = partition.Partition.n_procs in
      let retry e =
        match
          attempt_strategies m partition ~msg_cost ~arq_slack ~max_hyperperiod
            rest
        with
        | Ok r -> Ok r
        | Error _ -> Error e
      in
      (* Every message window (and the bus reservation) carries the ARQ
         retransmission slack on top of the real transmission cost. *)
      match
        Decompose.decompose ~strategy m partition
          ~msg_cost:(msg_cost + arq_slack)
      with
      | Error e -> retry e
      | Ok plans -> (
          let periods = List.map (fun p -> p.Decompose.period) plans in
          match Rt_graph.Intmath.lcm_list periods with
          | exception Rt_graph.Intmath.Overflow ->
              retry "hyperperiod overflows"
          | hyperperiod when hyperperiod > max_hyperperiod ->
              retry
                (Printf.sprintf "hyperperiod %d exceeds the cap %d" hyperperiod
                   max_hyperperiod)
          | hyperperiod -> (
              (* Per-processor EDF jobs: one job per segment window per
                 invocation; bus items likewise for messages. *)
              let proc_jobs = Array.make n_procs [] in
              let bus_items = ref [] in
              List.iter
                (fun (plan : Decompose.plan) ->
                  let rec invocations t =
                    if t >= hyperperiod then ()
                    else begin
                      List.iteri
                        (fun i (w : Decompose.windowed) ->
                          match w.piece with
                          | Decompose.Segment s ->
                              let job =
                                {
                                  Edf_cyclic.job_name =
                                    Printf.sprintf "%s@%d/%d"
                                      plan.constraint_name t i;
                                  (* No precedence edges needed: the EDF
                                     dispatcher executes a job's operations
                                     in node order, which already is the
                                     segment's topological order (edges
                                     between arbitrary consecutive ops
                                     need not exist in the communication
                                     graph). *)
                                  graph =
                                    Task_graph.create
                                      ~nodes:(Array.of_list s.ops) ~edges:[];
                                  release = t + w.start_off;
                                  abs_deadline = t + w.end_off;
                                }
                              in
                              proc_jobs.(s.processor) <-
                                job :: proc_jobs.(s.processor)
                          | Decompose.Message msg ->
                              if msg.cost > 0 then
                                bus_items :=
                                  {
                                    Netsched.item_name =
                                      Printf.sprintf "%s@%d/%d"
                                        plan.constraint_name t i;
                                    release = t + w.start_off;
                                    abs_deadline = t + w.end_off;
                                    cost = msg.cost;
                                  }
                                  :: !bus_items)
                        plan.pieces;
                      invocations (t + plan.period)
                    end
                  in
                  invocations 0)
                plans;
              let schedules = Array.make n_procs None in
              let fail = ref None in
              for proc = 0 to n_procs - 1 do
                if !fail = None then
                  match
                    Edf_cyclic.build m.comm ~horizon:hyperperiod
                      (List.rev proc_jobs.(proc))
                  with
                  | Ok s -> schedules.(proc) <- Some s
                  | Error f ->
                      fail :=
                        Some
                          (Printf.sprintf "processor %d: job %s failed at %d (%s)"
                             proc f.Edf_cyclic.failed_job f.Edf_cyclic.at_time
                             f.Edf_cyclic.reason)
              done;
              match !fail with
              | Some e -> retry e
              | None -> (
                  match Netsched.schedule ~horizon:hyperperiod !bus_items with
                  | Error misses ->
                      retry ("bus: " ^ Netsched.misses_to_string misses)
                  | Ok bus ->
                      let processor_schedules =
                        Array.map
                          (function Some s -> s | None -> assert false)
                          schedules
                      in
                      let proc_loads =
                        Array.map Schedule.load processor_schedules
                      in
                      Ok
                        {
                          partition;
                          plans;
                          hyperperiod;
                          processor_schedules;
                          bus;
                          proc_loads;
                          bus_load =
                            Netsched.utilization ~horizon:hyperperiod
                              !bus_items;
                          cut =
                            List.length (Partition.cut_edges m.comm partition);
                          msg_cost;
                          arq_slack;
                        }))))

let check_supported (m : Model.t) =
  match
    List.find_opt
      (fun (c : Timing.t) ->
        Timing.is_periodic c && (c.deadline > c.period || c.offset <> 0))
      m.constraints
  with
  | Some c ->
      Error
        (Printf.sprintf
           "constraint %s has deadline > period or a nonzero offset; \
            unsupported by the multiprocessor decomposer"
           c.name)
  | None -> Ok ()

let strategies =
  [ Decompose.Proportional; Decompose.Back_loaded; Decompose.Front_loaded ]

let synthesize_with ?(msg_cost = 1) ?(arq_slack = 0)
    ?(max_hyperperiod = 1_000_000) (m : Model.t) partition =
  match check_supported m with
  | Error _ as e -> e
  | Ok () ->
      attempt_strategies m partition ~msg_cost ~arq_slack ~max_hyperperiod
        strategies

let synthesize ?(n_procs = 2) ?msg_cost ?arq_slack ?max_hyperperiod
    (m : Model.t) =
  match check_supported m with
  | Error _ as e -> e
  | Ok () ->
      let partition =
        Partition.refine m.comm (Partition.greedy m.comm ~n_procs)
      in
      synthesize_with ?msg_cost ?arq_slack ?max_hyperperiod m partition

let verify (m : Model.t) r =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let hyper = r.hyperperiod in
  List.iter
    (fun (plan : Decompose.plan) ->
      let rec invocations t =
        if t >= hyper then ()
        else begin
          List.iteri
            (fun i (w : Decompose.windowed) ->
              let w0 = t + w.Decompose.start_off
              and w1 = t + w.Decompose.end_off in
              match w.Decompose.piece with
              | Decompose.Segment s ->
                  let sched = r.processor_schedules.(s.processor) in
                  (* Ops in order: advance a cursor collecting each
                     op's weight worth of slots inside the window. *)
                  let cursor = ref w0 in
                  List.iter
                    (fun e ->
                      let needed = ref (Comm_graph.weight m.comm e) in
                      while !needed > 0 && !cursor < w1 do
                        (* Schedule.slot wraps round-robin, matching the
                           cyclic trace. *)
                        (if Schedule.slot sched !cursor = Schedule.Run e then
                           decr needed);
                        incr cursor
                      done;
                      if !needed > 0 then
                        err
                          "%s@%d piece %d: op %s not completed inside                            window [%d,%d) on processor %d"
                          plan.Decompose.constraint_name t i
                          (Comm_graph.element m.comm e).Element.name w0 w1
                          s.processor)
                    s.ops
              | Decompose.Message msg ->
                  if msg.cost > 0 then begin
                    let name =
                      Printf.sprintf "%s@%d/%d" plan.Decompose.constraint_name
                        t i
                    in
                    let count = ref 0 in
                    for slot = w0 to min (w1 - 1) (Array.length r.bus - 1) do
                      if r.bus.(slot) = Some name then incr count
                    done;
                    if !count < msg.cost then
                      err
                        "%s: message %s only %d/%d slots inside window                          [%d,%d)"
                        plan.Decompose.constraint_name name !count
                        msg.cost w0 w1
                  end)
            plan.Decompose.pieces;
          invocations (t + plan.Decompose.period)
        end
      in
      invocations 0)
    r.plans;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let response_bounds (m : Model.t) r =
  let hyper = r.hyperperiod in
  List.map
    (fun (plan : Decompose.plan) ->
      let worst = ref 0 in
      let rec invocations t =
        if t >= hyper then ()
        else begin
          let completion = ref t in
          List.iteri
            (fun i (w : Decompose.windowed) ->
              let w0 = t + w.Decompose.start_off
              and w1 = t + w.Decompose.end_off in
              match w.Decompose.piece with
              | Decompose.Segment s ->
                  let sched = r.processor_schedules.(s.processor) in
                  let cursor = ref w0 in
                  List.iter
                    (fun e ->
                      let needed = ref (Comm_graph.weight m.comm e) in
                      while !needed > 0 && !cursor < w1 do
                        (if Schedule.slot sched !cursor = Schedule.Run e then
                           decr needed);
                        incr cursor
                      done;
                      (* On a verified result every op fits its window;
                         fall back to the window end otherwise so the
                         bound stays conservative. *)
                      if !needed > 0 then cursor := w1)
                    s.ops;
                  completion := max !completion !cursor
              | Decompose.Message msg ->
                  if msg.cost > 0 then begin
                    let name =
                      Printf.sprintf "%s@%d/%d" plan.Decompose.constraint_name
                        t i
                    in
                    (* [msg.cost] already includes the ARQ slack (the plan
                       was decomposed at the inflated cost), so the bound
                       charges the full reserved slots even though a
                       fault-free run finishes earlier. *)
                    let needed = ref msg.cost in
                    let cursor = ref w0 in
                    let limit = min w1 (Array.length r.bus) in
                    while !needed > 0 && !cursor < limit do
                      (if r.bus.(!cursor) = Some name then decr needed);
                      incr cursor
                    done;
                    if !needed > 0 then cursor := w1;
                    completion := max !completion !cursor
                  end)
            plan.Decompose.pieces;
          worst := max !worst (!completion - t);
          invocations (t + plan.Decompose.period)
        end
      in
      invocations 0;
      (plan.Decompose.constraint_name, !worst))
    r.plans

let pp_result (m : Model.t) fmt r =
  Format.fprintf fmt "@[<v>partition: %a@,hyperperiod: %d, cut edges: %d@,"
    (Partition.pp m.comm) r.partition r.hyperperiod r.cut;
  Array.iteri
    (fun i l -> Format.fprintf fmt "processor %d load: %.3f@," i l)
    r.proc_loads;
  Format.fprintf fmt "bus load: %.3f@,@]" r.bus_load
