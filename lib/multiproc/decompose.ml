open Rt_core

type piece =
  | Segment of { processor : int; ops : int list; work : int }
  | Message of { src : int; dst : int; cost : int }

type windowed = { piece : piece; start_off : int; end_off : int }

type plan = { constraint_name : string; period : int; pieces : windowed list }

let piece_time = function
  | Segment s -> s.work
  | Message m -> m.cost

type strategy = Proportional | Front_loaded | Back_loaded

let decompose ?(strategy = Proportional) (m : Model.t) (part : Partition.t)
    ~msg_cost =
  if msg_cost < 0 then invalid_arg "Decompose.decompose: negative msg_cost";
  let split_constraint (c : Timing.t) =
    (* Effective period/deadline: polling transformation for async. *)
    let period, deadline =
      match c.kind with
      | Timing.Periodic -> (c.period, c.deadline)
      | Timing.Asynchronous ->
          let q = (c.deadline + 1) / 2 in
          (q, q)
    in
    let ops = Task_graph.straight_line c.graph in
    (* Cut into same-processor segments with messages at boundaries. *)
    let rec segments acc current current_proc = function
      | [] ->
          let acc =
            match current with
            | [] -> acc
            | ops ->
                Segment
                  {
                    processor = current_proc;
                    ops = List.rev ops;
                    work =
                      List.fold_left
                        (fun s e -> s + Comm_graph.weight m.comm e)
                        0 ops;
                  }
                :: acc
          in
          List.rev acc
      | e :: rest ->
          let proc = part.Partition.assignment.(e) in
          if current = [] then segments acc [ e ] proc rest
          else if proc = current_proc then segments acc (e :: current) proc rest
          else begin
            let seg =
              Segment
                {
                  processor = current_proc;
                  ops = List.rev current;
                  work =
                    List.fold_left
                      (fun s x -> s + Comm_graph.weight m.comm x)
                      0 current;
                }
            in
            let msg =
              Message { src = List.hd current; dst = e; cost = msg_cost }
            in
            segments (msg :: seg :: acc) [ e ] proc rest
          end
    in
    let pieces = segments [] [] (-1) ops in
    let need = List.fold_left (fun s p -> s + piece_time p) 0 pieces in
    if need > deadline then
      Error
        (Printf.sprintf
           "constraint %s: computation+transmission time %d exceeds its \
            effective deadline %d on this partition"
           c.name need deadline)
    else begin
      (* Distribute the slack per the chosen strategy; the last window
         always ends exactly at the deadline so the chain tiles
         [0, deadline]. *)
      let slack = deadline - need in
      let n_pieces = List.length pieces in
      let share_of i t =
        match strategy with
        | Proportional ->
            if need > 0 then slack * t / need else slack / max 1 n_pieces
        | Front_loaded -> if i = 0 then slack else 0
        | Back_loaded -> 0
      in
      let windowed, _, _ =
        List.fold_left
          (fun (acc, off, i) p ->
            let t = piece_time p in
            let share = share_of i t in
            let share = if i = n_pieces - 1 then deadline - off - t else share in
            let w = { piece = p; start_off = off; end_off = off + t + share } in
            (w :: acc, off + t + share, i + 1))
          ([], 0, 0) pieces
      in
      Ok { constraint_name = c.name; period; pieces = List.rev windowed }
    end
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match split_constraint c with
        | Ok plan -> go (plan :: acc) rest
        | Error e -> Error e)
  in
  go [] m.constraints

let total_bus_demand plans =
  List.fold_left
    (fun acc plan ->
      acc
      + List.fold_left
          (fun s w -> match w.piece with Message m -> s + m.cost | _ -> s)
          0 plan.pieces)
    0 plans
