(** Decomposition of a global synthesis problem into per-processor
    sub-problems plus a network-scheduling problem.

    Every timing constraint is linearized (a topological sort of its
    task graph, as in the paper's straight-line implementation) and cut
    into maximal {e segments} of consecutive operations placed on the
    same processor; each processor boundary contributes one {e message}
    on the shared bus.  The constraint's end-to-end deadline is split
    into per-segment/per-message windows: each piece gets its own
    computation (or transmission) time plus a proportional share of the
    slack.  Meeting every window implies meeting the end-to-end
    deadline, by construction.

    Asynchronous constraints are first converted to polling periodic
    work with period and deadline [⌈(d+1)/2⌉] (the Theorem-3
    transformation), which preserves their latency bounds. *)

type piece =
  | Segment of {
      processor : int;
      ops : int list;  (** Element ids, in execution order. *)
      work : int;  (** Summed weight. *)
    }
  | Message of {
      src : int;  (** Producing element. *)
      dst : int;  (** Consuming element. *)
      cost : int;  (** Bus transmission time. *)
    }

type windowed = {
  piece : piece;
  start_off : int;  (** Window start, relative to the invocation. *)
  end_off : int;  (** Window end (exclusive), relative to invocation. *)
}

type plan = {
  constraint_name : string;
  period : int;  (** Polling period for transformed async constraints. *)
  pieces : windowed list;  (** In precedence order; windows chain. *)
}

type strategy =
  | Proportional
      (** Slack distributed proportionally to each piece's time — the
          default. *)
  | Front_loaded
      (** All slack to the first piece: later pieces run back-to-back,
          which helps when a downstream processor is the bottleneck. *)
  | Back_loaded
      (** All slack to the last piece: upstream pieces are squeezed,
          which helps when the first processor is the bottleneck. *)

val decompose :
  ?strategy:strategy ->
  Rt_core.Model.t ->
  Partition.t ->
  msg_cost:int ->
  (plan list, string) result
(** [decompose m part ~msg_cost] splits every constraint.  Fails when a
    constraint's computation plus transmission time exceeds its
    (possibly polling-transformed) deadline, naming the constraint.
    [strategy] (default {!Proportional}) chooses how end-to-end slack is
    allotted to the window chain; the windows always tile
    [\[0, deadline\]]. *)

val total_bus_demand : plan list -> int
(** Summed message cost per hyperperiod... per single invocation of each
    plan (diagnostic). *)
