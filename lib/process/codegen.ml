open Rt_core

type step = Call of int | Enter of int | Leave of int

type program = { process_name : string; steps : step list; wcet : int }

let of_constraint (m : Model.t) ~monitors (c : Timing.t) =
  let guarded e = List.exists (fun mon -> mon.Monitor.element = e) monitors in
  let steps =
    Task_graph.straight_line c.graph
    |> List.concat_map (fun e ->
           if guarded e then [ Enter e; Call e; Leave e ] else [ Call e ])
  in
  {
    process_name = c.name;
    steps;
    wcet = Timing.computation_time m.comm c;
  }

let render (m : Model.t) prog =
  let name e = (Comm_graph.element m.Model.comm e).Element.name in
  let body =
    prog.steps
    |> List.map (function
         | Call e -> Printf.sprintf "%s();" (name e)
         | Enter e -> Printf.sprintf "enter(%s);" (name e)
         | Leave e -> Printf.sprintf "leave(%s);" (name e))
    |> String.concat " "
  in
  Printf.sprintf "process %s { %s }" prog.process_name body

let call_count prog e =
  List.fold_left
    (fun acc s -> match s with Call x when x = e -> acc + 1 | _ -> acc)
    0 prog.steps
