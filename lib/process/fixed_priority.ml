type assignment = Rate_monotonic | Deadline_monotonic

let priorities a procs =
  let key (p : Process.t) =
    match a with
    | Rate_monotonic -> (p.p, p.name)
    | Deadline_monotonic -> (p.d, p.name)
  in
  List.sort (fun x y -> compare (key x) (key y)) procs

let response_time ?(blocking = fun _ -> 0) a procs (proc : Process.t) =
  let sorted = priorities a procs in
  let rec higher acc = function
    | [] -> List.rev acc
    | (p : Process.t) :: rest ->
        if p.name = proc.name then List.rev acc else higher (p :: acc) rest
  in
  let hp = higher [] sorted in
  let b = blocking proc in
  let interference r =
    List.fold_left
      (fun acc (p : Process.t) ->
        acc + (Rt_graph.Intmath.ceil_div r p.p * p.c))
      0 hp
  in
  let rec iterate r =
    if r > proc.d then None
    else
      let r' = proc.c + b + interference r in
      if r' = r then Some r else iterate r'
  in
  iterate (proc.c + b)

let schedulable ?blocking a procs =
  List.for_all
    (fun (p : Process.t) ->
      match response_time ?blocking a procs p with
      | Some r -> r <= p.d
      | None -> false)
    procs

let liu_layland_bound n =
  if n < 1 then invalid_arg "Fixed_priority.liu_layland_bound";
  float_of_int n *. ((2.0 ** (1.0 /. float_of_int n)) -. 1.0)

let utilization_test procs =
  match procs with
  | [] -> true
  | _ ->
      Process.total_utilization procs
      <= liu_layland_bound (List.length procs) +. 1e-12
