(** Sporadic-process transformations from [MOK 83].

    A sporadic process [(c, p, d)] may be replaced by a periodic polling
    process that is guaranteed to serve any arrival within the original
    deadline; Mok's transformation uses period
    [p' = min(p, d - c + 1)] and relative deadline [d' = c]: a request
    arriving at any instant is picked up by the next polling release,
    which starts at most [p' - 1] late and completes within [d'] of its
    release, hence within [(p' - 1) + c <= d] of the arrival. *)

val to_periodic : Process.t -> Process.t option
(** [to_periodic proc] applies the transformation to a sporadic process;
    [None] when [d < c] (the sporadic process can never meet its
    deadline).  Periodic processes are returned unchanged. *)

val transform_set : Process.t list -> Process.t list option
(** Apply {!to_periodic} to every process; [None] if any is
    untransformable. *)

val covers : original:Process.t -> polled:Process.t -> bool
(** Soundness predicate used by the tests:
    [polled.p - 1 + polled.d <= original.d] — the worst-case arrival-to-
    completion time under the polling process meets the original
    deadline. *)
