(** Straight-line program synthesis: the paper's naive mapping.

    "A straightforward way to implement an instance of our graph-based
    model is to map each periodic/asynchronous timing constraint (C,p,d)
    into a periodic/asynchronous (i.e., demand driven) process T' where
    the body of T' consists of a straight-line program which is any
    topological sort of the operations in the task graph C."

    The emitted program interleaves monitor entry/exit around shared
    operations so the pipeline-ordering discipline is preserved. *)

type step =
  | Call of int  (** Execute a functional element. *)
  | Enter of int  (** Acquire the monitor guarding an element. *)
  | Leave of int  (** Release it. *)

type program = {
  process_name : string;
  steps : step list;  (** The straight-line body. *)
  wcet : int;  (** Total computation time (monitor ops are free). *)
}

val of_constraint :
  Rt_core.Model.t -> monitors:Monitor.t list -> Rt_core.Timing.t -> program
(** [of_constraint m ~monitors c] emits the straight-line program of
    constraint [c]: a topological sort of its task graph, with
    [Enter]/[Leave] wrapped around every operation whose element is
    guarded by one of [monitors]. *)

val render : Rt_core.Model.t -> program -> string
(** Pretty source-like rendering, e.g.
    ["process px { f_x(); enter(f_s); f_s(); leave(f_s); f_k(); }"]. *)

val call_count : program -> int -> int
(** [call_count prog e] counts [Call e] steps — used to measure the
    redundant work the process model cannot avoid sharing. *)
