open Rt_core

type translation = {
  processes : Process.t list;
  programs : Codegen.program list;
  monitors : Monitor.t list;
}

let translate ?(pipelined = false) (m : Model.t) =
  let monitors = Monitor.of_model ~pipelined m in
  let processes =
    List.map
      (fun (c : Timing.t) ->
        Process.make ~name:c.name
          ~c:(Timing.computation_time m.comm c)
          ~p:c.period ~d:c.deadline
          ~kind:
            (match c.kind with
            | Timing.Periodic -> Process.Periodic_process
            | Timing.Asynchronous -> Process.Sporadic_process))
      m.constraints
  in
  let programs =
    List.map (fun c -> Codegen.of_constraint m ~monitors c) m.constraints
  in
  { processes; programs; monitors }

let edf_schedulable tr =
  match Sporadic.transform_set tr.processes with
  | None -> false
  | Some polled -> Dbf.edf_feasible polled

let fixed_priority_schedulable
    ?(assignment = Fixed_priority.Deadline_monotonic) tr =
  match Sporadic.transform_set tr.processes with
  | None -> false
  | Some polled ->
      let blocking (p : Process.t) =
        (* Polling processes keep the original name plus a suffix; match
           on the prefix so monitor users resolve. *)
        let base =
          match String.index_opt p.name '_' with
          | _ -> (
              match String.length p.name >= 5
                    && String.sub p.name (String.length p.name - 5) 5 = "_poll"
              with
              | true -> String.sub p.name 0 (String.length p.name - 5)
              | false -> p.name)
        in
        Monitor.blocking_bound tr.monitors ~process:base
      in
      Fixed_priority.schedulable ~blocking assignment polled

let redundant_work (m : Model.t) tr =
  ignore tr;
  let merged, _report = Merge.apply m in
  let hyper =
    try Model.hyperperiod m with Rt_graph.Intmath.Overflow -> 0
  in
  if hyper = 0 then 0
  else begin
    let work_per_hyper (model : Model.t) =
      List.fold_left
        (fun acc (c : Timing.t) ->
          if Timing.is_periodic c then
            acc + (hyper / c.period * Timing.computation_time model.comm c)
          else acc)
        0 model.Model.constraints
    in
    work_per_hyper m - work_per_hyper merged
  end
