(** Fixed-priority scheduling: rate/deadline-monotonic assignment and
    exact response-time analysis, with blocking terms for monitor-based
    mutual exclusion (the naive implementation the paper describes
    creates "a monitor for each functional element that occurs in two or
    more timing constraints"). *)

type assignment = Rate_monotonic | Deadline_monotonic

val priorities : assignment -> Process.t list -> Process.t list
(** [priorities a procs] returns the processes sorted highest priority
    first (smaller period — RM — or smaller deadline — DM; ties by
    name). *)

val response_time :
  ?blocking:(Process.t -> int) -> assignment -> Process.t list -> Process.t ->
  int option
(** [response_time a procs proc] is the exact worst-case response time
    of [proc] under the given priority assignment with synchronous
    release: the least fixed point of
    [R = c + B + Σ_{hp} ceil(R / p_j) c_j], where [B] is the blocking
    bound supplied by [blocking] (default 0).  [None] if the iteration
    diverges past the deadline-feasibility horizon (the process is then
    unschedulable). *)

val schedulable :
  ?blocking:(Process.t -> int) -> assignment -> Process.t list -> bool
(** Every process's response time exists and is [<= d]. *)

val liu_layland_bound : int -> float
(** [liu_layland_bound n] is [n (2^{1/n} - 1)] — the classic sufficient
    utilization bound for RM with implicit deadlines; tends to
    [ln 2 ≈ 0.693]. *)

val utilization_test : Process.t list -> bool
(** The Liu & Layland sufficient test ([U <= n(2^{1/n}-1)], implicit
    deadlines assumed). *)
