let to_periodic (proc : Process.t) =
  match proc.kind with
  | Process.Periodic_process -> Some proc
  | Process.Sporadic_process ->
      if proc.d < proc.c then None
      else
        let p' = min proc.p (proc.d - proc.c + 1) in
        Some
          (Process.make ~name:(proc.name ^ "_poll") ~c:proc.c ~p:p' ~d:proc.c
             ~kind:Process.Periodic_process)

let transform_set procs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> (
        match to_periodic p with
        | Some p' -> go (p' :: acc) rest
        | None -> None)
  in
  go [] procs

let covers ~(original : Process.t) ~(polled : Process.t) =
  polled.p - 1 + polled.d <= original.d
