(** Demand-bound functions and the processor-demand criterion for EDF.

    For a periodic/sporadic process [(c, p, d)] released synchronously,
    the demand bound [dbf(t)] is the work that must complete inside any
    interval of length [t]:
    [dbf(t) = max(0, floor((t - d)/p) + 1) * c].
    EDF schedules a constrained-deadline set on one processor iff
    [Σ dbf_i(t) <= t] for every [t >= 0]; it suffices to check the
    absolute-deadline points up to a finite bound (Baruah, Rosier &
    Howell; the machinery [MOK 83]'s schedulers build on). *)

val dbf : Process.t -> int -> int
(** [dbf proc t] is the demand of one process in an interval of length
    [t >= 0]. *)

val total_demand : Process.t list -> int -> int
(** Summed demand at [t]. *)

val check_points : Process.t list -> int list
(** The deadline points that must be checked: all
    [k * p_i + d_i <= bound], where [bound] is the smaller of the
    hyperperiod-based bound [lcm(p_i) + max d_i] and the busy-period
    bound [U/(1-U) * max(p_i - d_i)] when [U < 1]; sorted
    ascending. *)

val edf_feasible : Process.t list -> bool
(** The processor-demand criterion: [U <= 1] and
    [Σ dbf_i(t) <= t] at every check point.  Exact for independent
    preemptable processes on one processor — sporadic processes are
    covered because the synchronous-release pattern is their worst
    case. *)

val first_overload : Process.t list -> int option
(** The earliest check point at which demand exceeds supply, if any
    (diagnostic counterpart of {!edf_feasible}). *)
