(** Processes: the units of the process-based models the paper compares
    against.

    "Critical timing constraints are specified by permitting a process
    to have a deadline and/or repetition period attribute."  A process
    here is the classic real-time task abstraction of [MOK 83]: a
    computation-time bound [c], a period (or minimum separation) [p] and
    a relative deadline [d]. *)

type kind =
  | Periodic_process  (** Released at [0, p, 2p, ...]. *)
  | Sporadic_process  (** Released on demand, at least [p] apart. *)

type t = private {
  name : string;
  c : int;  (** Worst-case computation time; [> 0]. *)
  p : int;  (** Period / minimum separation; [> 0]. *)
  d : int;  (** Relative deadline; [> 0]. *)
  kind : kind;
}

val make : name:string -> c:int -> p:int -> d:int -> kind:kind -> t
(** Constructor with validation ([c, p, d > 0] and [c <= d] is {e not}
    required — infeasible processes are representable so the tests can
    reject them). *)

val utilization : t -> float
(** [c /. p]. *)

val density : t -> float
(** [c /. min p d]. *)

val total_utilization : t list -> float
(** Summed utilization. *)

val implicit_deadline : t -> bool
(** [d = p]. *)

val constrained_deadline : t -> bool
(** [d <= p]. *)

val hyperperiod : t list -> int
(** LCM of the periods.  Raises [Rt_graph.Intmath.Overflow] when too
    large. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering. *)
