(** The naive translation of a graph-based model into a process set —
    the paper's baseline, against which latency scheduling's
    shared-operation advantage is measured.

    Each timing constraint becomes one process with the constraint's
    full computation time; operations common to several constraints are
    executed redundantly ("in the process model, there are two distinct
    calls to f_S and so the redundant work cannot be avoided"). *)

type translation = {
  processes : Process.t list;  (** One per constraint, declaration order. *)
  programs : Codegen.program list;  (** Matching straight-line bodies. *)
  monitors : Monitor.t list;  (** Monitors for the shared elements. *)
}

val translate : ?pipelined:bool -> Rt_core.Model.t -> translation
(** [translate m] performs the naive mapping.  [pipelined] (default
    [false]) shrinks monitor critical sections as by software
    pipelining; it does not change process computation times. *)

val edf_schedulable : translation -> bool
(** Processor-demand test on the process set after transforming
    sporadic processes into polling processes
    ([Sporadic.transform_set]); [false] also when a sporadic process
    cannot be transformed.  Blocking is ignored (EDF with unit-grain
    pipelining). *)

val fixed_priority_schedulable :
  ?assignment:Fixed_priority.assignment -> translation -> bool
(** Response-time analysis (default deadline-monotonic) on the polled
    process set, including the monitor blocking bounds. *)

val redundant_work : Rt_core.Model.t -> translation -> int
(** Computation time per hyperperiod spent on redundant executions of
    shared elements, compared against executing each shared element once
    per period group — the quantity the merging experiment (E5)
    reports.  Concretely: [Σ_processes wcet_per_hyperperiod] minus the
    same sum with merged same-period constraints. *)
