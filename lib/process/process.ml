type kind = Periodic_process | Sporadic_process

type t = { name : string; c : int; p : int; d : int; kind : kind }

let make ~name ~c ~p ~d ~kind =
  if name = "" then invalid_arg "Process.make: empty name";
  if c <= 0 then invalid_arg "Process.make: computation time must be positive";
  if p <= 0 then invalid_arg "Process.make: period must be positive";
  if d <= 0 then invalid_arg "Process.make: deadline must be positive";
  { name; c; p; d; kind }

let utilization t = float_of_int t.c /. float_of_int t.p

let density t = float_of_int t.c /. float_of_int (min t.p t.d)

let total_utilization ts = List.fold_left (fun acc t -> acc +. utilization t) 0.0 ts

let implicit_deadline t = t.d = t.p

let constrained_deadline t = t.d <= t.p

let hyperperiod ts = Rt_graph.Intmath.lcm_list (List.map (fun t -> t.p) ts)

let pp fmt t =
  Format.fprintf fmt "%s(c=%d p=%d d=%d %s)" t.name t.c t.p t.d
    (match t.kind with
    | Periodic_process -> "periodic"
    | Sporadic_process -> "sporadic")
