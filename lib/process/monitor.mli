(** Monitors for shared functional elements, and their blocking costs.

    In the naive process-based implementation, "we create a monitor
    [HOAR 74] for each functional element that occurs in two or more
    timing constraints"; a process executing such an element holds its
    monitor for the element's whole computation time, so any
    higher-priority process sharing it can be blocked for up to that
    long.  Software pipelining shrinks the critical section to one time
    unit.  This module computes the monitor set of a model and the
    per-process blocking bounds used by the fixed-priority analysis
    (one blocking term, as under the priority-ceiling discipline). *)

type t = {
  element : int;  (** The guarded functional element. *)
  element_name : string;
  users : string list;  (** Constraints/processes sharing it. *)
  critical_section : int;
      (** Length of the critical section: the element's weight, or 1 if
          software pipelining is applied. *)
}

val of_model : ?pipelined:bool -> Rt_core.Model.t -> t list
(** [of_model m] is one monitor per element used by two or more
    constraints of [m].  [pipelined] (default [false]) shrinks critical
    sections of pipelinable elements to one unit. *)

val blocking_bound : t list -> process:string -> int
(** [blocking_bound monitors ~process] is the worst single critical
    section among monitors shared by [process] and at least one other
    user — the blocking term a priority-ceiling protocol would impose
    (0 if the process shares nothing). *)

val max_critical_section : t list -> int
(** The longest critical section over all monitors (0 when none). *)
