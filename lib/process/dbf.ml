let dbf (proc : Process.t) t =
  if t < proc.d then 0 else (((t - proc.d) / proc.p) + 1) * proc.c

let total_demand procs t =
  List.fold_left (fun acc proc -> acc + dbf proc t) 0 procs

let check_points procs =
  match procs with
  | [] -> []
  | _ ->
      let u = Process.total_utilization procs in
      let max_d =
        List.fold_left (fun acc (p : Process.t) -> max acc p.d) 0 procs
      in
      let hyper_bound =
        match Process.hyperperiod procs with
        | h -> h + max_d
        | exception Rt_graph.Intmath.Overflow -> max_int
      in
      let busy_bound =
        if u >= 1.0 then max_int
        else
          let num =
            List.fold_left
              (fun acc (p : Process.t) ->
                acc
                +. (float_of_int (max 0 (p.p - p.d)) *. Process.utilization p))
              0.0 procs
          in
          max max_d (int_of_float (ceil (num /. (1.0 -. u))))
      in
      let bound = min hyper_bound busy_bound in
      let points = ref [] in
      List.iter
        (fun (p : Process.t) ->
          let t = ref p.d in
          while !t <= bound do
            points := !t :: !points;
            t := !t + p.p
          done)
        procs;
      List.sort_uniq Int.compare !points

let first_overload procs =
  if Process.total_utilization procs > 1.0 +. 1e-12 then Some 0
  else
    List.find_opt (fun t -> total_demand procs t > t) (check_points procs)

let edf_feasible procs = first_overload procs = None
