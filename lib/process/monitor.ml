open Rt_core

type t = {
  element : int;
  element_name : string;
  users : string list;
  critical_section : int;
}

let of_model ?(pipelined = false) (m : Model.t) =
  Model.elements_shared m
  |> List.map (fun (e, users) ->
         let elem = Comm_graph.element m.comm e in
         let cs =
           if pipelined && elem.Element.pipelinable then 1
           else elem.Element.weight
         in
         {
           element = e;
           element_name = elem.Element.name;
           users;
           critical_section = cs;
         })

let blocking_bound monitors ~process =
  List.fold_left
    (fun acc mon ->
      if List.mem process mon.users && List.length mon.users >= 2 then
        max acc mon.critical_section
      else acc)
    0 monitors

let max_critical_section monitors =
  List.fold_left (fun acc mon -> max acc mon.critical_section) 0 monitors
