type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 step; the constants are the reference ones from Steele,
   Lea & Flood (2014). *)
let next64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g = Int64.to_int (Int64.shift_right_logical (next64 g) 2)

let int g n =
  assert (n > 0);
  next g mod n

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g x =
  let u = Int64.to_float (Int64.shift_right_logical (next64 g) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next64 g) 1L = 1L

let chance g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int g (List.length xs))

let split g = { state = next64 g }
