(** Immutable directed graphs over integer nodes [0 .. n-1].

    This is the structural substrate shared by the communication graphs
    and task graphs of the model (lib/core), the workload generators and
    the multiprocessor partitioner.  Nodes are dense integers; callers
    attach their own labels by index.  All operations are pure. *)

type t
(** A directed graph.  Parallel edges are collapsed; self-loops are
    allowed (the model layer rejects them where the paper requires
    acyclicity). *)

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph with nodes [0..n-1].  Raises
    [Invalid_argument] if an endpoint is out of range. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] nodes. *)

val n_nodes : t -> int
(** Number of nodes. *)

val n_edges : t -> int
(** Number of (distinct) directed edges. *)

val edges : t -> (int * int) list
(** All edges, sorted lexicographically. *)

val succ : t -> int -> int list
(** [succ g v] are the direct successors of [v], ascending. *)

val pred : t -> int -> int list
(** [pred g v] are the direct predecessors of [v], ascending. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests the presence of edge [u -> v]. *)

val out_degree : t -> int -> int
(** Out-degree of a node. *)

val in_degree : t -> int -> int
(** In-degree of a node. *)

val add_edge : t -> int -> int -> t
(** [add_edge g u v] is [g] plus the edge [u -> v]. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g u v] is [g] without the edge [u -> v]. *)

val sources : t -> int list
(** Nodes with in-degree 0. *)

val sinks : t -> int list
(** Nodes with out-degree 0. *)

val is_acyclic : t -> bool
(** [is_acyclic g] is [true] iff [g] contains no directed cycle
    (self-loops count as cycles). *)

val topological_sort : t -> int list option
(** [topological_sort g] is [Some order] (a linearization in which every
    edge goes forward) iff [g] is acyclic, [None] otherwise.  Ties are
    broken by smallest node id so the order is deterministic. *)

val reachable : t -> int -> bool array
(** [reachable g v] marks every node reachable from [v] (including [v]
    itself). *)

val reaches : t -> int -> int -> bool
(** [reaches g u v] tests whether there is a directed path from [u] to
    [v] (a node reaches itself). *)

val transitive_closure : t -> t
(** [transitive_closure g] has an edge [u -> v] whenever [v] is reachable
    from [u] by a non-empty path in [g]. *)

val transitive_reduction : t -> t
(** [transitive_reduction g] for an acyclic [g] is the unique minimal
    graph with the same reachability.  Raises [Invalid_argument] if [g]
    is cyclic. *)

val longest_path : t -> weight:(int -> int) -> int
(** [longest_path g ~weight] is the maximum, over directed paths of an
    acyclic [g], of the sum of node weights along the path (the critical
    path length).  Returns 0 for the empty graph.  Raises
    [Invalid_argument] if [g] is cyclic. *)

val induced_subgraph : t -> keep:(int -> bool) -> t * int array
(** [induced_subgraph g ~keep] restricts [g] to the nodes satisfying
    [keep], renumbering them densely.  Returns the subgraph and the map
    from new ids to original ids. *)

val union : t -> t -> t
(** [union g h] over the same node set (max of the two sizes) contains
    the edges of both. *)

val map_nodes : t -> f:(int -> int) -> n:int -> t
(** [map_nodes g ~f ~n] is the image graph on [n] nodes with an edge
    [f u -> f v] for every edge [u -> v] of [g].  Distinct nodes may be
    identified by [f]. *)

val strongly_connected_components : t -> int list list
(** [strongly_connected_components g] partitions the nodes into SCCs
    (Tarjan's algorithm), returned in reverse topological order of the
    condensation (every edge between components goes from a later list
    element to an earlier one).  Each component's nodes are ascending. *)

val feedback_components : t -> int list list
(** The non-trivial SCCs: components with at least two nodes, or a
    single node with a self-loop — the feedback loops of a
    communication graph. *)

val is_chain : t -> bool
(** [is_chain g] is [true] iff [g] is a simple directed path covering all
    its nodes (the "chain" task-graph shape of Theorem 2, case i). *)

val equal : t -> t -> bool
(** Structural equality (same node count and edge set). *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump ["n=3 edges=[0->1; 1->2]"]. *)

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** [to_dot g] renders Graphviz DOT source for [g]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_edges g ~init ~f] folds over all edges in lexicographic
    order. *)
