module Int_set = Set.Make (Int)

type t = { n : int; adj : Int_set.t array; radj : Int_set.t array }

let check_node t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Digraph: node %d out of range [0,%d)" v t.n)

let empty n =
  if n < 0 then invalid_arg "Digraph.empty: negative size";
  { n; adj = Array.make n Int_set.empty; radj = Array.make n Int_set.empty }

let add_edge t u v =
  check_node t u;
  check_node t v;
  let adj = Array.copy t.adj and radj = Array.copy t.radj in
  adj.(u) <- Int_set.add v adj.(u);
  radj.(v) <- Int_set.add u radj.(v);
  { t with adj; radj }

let remove_edge t u v =
  check_node t u;
  check_node t v;
  let adj = Array.copy t.adj and radj = Array.copy t.radj in
  adj.(u) <- Int_set.remove v adj.(u);
  radj.(v) <- Int_set.remove u radj.(v);
  { t with adj; radj }

let create ~n ~edges =
  let t = empty n in
  (* Build in place to avoid quadratic copying, then freeze. *)
  List.iter
    (fun (u, v) ->
      check_node t u;
      check_node t v;
      t.adj.(u) <- Int_set.add v t.adj.(u);
      t.radj.(v) <- Int_set.add u t.radj.(v))
    edges;
  t

let n_nodes t = t.n

let n_edges t = Array.fold_left (fun acc s -> acc + Int_set.cardinal s) 0 t.adj

let succ t v =
  check_node t v;
  Int_set.elements t.adj.(v)

let pred t v =
  check_node t v;
  Int_set.elements t.radj.(v)

let mem_edge t u v =
  check_node t u;
  check_node t v;
  Int_set.mem v t.adj.(u)

let out_degree t v =
  check_node t v;
  Int_set.cardinal t.adj.(v)

let in_degree t v =
  check_node t v;
  Int_set.cardinal t.radj.(v)

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    Int_set.fold (fun v l -> (u, v) :: l) t.adj.(u) []
    |> List.rev
    |> List.iter (fun e -> acc := e :: !acc)
  done;
  List.rev !acc

let fold_edges t ~init ~f =
  List.fold_left (fun acc (u, v) -> f acc u v) init (edges t)

let sources t =
  List.filter (fun v -> Int_set.is_empty t.radj.(v)) (List.init t.n Fun.id)

let sinks t =
  List.filter (fun v -> Int_set.is_empty t.adj.(v)) (List.init t.n Fun.id)

(* Kahn's algorithm with a min-heap discipline (we just scan for the
   smallest ready node; graphs here are small so O(n^2) is fine and the
   determinism is worth it). *)
let topological_sort t =
  let indeg = Array.init t.n (fun v -> Int_set.cardinal t.radj.(v)) in
  let ready = ref Int_set.empty in
  for v = 0 to t.n - 1 do
    if indeg.(v) = 0 then ready := Int_set.add v !ready
  done;
  let rec go acc count =
    match Int_set.min_elt_opt !ready with
    | None -> if count = t.n then Some (List.rev acc) else None
    | Some v ->
        ready := Int_set.remove v !ready;
        Int_set.iter
          (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then ready := Int_set.add w !ready)
          t.adj.(v);
        go (v :: acc) (count + 1)
  in
  go [] 0

let is_acyclic t = Option.is_some (topological_sort t)

let reachable t v =
  check_node t v;
  let seen = Array.make t.n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Int_set.iter dfs t.adj.(u)
    end
  in
  dfs v;
  seen

let reaches t u v =
  check_node t v;
  (reachable t u).(v)

let transitive_closure t =
  (* Edge u->v in the closure iff a non-empty path u ~> v exists, i.e.
     some direct successor of u reaches v. *)
  let reach = Array.init t.n (fun v -> reachable t v) in
  let out = Array.make t.n Int_set.empty in
  for u = 0 to t.n - 1 do
    let s = ref Int_set.empty in
    Int_set.iter
      (fun x ->
        for v = 0 to t.n - 1 do
          if reach.(x).(v) then s := Int_set.add v !s
        done)
      t.adj.(u);
    out.(u) <- !s
  done;
  let radj = Array.make t.n Int_set.empty in
  Array.iteri
    (fun v s -> Int_set.iter (fun w -> radj.(w) <- Int_set.add v radj.(w)) s)
    out;
  { n = t.n; adj = out; radj }

let transitive_reduction t =
  match topological_sort t with
  | None -> invalid_arg "Digraph.transitive_reduction: cyclic graph"
  | Some _ ->
      (* Keep edge u->v iff there is no other path from u to v. *)
      let result = ref (empty t.n) in
      List.iter
        (fun (u, v) ->
          let without = remove_edge t u v in
          if not (reaches without u v) then result := add_edge !result u v)
        (edges t);
      !result

let longest_path t ~weight =
  match topological_sort t with
  | None -> invalid_arg "Digraph.longest_path: cyclic graph"
  | Some order ->
      let best = Array.make (max t.n 1) 0 in
      List.iter
        (fun v ->
          let from_preds =
            Int_set.fold (fun u acc -> max acc best.(u)) t.radj.(v) 0
          in
          best.(v) <- from_preds + weight v)
        order;
      Array.fold_left max 0 best

let induced_subgraph t ~keep =
  let old_ids = List.filter keep (List.init t.n Fun.id) in
  let old_of_new = Array.of_list old_ids in
  let new_of_old = Array.make t.n (-1) in
  Array.iteri (fun i o -> new_of_old.(o) <- i) old_of_new;
  let sub = ref (empty (Array.length old_of_new)) in
  List.iter
    (fun (u, v) ->
      if new_of_old.(u) >= 0 && new_of_old.(v) >= 0 then
        sub := add_edge !sub new_of_old.(u) new_of_old.(v))
    (edges t);
  (!sub, old_of_new)

let union g h =
  let n = max g.n h.n in
  let t = empty n in
  let load src =
    List.iter
      (fun (u, v) ->
        t.adj.(u) <- Int_set.add v t.adj.(u);
        t.radj.(v) <- Int_set.add u t.radj.(v))
      (edges src)
  in
  load g;
  load h;
  t

let map_nodes t ~f ~n =
  let img = empty n in
  List.iter
    (fun (u, v) ->
      let u' = f u and v' = f v in
      check_node img u';
      check_node img v';
      img.adj.(u') <- Int_set.add v' img.adj.(u');
      img.radj.(v') <- Int_set.add u' img.radj.(v'))
    (edges t);
  img

(* Tarjan's strongly-connected-components algorithm (iterative enough
   for our graph sizes to use plain recursion). *)
let strongly_connected_components t =
  let index = Array.make t.n (-1) in
  let lowlink = Array.make t.n 0 in
  let on_stack = Array.make t.n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Int_set.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      t.adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      components := List.sort Int.compare (pop []) :: !components
    end
  in
  for v = 0 to t.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order already;
     [components] accumulated by consing, so reverse back. *)
  List.rev !components

let feedback_components t =
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> Int_set.mem v t.adj.(v)
      | _ :: _ :: _ -> true
      | [] -> false)
    (strongly_connected_components t)

let is_chain t =
  if t.n = 0 then false
  else if t.n = 1 then n_edges t = 0
  else
    n_edges t = t.n - 1
    && List.length (sources t) = 1
    && List.length (sinks t) = 1
    && List.for_all (fun v -> out_degree t v <= 1 && in_degree t v <= 1)
         (List.init t.n Fun.id)
    && is_acyclic t

let equal a b = a.n = b.n && edges a = edges b

let pp fmt t =
  Format.fprintf fmt "n=%d edges=[%a]" t.n
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       (fun f (u, v) -> Format.fprintf f "%d->%d" u v))
    (edges t)

let to_dot ?(name = "g") ?(label = string_of_int) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v))
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
