(** Small integer helpers used throughout the scheduling code.

    All scheduling arithmetic in this repository is done on non-negative
    OCaml [int]s (time is discrete, as in the paper).  The helpers here
    guard the few places where overflow or division subtleties could
    silently corrupt an analysis (e.g. hyperperiod computation). *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor.  [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple.  Raises [Overflow] if the
    result does not fit in an [int].  [lcm 0 x = 0]. *)

val lcm_list : int list -> int
(** [lcm_list xs] folds {!lcm} over [xs]; the lcm of the empty list is 1. *)

val gcd_list : int list -> int
(** [gcd_list xs] folds {!gcd} over [xs]; the gcd of the empty list is 0. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity, for
    [a >= 0] and [b > 0]. *)

val pow2_floor : int -> int
(** [pow2_floor n] is the largest power of two [<= n], for [n >= 1]. *)

val sum : int list -> int
(** [sum xs] adds up [xs], raising [Overflow] on overflow. *)

exception Overflow
(** Raised by {!lcm}, {!lcm_list} and {!sum} when a result exceeds the
    native integer range. *)
