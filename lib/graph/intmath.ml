exception Overflow

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let mul_checked a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else p

let lcm a b = if a = 0 || b = 0 then 0 else mul_checked (a / gcd a b) b

let lcm_list xs = List.fold_left lcm 1 xs

let gcd_list xs = List.fold_left gcd 0 xs

let ceil_div a b =
  assert (a >= 0 && b > 0);
  (a + b - 1) / b

let pow2_floor n =
  assert (n >= 1);
  let rec go p = if p * 2 > n || p * 2 <= 0 then p else go (p * 2) in
  go 1

let sum xs =
  List.fold_left
    (fun acc x ->
      let s = acc + x in
      if acc >= 0 && x >= 0 && s < 0 then raise Overflow else s)
    0 xs
