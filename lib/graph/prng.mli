(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of this repository (workload generators,
    adversarial arrival sequences, property tests' auxiliary data) draws
    from this generator so that experiments and tests are exactly
    reproducible from a seed.  We deliberately do not use [Stdlib.Random]
    to keep the sequence stable across OCaml versions. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next : t -> int
(** [next g] returns a uniformly distributed non-negative [int]
    (62 useful bits) and advances the state. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place (Fisher–Yates). *)

val pick : t -> 'a list -> 'a
(** [pick g xs] is a uniformly chosen element of the non-empty list
    [xs]. *)

val split : t -> t
(** [split g] derives a statistically independent generator and advances
    [g]; used to give sub-tasks private streams. *)
