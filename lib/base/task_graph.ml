module Digraph = Rt_graph.Digraph

type t = { node_elems : int array; graph : Digraph.t }

let create ~nodes ~edges =
  let n = Array.length nodes in
  Array.iter
    (fun e -> if e < 0 then invalid_arg "Task_graph.create: negative element id")
    nodes;
  let graph = Digraph.create ~n ~edges in
  if not (Digraph.is_acyclic graph) then
    invalid_arg "Task_graph.create: precedence relation is cyclic";
  { node_elems = Array.copy nodes; graph }

let of_chain elems =
  let nodes = Array.of_list elems in
  let n = Array.length nodes in
  let edges = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
  create ~nodes ~edges

let singleton e = create ~nodes:[| e |] ~edges:[]

let size t = Array.length t.node_elems

let element_of_node t v =
  if v < 0 || v >= size t then invalid_arg "Task_graph.element_of_node";
  t.node_elems.(v)

let node_elements t = Array.copy t.node_elems

let graph t = t.graph

let edges t = Digraph.edges t.graph

let topological_order t =
  match Digraph.topological_sort t.graph with
  | Some order -> order
  | None -> assert false (* acyclicity enforced at construction *)

let elements_used t =
  Array.to_list t.node_elems |> List.sort_uniq Int.compare

let occurrences t e =
  Array.fold_left (fun acc x -> if x = e then acc + 1 else acc) 0 t.node_elems

let computation_time g t =
  Array.fold_left (fun acc e -> acc + Comm_graph.weight g e) 0 t.node_elems

let critical_path g t =
  Digraph.longest_path t.graph ~weight:(fun v ->
      Comm_graph.weight g t.node_elems.(v))

let compatible g t =
  let n_elems = Comm_graph.n_elements g in
  let bad_node =
    Array.to_list t.node_elems
    |> List.mapi (fun v e -> (v, e))
    |> List.find_opt (fun (_, e) -> e < 0 || e >= n_elems)
  in
  match bad_node with
  | Some (v, e) ->
      Error
        (Printf.sprintf "task-graph node %d maps to unknown element %d" v e)
  | None ->
      let bad_edge =
        List.find_opt
          (fun (u, v) ->
            not (Comm_graph.has_edge g t.node_elems.(u) t.node_elems.(v)))
          (edges t)
      in
      (match bad_edge with
      | Some (u, v) ->
          Error
            (Printf.sprintf
               "task-graph edge %d->%d has no matching communication edge \
                %s->%s"
               u v
               (Comm_graph.element g t.node_elems.(u)).Element.name
               (Comm_graph.element g t.node_elems.(v)).Element.name)
      | None -> Ok ())

let is_chain t = Digraph.is_chain t.graph

let straight_line t = List.map (fun v -> t.node_elems.(v)) (topological_order t)

let map_elements t ~f =
  { t with node_elems = Array.map f t.node_elems }

let disjoint_union a b =
  let na = size a and nb = size b in
  let nodes = Array.append a.node_elems b.node_elems in
  let map_a = Array.init na Fun.id in
  let map_b = Array.init nb (fun i -> na + i) in
  let edges =
    edges a @ List.map (fun (u, v) -> (na + u, na + v)) (edges b)
  in
  (create ~nodes ~edges, map_a, map_b)

let equal a b =
  a.node_elems = b.node_elems && Digraph.equal a.graph b.graph

let pp fmt t =
  Format.fprintf fmt "nodes=[%a] %a"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f " ")
       Format.pp_print_int)
    (Array.to_list t.node_elems)
    Digraph.pp t.graph
