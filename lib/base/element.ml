type t = { id : int; name : string; weight : int; pipelinable : bool }

let make ~id ~name ~weight ~pipelinable =
  if weight < 0 then invalid_arg "Element.make: negative weight";
  if id < 0 then invalid_arg "Element.make: negative id";
  if name = "" then invalid_arg "Element.make: empty name";
  { id; name; weight; pipelinable }

let equal a b =
  a.id = b.id && a.name = b.name && a.weight = b.weight
  && a.pipelinable = b.pipelinable

let compare a b = Int.compare a.id b.id

let pp fmt t =
  Format.fprintf fmt "%s/%d%s" t.name t.weight
    (if t.pipelinable then "" else "~")
