type kind = Periodic | Asynchronous

type t = {
  name : string;
  graph : Task_graph.t;
  period : int;
  deadline : int;
  offset : int;
  kind : kind;
}

let make ~name ~graph ~period ~deadline ~kind =
  if name = "" then invalid_arg "Timing.make: empty name";
  if period <= 0 then invalid_arg "Timing.make: period must be positive";
  if deadline <= 0 then invalid_arg "Timing.make: deadline must be positive";
  { name; graph; period; deadline; offset = 0; kind }

let with_offset t o =
  if t.kind = Asynchronous then
    invalid_arg "Timing.with_offset: offsets apply to periodic constraints"
  else if o < 0 || o >= t.period then
    invalid_arg "Timing.with_offset: offset must lie in [0, period)"
  else { t with offset = o }

let is_periodic t = t.kind = Periodic

let is_asynchronous t = t.kind = Asynchronous

let computation_time g t = Task_graph.computation_time g t.graph

let utilization g t = float_of_int (computation_time g t) /. float_of_int t.period

let density g t =
  float_of_int (computation_time g t) /. float_of_int (min t.period t.deadline)

let kind_to_string = function
  | Periodic -> "periodic"
  | Asynchronous -> "asynchronous"

let pp fmt t =
  Format.fprintf fmt "%s(%s p=%d d=%d%s): %a" t.name (kind_to_string t.kind)
    t.period t.deadline
    (if t.offset > 0 then Printf.sprintf " o=%d" t.offset else "")
    Task_graph.pp t.graph
