(** Timing constraints: the tuples [(C, p, d)] of the paper.

    A {e periodic} constraint is invoked automatically every [p] time
    units starting at time 0; an {e asynchronous} constraint may be
    invoked at any integer instant provided two invocations are at least
    [p] apart.  When invoked at time [t], the task graph [C] must be
    executed within the interval [\[t, t+d\]].

    For asynchronous constraints, meeting the deadline for {e every}
    possible invocation time is exactly the latency condition: every
    window of length [d] of the execution trace must contain a complete
    execution of [C] (see {!Latency}). *)

type kind =
  | Periodic  (** Member of [T_p]: invoked at [0, p, 2p, ...]. *)
  | Asynchronous
      (** Member of [T_a]: sporadic, minimum separation [p]. *)

type t = private {
  name : string;  (** Unique constraint name, for reporting. *)
  graph : Task_graph.t;  (** The task graph [C]. *)
  period : int;  (** [p]: period or minimum separation; [> 0]. *)
  deadline : int;  (** [d]: relative deadline / latency bound; [> 0]. *)
  offset : int;
      (** Release offset of a periodic constraint: invocations occur at
          [offset, offset + p, ...].  Asynchronous constraints ignore
          it (their invocation instants are the environment's choice).
          [0 <= offset < period]. *)
  kind : kind;
}

val make :
  name:string ->
  graph:Task_graph.t ->
  period:int ->
  deadline:int ->
  kind:kind ->
  t
(** [make ~name ~graph ~period ~deadline ~kind] constructs a constraint
    with offset 0.  Raises [Invalid_argument] if [period <= 0],
    [deadline <= 0] or the name is empty. *)

val with_offset : t -> int -> t
(** [with_offset c o] is [c] released with phase [o].  Raises
    [Invalid_argument] unless [0 <= o < period] (or the constraint is
    asynchronous, for which offsets are meaningless). *)

val is_periodic : t -> bool
(** [is_periodic c] is [true] for members of [T_p]. *)

val is_asynchronous : t -> bool
(** [is_asynchronous c] is [true] for members of [T_a]. *)

val computation_time : Comm_graph.t -> t -> int
(** Total computation time of the constraint's task graph. *)

val utilization : Comm_graph.t -> t -> float
(** [computation_time / period] — long-run processor share demanded by a
    periodic constraint (or by an asynchronous constraint at its maximum
    invocation rate). *)

val density : Comm_graph.t -> t -> float
(** [computation_time / min period deadline] — the density used by
    deadline-aware feasibility tests. *)

val kind_to_string : kind -> string
(** ["periodic"] or ["asynchronous"]. *)

val pp : Format.formatter -> t -> unit
(** One-line dump [name(kind p=.. d=..): <task graph>]. *)
