(** Execution traces and execution instances.

    A trace is a finite prefix [F(0), F(1), ...] of an execution trace
    (slot [i] covers the real-time interval [\[i, i+1)]).  The paper's
    pipeline-ordering rule makes instance identity canonical: the slots
    labelled with an element [e], taken in increasing order, group into
    executions of [e] of [weight e] slots each — the first [w] slots are
    the first execution, the next [w] the second, and so on (an earlier
    start must finish earlier, so executions cannot interleave). *)

type instance = {
  elem : int;  (** Element executed. *)
  index : int;  (** 0-based execution count of this element. *)
  start : int;  (** First slot index. *)
  finish : int;  (** One past the last slot index. *)
  slots : int array;  (** All slot indices, ascending. *)
}
(** One execution instance of a functional element. *)

type t
(** A finite trace together with its per-element instance decomposition. *)

val of_slots : Comm_graph.t -> Schedule.slot array -> t
(** [of_slots g a] decomposes the finite trace [a].  A trailing
    incomplete execution (fewer than [weight] slots) is dropped; it has
    not finished within the trace. *)

val of_schedule : Comm_graph.t -> Schedule.t -> horizon:int -> t
(** [of_schedule g l ~horizon] unrolls the static schedule [l] for
    [horizon] slots and decomposes the result. *)

val horizon : t -> int
(** Length of the underlying finite trace. *)

val instances : t -> int -> instance array
(** [instances tr e] are the completed executions of element [e],
    ascending by start. *)

val all_instances : t -> instance list
(** Every completed instance, sorted by [(start, elem)]. *)

val instance_count : t -> int -> int
(** Number of completed executions of an element. *)

val first_at_or_after : t -> elem:int -> time:int -> instance option
(** [first_at_or_after tr ~elem ~time] is the earliest completed
    instance of [elem] whose start is [>= time], if any. *)

val first_index_at_or_after : t -> elem:int -> time:int -> int option
(** Like {!first_at_or_after} but returns the instance index. *)

val nth_instance : t -> elem:int -> int -> instance option
(** [nth_instance tr ~elem k] is execution number [k] of [elem]. *)

val pipeline_ordered : t -> bool
(** Sanity check of the paper's pipeline-ordering property on the
    decomposition: per element, starts are strictly increasing and
    finish order equals start order.  True by construction for
    single-processor traces; exported for use on externally produced
    traces. *)
