type t = { comm : Comm_graph.t; constraints : Timing.t list }

let validate ~comm ~constraints =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Timing.t) ->
      if Hashtbl.mem seen c.name then err "duplicate constraint name %s" c.name;
      Hashtbl.add seen c.name ();
      if Task_graph.size c.graph = 0 then
        err "constraint %s has an empty task graph" c.name;
      (match Task_graph.compatible comm c.graph with
      | Ok () -> ()
      | Error msg -> err "constraint %s: %s" c.name msg);
      (match Task_graph.compatible comm c.graph with
      | Error _ -> ()
      | Ok () ->
          List.iter
            (fun e ->
              if Comm_graph.weight comm e = 0 then
                err
                  "constraint %s uses element %s of weight 0 (executions \
                   would be instantaneous and unobservable)"
                  c.name
                  (Comm_graph.element comm e).Element.name)
            (Task_graph.elements_used c.graph)))
    constraints;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let make ~comm ~constraints =
  match validate ~comm ~constraints with
  | Ok () -> { comm; constraints }
  | Error errs ->
      invalid_arg ("Model.make: " ^ String.concat "; " errs)

let periodic t = List.filter Timing.is_periodic t.constraints

let asynchronous t = List.filter Timing.is_asynchronous t.constraints

let find t name =
  match List.find_opt (fun (c : Timing.t) -> c.name = name) t.constraints with
  | Some c -> c
  | None -> raise Not_found

let utilization t =
  List.fold_left (fun acc c -> acc +. Timing.utilization t.comm c) 0.0
    t.constraints

let density t =
  List.fold_left (fun acc c -> acc +. Timing.density t.comm c) 0.0
    t.constraints

let theorem3_premises t =
  let errs = ref [] in
  let ratio_sum =
    List.fold_left
      (fun acc (c : Timing.t) ->
        acc
        +. float_of_int (Timing.computation_time t.comm c)
           /. float_of_int c.deadline)
      0.0 t.constraints
  in
  if ratio_sum > 0.5 +. 1e-9 then
    errs :=
      Printf.sprintf "(i) sum w_i/d_i = %.4f exceeds 1/2" ratio_sum :: !errs;
  List.iter
    (fun (c : Timing.t) ->
      let w = Timing.computation_time t.comm c in
      if (c.deadline + 1) / 2 < w then
        errs :=
          Printf.sprintf "(ii) constraint %s: ceil(d/2)=%d < w=%d" c.name
            ((c.deadline + 1) / 2)
            w
          :: !errs)
    t.constraints;
  if not (Comm_graph.all_pipelinable t.comm) then
    errs := "(iii) some functional element is not pipelinable" :: !errs;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let hyperperiod t =
  Rt_graph.Intmath.lcm_list
    (List.map (fun (c : Timing.t) -> c.period) (periodic t))

let elements_shared t =
  let users = Hashtbl.create 16 in
  List.iter
    (fun (c : Timing.t) ->
      List.iter
        (fun e ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt users e) in
          Hashtbl.replace users e (c.name :: cur))
        (Task_graph.elements_used c.graph))
    t.constraints;
  Hashtbl.fold
    (fun e names acc ->
      if List.length names >= 2 then (e, List.rev names) :: acc else acc)
    users []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@,constraints:@," Comm_graph.pp t.comm;
  List.iter (fun c -> Format.fprintf fmt "  %a@," Timing.pp c) t.constraints;
  Format.fprintf fmt "@]"
