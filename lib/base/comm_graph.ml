module Digraph = Rt_graph.Digraph

type t = {
  elems : Element.t array;
  by_name : (string, int) Hashtbl.t;
  graph : Digraph.t;
}

let build specs edge_specs =
  let by_name = Hashtbl.create 16 in
  let elems =
    Array.of_list
      (List.mapi
         (fun id (name, weight, pipelinable) ->
           if Hashtbl.mem by_name name then
             invalid_arg ("Comm_graph: duplicate element name " ^ name);
           Hashtbl.add by_name name id;
           Element.make ~id ~name ~weight ~pipelinable)
         specs)
  in
  let resolve name =
    match Hashtbl.find_opt by_name name with
    | Some id -> id
    | None -> invalid_arg ("Comm_graph: edge names unknown element " ^ name)
  in
  let edges = List.map (fun (a, b) -> (resolve a, resolve b)) edge_specs in
  { elems; by_name; graph = Digraph.create ~n:(Array.length elems) ~edges }

let create ~elements ~edges = build elements edges

let n_elements t = Array.length t.elems

let element t id =
  if id < 0 || id >= Array.length t.elems then
    invalid_arg (Printf.sprintf "Comm_graph.element: id %d out of range" id);
  t.elems.(id)

let elements t = Array.to_list t.elems

let find_opt t name =
  Option.map (fun id -> t.elems.(id)) (Hashtbl.find_opt t.by_name name)

let find t name =
  match find_opt t name with Some e -> e | None -> raise Not_found

let id_of_name t name = (find t name).Element.id

let weight t id = (element t id).Element.weight

let pipelinable t id = (element t id).Element.pipelinable

let graph t = t.graph

let has_edge t u v = Digraph.mem_edge t.graph u v

let total_weight t =
  Array.fold_left (fun acc e -> acc + e.Element.weight) 0 t.elems

let all_pipelinable t =
  Array.for_all (fun e -> e.Element.pipelinable) t.elems

let with_elements t more_elements more_edges =
  let existing =
    Array.to_list t.elems
    |> List.map (fun (e : Element.t) -> (e.name, e.weight, e.pipelinable))
  in
  let existing_edges =
    Digraph.edges t.graph
    |> List.map (fun (u, v) ->
           ((element t u).Element.name, (element t v).Element.name))
  in
  build (existing @ more_elements) (existing_edges @ more_edges)

let equal a b =
  Array.length a.elems = Array.length b.elems
  && Array.for_all2 Element.equal a.elems b.elems
  && Digraph.equal a.graph b.graph

let pp fmt t =
  Format.fprintf fmt "@[<v>elements:@,";
  Array.iter (fun e -> Format.fprintf fmt "  %a@," Element.pp e) t.elems;
  Format.fprintf fmt "edges: %a@]" Digraph.pp t.graph
