(** The graph-based model [M = (G, T)].

    Packages a communication graph with its set of timing constraints
    and provides the validation, partitioning and load metrics that the
    synthesis algorithms rely on. *)

type t = private {
  comm : Comm_graph.t;  (** The communication graph [G]. *)
  constraints : Timing.t list;  (** The timing constraints [T]. *)
}

val make : comm:Comm_graph.t -> constraints:Timing.t list -> t
(** [make ~comm ~constraints] validates and builds a model.  Raises
    [Invalid_argument] if validation fails; see {!validate} for the
    conditions. *)

val validate :
  comm:Comm_graph.t -> constraints:Timing.t list -> (unit, string list) result
(** Checks that every task graph is compatible with [comm] (the
    homomorphism condition of the paper), that constraint names are
    unique and non-empty, that every task graph is non-empty, and that
    no task graph uses an element of weight 0 (whose executions would be
    unobservable in the discrete trace semantics).  Returns all
    diagnostics on failure. *)

val periodic : t -> Timing.t list
(** The subset [T_p], in declaration order. *)

val asynchronous : t -> Timing.t list
(** The subset [T_a], in declaration order. *)

val find : t -> string -> Timing.t
(** [find m name] retrieves a constraint by name.  Raises [Not_found]. *)

val utilization : t -> float
(** Sum of per-constraint utilizations — total long-run demand assuming
    no sharing of common operations. *)

val density : t -> float
(** Sum of per-constraint densities [c_i / min(p_i, d_i)]. *)

val theorem3_premises : t -> (unit, string list) result
(** Checks the three premises of the paper's sufficient condition
    (Theorem 3): (i) [Σ w_i/d_i <= 1/2]; (ii) [⌈d_i/2⌉ >= w_i] for every
    constraint; (iii) every functional element is pipelinable.  Returns
    the violated premises on failure. *)

val hyperperiod : t -> int
(** Least common multiple of the periodic constraints' periods (1 when
    there are none).  Raises [Rt_graph.Intmath.Overflow] if it does not
    fit an [int]. *)

val elements_shared : t -> (int * string list) list
(** Elements used by two or more constraints, with the names of the
    constraints using them — the candidates for monitors in the naive
    implementation and for sharing in latency scheduling. *)

val pp : Format.formatter -> t -> unit
(** Multi-line dump of the whole model. *)
