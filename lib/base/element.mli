(** Functional elements: the nodes of the communication graph.

    In the paper a functional element performs "a functional
    transformation or transmission of data values subject to pipelining
    constraints"; its computation time is assumed bounded and the bound
    is the node weight [W_V].  The [pipelinable] flag records whether the
    element may be decomposed into a chain of unit-time sub-functions
    (software pipelining); Theorem 2(ii) and Theorem 3 distinguish the
    two cases. *)

type t = private {
  id : int;  (** Dense index of this element inside its communication graph. *)
  name : string;  (** Unique human-readable name (e.g. ["f_s"]). *)
  weight : int;  (** Worst-case computation time, in integer time units; [>= 0]. *)
  pipelinable : bool;
      (** Whether software pipelining may split this element into
          unit-time sub-functions. *)
}

val make : id:int -> name:string -> weight:int -> pipelinable:bool -> t
(** [make ~id ~name ~weight ~pipelinable] constructs an element.  Raises
    [Invalid_argument] if [weight < 0], [id < 0], or [name] is empty. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** Total order by [id]. *)

val pp : Format.formatter -> t -> unit
(** Prints ["name/weight"] with a ["~"] suffix when not pipelinable. *)
