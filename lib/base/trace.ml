type instance = {
  elem : int;
  index : int;
  start : int;
  finish : int;
  slots : int array;
}

type t = { horizon : int; by_elem : instance array array }

(* Two counting passes over the slots, then direct array fills — the
   function sits under every latency question and used to spend its
   time consing and reversing per-element slot lists. *)
let of_slots g a =
  let n = Comm_graph.n_elements g in
  let occ = Array.make n 0 in
  Array.iter
    (fun s ->
      match s with
      | Schedule.Idle -> ()
      | Schedule.Run e ->
          if e < 0 || e >= n then invalid_arg "Trace.of_slots: unknown element";
          occ.(e) <- occ.(e) + 1)
    a;
  let slots_of = Array.init n (fun e -> Array.make occ.(e) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Schedule.Idle -> ()
      | Schedule.Run e ->
          (slots_of.(e)).(fill.(e)) <- i;
          fill.(e) <- fill.(e) + 1)
    a;
  let by_elem =
    Array.init n (fun e ->
        let w = Comm_graph.weight g e in
        if w <= 0 then [||]
        else
          let slots = slots_of.(e) in
          let count = Array.length slots / w in
          Array.init count (fun k ->
              let mine = Array.sub slots (k * w) w in
              {
                elem = e;
                index = k;
                start = mine.(0);
                finish = mine.(w - 1) + 1;
                slots = mine;
              }))
  in
  { horizon = Array.length a; by_elem }

let of_schedule g l ~horizon = of_slots g (Schedule.unroll l horizon)

let horizon t = t.horizon

let instances t e =
  if e < 0 || e >= Array.length t.by_elem then
    invalid_arg "Trace.instances: unknown element";
  t.by_elem.(e)

let all_instances t =
  Array.to_list t.by_elem |> List.concat_map Array.to_list
  |> List.sort (fun a b ->
         match Int.compare a.start b.start with
         | 0 -> Int.compare a.elem b.elem
         | c -> c)

let instance_count t e = Array.length (instances t e)

(* Binary search for the first instance with start >= time.  Starts are
   ascending by construction. *)
let first_index_at_or_after t ~elem ~time =
  let arr = instances t elem in
  let n = Array.length arr in
  let rec go lo hi =
    if lo >= hi then if lo < n then Some lo else None
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid).start >= time then go lo mid else go (mid + 1) hi
  in
  go 0 n

let first_at_or_after t ~elem ~time =
  Option.map (fun i -> (instances t elem).(i)) (first_index_at_or_after t ~elem ~time)

let nth_instance t ~elem k =
  let arr = instances t elem in
  if k >= 0 && k < Array.length arr then Some arr.(k) else None

let pipeline_ordered t =
  Array.for_all
    (fun arr ->
      let ok = ref true in
      for i = 1 to Array.length arr - 1 do
        if arr.(i).start <= arr.(i - 1).start then ok := false;
        if arr.(i).finish <= arr.(i - 1).finish then ok := false
      done;
      !ok)
    t.by_elem
