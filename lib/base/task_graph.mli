(** Task graphs: the bodies [C] of timing constraints.

    A task graph is an acyclic digraph together with a mapping [h] from
    its nodes to functional elements of a communication graph.  Nodes
    denote executions of the corresponding elements; edges denote data
    transmissions that must precede the consumer's execution.  Several
    task-graph nodes may map to the {e same} element (the element is then
    executed several times per constraint invocation, and the bijective
    matching in the execution semantics must pick distinct instances). *)

type t
(** A task graph.  Node ids are dense [0 .. size-1]; each node carries
    the id of the element it maps to. *)

val create : nodes:int array -> edges:(int * int) list -> t
(** [create ~nodes ~edges] builds a task graph whose node [i] maps to
    element [nodes.(i)]; [edges] are over task-graph node ids.  Raises
    [Invalid_argument] if the edge relation is cyclic or an endpoint is
    out of range. *)

val of_chain : int list -> t
(** [of_chain [e1; ...; ek]] is the chain task graph
    [e1 -> e2 -> ... -> ek] (nodes mapping to the listed elements). *)

val singleton : int -> t
(** [singleton e] is the one-node task graph executing element [e]
    (Theorem 2(ii) shape). *)

val size : t -> int
(** Number of task-graph nodes. *)

val element_of_node : t -> int -> int
(** [element_of_node c v] is the element id node [v] maps to. *)

val node_elements : t -> int array
(** The full node -> element mapping (a fresh copy). *)

val graph : t -> Rt_graph.Digraph.t
(** The underlying precedence digraph over task-graph node ids. *)

val edges : t -> (int * int) list
(** Precedence edges over task-graph node ids. *)

val topological_order : t -> int list
(** A deterministic linearization of the precedence relation. *)

val elements_used : t -> int list
(** Sorted, deduplicated element ids appearing in the task graph. *)

val occurrences : t -> int -> int
(** [occurrences c e] counts nodes mapping to element [e]. *)

val computation_time : Comm_graph.t -> t -> int
(** Sum of the weights of all nodes ("the computation time of a timing
    constraint ... is the sum of all the weights of the nodes in C"). *)

val critical_path : Comm_graph.t -> t -> int
(** Longest weight-sum along a precedence path; a lower bound on the
    span of any execution of the graph. *)

val compatible : Comm_graph.t -> t -> (unit, string) result
(** [compatible g c] checks the paper's compatibility condition: every
    node maps to an element of [g] and every task-graph edge [u -> v]
    maps to a communication edge [h(u) -> h(v)] of [g].  Returns a
    diagnostic on failure. *)

val is_chain : t -> bool
(** Whether the precedence graph is a simple chain. *)

val straight_line : t -> int list
(** [straight_line c] is the element-id sequence of a topological sort of
    [c] — the "straight-line program" body of the naive process-based
    implementation. *)

val map_elements : t -> f:(int -> int) -> t
(** [map_elements c ~f] renames the elements the nodes map to (used when
    embedding a task graph into a rewritten communication graph). *)

val disjoint_union : t -> t -> t * int array * int array
(** [disjoint_union a b] places [a] and [b] side by side; returns the
    union and the node-id translations for [a] and [b]. *)

val equal : t -> t -> bool
(** Structural equality (same nodes, mapping and edges). *)

val pp : Format.formatter -> t -> unit
(** One-line dump [nodes=[e0 e1 ...] edges=[...]]. *)
