(** Communication graphs: [G = (V, E, W_V)] of the paper.

    Nodes are {!Element.t} (functional elements, with their computation
    times as weights); edges are the communication paths along which data
    values may be transmitted.  Task graphs (timing-constraint bodies)
    must be compatible with the communication graph: every task-graph
    node maps to an element of [V] and every task-graph edge to an edge
    of [E].

    The communication graph itself may be cyclic — the example in the
    paper feeds the output [u] of [f_s] back through [f_k] into [f_s]. *)

type t

val create :
  elements:(string * int * bool) list -> edges:(string * string) list -> t
(** [create ~elements ~edges] builds a communication graph.  Each element
    is given as [(name, weight, pipelinable)]; elements are assigned
    dense ids in list order.  Edges refer to elements by name.  Raises
    [Invalid_argument] on duplicate or empty names, negative weights, or
    edges naming unknown elements. *)

val n_elements : t -> int
(** Number of functional elements. *)

val element : t -> int -> Element.t
(** [element g id] is the element with dense index [id].  Raises
    [Invalid_argument] if out of range. *)

val elements : t -> Element.t list
(** All elements in id order. *)

val find : t -> string -> Element.t
(** [find g name] looks an element up by name.  Raises [Not_found]. *)

val find_opt : t -> string -> Element.t option
(** [find_opt g name] is [find] without the exception. *)

val id_of_name : t -> string -> int
(** [id_of_name g name] is [(find g name).id].  Raises [Not_found]. *)

val weight : t -> int -> int
(** [weight g id] is the computation-time bound of element [id]. *)

val pipelinable : t -> int -> bool
(** [pipelinable g id] tells whether element [id] may be software-
    pipelined. *)

val graph : t -> Rt_graph.Digraph.t
(** The underlying digraph over element ids. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v] tests for the communication path [u -> v]. *)

val total_weight : t -> int
(** Sum of all element weights. *)

val all_pipelinable : t -> bool
(** Whether every element is pipelinable (premise (iii) of Theorem 3). *)

val with_elements : t -> (string * int * bool) list -> (string * string) list -> t
(** [with_elements g more_elements more_edges] extends [g]; used by the
    software-pipelining rewrite.  Same validation as {!create}. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable dump. *)
