type slot = Idle | Run of int

type t = { cycle : slot array }

let of_array a =
  if Array.length a = 0 then invalid_arg "Schedule: empty schedule";
  { cycle = Array.copy a }

let of_slots l = of_array (Array.of_list l)

let length t = Array.length t.cycle

let slot t i =
  if i < 0 then invalid_arg "Schedule.slot: negative index";
  t.cycle.(i mod Array.length t.cycle)

let slots t = Array.copy t.cycle

let unroll t h = Array.init h (fun i -> t.cycle.(i mod Array.length t.cycle))

let busy_slots t =
  Array.fold_left
    (fun acc s -> match s with Idle -> acc | Run _ -> acc + 1)
    0 t.cycle

let idle_slots t = length t - busy_slots t

let occurrences t e =
  Array.fold_left
    (fun acc s -> match s with Run x when x = e -> acc + 1 | _ -> acc)
    0 t.cycle

let load t = float_of_int (busy_slots t) /. float_of_int (length t)

let validate g t =
  let errs = ref [] in
  let n = Comm_graph.n_elements g in
  Array.iteri
    (fun i s ->
      match s with
      | Run e when e < 0 || e >= n ->
          errs := Printf.sprintf "slot %d runs unknown element %d" i e :: !errs
      | _ -> ())
    t.cycle;
  if !errs = [] then begin
    for e = 0 to n - 1 do
      let w = Comm_graph.weight g e in
      let occ = occurrences t e in
      if occ > 0 && w > 0 && occ mod w <> 0 then
        errs :=
          Printf.sprintf
            "element %s: %d slots per cycle is not a multiple of weight %d"
            (Comm_graph.element g e).Element.name occ w
          :: !errs;
      (* Contiguity of executions for non-pipelinable elements.  The
         induced trace starts at slot 0, so the canonical instance
         decomposition (first w slots of e form execution 0, ...) never
         benefits from wrapping the cycle boundary: an execution split
         by the boundary leaves its first cycle's head slots dangling
         and the very first instance non-contiguous.  The correct rule
         is therefore linear: every maximal run of e within the cycle
         must have a length divisible by w (a run of k*w slots is k
         back-to-back executions). *)
      if occ > 0 && w > 1 && not (Comm_graph.pipelinable g e) then begin
        let len = Array.length t.cycle in
        let run = ref 0 in
        let flush () =
          if !run > 0 && !run mod w <> 0 then
            errs :=
              Printf.sprintf
                "non-pipelinable element %s has a split execution (run of \
                 %d slots, weight %d)"
                (Comm_graph.element g e).Element.name !run w
              :: !errs;
          run := 0
        in
        for i = 0 to len - 1 do
          if t.cycle.(i) = Run e then incr run else flush ()
        done;
        flush ()
      end
    done
  end;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let rotate t k =
  let n = Array.length t.cycle in
  let k = ((k mod n) + n) mod n in
  { cycle = Array.init n (fun i -> t.cycle.((i + k) mod n)) }

let concat a b = { cycle = Array.append a.cycle b.cycle }

let repeat t k =
  if k < 1 then invalid_arg "Schedule.repeat: k must be >= 1";
  let n = Array.length t.cycle in
  { cycle = Array.init (n * k) (fun i -> t.cycle.(i mod n)) }

let equal a b = a.cycle = b.cycle

let to_string g t =
  Array.to_list t.cycle
  |> List.map (function
       | Idle -> "."
       | Run e -> (Comm_graph.element g e).Element.name)
  |> String.concat " "

let of_string g s =
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.concat_map (String.split_on_char '\n')
    |> List.filter (fun tok -> tok <> "")
  in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | "." :: rest -> resolve (Idle :: acc) rest
    | name :: rest -> (
        match Comm_graph.find_opt g name with
        | Some e -> resolve (Run e.Element.id :: acc) rest
        | None -> Error ("unknown element in schedule: " ^ name))
  in
  match resolve [] tokens with
  | Error e -> Error e
  | Ok [] -> Error "empty schedule"
  | Ok slots -> Ok (of_slots slots)

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (Array.to_list t.cycle
    |> List.map (function Idle -> "." | Run e -> string_of_int e)
    |> String.concat " ")
