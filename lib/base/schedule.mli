(** Static schedules: finite strings over [V ∪ {idle}].

    A static schedule [L] induces an execution trace by round-robin
    repetition ("the execution trace which a round-robin scheduler
    generates by repeating L ad infinitum").  Slot [i] of the trace is
    [L.(i mod length L)].

    A schedule is {e well-formed} w.r.t. a communication graph when, for
    every element [e], the number of slots labelled [e] in one cycle is a
    multiple of [e]'s weight — i.e. the cycle contains only whole
    executions, so the execution-instance structure repeats with the
    cycle — and every execution of a non-pipelinable element occupies
    contiguous slots {e within the linear cycle}.  (Wrapping an atomic
    execution around the cycle boundary is never well-formed: the
    induced trace starts at slot 0, so the boundary-split execution's
    first occurrence is non-contiguous.)  All analyses in {!Latency}
    require well-formedness. *)

type slot = Idle | Run of int  (** [Run e] executes element [e]. *)

type t
(** A non-empty static schedule. *)

val of_slots : slot list -> t
(** [of_slots l] builds a schedule.  Raises [Invalid_argument] on the
    empty list. *)

val of_array : slot array -> t
(** Array counterpart of {!of_slots} (the array is copied). *)

val length : t -> int
(** Cycle length in slots. *)

val slot : t -> int -> slot
(** [slot l i] is the trace content of slot [i] for any [i >= 0]
    (round-robin: index is taken mod the cycle length). *)

val slots : t -> slot array
(** One cycle of slots (a fresh copy). *)

val unroll : t -> int -> slot array
(** [unroll l h] is the first [h] slots of the induced trace. *)

val busy_slots : t -> int
(** Number of non-idle slots per cycle. *)

val idle_slots : t -> int
(** Number of idle slots per cycle. *)

val occurrences : t -> int -> int
(** [occurrences l e] counts slots running element [e] per cycle. *)

val load : t -> float
(** Fraction of busy slots per cycle. *)

val validate : Comm_graph.t -> t -> (unit, string list) result
(** Well-formedness check described above; also rejects slots referring
    to elements outside the communication graph. *)

val rotate : t -> int -> t
(** [rotate l k] starts the cycle [k] slots later; the induced trace
    tail is unchanged, so latencies w.r.t. asynchronous constraints are
    preserved. *)

val concat : t -> t -> t
(** [concat a b] plays one cycle of [a] then one cycle of [b]. *)

val repeat : t -> int -> t
(** [repeat l k] concatenates [k >= 1] copies of [l] (same induced
    trace). *)

val equal : t -> t -> bool
(** Slot-wise equality of one cycle. *)

val to_string : Comm_graph.t -> t -> string
(** Render as space-separated element names with ["."] for idle,
    e.g. ["f_x f_s f_s . f_k"]. *)

val of_string : Comm_graph.t -> string -> (t, string) result
(** [of_string g s] parses the {!to_string} format (whitespace
    separated element names, ["."] for idle).  Errors on unknown
    element names or an empty schedule.  Inverse of {!to_string}:
    [of_string g (to_string g l) = Ok l]. *)

val pp : Format.formatter -> t -> unit
(** Render with element ids: ["[0 1 1 . 3]"]. *)
