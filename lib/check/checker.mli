(** The trusted certificate checker.

    Re-validates a schedule against a model in one pass over the
    certificate, depending only on the model vocabulary
    ([Model]/[Schedule]/[Timing]/[Trace]) — no engines, no pool, no
    caches; the dune boundary of this library is the trust boundary.

    Soundness argument (uniprocessor): the checker first insists the
    schedule is well-formed ({!Rt_base.Schedule.validate}), so the
    induced trace's instance structure repeats with the cycle.  Each
    witness execution is then re-validated slot-by-slot against the
    checker's own trace decomposition (instances exist, distinct nodes
    take distinct instances, precedence edges respect finish-before-
    start).  For an asynchronous constraint [(C,p,d)] the covering
    chain [e_1 .. e_k] proves every window of length [d] starting in
    [\[0, cycle)] contains an execution ([finish e_1 <= d] covers
    starts [0..start e_1]; [finish e_(i+1) <= start e_i + 1 + d]
    covers starts [(start e_i, start e_(i+1)]]; [start e_k >= cycle-1]
    reaches the cycle boundary), and periodicity extends the proof to
    every window.  For a periodic constraint, one witnessed execution
    per invocation phase over [lcm(p, cycle)] covers all invocations
    for the same reason. *)

open Rt_base

val check : Model.t -> Certificate.t -> (unit, string list) result
(** [check m cert] accepts iff [cert] proves its schedule feasible
    for [m].  All diagnostics are returned on failure. *)

val check_multi : Model.t -> Certificate.mp -> (unit, string list) result
(** Multiprocessor counterpart: re-derives the window arithmetic
    (polling transformation, window chaining, topological op order)
    from the model and replays the dispatcher cursor over the
    processor tables and the bus. *)

val check_table : Model.t -> Certificate.mp_table -> (unit, string list) result
(** Contingency counterpart: checks the nominal system, every crash
    scenario (degradations applied as recorded in the scenario
    certificate), the reconfiguration-bound arithmetic
    [reconfig = detect + 1 + migration], that the dead processor is
    idle in its scenario, and that every retained constraint's nominal
    response leaves room for the reconfiguration latency
    ([response + reconfig <= scenario deadline]). *)
