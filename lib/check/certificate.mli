(** Schedule certificates: the self-contained evidence that a static
    schedule satisfies a graph-based model.

    Mok's Theorem-1 window conditions are the natural certificate for
    latency scheduling: a schedule is feasible iff every deadline
    window contains a complete execution of the constraint's task
    graph.  A certificate records, per constraint, the concrete
    executions witnessing those windows — slot-level instance
    assignments the independent {!Checker} re-validates against the
    model in one pass, without trusting any engine.

    Certificates are produced by the untrusted synthesis stack
    ([Rt_core.Certify], [Rt_multiproc.Mcert]) and consumed by the
    trusted {!Checker}; this module defines only the data and its
    digest/serialization, no validation logic. *)

open Rt_base

val version : int
(** Format version stamped into the JSON serialization. *)

type exec = (int * int) array
(** One execution of a task graph: element [(start, finish)] per
    task-graph node, indexed by node id.  [finish] is one past the
    last slot, matching {!Rt_base.Trace.instance}. *)

type witness =
  | Async of exec list
      (** A covering chain for an asynchronous constraint [(C,p,d)]:
          executions [e_1; e_2; ...] ascending by start such that
          [finish e_1 <= d], [finish e_(i+1) <= start e_i + 1 + d] and
          [start e_last >= cycle - 1].  Together with well-formedness
          (periodic instance structure) this proves every window of
          length [d] contains an execution. *)
  | Periodic of exec array
      (** One execution per invocation [t = offset + k*p] for
          [k < lcm(p, cycle) / p], each inside [\[t, t+d\]]. *)

type t = {
  digest : string;  (** Digest of the model this certifies against. *)
  schedule : Schedule.t;  (** The schedule being certified. *)
  witnesses : (string * witness) list;
      (** Exactly one witness per model constraint, by name. *)
}

val digest_of_model : Model.t -> string
(** A digest of the model's canonical rendering (elements, edges,
    constraints); certificates are only meaningful against the model
    they were computed for, and the checker rejects a mismatch. *)

val make : Model.t -> Schedule.t -> (string * witness) list -> t
(** [make m l ws] stamps the certificate with [digest_of_model m]. *)

val equal : t -> t -> bool
(** Structural equality (used by the mutation harness to discard
    identity mutants). *)

val to_json : t -> string
(** Serialize to the JSON document [rtsyn check --certificate]
    consumes (parsing lives in [Rt_spec.Persist], which may use the
    observability JSON reader; this library stays dependency-free). *)

(** {1 Multiprocessor certificates}

    A distributed system's evidence is the full table: per-processor
    schedules, the bus schedule and the window decomposition of every
    constraint.  The checker re-derives the window arithmetic (polling
    transformation, window chaining, topological op order) from the
    model and replays the dispatcher cursor over the tables. *)

type mp_piece =
  | Mp_segment of {
      processor : int;
      ops : int list;  (** Element ids, in execution order. *)
      start_off : int;
      end_off : int;  (** Window [\[start_off, end_off)] relative to
                          the invocation. *)
    }
  | Mp_message of { cost : int; start_off : int; end_off : int }

type mp_plan = {
  source : string;  (** Constraint name this plan implements. *)
  period : int;  (** Effective period (polling period for async). *)
  pieces : mp_piece list;  (** Windows chained within one invocation. *)
}

type mp = {
  mp_digest : string;
  hyperperiod : int;
  processors : Schedule.t array;
  bus : string option array;
      (** [bus.(slot) = Some "name@t/i"] reserves the slot for piece
          [i] of [name]'s invocation at [t]. *)
  mp_plans : mp_plan list;
  mp_dropped : string list;
      (** Constraints shed by a degraded contingency scenario (empty
          for a nominal certificate). *)
  mp_overrides : (string * int * int) list;
      (** [(name, period, deadline)] in effect for stretched
          constraints of a degraded scenario. *)
}

val mp_make :
  Model.t ->
  hyperperiod:int ->
  processors:Schedule.t array ->
  bus:string option array ->
  plans:mp_plan list ->
  ?dropped:string list ->
  ?overrides:(string * int * int) list ->
  unit ->
  mp

val mp_equal : mp -> mp -> bool

val mp_to_json : mp -> string

(** {1 Contingency certificates} *)

type mp_table = {
  t_nominal : mp;
  t_scenarios : (int * mp) list;
      (** [(dead processor, scenario certificate)] for every feasible
          crash scenario. *)
  t_detect : int;
  t_migration : int;
  t_reconfig : int;  (** Must equal [t_detect + 1 + t_migration]. *)
}

val table_to_json : mp_table -> string
