open Rt_base

let version = 1

type exec = (int * int) array

type witness = Async of exec list | Periodic of exec array

type t = {
  digest : string;
  schedule : Schedule.t;
  witnesses : (string * witness) list;
}

(* FNV-1a over the canonical model rendering.  Not cryptographic — the
   digest defends against stale or mismatched certificates, not
   against an adversary forging a colliding model. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "fnv1a:%016Lx" !h

let digest_of_model (m : Model.t) =
  let b = Buffer.create 256 in
  let g = m.Model.comm in
  Buffer.add_string b "G:";
  List.iter
    (fun (e : Element.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%d,%b;" e.Element.name e.Element.weight
           e.Element.pipelinable))
    (Comm_graph.elements g);
  Buffer.add_string b "E:";
  List.iter
    (fun (u, v) -> Buffer.add_string b (Printf.sprintf "%d-%d;" u v))
    (Rt_graph.Digraph.edges (Comm_graph.graph g));
  Buffer.add_string b "T:";
  List.iter
    (fun (c : Timing.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%d,%d,[" c.Timing.name
           (Timing.kind_to_string c.Timing.kind)
           c.Timing.period c.Timing.deadline c.Timing.offset);
      Array.iter
        (fun e -> Buffer.add_string b (Printf.sprintf "%d " e))
        (Task_graph.node_elements c.Timing.graph);
      Buffer.add_string b "],[";
      List.iter
        (fun (u, v) -> Buffer.add_string b (Printf.sprintf "%d-%d " u v))
        (Task_graph.edges c.Timing.graph);
      Buffer.add_string b "];")
    m.Model.constraints;
  fnv1a (Buffer.contents b)

let make m schedule witnesses =
  { digest = digest_of_model m; schedule; witnesses }

let witness_equal a b =
  match (a, b) with
  | Async xs, Async ys -> xs = ys
  | Periodic xs, Periodic ys -> xs = ys
  | _ -> false

let equal a b =
  a.digest = b.digest
  && Schedule.equal a.schedule b.schedule
  && List.length a.witnesses = List.length b.witnesses
  && List.for_all2
       (fun (n1, w1) (n2, w2) -> n1 = n2 && witness_equal w1 w2)
       a.witnesses b.witnesses

(* JSON writing: hand-rolled so this library keeps zero dependencies
   beyond the model vocabulary.  Parsing lives in Rt_spec.Persist. *)

let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_list b xs f =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f x)
    xs;
  Buffer.add_char b ']'

let json_schedule b l =
  json_list b
    (Array.to_list (Schedule.slots l))
    (function
      | Schedule.Idle -> Buffer.add_string b "-1"
      | Schedule.Run e -> Buffer.add_string b (string_of_int e))

let json_exec b (x : exec) =
  json_list b (Array.to_list x) (fun (s, f) ->
      Buffer.add_string b (Printf.sprintf "[%d,%d]" s f))

let json_witness b (name, w) =
  Buffer.add_string b "{\"constraint\":";
  json_string b name;
  (match w with
  | Async execs ->
      Buffer.add_string b ",\"kind\":\"async\",\"execs\":";
      json_list b execs (json_exec b)
  | Periodic execs ->
      Buffer.add_string b ",\"kind\":\"periodic\",\"execs\":";
      json_list b (Array.to_list execs) (json_exec b));
  Buffer.add_char b '}'

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"format\":\"rtsyn-certificate\",\"version\":";
  Buffer.add_string b (string_of_int version);
  Buffer.add_string b ",\"digest\":";
  json_string b t.digest;
  Buffer.add_string b ",\"schedule\":";
  json_schedule b t.schedule;
  Buffer.add_string b ",\"witnesses\":";
  json_list b t.witnesses (json_witness b);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Multiprocessor certificates *)

type mp_piece =
  | Mp_segment of {
      processor : int;
      ops : int list;
      start_off : int;
      end_off : int;
    }
  | Mp_message of { cost : int; start_off : int; end_off : int }

type mp_plan = { source : string; period : int; pieces : mp_piece list }

type mp = {
  mp_digest : string;
  hyperperiod : int;
  processors : Schedule.t array;
  bus : string option array;
  mp_plans : mp_plan list;
  mp_dropped : string list;
  mp_overrides : (string * int * int) list;
}

let mp_make m ~hyperperiod ~processors ~bus ~plans ?(dropped = [])
    ?(overrides = []) () =
  {
    mp_digest = digest_of_model m;
    hyperperiod;
    processors;
    bus;
    mp_plans = plans;
    mp_dropped = dropped;
    mp_overrides = overrides;
  }

let mp_equal a b =
  a.mp_digest = b.mp_digest
  && a.hyperperiod = b.hyperperiod
  && Array.length a.processors = Array.length b.processors
  && Array.for_all2 Schedule.equal a.processors b.processors
  && a.bus = b.bus
  && a.mp_plans = b.mp_plans
  && a.mp_dropped = b.mp_dropped
  && a.mp_overrides = b.mp_overrides

let json_piece b = function
  | Mp_segment s ->
      Buffer.add_string b
        (Printf.sprintf "{\"seg\":%d,\"ops\":[%s],\"w\":[%d,%d]}" s.processor
           (String.concat "," (List.map string_of_int s.ops))
           s.start_off s.end_off)
  | Mp_message msg ->
      Buffer.add_string b
        (Printf.sprintf "{\"msg\":%d,\"w\":[%d,%d]}" msg.cost msg.start_off
           msg.end_off)

let json_mp_plan b (p : mp_plan) =
  Buffer.add_string b "{\"source\":";
  json_string b p.source;
  Buffer.add_string b (Printf.sprintf ",\"period\":%d,\"pieces\":" p.period);
  json_list b p.pieces (json_piece b);
  Buffer.add_char b '}'

let json_mp b t =
  Buffer.add_string b "{\"digest\":";
  json_string b t.mp_digest;
  Buffer.add_string b (Printf.sprintf ",\"hyperperiod\":%d" t.hyperperiod);
  Buffer.add_string b ",\"processors\":";
  json_list b (Array.to_list t.processors) (json_schedule b);
  Buffer.add_string b ",\"bus\":";
  json_list b
    (Array.to_list t.bus)
    (function
      | None -> Buffer.add_string b "null"
      | Some s -> json_string b s);
  Buffer.add_string b ",\"plans\":";
  json_list b t.mp_plans (json_mp_plan b);
  Buffer.add_string b ",\"dropped\":";
  json_list b t.mp_dropped (json_string b);
  Buffer.add_string b ",\"overrides\":";
  json_list b t.mp_overrides (fun (n, p, d) ->
      Buffer.add_string b "[";
      json_string b n;
      Buffer.add_string b (Printf.sprintf ",%d,%d]" p d));
  Buffer.add_char b '}'

let mp_to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "{\"format\":\"rtsyn-certificate-mp\",\"version\":";
  Buffer.add_string b (string_of_int version);
  Buffer.add_string b ",\"system\":";
  json_mp b t;
  Buffer.add_string b "}\n";
  Buffer.contents b

type mp_table = {
  t_nominal : mp;
  t_scenarios : (int * mp) list;
  t_detect : int;
  t_migration : int;
  t_reconfig : int;
}

let table_to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "{\"format\":\"rtsyn-certificate-contingency\",\"version\":";
  Buffer.add_string b (string_of_int version);
  Buffer.add_string b
    (Printf.sprintf ",\"detect\":%d,\"migration\":%d,\"reconfig\":%d" t.t_detect
       t.t_migration t.t_reconfig);
  Buffer.add_string b ",\"nominal\":";
  json_mp b t.t_nominal;
  Buffer.add_string b ",\"scenarios\":";
  json_list b t.t_scenarios (fun (dead, mp) ->
      Buffer.add_string b (Printf.sprintf "{\"dead\":%d,\"system\":" dead);
      json_mp b mp;
      Buffer.add_char b '}');
  Buffer.add_string b "}\n";
  Buffer.contents b
