open Rt_base
open Certificate

let err errs fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt

let finish_errs errs =
  match List.rev !errs with [] -> Ok () | es -> Error es

(* {1 Uniprocessor} *)

(* Re-validate one claimed execution against the checker's own trace
   decomposition: every node's instance exists exactly as claimed,
   distinct nodes take distinct instances, precedence edges finish
   before their consumer starts, and every slot lies in [lo, hi]. *)
let check_exec errs tr (c : Timing.t) ~label ~lo ~hi (x : Certificate.exec) =
  let tg = c.Timing.graph in
  let n = Task_graph.size tg in
  if Array.length x <> n then begin
    err errs "%s: witness has %d entries for %d task-graph nodes" label
      (Array.length x) n;
    None
  end
  else begin
    let ok = ref true in
    let bad fmt = Printf.ksprintf (fun s -> ok := false; errs := s :: !errs) fmt in
    Array.iteri
      (fun v (s, f) ->
        let e = Task_graph.element_of_node tg v in
        (match Trace.first_at_or_after tr ~elem:e ~time:s with
        | Some inst when inst.Trace.start = s && inst.Trace.finish = f -> ()
        | _ ->
            bad "%s: node %d claims an execution of element %d at [%d,%d) \
                 that the trace does not contain"
              label v e s f);
        if s < lo || f > hi then
          bad "%s: node %d execution [%d,%d) outside window [%d,%d]" label v s
            f lo hi)
      x;
    let seen = Hashtbl.create 8 in
    Array.iteri
      (fun v (s, _) ->
        let e = Task_graph.element_of_node tg v in
        match Hashtbl.find_opt seen (e, s) with
        | Some v0 ->
            bad "%s: nodes %d and %d share the instance of element %d at %d"
              label v0 v e s
        | None -> Hashtbl.add seen (e, s) v)
      x;
    List.iter
      (fun (u, v) ->
        let _, fu = x.(u) and sv, _ = x.(v) in
        if fu > sv then
          bad "%s: precedence %d->%d violated (finish %d > start %d)" label u
            v fu sv)
      (Task_graph.edges tg);
    if not !ok then None
    else
      Some
        ( Array.fold_left (fun a (s, _) -> min a s) max_int x,
          Array.fold_left (fun a (_, f) -> max a f) 0 x )
  end

(* Invocation phases of a periodic constraint repeat with
   lcm(period, cycle); [None] when that overflows. *)
let super_of cycle (c : Timing.t) =
  match Rt_graph.Intmath.lcm c.Timing.period cycle with
  | s -> Some s
  | exception Rt_graph.Intmath.Overflow -> None

let check_witness errs tr ~cycle (c : Timing.t) w =
  let d = c.Timing.deadline in
  let name = c.Timing.name in
  match (c.Timing.kind, w) with
  | Timing.Periodic, Certificate.Async _
  | Timing.Asynchronous, Certificate.Periodic _ ->
      err errs "%s: witness kind does not match the constraint" name
  | Timing.Asynchronous, Certificate.Async execs -> (
      (* Covering chain: e_1 covers window starts [0, s_1]; e_(i+1)
         covers (s_i, s_(i+1)]; the last start reaches the cycle
         boundary; periodicity of the well-formed schedule does the
         rest. *)
      match execs with
      | [] -> err errs "%s: empty witness chain" name
      | first :: rest ->
          let prev =
            ref (check_exec errs tr c ~label:name ~lo:0 ~hi:d first)
          in
          List.iter
            (fun x ->
              match !prev with
              | None -> ()
              | Some (s_prev, _) -> (
                  match
                    check_exec errs tr c ~label:name ~lo:0
                      ~hi:(s_prev + 1 + d) x
                  with
                  | Some (s, _) when s <= s_prev ->
                      err errs
                        "%s: chain starts not increasing (%d after %d)" name
                        s s_prev;
                      prev := None
                  | r -> prev := r))
            rest;
          (match !prev with
          | Some (s_last, _) when s_last < cycle - 1 ->
              err errs
                "%s: chain stops at start %d, before the cycle boundary %d"
                name s_last (cycle - 1)
          | _ -> ()))
  | Timing.Periodic, Certificate.Periodic execs -> (
      match super_of cycle c with
      | None ->
          err errs "%s: lcm(period, cycle) overflows; cannot certify" name
      | Some super ->
          let n_inv = super / c.Timing.period in
          if Array.length execs <> n_inv then
            err errs "%s: %d witnessed invocations, expected %d" name
              (Array.length execs) n_inv
          else
            Array.iteri
              (fun k x ->
                let t = c.Timing.offset + (k * c.Timing.period) in
                ignore
                  (check_exec errs tr c
                     ~label:(Printf.sprintf "%s@%d" name t)
                     ~lo:t ~hi:(t + d) x))
              execs)

let check (m : Model.t) (cert : Certificate.t) =
  let errs = ref [] in
  let digest = Certificate.digest_of_model m in
  if cert.Certificate.digest <> digest then
    err errs "digest mismatch: certificate %s, model %s"
      cert.Certificate.digest digest;
  (match Schedule.validate m.Model.comm cert.Certificate.schedule with
  | Ok () -> ()
  | Error es -> List.iter (fun e -> err errs "schedule: %s" e) es);
  (* Name cross-checks via hash sets: the daemon re-checks certificates
     on every admission, so these passes must stay linear at 10k
     constraints (List.mem here was quadratic and dominated admission). *)
  let names = List.map (fun (c : Timing.t) -> c.Timing.name) m.Model.constraints in
  let wnames = List.map fst cert.Certificate.witnesses in
  let name_set = Hashtbl.create (List.length names) in
  List.iter (fun n -> Hashtbl.replace name_set n ()) names;
  let witness_tbl = Hashtbl.create (List.length wnames) in
  List.iter
    (fun (n, w) ->
      if Hashtbl.mem witness_tbl n then err errs "duplicate witness for %s" n
      else Hashtbl.add witness_tbl n w)
    cert.Certificate.witnesses;
  List.iter
    (fun n ->
      if not (Hashtbl.mem witness_tbl n) then
        err errs "missing witness for constraint %s" n)
    names;
  List.iter
    (fun n ->
      if not (Hashtbl.mem name_set n) then
        err errs "witness for unknown constraint %s" n)
    wnames;
  match finish_errs errs with
  | Error _ as e -> e
  | Ok () ->
      let cycle = Schedule.length cert.Certificate.schedule in
      (* Bound the horizon from the model before trusting any witness
         coordinate, so a corrupt certificate cannot make the checker
         unroll an unbounded trace. *)
      let cap =
        List.fold_left
          (fun acc (c : Timing.t) ->
            let reach =
              match c.Timing.kind with
              | Timing.Asynchronous -> cycle + (2 * c.Timing.deadline) + 2
              | Timing.Periodic -> (
                  match super_of cycle c with
                  | Some super -> super + c.Timing.deadline + 1
                  | None -> acc)
            in
            max acc reach)
          cycle m.Model.constraints
      in
      let horizon = ref cycle in
      let in_range = ref true in
      List.iter
        (fun (_, w) ->
          let execs =
            match w with
            | Certificate.Async es -> es
            | Certificate.Periodic es -> Array.to_list es
          in
          List.iter
            (Array.iter (fun (s, f) ->
                 if s < 0 || f < s || f > cap then in_range := false
                 else horizon := max !horizon f))
            execs)
        cert.Certificate.witnesses;
      if not !in_range then
        Error [ "witness coordinates outside the certifiable range" ]
      else begin
        let tr =
          Trace.of_schedule m.Model.comm cert.Certificate.schedule
            ~horizon:!horizon
        in
        List.iter
          (fun (c : Timing.t) ->
            match Hashtbl.find_opt witness_tbl c.Timing.name with
            | Some w -> check_witness errs tr ~cycle c w
            | None -> ())
          m.Model.constraints;
        finish_errs errs
      end

(* {1 Multiprocessor} *)

(* Is [seq] (element ids) the image of some topological linearization
   of [tg] covering every node?  Backtracking; task graphs are tiny. *)
let topo_matchable tg seq =
  let n = Task_graph.size tg in
  let g = Task_graph.graph tg in
  if List.length seq <> n then false
  else begin
    let used = Array.make n false in
    let rec go = function
      | [] -> true
      | e :: rest ->
          let rec try_node v =
            if v >= n then false
            else if
              (not used.(v))
              && Task_graph.element_of_node tg v = e
              && List.for_all
                   (fun p -> used.(p))
                   (Rt_graph.Digraph.pred g v)
            then begin
              used.(v) <- true;
              if go rest then true
              else begin
                used.(v) <- false;
                try_node (v + 1)
              end
            end
            else try_node (v + 1)
          in
          try_node 0
    in
    go seq
  end

let piece_window = function
  | Certificate.Mp_segment s -> (s.start_off, s.end_off)
  | Certificate.Mp_message m -> (m.start_off, m.end_off)

let plan_deadline (p : Certificate.mp_plan) =
  List.fold_left (fun acc pc -> max acc (snd (piece_window pc))) 0 p.pieces

(* Structural pass + dispatcher-cursor replay.  Returns the realized
   worst response per plan (used by the contingency slack check). *)
let mp_responses (m : Model.t) (t : Certificate.mp) =
  let errs = ref [] in
  let g = m.Model.comm in
  let digest = Certificate.digest_of_model m in
  if t.Certificate.mp_digest <> digest then
    err errs "digest mismatch: certificate %s, model %s"
      t.Certificate.mp_digest digest;
  let hyper = t.Certificate.hyperperiod in
  if hyper < 1 then err errs "hyperperiod %d < 1" hyper;
  let n_procs = Array.length t.Certificate.processors in
  if n_procs = 0 then err errs "no processor schedules";
  (* The cursor replay never uses the instance decomposition, so the
     per-processor tables need not be well-formed in the uniprocessor
     sense — but every slot must name a real element. *)
  let n_elems = Comm_graph.n_elements g in
  Array.iteri
    (fun i l ->
      Array.iter
        (function
          | Schedule.Idle -> ()
          | Schedule.Run e ->
              if e < 0 || e >= n_elems then
                err errs "processor %d: slot names unknown element %d" i e)
        (Schedule.slots l);
      if hyper >= 1 && hyper mod Schedule.length l <> 0 then
        err errs "processor %d: cycle %d does not divide hyperperiod %d" i
          (Schedule.length l) hyper)
    t.Certificate.processors;
  let bus_len = Array.length t.Certificate.bus in
  if bus_len > 0 && hyper >= 1 && hyper mod bus_len <> 0 then
    err errs "bus length %d does not divide hyperperiod %d" bus_len hyper;
  let find_c name =
    List.find_opt
      (fun (c : Timing.t) -> c.Timing.name = name)
      m.Model.constraints
  in
  List.iter
    (fun n ->
      if find_c n = None then err errs "dropped unknown constraint %s" n)
    t.Certificate.mp_dropped;
  List.iter
    (fun (n, p, d) ->
      if find_c n = None then err errs "override for unknown constraint %s" n;
      if List.mem n t.Certificate.mp_dropped then
        err errs "constraint %s both dropped and overridden" n;
      if p < 1 || d < 1 then
        err errs "override for %s: period %d / deadline %d out of range" n p d)
    t.Certificate.mp_overrides;
  let retained =
    List.filter
      (fun (c : Timing.t) ->
        not (List.mem c.Timing.name t.Certificate.mp_dropped))
      m.Model.constraints
  in
  List.iter
    (fun (c : Timing.t) ->
      match
        List.filter
          (fun (p : Certificate.mp_plan) -> p.Certificate.source = c.Timing.name)
          t.Certificate.mp_plans
      with
      | [ _ ] -> ()
      | [] -> err errs "no plan for constraint %s" c.Timing.name
      | _ -> err errs "multiple plans for constraint %s" c.Timing.name)
    retained;
  List.iter
    (fun (p : Certificate.mp_plan) ->
      if
        not
          (List.exists
             (fun (c : Timing.t) -> c.Timing.name = p.Certificate.source)
             retained)
      then err errs "plan %s names no retained constraint" p.Certificate.source)
    t.Certificate.mp_plans;
  (* Per-plan window arithmetic, re-derived from the model. *)
  List.iter
    (fun (p : Certificate.mp_plan) ->
      match
        List.find_opt
          (fun (c : Timing.t) -> c.Timing.name = p.Certificate.source)
          retained
      with
      | None -> ()
      | Some c ->
          let name = p.Certificate.source in
          let p_eff, d_eff =
            match
              List.find_opt
                (fun (n, _, _) -> n = name)
                t.Certificate.mp_overrides
            with
            | Some (_, p', d') -> (p', d')
            | None -> (c.Timing.period, c.Timing.deadline)
          in
          if p.Certificate.pieces = [] then err errs "plan %s has no pieces" name;
          let last_end =
            List.fold_left
              (fun prev_end piece ->
                let s, e = piece_window piece in
                if s < prev_end then
                  err errs "plan %s: window [%d,%d) breaks the chain at %d"
                    name s e prev_end;
                if e < s || s < 0 then
                  err errs "plan %s: malformed window [%d,%d)" name s e;
                max prev_end e)
              0 p.Certificate.pieces
          in
          if p.Certificate.period < 1 then
            err errs "plan %s: period %d < 1" name p.Certificate.period
          else if hyper >= 1 && hyper mod p.Certificate.period <> 0 then
            err errs "plan %s: period %d does not divide hyperperiod %d" name
              p.Certificate.period hyper;
          (* Successive invocations of a plan must not overlap, or the
             cursor replay could double-count slots. *)
          if last_end > p.Certificate.period then
            err errs "plan %s: windows end at %d, after the period %d" name
              last_end p.Certificate.period;
          (match c.Timing.kind with
          | Timing.Periodic ->
              if c.Timing.offset <> 0 then
                err errs
                  "plan %s: nonzero release offsets are unsupported by the \
                   distributed dispatcher"
                  name;
              if p.Certificate.period <> p_eff then
                err errs "plan %s: period %d differs from the constraint's %d"
                  name p.Certificate.period p_eff;
              if last_end > d_eff then
                err errs "plan %s: windows end at %d, after the deadline %d"
                  name last_end d_eff
          | Timing.Asynchronous ->
              (* Polling soundness (Theorem 3 shape): completing C
                 within [kq, kq+D) every period q serves any invocation
                 within q + D - 1 <= d. *)
              if p.Certificate.period + last_end > d_eff + 1 then
                err errs
                  "plan %s: polling period %d + completion %d exceeds \
                   deadline %d + 1"
                  name p.Certificate.period last_end d_eff);
          let seq =
            List.concat_map
              (function
                | Certificate.Mp_segment s -> s.ops
                | Certificate.Mp_message _ -> [])
              p.Certificate.pieces
          in
          if not (topo_matchable c.Timing.graph seq) then
            err errs
              "plan %s: segment ops are not a topological linearization of \
               the task graph"
              name;
          List.iter
            (function
              | Certificate.Mp_segment s ->
                  if s.processor < 0 || s.processor >= n_procs
                  then
                    err errs "plan %s: segment on unknown processor %d" name
                      s.processor
              | Certificate.Mp_message msg ->
                  if msg.cost < 0 then
                    err errs "plan %s: negative message cost" name)
            p.Certificate.pieces)
    t.Certificate.mp_plans;
  match finish_errs errs with
  | Error _ as e -> e
  | Ok () ->
      (* Replay the dispatcher cursor over every invocation in one
         hyperperiod; everything repeats beyond it. *)
      let responses =
        List.map
          (fun (p : Certificate.mp_plan) ->
            let worst = ref 0 in
            let t0 = ref 0 in
            while !t0 < hyper do
              let completion = ref !t0 in
              List.iteri
                (fun i piece ->
                  let s_off, e_off = piece_window piece in
                  let w0 = !t0 + s_off and w1 = !t0 + e_off in
                  match piece with
                  | Certificate.Mp_segment s ->
                      let sched = t.Certificate.processors.(s.processor) in
                      let cursor = ref w0 in
                      List.iter
                        (fun e ->
                          let needed = ref (Comm_graph.weight g e) in
                          while !needed > 0 && !cursor < w1 do
                            (if Schedule.slot sched !cursor = Schedule.Run e
                             then decr needed);
                            incr cursor
                          done;
                          if !needed > 0 then begin
                            err errs
                              "%s@%d piece %d: element %d not completed in \
                               window [%d,%d) on processor %d"
                              p.Certificate.source !t0 i e w0 w1
                              s.processor;
                            cursor := w1
                          end)
                        s.ops;
                      completion := max !completion !cursor
                  | Certificate.Mp_message msg ->
                      if msg.cost > 0 then begin
                        let label =
                          Printf.sprintf "%s@%d/%d" p.Certificate.source !t0 i
                        in
                        let needed = ref msg.cost in
                        let cursor = ref w0 in
                        let limit = min w1 bus_len in
                        while !needed > 0 && !cursor < limit do
                          (if t.Certificate.bus.(!cursor) = Some label then
                             decr needed);
                          incr cursor
                        done;
                        if !needed > 0 then begin
                          err errs
                            "%s: message %d slots short in window [%d,%d)"
                            label !needed w0 w1;
                          cursor := w1
                        end;
                        completion := max !completion !cursor
                      end)
                p.Certificate.pieces;
              worst := max !worst (!completion - !t0);
              t0 := !t0 + p.Certificate.period
            done;
            (p.Certificate.source, !worst))
          t.Certificate.mp_plans
      in
      (match finish_errs errs with
      | Ok () -> Ok responses
      | Error _ as e -> e)

let check_multi m t =
  match mp_responses m t with Ok _ -> Ok () | Error _ as e -> e

let check_table (m : Model.t) (tbl : Certificate.mp_table) =
  let errs = ref [] in
  if tbl.Certificate.t_detect < 0 || tbl.Certificate.t_migration < 0 then
    err errs "negative reconfiguration components";
  if
    tbl.Certificate.t_reconfig
    <> tbl.Certificate.t_detect + 1 + tbl.Certificate.t_migration
  then
    err errs "reconfiguration bound %d is not detect %d + 1 + migration %d"
      tbl.Certificate.t_reconfig tbl.Certificate.t_detect
      tbl.Certificate.t_migration;
  let nominal = tbl.Certificate.t_nominal in
  if nominal.Certificate.mp_dropped <> [] || nominal.Certificate.mp_overrides <> []
  then err errs "nominal system must not be degraded";
  let responses =
    match mp_responses m nominal with
    | Ok rs -> rs
    | Error es ->
        List.iter (fun e -> err errs "nominal: %s" e) es;
        []
  in
  let n_procs = Array.length nominal.Certificate.processors in
  List.iter
    (fun (dead, (smp : Certificate.mp)) ->
      let tag fmt = Printf.ksprintf (fun s -> s) fmt in
      let pre = tag "crash p%d" dead in
      if dead < 0 || dead >= n_procs then
        err errs "%s: no such processor" pre
      else begin
        (match mp_responses m smp with
        | Ok _ -> ()
        | Error es -> List.iter (fun e -> err errs "%s: %s" pre e) es);
        if dead < Array.length smp.Certificate.processors then begin
          let sched = smp.Certificate.processors.(dead) in
          if
            not
              (Array.for_all
                 (fun s -> s = Schedule.Idle)
                 (Schedule.slots sched))
          then err errs "%s: dead processor is not idle in the scenario" pre
        end;
        (* An invocation in flight when the crash hits must absorb the
           whole reconfiguration latency and still meet the scenario's
           (possibly stretched) deadline. *)
        List.iter
          (fun (p : Certificate.mp_plan) ->
            match List.assoc_opt p.Certificate.source responses with
            | None -> ()
            | Some response ->
                let deadline = plan_deadline p in
                if response + tbl.Certificate.t_reconfig > deadline then
                  err errs
                    "%s: %s response %d + reconfiguration %d exceeds \
                     deadline %d"
                    pre p.Certificate.source response
                    tbl.Certificate.t_reconfig deadline)
          smp.Certificate.mp_plans
      end)
    tbl.Certificate.t_scenarios;
  finish_errs errs
