open Rt_core

let elaborate (sys : Ast.system) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let elements =
    List.map
      (fun (e : Ast.element_decl) -> (e.el_name, e.el_weight, e.el_pipelinable))
      sys.sy_elements
  in
  let edges =
    List.map (fun (e : Ast.edge_decl) -> (e.ed_src, e.ed_dst)) sys.sy_edges
  in
  match Comm_graph.create ~elements ~edges with
  | exception Invalid_argument msg -> Error [ msg ]
  | comm ->
      let build_constraint (c : Ast.constraint_decl) =
        let resolve name =
          match Comm_graph.find_opt comm name with
          | Some e -> Some e.Element.id
          | None ->
              err "constraint %s: unknown element %s" c.co_name name;
              None
        in
        let named =
          List.concat c.co_chains |> List.sort_uniq String.compare
        in
        let resolved = List.filter_map resolve named in
        if List.length resolved <> List.length named then None
        else begin
          let nodes = Array.of_list resolved in
          let index = Hashtbl.create 8 in
          Array.iteri
            (fun i e -> Hashtbl.replace index e i)
            nodes;
          let edge_list = ref [] in
          List.iter
            (fun chain ->
              let rec walk = function
                | a :: (b :: _ as rest) ->
                    let ia = Hashtbl.find index (Comm_graph.id_of_name comm a)
                    and ib = Hashtbl.find index (Comm_graph.id_of_name comm b) in
                    edge_list := (ia, ib) :: !edge_list;
                    walk rest
                | _ -> ()
              in
              walk chain)
            c.co_chains;
          match
            Task_graph.create ~nodes ~edges:(List.sort_uniq compare !edge_list)
          with
          | exception Invalid_argument msg ->
              err "constraint %s: %s" c.co_name msg;
              None
          | graph -> (
              let kind =
                match c.co_kind with
                | Ast.K_periodic -> Timing.Periodic
                | Ast.K_asynchronous -> Timing.Asynchronous
              in
              match
                let t =
                  Timing.make ~name:c.co_name ~graph ~period:c.co_period
                    ~deadline:c.co_deadline ~kind
                in
                if c.co_offset = 0 then t else Timing.with_offset t c.co_offset
              with
              | t -> Some t
              | exception Invalid_argument msg ->
                  err "constraint %s: %s" c.co_name msg;
                  None)
        end
      in
      let constraints = List.filter_map build_constraint sys.sy_constraints in
      (* Validate assert declarations against the communication graph. *)
      List.iter
        (fun (a : Ast.assert_decl) ->
          match (Comm_graph.find_opt comm a.as_src, Comm_graph.find_opt comm a.as_dst) with
          | Some u, Some v ->
              if not (Comm_graph.has_edge comm u.Element.id v.Element.id) then
                err "assert %s -> %s: no such communication edge" a.as_src
                  a.as_dst;
              if a.as_lo > a.as_hi then
                err "assert %s -> %s: empty interval [%d, %d]" a.as_src
                  a.as_dst a.as_lo a.as_hi
          | None, _ -> err "assert: unknown element %s" a.as_src
          | _, None -> err "assert: unknown element %s" a.as_dst)
        sys.sy_asserts;
      if !errs <> [] then Error (List.rev !errs)
      else begin
        match Model.validate ~comm ~constraints with
        | Error es -> Error es
        | Ok () -> Ok (Model.make ~comm ~constraints)
      end

let elaborate_exn sys =
  match elaborate sys with
  | Ok m -> m
  | Error errs -> invalid_arg (String.concat "; " errs)

let load src =
  match Parser.parse_result src with
  | Error e -> Error [ e ]
  | Ok sys -> elaborate sys

let load_with_assertions src =
  match Parser.parse_result src with
  | Error e -> Error [ e ]
  | Ok sys -> (
      match elaborate sys with
      | Error es -> Error es
      | Ok m ->
          Ok
            ( m,
              List.map
                (fun (a : Ast.assert_decl) ->
                  ( a.as_src,
                    a.as_dst,
                    float_of_int a.as_lo,
                    float_of_int a.as_hi ))
                sys.sy_asserts ))
