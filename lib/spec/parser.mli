(** Recursive-descent parser for the specification language.

    Grammar (keywords are ordinary identifiers with fixed spellings):

    {v
    system      ::= "system" STRING "{" item* "}"
    item        ::= element | edge | assert | constraint
    element     ::= "element" IDENT "weight" INT ("pipelinable"|"atomic") ";"
    edge        ::= "edge" IDENT "->" IDENT ";"
    assert      ::= "assert" IDENT "->" IDENT "in" "[" INT "," INT "]" ";"
    constraint  ::= "constraint" IDENT kind timing "{" chain* "}"
    kind        ::= "periodic" | "asynchronous"
    timing      ::= ("period"|"separation") INT "deadline" INT
                    ("offset" INT)?            (periodic only)
    chain       ::= IDENT ("->" IDENT)* ";"
    v} *)

exception Parse_error of Lexer.position * string
(** Raised with the position of the offending token. *)

val parse : string -> Ast.system
(** [parse src] parses a complete system.  Raises {!Parse_error} or
    [Lexer.Lex_error]. *)

val parse_result : string -> (Ast.system, string) result
(** Exception-free wrapper with a formatted "line:col: message"
    diagnostic. *)
