(** Abstract syntax of the requirements-specification language.

    The paper stresses that "the requirements specification language
    employed by the end user is of only secondary importance in so far
    as it permits a precise translation of user requirements into an
    instance of our graph-based model".  This is such a language — a
    small textual notation for communication graphs and timing
    constraints, standing in for CONSORT's graphical front end.

    Concrete syntax (see the parser for the grammar):

    {v
    system "control" {
      element f_x weight 1 pipelinable;
      element f_s weight 2 pipelinable;
      element io  weight 3 atomic;      # atomic = not pipelinable
      edge f_x -> f_s;
      constraint px periodic period 10 deadline 10 {
        f_x -> f_s -> f_k;
      }
      constraint pz asynchronous separation 50 deadline 15 {
        f_z -> f_s;
      }
    }
    v} *)

type element_decl = {
  el_name : string;
  el_weight : int;
  el_pipelinable : bool;
}

type edge_decl = { ed_src : string; ed_dst : string }

type constraint_kind = K_periodic | K_asynchronous

type constraint_decl = {
  co_name : string;
  co_kind : constraint_kind;
  co_period : int;  (** [period] for periodic, [separation] for async. *)
  co_deadline : int;
  co_offset : int;  (** Release offset; 0 when not written. *)
  co_chains : string list list;
      (** Each chain [a -> b -> c] contributes nodes and consecutive
          edges; a task graph is the union of its chains (each element
          names one node, so an element may appear in several chains to
          build DAG shapes). *)
}

type assert_decl = {
  as_src : string;  (** Producing element. *)
  as_dst : string;  (** Consuming element. *)
  as_lo : int;  (** Inclusive lower bound on transmitted values. *)
  as_hi : int;  (** Inclusive upper bound. *)
}
(** A logical-integrity relation on a communication edge — the paper's
    "relations on the data values that are being passed along the
    edges", checked by the value-carrying simulator. *)

type system = {
  sy_name : string;
  sy_elements : element_decl list;
  sy_edges : edge_decl list;
  sy_asserts : assert_decl list;
  sy_constraints : constraint_decl list;
}

val equal_system : system -> system -> bool
(** Structural equality up to list order of declarations being
    significant (declarations are ordered). *)
