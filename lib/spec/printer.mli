(** Pretty-printer: graph-based model -> specification source.

    The output parses back ({!Parser.parse}) and elaborates to a model
    with the same communication graph and the same constraints (task
    graphs compared up to node renumbering — the spec language
    identifies task-graph nodes with the elements they execute).

    Restriction: the spec language cannot express a task graph in which
    the same element occurs more than once, so {!print} raises
    [Invalid_argument] for such models. *)

val print :
  ?name:string ->
  ?assertions:(string * string * float * float) list ->
  Rt_core.Model.t ->
  string
(** [print m] renders [m] as specification source ([name] defaults to
    ["system"]).  [assertions] adds [assert src -> dst in [lo, hi];]
    declarations (bounds are truncated to integers — the spec language
    is integral). *)

val print_constraint : Rt_core.Model.t -> Rt_core.Timing.t -> string
(** Render a single constraint declaration. *)
