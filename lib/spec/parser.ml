exception Parse_error of Lexer.position * string

type state = { mutable toks : (Lexer.token * Lexer.position) list }

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> assert false (* the token list always ends with EOF *)

let advance st =
  match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let error st msg =
  let t, p = peek st in
  raise
    (Parse_error
       (p, Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string t)))

let expect st tok msg =
  let t, _ = peek st in
  if t = tok then advance st else error st msg

let ident st =
  match peek st with
  | Lexer.IDENT s, _ ->
      advance st;
      s
  | _ -> error st "expected an identifier"

let keyword st kw =
  match peek st with
  | Lexer.IDENT s, _ when s = kw -> advance st
  | _ -> error st (Printf.sprintf "expected keyword %S" kw)

let int_lit st =
  match peek st with
  | Lexer.INT k, _ ->
      advance st;
      k
  | _ -> error st "expected an integer"

let string_lit st =
  match peek st with
  | Lexer.STRING s, _ ->
      advance st;
      s
  | _ -> error st "expected a string"

let parse_element st =
  keyword st "element";
  let name = ident st in
  keyword st "weight";
  let weight = int_lit st in
  let pipelinable =
    match peek st with
    | Lexer.IDENT "pipelinable", _ ->
        advance st;
        true
    | Lexer.IDENT "atomic", _ ->
        advance st;
        false
    | _ -> error st "expected 'pipelinable' or 'atomic'"
  in
  expect st Lexer.SEMI "expected ';' after element declaration";
  { Ast.el_name = name; el_weight = weight; el_pipelinable = pipelinable }

let parse_edge st =
  keyword st "edge";
  let src = ident st in
  expect st Lexer.ARROW "expected '->' in edge declaration";
  let dst = ident st in
  expect st Lexer.SEMI "expected ';' after edge declaration";
  { Ast.ed_src = src; ed_dst = dst }

let parse_assert st =
  keyword st "assert";
  let src = ident st in
  expect st Lexer.ARROW "expected '->' in assert declaration";
  let dst = ident st in
  keyword st "in";
  expect st Lexer.LBRACKET "expected '[' opening the bounds";
  let lo = int_lit st in
  expect st Lexer.COMMA "expected ',' between bounds";
  let hi = int_lit st in
  expect st Lexer.RBRACKET "expected ']' closing the bounds";
  expect st Lexer.SEMI "expected ';' after assert declaration";
  { Ast.as_src = src; as_dst = dst; as_lo = lo; as_hi = hi }

let parse_chain st =
  let first = ident st in
  let rec more acc =
    match peek st with
    | Lexer.ARROW, _ ->
        advance st;
        more (ident st :: acc)
    | _ -> List.rev acc
  in
  let chain = more [ first ] in
  expect st Lexer.SEMI "expected ';' after task chain";
  chain

let parse_constraint st =
  keyword st "constraint";
  let name = ident st in
  let kind =
    match peek st with
    | Lexer.IDENT "periodic", _ ->
        advance st;
        Ast.K_periodic
    | Lexer.IDENT "asynchronous", _ ->
        advance st;
        Ast.K_asynchronous
    | _ -> error st "expected 'periodic' or 'asynchronous'"
  in
  (match (kind, peek st) with
  | Ast.K_periodic, (Lexer.IDENT "period", _) -> advance st
  | Ast.K_asynchronous, (Lexer.IDENT "separation", _) -> advance st
  | Ast.K_periodic, _ -> error st "expected 'period'"
  | Ast.K_asynchronous, _ -> error st "expected 'separation'");
  let period = int_lit st in
  keyword st "deadline";
  let deadline = int_lit st in
  let offset =
    match (kind, peek st) with
    | Ast.K_periodic, (Lexer.IDENT "offset", _) ->
        advance st;
        int_lit st
    | _ -> 0
  in
  expect st Lexer.LBRACE "expected '{' opening the task graph";
  let rec chains acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | _ -> chains (parse_chain st :: acc)
  in
  let body = chains [] in
  {
    Ast.co_name = name;
    co_kind = kind;
    co_period = period;
    co_deadline = deadline;
    co_offset = offset;
    co_chains = body;
  }

let parse_system st =
  keyword st "system";
  let name = string_lit st in
  expect st Lexer.LBRACE "expected '{' opening the system";
  let elements = ref [] and edges = ref [] and constraints = ref [] in
  let asserts = ref [] in
  let rec items () =
    match peek st with
    | Lexer.RBRACE, _ -> advance st
    | Lexer.IDENT "element", _ ->
        elements := parse_element st :: !elements;
        items ()
    | Lexer.IDENT "edge", _ ->
        edges := parse_edge st :: !edges;
        items ()
    | Lexer.IDENT "assert", _ ->
        asserts := parse_assert st :: !asserts;
        items ()
    | Lexer.IDENT "constraint", _ ->
        constraints := parse_constraint st :: !constraints;
        items ()
    | _ -> error st "expected 'element', 'edge', 'assert', 'constraint' or '}'"
  in
  items ();
  (match peek st with
  | Lexer.EOF, _ -> ()
  | _ -> error st "expected end of input after the system");
  {
    Ast.sy_name = name;
    sy_elements = List.rev !elements;
    sy_edges = List.rev !edges;
    sy_asserts = List.rev !asserts;
    sy_constraints = List.rev !constraints;
  }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  parse_system st

let parse_result src =
  match parse src with
  | sys -> Ok sys
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "%d:%d: %s" p.Lexer.line p.Lexer.col msg)
  | exception Lexer.Lex_error (p, msg) ->
      Error (Printf.sprintf "%d:%d: %s" p.Lexer.line p.Lexer.col msg)
