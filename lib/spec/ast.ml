type element_decl = {
  el_name : string;
  el_weight : int;
  el_pipelinable : bool;
}

type edge_decl = { ed_src : string; ed_dst : string }

type constraint_kind = K_periodic | K_asynchronous

type constraint_decl = {
  co_name : string;
  co_kind : constraint_kind;
  co_period : int;
  co_deadline : int;
  co_offset : int;
  co_chains : string list list;
}

type assert_decl = { as_src : string; as_dst : string; as_lo : int; as_hi : int }

type system = {
  sy_name : string;
  sy_elements : element_decl list;
  sy_edges : edge_decl list;
  sy_asserts : assert_decl list;
  sy_constraints : constraint_decl list;
}

let equal_system (a : system) (b : system) = a = b
