(** Hand-written lexer for the specification language. *)

type token =
  | IDENT of string  (** Identifiers: [\[A-Za-z_\]\[A-Za-z0-9_#\]*]. *)
  | INT of int  (** Non-negative integer literals. *)
  | STRING of string  (** Double-quoted strings (no escapes). *)
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ARROW  (** [->] *)
  | EOF

type position = { line : int; col : int }

exception Lex_error of position * string
(** Raised on an unexpected character or an unterminated string. *)

val tokenize : string -> (token * position) list
(** [tokenize src] converts the whole input to tokens (ending with
    [EOF]).  ['#'] starts a comment running to end of line.  A ['-']
    immediately followed by a digit lexes as a negative integer; any
    other ['-'] must begin ["->"]. *)

val token_to_string : token -> string
(** For diagnostics. *)
