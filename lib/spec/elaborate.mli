(** Elaboration: AST -> graph-based model.

    This is the "precise translation of user requirements into an
    instance of our graph-based model" step.  Each constraint's task
    graph is assembled from its chains: every element named in some
    chain becomes one node, and consecutive chain members contribute
    precedence edges (so DAG shapes are written as several overlapping
    chains).  All semantic validation — unknown elements, edges without
    matching communication paths, cyclic task graphs, duplicate names —
    is reported with the constraint it occurred in. *)

val elaborate : Ast.system -> (Rt_core.Model.t, string list) result
(** [elaborate sys] builds and validates the model; [Error] collects
    every diagnostic. *)

val elaborate_exn : Ast.system -> Rt_core.Model.t
(** Raising variant ([Invalid_argument] with joined diagnostics). *)

val load : string -> (Rt_core.Model.t, string list) result
(** [load src] parses and elaborates in one step (assert declarations
    are validated and dropped). *)

val load_with_assertions :
  string ->
  (Rt_core.Model.t * (string * string * float * float) list, string list)
  result
(** [load_with_assertions src] additionally returns the edge assertions
    [(src, dst, lo, hi)] declared in the specification, each validated
    against the communication graph; feed them to the value-carrying
    simulator ([Rt_sim.Data]) as range predicates. *)
