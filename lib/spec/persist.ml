open Rt_core

let header = "# rtsyn plan v1"

let separator = "--- model ---"

let save_string (m : Model.t) sched =
  let verdicts = Latency.verify m sched in
  if not (Latency.all_ok verdicts) then
    invalid_arg "Persist.save_string: schedule does not verify against the model";
  Printf.sprintf "%s\nschedule: %s\n%s\n%s" header
    (Schedule.to_string m.Model.comm sched)
    separator (Printer.print m)

(* Loaders sit on a trust boundary (files from disk, journal replay,
   operator hand-offs): a malformed input must come back as a
   structured [Error] the caller maps to "rejected" (exit 1), never as
   an uncaught exception (exit 4, "internal").  The parsers below are
   exception-free by construction; this wrapper is the backstop that
   keeps any future raising path inside the contract. *)
let structured what f =
  match f () with
  | r -> r
  | exception Stack_overflow -> Error (what ^ ": input too deeply nested")
  | exception exn ->
      Error (Printf.sprintf "%s: malformed input (%s)" what (Printexc.to_string exn))

let load_string s =
  structured "plan" @@ fun () ->
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = header -> (
      let rec split_schedule acc = function
        | [] -> Error "missing model section"
        | line :: more when String.trim line = separator ->
            Ok (List.rev acc, String.concat "\n" more)
        | line :: more -> split_schedule (line :: acc) more
      in
      match split_schedule [] rest with
      | Error e -> Error e
      | Ok (head_lines, model_src) -> (
          let sched_line =
            List.find_opt
              (fun l ->
                String.length l >= 9 && String.sub l 0 9 = "schedule:")
              head_lines
          in
          match sched_line with
          | None -> Error "missing 'schedule:' line"
          | Some line -> (
              match Elaborate.load model_src with
              | Error errs -> Error (String.concat "; " errs)
              | Ok m -> (
                  match
                    Schedule.of_string m.Model.comm
                      (String.sub line 9 (String.length line - 9))
                  with
                  | Error e -> Error e
                  | Ok sched ->
                      (match Schedule.validate m.Model.comm sched with
                      | Error errs ->
                          Error ("ill-formed schedule: " ^ String.concat "; " errs)
                      | Ok () ->
                          if Latency.all_ok (Latency.verify m sched) then
                            Ok (m, sched)
                          else
                            Error
                              "plan rejected: schedule no longer verifies \
                               against the model")))))
  | _ -> Error (Printf.sprintf "missing %S header" header)

let save_file path m sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save_string m sched))

let load_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          load_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Certificates: JSON written by Rt_check.Certificate.to_json.         *)
(* ------------------------------------------------------------------ *)

(* The file embeds the certified model as specification source, so a
   certificate is checkable self-contained: synthesis may rewrite the
   model (merging, pipelining) before scheduling, and the certificate
   binds to the model actually scheduled, not to the input spec. *)
let json_escape s =
  let b = Buffer.create (String.length s + 16) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Elaboration canonicalizes task graphs (nodes ordered alphabetically
   by element name, edges sorted), so a certificate built against a
   programmatic or rewritten model must be re-indexed onto the
   canonical form before it is written — otherwise the reloaded model's
   node numbering would no longer line up with the witness exec arrays
   and the digest would not round-trip.  Element ids are stable under
   print/elaborate (elements are printed in id order), so the schedule
   needs no translation. *)
let canonicalize m cert =
  if cert.Certificate.digest <> Certificate.digest_of_model m then
    invalid_arg
      "Persist.save_certificate_string: certificate does not bind to the model";
  let src = Printer.print m in
  match Elaborate.load src with
  | Error errs ->
      invalid_arg
        ("Persist.save_certificate_string: model does not re-elaborate: "
        ^ String.concat "; " errs)
  | Ok m' ->
      (* Index constraints by name once: one certificate carries a
         witness per constraint, so a linear find here is quadratic in
         the model size (felt at daemon scale, where every admission
         persists a fresh certificate). *)
      let index cs =
        let tbl = Hashtbl.create (List.length cs) in
        List.iter (fun (c : Timing.t) -> Hashtbl.replace tbl c.Timing.name c) cs;
        tbl
      in
      let old_by_name = index m.Model.constraints in
      let new_by_name = index m'.Model.constraints in
      let remap_witness (name, w) =
        match
          (Hashtbl.find_opt old_by_name name, Hashtbl.find_opt new_by_name name)
        with
        | Some c_old, Some c_new
          when Task_graph.size c_old.Timing.graph
               = Task_graph.size c_new.Timing.graph ->
            let old_elems = Task_graph.node_elements c_old.Timing.graph in
            let node_of_elem e =
              let n = Array.length old_elems in
              let rec go i = if i >= n || old_elems.(i) = e then i else go (i + 1) in
              go 0
            in
            (* perm.(new node) = old node carrying the same element
               (unique: printable task graphs have no duplicate
               occurrences). *)
            let perm =
              Array.map node_of_elem
                (Task_graph.node_elements c_new.Timing.graph)
            in
            let n = Array.length perm in
            let remap_exec (x : Certificate.exec) =
              if Array.length x <> n then x
              else Array.init n (fun i -> x.(perm.(i)))
            in
            let w' =
              match w with
              | Certificate.Async es -> Certificate.Async (List.map remap_exec es)
              | Certificate.Periodic es ->
                  Certificate.Periodic (Array.map remap_exec es)
            in
            (name, w')
        | _ ->
            (* Unknown constraint or size mismatch: keep verbatim; the
               checker reports it. *)
            (name, w)
      in
      ( m',
        {
          Certificate.digest = Certificate.digest_of_model m';
          schedule = cert.Certificate.schedule;
          witnesses = List.map remap_witness cert.Certificate.witnesses;
        } )

let save_certificate_string m cert =
  let m', cert' = canonicalize m cert in
  let base = Certificate.to_json cert' in
  (* [to_json] renders one object; splice the model source in as a
     final field. *)
  let close = String.rindex base '}' in
  String.sub base 0 close
  ^ ",\"model\":"
  ^ json_escape (Printer.print m')
  ^ "}\n"

let save_certificate_file path m cert =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save_certificate_string m cert))

let json_int j =
  match Rt_obs.Json.to_float j with
  | Some f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let ( let* ) r f = Result.bind r f

let req what = function Some v -> Ok v | None -> Error ("certificate: " ^ what)

let parse_schedule j =
  let* slots = req "schedule must be an int array" (Rt_obs.Json.to_list j) in
  let* ints =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = req "schedule entries must be integers" (json_int s) in
        Ok (v :: acc))
      (Ok []) slots
  in
  let arr =
    List.rev_map
      (fun v -> if v < 0 then Schedule.Idle else Schedule.Run v)
      ints
    |> Array.of_list
  in
  if Array.length arr = 0 then Error "certificate: empty schedule"
  else Ok (Schedule.of_array arr)

let parse_exec j =
  let* pairs = req "exec must be a list" (Rt_obs.Json.to_list j) in
  let* rev =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        match Rt_obs.Json.to_list p with
        | Some [ s; f ] -> (
            match (json_int s, json_int f) with
            | Some s, Some f -> Ok ((s, f) :: acc)
            | _ -> Error "certificate: exec entries must be [start,finish]")
        | _ -> Error "certificate: exec entries must be [start,finish]")
      (Ok []) pairs
  in
  Ok (Array.of_list (List.rev rev))

let parse_witness j =
  let* name =
    req "witness needs a \"constraint\" name"
      (Option.bind (Rt_obs.Json.member "constraint" j) Rt_obs.Json.to_string)
  in
  let* kind =
    req "witness needs a \"kind\""
      (Option.bind (Rt_obs.Json.member "kind" j) Rt_obs.Json.to_string)
  in
  let* execs_j =
    req "witness needs \"execs\""
      (Option.bind (Rt_obs.Json.member "execs" j) Rt_obs.Json.to_list)
  in
  let* rev =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* x = parse_exec e in
        Ok (x :: acc))
      (Ok []) execs_j
  in
  let execs = List.rev rev in
  match kind with
  | "async" -> Ok (name, Certificate.Async execs)
  | "periodic" -> Ok (name, Certificate.Periodic (Array.of_list execs))
  | k -> Error (Printf.sprintf "certificate: unknown witness kind %S" k)

let load_certificate_string s =
  structured "certificate" @@ fun () ->
  let* j = Rt_obs.Json.parse s in
  let* fmt =
    req "missing \"format\""
      (Option.bind (Rt_obs.Json.member "format" j) Rt_obs.Json.to_string)
  in
  if fmt <> "rtsyn-certificate" then
    Error (Printf.sprintf "certificate: unexpected format %S" fmt)
  else
    let* version =
      req "missing \"version\""
        (Option.bind (Rt_obs.Json.member "version" j) json_int)
    in
    if version <> Certificate.version then
      Error
        (Printf.sprintf "certificate: version %d unsupported (want %d)"
           version Certificate.version)
    else
      let* digest =
        req "missing \"digest\""
          (Option.bind (Rt_obs.Json.member "digest" j) Rt_obs.Json.to_string)
      in
      let* schedule =
        let* sj = req "missing \"schedule\"" (Rt_obs.Json.member "schedule" j) in
        parse_schedule sj
      in
      let* witnesses_j =
        req "missing \"witnesses\""
          (Option.bind (Rt_obs.Json.member "witnesses" j) Rt_obs.Json.to_list)
      in
      let* rev =
        List.fold_left
          (fun acc w ->
            let* acc = acc in
            let* parsed = parse_witness w in
            Ok (parsed :: acc))
          (Ok []) witnesses_j
      in
      let* model_src =
        req "missing \"model\""
          (Option.bind (Rt_obs.Json.member "model" j) Rt_obs.Json.to_string)
      in
      let* m =
        Result.map_error
          (fun errs -> "certificate model: " ^ String.concat "; " errs)
          (Elaborate.load model_src)
      in
      Ok
        ( m,
          {
            Certificate.digest;
            schedule;
            witnesses = List.rev rev;
          } )

let load_certificate_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          load_certificate_string
            (really_input_string ic (in_channel_length ic)))
