open Rt_core

let header = "# rtsyn plan v1"

let separator = "--- model ---"

let save_string (m : Model.t) sched =
  let verdicts = Latency.verify m sched in
  if not (Latency.all_ok verdicts) then
    invalid_arg "Persist.save_string: schedule does not verify against the model";
  Printf.sprintf "%s\nschedule: %s\n%s\n%s" header
    (Schedule.to_string m.Model.comm sched)
    separator (Printer.print m)

let load_string s =
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when String.trim first = header -> (
      let rec split_schedule acc = function
        | [] -> Error "missing model section"
        | line :: more when String.trim line = separator ->
            Ok (List.rev acc, String.concat "\n" more)
        | line :: more -> split_schedule (line :: acc) more
      in
      match split_schedule [] rest with
      | Error e -> Error e
      | Ok (head_lines, model_src) -> (
          let sched_line =
            List.find_opt
              (fun l ->
                String.length l >= 9 && String.sub l 0 9 = "schedule:")
              head_lines
          in
          match sched_line with
          | None -> Error "missing 'schedule:' line"
          | Some line -> (
              match Elaborate.load model_src with
              | Error errs -> Error (String.concat "; " errs)
              | Ok m -> (
                  match
                    Schedule.of_string m.Model.comm
                      (String.sub line 9 (String.length line - 9))
                  with
                  | Error e -> Error e
                  | Ok sched ->
                      (match Schedule.validate m.Model.comm sched with
                      | Error errs ->
                          Error ("ill-formed schedule: " ^ String.concat "; " errs)
                      | Ok () ->
                          if Latency.all_ok (Latency.verify m sched) then
                            Ok (m, sched)
                          else
                            Error
                              "plan rejected: schedule no longer verifies \
                               against the model")))))
  | _ -> Error (Printf.sprintf "missing %S header" header)

let save_file path m sched =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save_string m sched))

let load_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          load_string (really_input_string ic (in_channel_length ic)))
