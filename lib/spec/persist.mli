(** Persistence of synthesized plans.

    The methodology's deployment story is: synthesize off-line, then
    ship the static schedule to the target where a trivial round-robin
    dispatcher replays it.  This module defines that shipping format —
    a plain text file holding the (possibly rewritten) model as
    specification source plus the schedule as an element-name string —
    and the loader the "target" uses, which re-verifies the schedule
    against the model before accepting it (never trust a table you did
    not check).

    Format:

    {v
    # rtsyn plan v1
    schedule: f_x f_s#1 f_s#2 . f_k
    --- model ---
    system "..." { ... }
    v} *)

val save_string : Rt_core.Model.t -> Rt_core.Schedule.t -> string
(** [save_string m l] renders the plan file contents.  Raises
    [Invalid_argument] if the model is not expressible in the spec
    language (duplicate element occurrences in a task graph) or if the
    schedule fails verification against [m]. *)

val load_string :
  string -> (Rt_core.Model.t * Rt_core.Schedule.t, string) result
(** [load_string s] parses, elaborates, rebuilds the schedule, and
    re-verifies it; a plan that no longer verifies is rejected. *)

val save_file : string -> Rt_core.Model.t -> Rt_core.Schedule.t -> unit
(** [save_file path m l] writes {!save_string} to [path]. *)

val load_file :
  string -> (Rt_core.Model.t * Rt_core.Schedule.t, string) result
(** [load_file path] reads and {!load_string}s. *)
