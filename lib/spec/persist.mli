(** Persistence of synthesized plans.

    The methodology's deployment story is: synthesize off-line, then
    ship the static schedule to the target where a trivial round-robin
    dispatcher replays it.  This module defines that shipping format —
    a plain text file holding the (possibly rewritten) model as
    specification source plus the schedule as an element-name string —
    and the loader the "target" uses, which re-verifies the schedule
    against the model before accepting it (never trust a table you did
    not check).

    Format:

    {v
    # rtsyn plan v1
    schedule: f_x f_s#1 f_s#2 . f_k
    --- model ---
    system "..." { ... }
    v} *)

val save_string : Rt_core.Model.t -> Rt_core.Schedule.t -> string
(** [save_string m l] renders the plan file contents.  Raises
    [Invalid_argument] if the model is not expressible in the spec
    language (duplicate element occurrences in a task graph) or if the
    schedule fails verification against [m]. *)

val load_string :
  string -> (Rt_core.Model.t * Rt_core.Schedule.t, string) result
(** [load_string s] parses, elaborates, rebuilds the schedule, and
    re-verifies it; a plan that no longer verifies is rejected. *)

val save_file : string -> Rt_core.Model.t -> Rt_core.Schedule.t -> unit
(** [save_file path m l] writes {!save_string} to [path]. *)

val load_file :
  string -> (Rt_core.Model.t * Rt_core.Schedule.t, string) result
(** [load_file path] reads and {!load_string}s. *)

(** {1 Certificates}

    Serialization of {!Rt_core.Certificate} witnesses: the JSON
    produced by [Certificate.to_json], extended with a ["model"] field
    holding the certified model as specification source — synthesis
    may rewrite the model (merging, pipelining) before scheduling, and
    the certificate binds to the model actually scheduled, so the file
    is checkable self-contained.  Loading only re-builds the data
    structures — semantic validation is the trusted checker's job
    ([rtsyn check --certificate] runs [Rt_check.Checker.check] on the
    result). *)

val save_certificate_string : Rt_core.Model.t -> Rt_core.Certificate.t -> string
(** [save_certificate_string m cert] renders the certificate file
    contents; [m] must be the model the certificate was built from
    ([cert] must carry its digest).  The pair is {e canonicalized}
    before writing: elaboration orders task-graph nodes alphabetically,
    so witness exec arrays are re-indexed onto the canonical node
    numbering and the digest is restamped — the reloaded pair then
    checks self-contained and further save/load round-trips are
    identity.  Raises [Invalid_argument] if [m] is not expressible in
    the spec language or [cert] does not bind to [m]. *)

val save_certificate_file :
  string -> Rt_core.Model.t -> Rt_core.Certificate.t -> unit
(** Write {!save_certificate_string} to a file. *)

val load_certificate_string :
  string -> (Rt_core.Model.t * Rt_core.Certificate.t, string) result
(** Parse a certificate JSON document and elaborate its embedded model
    (no semantic validation of the witnesses). *)

val load_certificate_file :
  string -> (Rt_core.Model.t * Rt_core.Certificate.t, string) result
(** Read and {!load_certificate_string}. *)
