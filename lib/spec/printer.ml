open Rt_core

let print_constraint (m : Model.t) (c : Timing.t) =
  let ename e = (Comm_graph.element m.comm e).Element.name in
  List.iter
    (fun e ->
      if Task_graph.occurrences c.graph e > 1 then
        invalid_arg
          (Printf.sprintf
             "Printer: constraint %s uses element %s more than once, which \
              the spec language cannot express"
             c.name (ename e)))
    (Task_graph.elements_used c.graph);
  let node_elem v = Task_graph.element_of_node c.graph v in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "  constraint %s %s %d deadline %d%s {\n" c.name
       (match c.kind with
       | Timing.Periodic -> "periodic period"
       | Timing.Asynchronous -> "asynchronous separation")
       c.period c.deadline
       (if c.offset > 0 then Printf.sprintf " offset %d" c.offset else ""));
  (* Isolated nodes as singleton chains, every edge as a two-chain. *)
  let edges = Task_graph.edges c.graph in
  let connected = Hashtbl.create 8 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace connected u ();
      Hashtbl.replace connected v ())
    edges;
  List.iter
    (fun v ->
      if not (Hashtbl.mem connected v) then
        Buffer.add_string buf
          (Printf.sprintf "    %s;\n" (ename (node_elem v))))
    (List.init (Task_graph.size c.graph) Fun.id);
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s -> %s;\n" (ename (node_elem u))
           (ename (node_elem v))))
    edges;
  Buffer.add_string buf "  }";
  Buffer.contents buf

let print ?(name = "system") ?(assertions = []) (m : Model.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "system \"%s\" {\n" name);
  List.iter
    (fun (e : Element.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  element %s weight %d %s;\n" e.name e.weight
           (if e.pipelinable then "pipelinable" else "atomic")))
    (Comm_graph.elements m.comm);
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  edge %s -> %s;\n"
           (Comm_graph.element m.comm u).Element.name
           (Comm_graph.element m.comm v).Element.name))
    (Rt_graph.Digraph.edges (Comm_graph.graph m.comm));
  List.iter
    (fun (src, dst, lo, hi) ->
      Buffer.add_string buf
        (Printf.sprintf "  assert %s -> %s in [%d, %d];\n" src dst
           (int_of_float lo) (int_of_float hi)))
    assertions;
  List.iter
    (fun c ->
      Buffer.add_string buf (print_constraint m c);
      Buffer.add_char buf '\n')
    m.constraints;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
