(** Graphviz export of models — the stand-in for CONSORT's graphical
    view of controller structures. *)

val comm_graph : ?name:string -> Rt_core.Model.t -> string
(** DOT source for the communication graph: elements labelled
    ["name (w)"], non-pipelinable elements drawn as boxes. *)

val task_graph : Rt_core.Model.t -> Rt_core.Timing.t -> string
(** DOT source for one constraint's task graph, nodes labelled with the
    element each executes. *)

val full : ?name:string -> Rt_core.Model.t -> string
(** One DOT document with the communication graph and each task graph
    as clusters. *)
