type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ARROW
  | EOF

type position = { line : int; col : int }

exception Lex_error of position * string

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '#'

let is_digit c = c >= '0' && c <= '9'

(* A literal too large for the native int must be a diagnostic, not an
   uncaught [Failure]: spec files cross trust boundaries (certificates
   embed them, the daemon journal replays them). *)
let int_literal p s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Lex_error (p, Printf.sprintf "integer literal %s out of range" s))

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let pos () = { line = !line; col = !col } in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let emit tok p = tokens := (tok, p) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '{' then (emit LBRACE p; advance ())
    else if c = '}' then (emit RBRACE p; advance ())
    else if c = '[' then (emit LBRACKET p; advance ())
    else if c = ']' then (emit RBRACKET p; advance ())
    else if c = ',' then (emit COMMA p; advance ())
    else if c = ';' then (emit SEMI p; advance ())
    else if c = '-' then begin
      advance ();
      if !i < n && src.[!i] = '>' then (emit ARROW p; advance ())
      else if !i < n && is_digit src.[!i] then begin
        let start = !i in
        while !i < n && is_digit src.[!i] do
          advance ()
        done;
        emit (INT (-int_literal p (String.sub src start (!i - start)))) p
      end
      else raise (Lex_error (p, "expected '>' or a digit after '-'"))
    end
    else if c = '"' then begin
      advance ();
      let start = !i in
      while !i < n && src.[!i] <> '"' do
        advance ()
      done;
      if !i >= n then raise (Lex_error (p, "unterminated string"));
      emit (STRING (String.sub src start (!i - start))) p;
      advance ()
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      emit (INT (int_literal p (String.sub src start (!i - start)))) p
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      emit (IDENT (String.sub src start (!i - start))) p
    end
    else raise (Lex_error (p, Printf.sprintf "unexpected character %C" c))
  done;
  emit EOF (pos ());
  List.rev !tokens

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT k -> Printf.sprintf "integer %d" k
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | ARROW -> "'->'"
  | EOF -> "end of input"
