open Rt_core

let element_label (m : Model.t) e =
  let el = Comm_graph.element m.comm e in
  Printf.sprintf "%s (%d)" el.Element.name el.Element.weight

let comm_nodes buf (m : Model.t) ~prefix =
  List.iter
    (fun (e : Element.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%d [label=\"%s (%d)\"%s];\n" prefix e.id e.name
           e.weight
           (if e.pipelinable then "" else " shape=box")))
    (Comm_graph.elements m.comm)

let comm_graph ?(name = "communication") (m : Model.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  comm_nodes buf m ~prefix:"e";
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  e%d -> e%d;\n" u v))
    (Rt_graph.Digraph.edges (Comm_graph.graph m.comm));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let task_graph_body buf (m : Model.t) (c : Timing.t) ~prefix =
  for v = 0 to Task_graph.size c.graph - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %s%d [label=\"%s\"];\n" prefix v
         (element_label m (Task_graph.element_of_node c.graph v)))
  done;
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf (Printf.sprintf "  %s%d -> %s%d;\n" prefix u prefix v))
    (Task_graph.edges c.graph)

let task_graph (m : Model.t) (c : Timing.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" c.name);
  task_graph_body buf m c ~prefix:"n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let full ?(name = "model") (m : Model.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  subgraph cluster_comm {\n  label=\"communication graph\";\n";
  comm_nodes buf m ~prefix:"e";
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  e%d -> e%d;\n" u v))
    (Rt_graph.Digraph.edges (Comm_graph.graph m.comm));
  Buffer.add_string buf "  }\n";
  List.iteri
    (fun i (c : Timing.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_c%d {\n  label=\"%s (%s p=%d d=%d)\";\n"
           i c.name
           (Timing.kind_to_string c.kind)
           c.period c.deadline);
      task_graph_body buf m c ~prefix:(Printf.sprintf "c%d_" i);
      Buffer.add_string buf "  }\n")
    m.constraints;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
