(** Fixed-priority simulation of the naive process-based implementation
    with monitors, including priority inversion and (optionally)
    priority inheritance.

    The paper's straightforward mapping creates "a monitor for each
    functional element that occurs in two or more timing constraints".
    This simulator executes the straight-line programs emitted by
    [Rt_process.Codegen] — [Enter]/[Call]/[Leave] step lists — under
    preemptive fixed priorities, so the cost of those monitors
    (blocking, inversion) can be observed rather than only bounded
    analytically, and the benefit of software pipelining (shorter
    critical sections) measured directly. *)

type protocol =
  | No_protocol
      (** Plain monitors: classic unbounded priority inversion, and
          deadlock when critical sections nest in opposite orders. *)
  | Inheritance
      (** Priority inheritance: a holder runs at the highest priority
          among the jobs it (transitively) blocks.  Bounds inversion by
          one critical section per monitor, but nested sections can
          still deadlock. *)
  | Ceiling
      (** Priority ceiling (PCP): a job may enter a monitor only when
          its priority is strictly higher than the ceilings of all
          monitors held by {e other} jobs; holders additionally inherit
          as under {!Inheritance}.  Deadlock-free and at most one
          blocking interval per job. *)

type config = {
  protocol : protocol;
  assignment : Rt_process.Fixed_priority.assignment;
}

val default_config : config
(** Deadline-monotonic with {!Inheritance}. *)

type job_outcome = {
  process : string;
  release : int;
  finish : int option;
  abs_deadline : int;
  met : bool;
  blocked_slots : int;
      (** Slots where the job was ready with the highest base priority
          yet did not run (inversion / blocking). *)
}

type result = {
  jobs : job_outcome list;
  misses : int;
  max_blocking : (string * int) list;
      (** Per process, the worst blocking observed over its jobs. *)
  deadlocked : bool;
      (** True when the simulation reached a state where released
          unfinished jobs exist but none could run because every one of
          them waits on a monitor held by another waiter — possible
          under {!No_protocol} and {!Inheritance} with nested sections,
          impossible under {!Ceiling}. *)
}

val simulate :
  ?config:config ->
  ?arrivals:(string * int list) list ->
  Rt_core.Model.t ->
  Rt_process.From_model.translation ->
  horizon:int ->
  result
(** [simulate m tr ~horizon] releases each periodic process at
    [0, p, ...] and each sporadic process at its [arrivals] (default:
    maximal rate), executes the translation's programs and reports
    per-job outcomes.  Monitor acquisition is at [Enter] steps; a held
    monitor blocks other entrants until the matching [Leave]. *)
