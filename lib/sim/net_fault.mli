(** Deterministic bus-fault injection and the ARQ admission bound.

    A fault hits a {e slot} of the shared bus: the transmission
    scheduled there (if any) does not arrive — either [Lost] outright
    or [Corrupted] and discarded by the receiver's checksum.  Both
    kinds cost the sender exactly one retransmission under the ARQ
    (automatic repeat request) discipline, so the analysis treats them
    identically; the distinction is kept for reporting.

    The offline side ({!Rt_multiproc.Netsched.schedule_arq},
    {!Rt_multiproc.Msched}'s [arq_slack]) reserves [cost + k] slots
    per message window.  {!admit} is the matching analyzer: a fault
    plan is admissible at tolerance [k] iff no item's
    [\[release, abs_deadline)] window contains more than [k] faulty
    slots.  Because an item only ever transmits inside its own window
    and a faulty slot consumes exactly one retransmission of whichever
    item held it, an admissible plan keeps every realized demand within
    the reserved [cost + k] — EDF feasibility of the inflated set then
    guarantees no deadline miss ({!simulate} validates this bound by
    construction on every run).  With [k + 1] faults in some window,
    {!admit} reports the violation — the bound is tight. *)

type kind = Lost | Corrupted

type fault = { slot : int; kind : kind }

type plan = fault list

val random_plan :
  Rt_graph.Prng.t -> horizon:int -> loss_rate:float -> plan
(** Each slot in [[0, horizon)] is faulty independently with
    probability [loss_rate] (corrupted instead of lost with
    probability 1/2).  Deterministic in the generator state; slots
    ascend. *)

val faulty : plan -> int -> bool
(** Membership test. *)

val admit :
  k:int -> Rt_multiproc.Netsched.item list -> plan -> (unit, string list) result
(** [admit ~k items plan]: check that every item's
    [\[release, abs_deadline)] window contains at most [k] faulty
    slots.  Returns one diagnostic per violating item (by deadline
    order) — the certificate that the ARQ slack can be exceeded. *)

type outcome = {
  delivered : (string * int) list;
      (** Item name -> completion slot (exclusive): all [cost] units
          received.  Deterministic order by completion then name. *)
  missed : Rt_multiproc.Netsched.miss list;
      (** Items whose full cost did not arrive by their deadline. *)
  retransmissions : int;  (** Slots wasted to faults. *)
}

val simulate :
  horizon:int -> Rt_multiproc.Netsched.item list -> plan -> outcome
(** Online ARQ EDF replay of the bus: each slot transmits one unit of
    the earliest-deadline ready item with outstanding {e real} cost; a
    faulty slot wastes the unit (the sender learns from the missing
    acknowledgement and retransmits).  An item past its deadline with
    outstanding cost is recorded missed and dropped.  The simulation is
    the ground truth the {!admit} bound is tested against: an
    admissible plan on an instance feasible at slack [k] yields
    [missed = \[\]]. *)
