open Rt_core

type config = {
  interps : (string * (now:int -> float array -> float)) list;
  assertions : (string * string * (float -> bool)) list;
}

type transmission = { time : int; source : string; sink : string; value : float }

type violation = { transmission : transmission; index : int }

type result = {
  transmissions : transmission list;
  violations : violation list;
  final_edge_values : ((string * string) * float) list;
  outputs : (int * string * float) list;
}

let run (m : Model.t) sched config ~steps =
  let g = m.comm in
  let digraph = Comm_graph.graph g in
  let name e = (Comm_graph.element g e).Element.name in
  let id_of n =
    try Comm_graph.id_of_name g n
    with Not_found -> invalid_arg ("Data.run: unknown element " ^ n)
  in
  let interp_tbl = Hashtbl.create 16 in
  List.iter
    (fun (n, f) -> Hashtbl.replace interp_tbl (id_of n) f)
    config.interps;
  let default_interp ~now:_ inputs = Array.fold_left ( +. ) 0.0 inputs in
  let assertions =
    List.mapi
      (fun i (src, dst, pred) ->
        let u = id_of src and v = id_of dst in
        if not (Comm_graph.has_edge g u v) then
          invalid_arg
            (Printf.sprintf "Data.run: no communication edge %s -> %s" src dst);
        (i, u, v, pred))
      config.assertions
  in
  (* Latest value on each communication edge. *)
  let edge_value : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let n = Comm_graph.n_elements g in
  let progress = Array.make n 0 in
  let transmissions = ref [] in
  let violations = ref [] in
  let outputs = ref [] in
  for t = 0 to steps - 1 do
    match Schedule.slot sched t with
    | Schedule.Idle -> ()
    | Schedule.Run e ->
        progress.(e) <- progress.(e) + 1;
        if progress.(e) >= Comm_graph.weight g e then begin
          progress.(e) <- 0;
          let inputs =
            Rt_graph.Digraph.pred digraph e
            |> List.map (fun u ->
                   Option.value ~default:0.0 (Hashtbl.find_opt edge_value (u, e)))
            |> Array.of_list
          in
          let interp =
            Option.value ~default:default_interp
              (Hashtbl.find_opt interp_tbl e)
          in
          let value = interp ~now:(t + 1) inputs in
          let succs = Rt_graph.Digraph.succ digraph e in
          if succs = [] then outputs := (t + 1, name e, value) :: !outputs
          else
            List.iter
              (fun v ->
                Hashtbl.replace edge_value (e, v) value;
                let tr =
                  { time = t + 1; source = name e; sink = name v; value }
                in
                transmissions := tr :: !transmissions;
                List.iter
                  (fun (i, u, w, pred) ->
                    if u = e && w = v && not (pred value) then
                      violations := { transmission = tr; index = i } :: !violations)
                  assertions)
              succs
        end
  done;
  let final_edge_values =
    Hashtbl.fold
      (fun (u, v) value acc -> ((name u, name v), value) :: acc)
      edge_value []
    |> List.sort compare
  in
  {
    transmissions = List.rev !transmissions;
    violations = List.rev !violations;
    final_edge_values;
    outputs = List.rev !outputs;
  }
