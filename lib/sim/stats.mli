(** Response-time statistics over runtime replays.

    Control engineers care about more than deadline misses: output
    {e jitter} — variation in completion instants — degrades control
    quality even when every deadline is met.  This module aggregates
    per-constraint response distributions from a {!Runtime.report}. *)

type summary = {
  constraint_name : string;
  invocations : int;
  completed : int;
  min_response : int;
  max_response : int;
  mean_response : float;
  jitter : int;  (** [max_response - min_response]. *)
  misses : int;
}

val summarize : Runtime.report -> summary list
(** [summarize r] aggregates per constraint, ordered by name.
    Constraints with no completed invocation report zero responses and
    count all their invocations as misses. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line: ["pz: 12 invocations, resp 3..15 (mean 8.2, jitter 12), 0 misses"]. *)

val worst_jitter : summary list -> (string * int) option
(** The constraint with the largest jitter, if any invocation
    completed. *)
