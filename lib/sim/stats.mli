(** Response-time statistics over runtime replays.

    Control engineers care about more than deadline misses: output
    {e jitter} — variation in completion instants — degrades control
    quality even when every deadline is met.  This module aggregates
    per-constraint response distributions from a {!Runtime.report} or a
    {!Robust_runtime.report}, including tail percentiles, and rolls
    robust replays up by criticality level. *)

type summary = {
  constraint_name : string;
  invocations : int;
  completed : int;
  min_response : int option;  (** [None] when nothing completed. *)
  max_response : int option;
  mean_response : float;  (** [0.0] when nothing completed. *)
  p95_response : int option;
      (** Nearest-rank 95th percentile of completed responses. *)
  p99_response : int option;
  jitter : int option;  (** [max_response - min_response]. *)
  misses : int;
}

val summarize : Runtime.report -> summary list
(** [summarize r] aggregates per constraint, ordered by name.
    Constraints with no completed invocation report [None] for every
    response statistic and count all their invocations as misses. *)

val summarize_robust : Robust_runtime.report -> summary list
(** Same aggregation over a robust replay.  Shed invocations are
    excluded entirely — they were never admitted, so they contribute
    neither responses nor misses. *)

val pp_summary : Format.formatter -> summary -> unit
(** One line:
    ["pz: 12 invocations, resp 3..15 (mean 8.2, p95 14, p99 15, jitter 12), 0 misses"].
    Absent statistics print as ["-"]. *)

val worst_jitter : summary list -> (string * int) option
(** The constraint with the largest jitter, if any invocation
    completed. *)

(** {2 Per-criticality rollups} *)

type criticality_summary = {
  level : Rt_core.Criticality.level;
  total : int;  (** Invocations of constraints at this level. *)
  served : int;  (** [total - level_shed]. *)
  level_misses : int;  (** Served invocations that missed. *)
  level_shed : int;  (** Arrived while the constraint was shed. *)
  miss_ratio : float;  (** [level_misses / served], [0.0] if unserved. *)
}

val by_criticality : Robust_runtime.report -> criticality_summary list
(** One entry per criticality level (in ascending order), covering
    every level even when empty — the point of degradation is the
    contrast between levels. *)

val pp_criticality_summary : Format.formatter -> criticality_summary -> unit

(** {2 Per-processor rollups over distributed replays} *)

type processor_summary = {
  processor : int;
  proc_invocations : int;
      (** Invocations owned by this processor (final segment here);
          shed ones included in this count only. *)
  proc_misses : int;
  proc_shed : int;
  busy : int;  (** Realized busy slots. *)
  idle : int;
  preemptions : int;
      (** Times an incomplete execution lost the processor (to another
          element or to an idle slot) before accruing its element's
          full weight — table-driven preemptions plus crash cut-offs. *)
  proc_p95 : int option;
      (** Nearest-rank percentiles of this processor's completed
          response times. *)
  proc_p99 : int option;
}

val by_processor :
  Rt_core.Comm_graph.t -> Dist_runtime.report -> processor_summary list
(** One entry per processor (ascending id), even when idle: crashes
    show up as a processor whose busy count stops growing.  The graph
    supplies element weights for preemption counting. *)

val pp_processor_summary : Format.formatter -> processor_summary -> unit
