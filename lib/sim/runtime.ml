open Rt_core

type invocation = {
  constraint_name : string;
  arrival : int;
  completion : int option;
  response : int option;
  met : bool;
}

type report = {
  invocations : invocation list;
  misses : int;
  worst_response : (string * int) list;
}

let run (m : Model.t) sched ~horizon ~arrivals =
  List.iter
    (fun (name, times) ->
      let c =
        try Model.find m name
        with Not_found ->
          invalid_arg ("Runtime.run: unknown constraint " ^ name)
      in
      if not (Timing.is_asynchronous c) then
        invalid_arg ("Runtime.run: arrivals given for periodic constraint " ^ name);
      if not (Arrivals.legal ~separation:c.period times) then
        invalid_arg ("Runtime.run: illegal arrival sequence for " ^ name);
      if List.exists (fun t -> t >= horizon) times then
        invalid_arg ("Runtime.run: arrival beyond horizon for " ^ name))
    arrivals;
  (* Margin so that executions answering late arrivals are observable. *)
  let margin =
    List.fold_left
      (fun acc (c : Timing.t) ->
        max acc
          ((Timing.computation_time m.comm c + Task_graph.size c.graph + 3)
          * Schedule.length sched))
      0 m.constraints
  in
  let trace = Trace.of_schedule m.comm sched ~horizon:(horizon + margin) in
  let invocation_of (c : Timing.t) t =
    let completion = Latency.next_completion m.comm c.graph trace ~from:t in
    let response = Option.map (fun f -> f - t) completion in
    {
      constraint_name = c.name;
      arrival = t;
      completion;
      response;
      met = (match response with Some r -> r <= c.deadline | None -> false);
    }
  in
  let async_invocations =
    List.concat_map
      (fun (name, times) ->
        let c = Model.find m name in
        List.map (invocation_of c) times)
      arrivals
  in
  let periodic_invocations =
    List.concat_map
      (fun (c : Timing.t) ->
        let rec go t acc =
          if t >= horizon then List.rev acc
          else go (t + c.period) (invocation_of c t :: acc)
        in
        go c.offset [])
      (Model.periodic m)
  in
  let invocations =
    List.sort
      (fun a b ->
        compare (a.arrival, a.constraint_name) (b.arrival, b.constraint_name))
      (async_invocations @ periodic_invocations)
  in
  let misses = List.length (List.filter (fun i -> not i.met) invocations) in
  if Rt_obs.Tracer.enabled () then begin
    (* Virtual-time Gantt of the replay: the cyclic schedule up to the
       horizon, plus one flag per arrival (and per miss). *)
    Obs_emit.track ~tid:0 "cpu";
    Obs_emit.schedule m.comm sched ~tid:0 ~horizon;
    List.iter
      (fun i ->
        Obs_emit.instant ~tid:0 ~at:i.arrival
          (Printf.sprintf "%s:%s" i.constraint_name
             (if i.met then "arrival" else "miss")))
      invocations
  end;
  let worst_response =
    List.fold_left
      (fun acc i ->
        match i.response with
        | None -> acc
        | Some r ->
            let cur =
              Option.value ~default:0 (List.assoc_opt i.constraint_name acc)
            in
            (i.constraint_name, max cur r)
            :: List.remove_assoc i.constraint_name acc)
      [] invocations
    |> List.sort compare
  in
  { invocations; misses; worst_response }

let pp_report fmt r =
  Format.fprintf fmt "@[<v>invocations: %d, misses: %d@,"
    (List.length r.invocations) r.misses;
  List.iter
    (fun (name, w) -> Format.fprintf fmt "worst response %s: %d@," name w)
    r.worst_response;
  Format.fprintf fmt "@]"
