module Ns = Rt_multiproc.Netsched

type kind = Lost | Corrupted

type fault = { slot : int; kind : kind }

type plan = fault list

let random_plan g ~horizon ~loss_rate =
  let faults = ref [] in
  for slot = horizon - 1 downto 0 do
    if Rt_graph.Prng.chance g loss_rate then
      faults :=
        { slot; kind = (if Rt_graph.Prng.bool g then Lost else Corrupted) }
        :: !faults
  done;
  !faults

let faulty plan slot = List.exists (fun f -> f.slot = slot) plan

let admit ~k items plan =
  if k < 0 then invalid_arg "Net_fault.admit: negative k";
  let errs =
    List.sort
      (fun (a : Ns.item) b ->
        compare (a.abs_deadline, a.item_name) (b.abs_deadline, b.item_name))
      items
    |> List.filter_map (fun (i : Ns.item) ->
           let hits =
             List.length
               (List.filter
                  (fun f -> f.slot >= i.release && f.slot < i.abs_deadline)
                  plan)
           in
           if hits > k then
             Some
               (Printf.sprintf
                  "%s: %d fault(s) in window [%d,%d) exceed the ARQ slack %d"
                  i.item_name hits i.release i.abs_deadline k)
           else None)
  in
  match errs with [] -> Ok () | es -> Error es

type live = { spec : Ns.item; mutable remaining : int }

type outcome = {
  delivered : (string * int) list;
  missed : Ns.miss list;
  retransmissions : int;
}

let simulate ~horizon items plan =
  let lives =
    List.map (fun (i : Ns.item) -> { spec = i; remaining = i.cost }) items
    |> List.sort (fun a b ->
           compare
             (a.spec.Ns.abs_deadline, a.spec.Ns.release, a.spec.Ns.item_name)
             (b.spec.Ns.abs_deadline, b.spec.Ns.release, b.spec.Ns.item_name))
    |> Array.of_list
  in
  let delivered = ref [] and missed = ref [] and retrans = ref 0 in
  let record_miss l ~at =
    missed :=
      {
        Ns.missed = l.spec.Ns.item_name;
        miss_deadline = at;
        short = l.remaining;
      }
      :: !missed;
    l.remaining <- 0
  in
  for t = 0 to horizon - 1 do
    Array.iter
      (fun l ->
        if l.remaining > 0 && l.spec.Ns.abs_deadline <= t then
          record_miss l ~at:l.spec.Ns.abs_deadline)
      lives;
    let ready =
      Array.fold_left
        (fun acc l ->
          match acc with
          | Some _ -> acc
          | None ->
              if l.remaining > 0 && l.spec.Ns.release <= t then Some l
              else None)
        None lives
    in
    match ready with
    | None -> ()
    | Some l ->
        if faulty plan t then incr retrans
        else begin
          l.remaining <- l.remaining - 1;
          if l.remaining = 0 then
            delivered := (l.spec.Ns.item_name, t + 1) :: !delivered
        end
  done;
  Array.iter
    (fun l ->
      if l.remaining > 0 then
        record_miss l ~at:(min l.spec.Ns.abs_deadline horizon))
    lives;
  {
    delivered =
      List.sort (fun (na, ta) (nb, tb) -> compare (ta, na) (tb, nb))
        !delivered;
    missed =
      List.sort
        (fun (a : Ns.miss) b ->
          compare (a.miss_deadline, a.missed) (b.miss_deadline, b.missed))
        !missed;
    retransmissions = !retrans;
  }
