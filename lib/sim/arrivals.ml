module Prng = Rt_graph.Prng

let max_rate ~horizon ~separation =
  if separation <= 0 then invalid_arg "Arrivals.max_rate";
  let rec go t acc = if t >= horizon then List.rev acc else go (t + separation) (t :: acc) in
  go 0 []

let single ~at ~horizon = if at >= 0 && at < horizon then [ at ] else []

let random g ~horizon ~separation ~density =
  if separation <= 0 || density <= 0.0 || density > 1.0 then
    invalid_arg "Arrivals.random";
  let mean_gap = float_of_int separation /. density in
  let rec go t acc =
    if t >= horizon then List.rev acc
    else begin
      let gap =
        max separation
          (separation + int_of_float (Prng.float g (2.0 *. (mean_gap -. float_of_int separation))))
      in
      go (t + gap) (t :: acc)
    end
  in
  go (Prng.int g (max 1 separation)) []

let adversarial_phases g ~horizon ~separation =
  if separation <= 0 then invalid_arg "Arrivals.adversarial_phases";
  let phase = Prng.int g separation in
  let rec go t acc = if t >= horizon then List.rev acc else go (t + separation) (t :: acc) in
  go phase []

let legal ~separation arrivals =
  let rec go = function
    | a :: (b :: _ as rest) -> a >= 0 && b - a >= separation && go rest
    | [ a ] -> a >= 0
    | [] -> true
  in
  go arrivals
