type config = { check_period : int; stall_limit : int }

let default_config = { check_period = 1; stall_limit = 16 }

let detection_bound cfg = cfg.check_period - 1

type detection = {
  elem : int;
  start : int;
  nominal_finish : int;
  detected_at : int;
  latency : int;
}

type verdict = Clean | Detected of detection | Stalled of detection

type t = {
  config : config;
  mutable detections : detection list;
  reported : (int * int, unit) Hashtbl.t;
}

let create config =
  if config.check_period <= 0 then
    invalid_arg "Watchdog.create: check_period <= 0";
  if config.stall_limit <= 0 then
    invalid_arg "Watchdog.create: stall_limit <= 0";
  { config; detections = []; reported = Hashtbl.create 8 }

let detections t = List.rev t.detections

let check t ~now ~elem ~start ~nominal_finish ~consumed ~budget =
  if now mod t.config.check_period <> 0 then Clean
  else if consumed < budget then Clean
  else
    let d =
      {
        elem;
        start;
        nominal_finish;
        detected_at = now;
        latency = now - nominal_finish;
      }
    in
    if consumed >= budget + t.config.stall_limit then Stalled d
    else if Hashtbl.mem t.reported (elem, start) then Clean
    else begin
      Hashtbl.add t.reported (elem, start) ();
      t.detections <- d :: t.detections;
      Detected d
    end

let pp_detection fmt d =
  Format.fprintf fmt
    "element %d execution@%d: budget exhausted at %d, detected at %d \
     (latency %d)"
    d.elem d.start d.nominal_finish d.detected_at d.latency
