(** The run-time scheduler: round-robin execution of a static schedule,
    with per-invocation deadline accounting.

    "Even though optimal static schedules are hard to compute in
    general, ... the run-time scheduler is very efficient once a
    feasible static schedule has been found off-line."  The run-time
    component simply replays the schedule; this module replays it
    against concrete (possibly adversarial) invocation sequences and
    measures every invocation's response time, providing the
    end-to-end check that the off-line latency analysis promises. *)

type invocation = {
  constraint_name : string;
  arrival : int;  (** Invocation instant. *)
  completion : int option;
      (** Finish of the earliest execution of the constraint's task
          graph that starts at or after [arrival]; [None] if none
          completes within the simulated horizon. *)
  response : int option;  (** [completion - arrival]. *)
  met : bool;  (** [response <= deadline]. *)
}

type report = {
  invocations : invocation list;  (** Ordered by arrival, then name. *)
  misses : int;  (** Invocations whose deadline was not met. *)
  worst_response : (string * int) list;
      (** Per constraint, the maximum observed response. *)
}

val run :
  Rt_core.Model.t ->
  Rt_core.Schedule.t ->
  horizon:int ->
  arrivals:(string * int list) list ->
  report
(** [run m sched ~horizon ~arrivals] replays [sched] for [horizon]
    slots (plus an internal margin so completions near the end are
    observed).  [arrivals] supplies invocation instants for
    asynchronous constraints by name; periodic constraints are invoked
    at [offset, offset + p, ...] automatically.  Asynchronous constraints missing
    from [arrivals] are never invoked.  Raises [Invalid_argument] on
    unknown names, arrivals beyond the horizon, or illegal (separation-
    violating) sequences. *)

val pp_report : Format.formatter -> report -> unit
(** Summary rendering (miss count and worst responses). *)
