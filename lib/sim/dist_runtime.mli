(** Lockstep distributed replay: processor crashes, bus faults,
    heartbeat detection, and failover to pre-synthesized contingency
    tables.

    {!Robust_runtime} handles a single processor whose {e executions}
    misbehave; this engine handles a multiprocessor system whose
    {e processors} and {e bus} misbehave.  All [n] processors and the
    bus advance in lockstep, one slot at a time:

    - every live processor runs its slot of the table in force (tables
      are indexed by absolute time modulo their hyperperiod, so a table
      swap needs no phase alignment);
    - the bus transmits one unit of the earliest-deadline pending
      message under the ARQ discipline — a faulty slot
      ({!Net_fault.plan}) wastes the unit and the sender retransmits;
      messages whose source processor is dead cannot transmit at all;
    - a heartbeat monitor ({!Heartbeat}) observes liveness and declares
      crashes/recoveries within the analyzed
      {!Heartbeat.detection_bound}.

    Under the {!Failover} policy a declared crash of processor [p]
    swaps in the pre-synthesized scenario table for [p]
    ({!Rt_multiproc.Contingency}) after [1 + migration] further slots
    — one for the table swap, the rest to move the dead processor's
    state — so the whole crash-to-contingency latency is the table's
    [reconfig_bound].  Pending bus traffic of the old configuration is
    cleared at the swap: its invocations are the crash's (bounded)
    collateral, and stale messages must not steal verified slots from
    the new table.  When the crashed processor returns and its
    heartbeats resume, the nominal table is re-admitted through the
    same swap protocol.

    The guarantee replayed here is the contingency contract: with an
    admissible fault load ({!Net_fault.admit} at the synthesized ARQ
    slack) every invocation of a scenario-retained constraint arriving
    at or after [crash + reconfig_bound] is served entirely by the
    verified contingency table and meets its deadline — zero
    high-criticality misses after the bound, for a crash at any slot.
    Everything is deterministic: same inputs, same report. *)

type crash = {
  proc : int;
  at : int;  (** First slot the processor no longer executes. *)
  return_at : int option;  (** Slot it resumes (heartbeats restart). *)
}

type policy =
  | No_failover  (** Detection only; the nominal tables stay in force. *)
  | Failover  (** Swap to the contingency table for the dead processor. *)

type config_tag = Nominal | Scenario of int  (** The dead processor. *)

type event =
  | Crashed of { proc : int; at : int }
  | Returned of { proc : int; at : int }
  | Detected of { proc : int; at : int; latency : int }
      (** Heartbeat declaration; [latency = at - crash slot], always
          [<= Heartbeat.detection_bound]. *)
  | Failover_complete of { proc : int; at : int }
      (** The scenario table for [proc] is in force from slot [at]. *)
  | Failover_unavailable of { proc : int; at : int; reason : string }
  | Readmitted of { proc : int; at : int }
      (** Nominal table back in force after the processor returned. *)

type invocation = {
  constraint_name : string;
  criticality : Rt_core.Criticality.level;
  arrival : int;
  deadline : int;  (** Relative, of the plan in force at arrival. *)
  processor : int;  (** Owner: the final segment's processor. *)
  completion : int option;
  response : int option;
  met : bool;
  shed : bool;
      (** Arrived while the scenario in force had shed the constraint;
          not served, not a miss. *)
  config : config_tag;  (** Configuration in force at arrival. *)
}

type report = {
  invocations : invocation list;  (** By arrival, then name. *)
  events : event list;  (** Chronological. *)
  realized : Rt_core.Schedule.t array;
      (** Realized execution log per processor over the replay span
          (horizon plus an internal margin); crashed spans are idle. *)
  bus_retransmissions : int;  (** Bus slots wasted to faults. *)
  misses : int;  (** Non-shed invocations that missed. *)
  shed : int;
  config_switches : int;
  detection_bound : int;  (** The heartbeat analysis bound. *)
  reconfig_bound : int;  (** The contingency table's. *)
  final_config : config_tag;
}

val run :
  ?crit:Rt_core.Criticality.assignment ->
  ?crashes:crash list ->
  ?net_faults:Net_fault.plan ->
  ?policy:policy ->
  ?heartbeat:Heartbeat.config ->
  horizon:int ->
  Rt_core.Model.t ->
  Rt_multiproc.Contingency.table ->
  report
(** [run ~horizon m table] replays the system for [horizon] slots of
    arrivals (invocations with windows past the horizon are replayed
    to completion over an internal margin).  [policy] defaults to
    {!Failover}, [heartbeat] to {!Heartbeat.default}.  Constraints
    release at the period of the plan in force at each release (shed
    constraints keep their nominal rhythm); when a swap changes a
    constraint's period — stretched degradation — its next release
    rounds up to the next absolute multiple of the new period, the
    phases the swapped-in table is verified for.  High-criticality
    constraints are never stretched, so their rhythm never skips.
    Raises [Invalid_argument]
    when a crash names an out-of-range processor or slot, two crashes
    overlap on one processor, or the heartbeat's
    {!Heartbeat.detection_bound} exceeds the [detect_bound] the
    contingency table was synthesized for (the analysis would be
    vacuous). *)

val pp_event : Format.formatter -> event -> unit

val pp_report : Format.formatter -> report -> unit
(** Counters, bound accounting, then the chronological event log. *)
