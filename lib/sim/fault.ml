type interp = now:int -> float array -> float

type window = { from : int; until : int }

let in_window w now = now >= w.from && now < w.until

let stuck_at w v f ~now inputs = if in_window w now then v else f ~now inputs

let offset_by w delta f ~now inputs =
  let x = f ~now inputs in
  if in_window w now then x +. delta else x

let spike ~at v f =
  (* Completions rarely land on an exact instant; the glitch hits the
     first completion at or after [at], and only that one. *)
  let fired = ref false in
  fun ~now inputs ->
    if (not !fired) && now >= at then begin
      fired := true;
      v
    end
    else f ~now inputs

let dropout w f =
  let last = ref 0.0 in
  fun ~now inputs ->
    if in_window w now then !last
    else begin
      let x = f ~now inputs in
      last := x;
      x
    end

let chain injectors f = List.fold_left (fun acc inj -> inj acc) f injectors
