open Rt_core
module Tracer = Rt_obs.Tracer

let us_of_slot t = t * Tracer.slot_us

let elem_name g e =
  match Comm_graph.element g e with
  | el -> el.Element.name
  | exception _ -> Printf.sprintf "e%d" e

let track ~tid name = Tracer.track_name ~tid name

let emit_span g ~tid e ~start ~stop_excl =
  Tracer.complete ~cat:"sim" ~tid ~ts_us:(us_of_slot start)
    ~dur_us:(us_of_slot (stop_excl - start))
    (elem_name g e)

let schedule g sched ~tid ~horizon =
  if Tracer.enabled () && horizon > 0 && Schedule.length sched > 0 then begin
    (* Merge consecutive slots of the same element into one span. *)
    let current = ref None in
    let close_at t =
      match !current with
      | Some (e, start) ->
          emit_span g ~tid e ~start ~stop_excl:t;
          current := None
      | None -> ()
    in
    for t = 0 to horizon - 1 do
      match Schedule.slot sched (t mod Schedule.length sched) with
      | Schedule.Idle -> close_at t
      | Schedule.Run e -> (
          match !current with
          | Some (e', _) when e' = e -> ()
          | Some _ ->
              close_at t;
              current := Some (e, t)
          | None -> current := Some (e, t))
    done;
    close_at horizon
  end

let executions g ~tid records =
  if Tracer.enabled () then
    List.iter
      (fun (e, start, finish) ->
        emit_span g ~tid e ~start ~stop_excl:(finish + 1))
      records

let instant ~tid ~at name =
  Tracer.instant_at ~cat:"sim" ~tid ~ts_us:(us_of_slot at) name
