open Rt_core
module P = Rt_process

type protocol = No_protocol | Inheritance | Ceiling

type config = { protocol : protocol; assignment : P.Fixed_priority.assignment }

let default_config =
  { protocol = Inheritance; assignment = P.Fixed_priority.Deadline_monotonic }

type job_outcome = {
  process : string;
  release : int;
  finish : int option;
  abs_deadline : int;
  met : bool;
  blocked_slots : int;
}

type result = {
  jobs : job_outcome list;
  misses : int;
  max_blocking : (string * int) list;
  deadlocked : bool;
}

(* A job executes a list of micro-steps; Tick consumes one slot,
   Acquire/Release are instantaneous and processed when reached. *)
type micro = Tick | Acquire of int | Release of int

type live = {
  uid : int;  (* unique per job; names repeat across releases *)
  name : string;
  base_rank : int; (* smaller = higher priority *)
  release : int;
  abs_deadline : int;
  steps : micro array;
  mutable pc : int;
  mutable finished_at : int option;
  mutable blocked_slots : int;
  mutable waiting_for : int option; (* monitor id *)
}

let expand (prog : P.Codegen.program) weight_of =
  prog.P.Codegen.steps
  |> List.concat_map (function
       | P.Codegen.Call e -> List.init (weight_of e) (fun _ -> Tick)
       | P.Codegen.Enter e -> [ Acquire e ]
       | P.Codegen.Leave e -> [ Release e ])
  |> Array.of_list

let simulate ?(config = default_config) ?(arrivals = [])
    (m : Model.t) (tr : P.From_model.translation) ~horizon =
  let weight_of e = Comm_graph.weight m.comm e in
  let rank_of =
    let order = P.Fixed_priority.priorities config.assignment tr.processes in
    fun name ->
      let rec idx i = function
        | [] -> i
        | (p : P.Process.t) :: rest ->
            if p.name = name then i else idx (i + 1) rest
      in
      idx 0 order
  in
  let program_of name =
    List.find
      (fun (pr : P.Codegen.program) -> pr.process_name = name)
      tr.programs
  in
  let releases_of (p : P.Process.t) =
    match p.kind with
    | P.Process.Periodic_process ->
        let rec go t acc =
          if t >= horizon then List.rev acc else go (t + p.p) (t :: acc)
        in
        go 0 []
    | P.Process.Sporadic_process -> (
        match List.assoc_opt p.name arrivals with
        | Some ts -> List.filter (fun t -> t < horizon) ts
        | None ->
            let rec go t acc =
              if t >= horizon then List.rev acc else go (t + p.p) (t :: acc)
            in
            go 0 [])
  in
  let next_uid = ref 0 in
  let lives =
    List.concat_map
      (fun (p : P.Process.t) ->
        let steps = expand (program_of p.name) weight_of in
        List.map
          (fun t ->
            incr next_uid;
            {
              uid = !next_uid;
              name = p.name;
              base_rank = rank_of p.name;
              release = t;
              abs_deadline = t + p.d;
              steps;
              pc = 0;
              finished_at = None;
              blocked_slots = 0;
              waiting_for = None;
            })
          (releases_of p))
      tr.processes
    |> List.sort (fun a b ->
           compare (a.release, a.base_rank, a.name) (b.release, b.base_rank, b.name))
    |> Array.of_list
  in
  (* Monitor ownership: monitor element id -> owning live job. *)
  let owner : (int, live) Hashtbl.t = Hashtbl.create 8 in
  let finished l = l.finished_at <> None in
  let ready now l = l.release <= now && not (finished l) in
  (* Process instantaneous steps for job l at time [now]; returns true
     if the job can consume a slot now (its next step is Tick), false
     if it is blocked on a monitor or has finished. *)
  (* Priority ceiling of a monitor: the best (smallest) base rank among
     the processes whose programs ever enter it. *)
  let ceiling_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (prog : P.Codegen.program) ->
        let rank = rank_of prog.process_name in
        List.iter
          (function
            | P.Codegen.Enter e ->
                (match Hashtbl.find_opt tbl e with
                | Some r when r <= rank -> ()
                | _ -> Hashtbl.replace tbl e rank)
            | P.Codegen.Call _ | P.Codegen.Leave _ -> ())
          prog.P.Codegen.steps)
      tr.programs;
    fun mid -> Option.value ~default:max_int (Hashtbl.find_opt tbl mid)
  in
  (* PCP admission: a job may enter a monitor only if its base rank is
     strictly better than the ceiling of every monitor held by others. *)
  let pcp_admits l =
    match config.protocol with
    | Ceiling ->
        Hashtbl.fold
          (fun mid holder acc ->
            acc && (holder == l || l.base_rank < ceiling_of mid))
          owner true
    | No_protocol | Inheritance -> true
  in
  let rec settle now l =
    if l.pc >= Array.length l.steps then begin
      if l.finished_at = None then l.finished_at <- Some now;
      false
    end
    else
      match l.steps.(l.pc) with
      | Tick -> true
      | Acquire mid -> (
          match Hashtbl.find_opt owner mid with
          | Some holder when holder != l ->
              l.waiting_for <- Some mid;
              false
          | _ ->
              if pcp_admits l then begin
                Hashtbl.replace owner mid l;
                l.waiting_for <- None;
                l.pc <- l.pc + 1;
                settle now l
              end
              else begin
                (* Blocked by the ceiling: record the monitor so that
                   inheritance can lift the blocking holder. *)
                l.waiting_for <- Some mid;
                false
              end)
      | Release mid ->
          (match Hashtbl.find_opt owner mid with
          | Some holder when holder == l -> Hashtbl.remove owner mid
          | _ -> ());
          l.pc <- l.pc + 1;
          settle now l
  in
  (* Effective rank with priority inheritance: a holder inherits the
     best rank among jobs transitively blocked on monitors it holds. *)
  let effective_rank now l =
    if config.protocol = No_protocol then l.base_rank
    else begin
      let best = ref l.base_rank in
      (* Propagate blocked jobs' ranks to holders until a fixpoint over
         the (small) job set. *)
      let changed = ref true in
      let inherited : (int, int) Hashtbl.t = Hashtbl.create 8 in
      Array.iter (fun j -> Hashtbl.replace inherited j.uid j.base_rank) lives;
      while !changed do
        changed := false;
        Array.iter
          (fun j ->
            if ready now j then
              match j.waiting_for with
              | Some mid -> (
                  let lift h =
                    let jr = Hashtbl.find inherited j.uid in
                    let hr = Hashtbl.find inherited h.uid in
                    if jr < hr then begin
                      Hashtbl.replace inherited h.uid jr;
                      changed := true
                    end
                  in
                  match Hashtbl.find_opt owner mid with
                  | Some h -> lift h
                  | None ->
                      (* Ceiling-blocked: lift every other holder whose
                         monitor's ceiling is blocking j. *)
                      if config.protocol = Ceiling then
                        Hashtbl.iter
                          (fun m h ->
                            if h != j && j.base_rank >= ceiling_of m then
                              lift h)
                          owner)
              | None -> ())
          lives
      done;
      best := min !best (Hashtbl.find inherited l.uid);
      !best
    end
  in
  let deadlocked = ref false in
  for now = 0 to horizon - 1 do
    (* Settle instantaneous steps (acquisitions may cascade as monitors
       free up). *)
    let ready_jobs = Array.to_list lives |> List.filter (fun l -> ready now l) in
    let runnable = List.filter (fun l -> settle now l) ready_jobs in
    if
      runnable = [] && ready_jobs <> []
      && List.for_all (fun l -> l.waiting_for <> None) ready_jobs
    then deadlocked := true;
    (* Choose the best effective-priority runnable job. *)
    let chosen =
      List.fold_left
        (fun acc l ->
          match acc with
          | None -> Some l
          | Some b ->
              let kl = (effective_rank now l, l.release, l.name) in
              let kb = (effective_rank now b, b.release, b.name) in
              if kl < kb then Some l else acc)
        None runnable
    in
    (match chosen with
    | None -> ()
    | Some l ->
        (* Account blocking: every ready unfinished job with a better
           base rank than the one running is suffering inversion. *)
        Array.iter
          (fun j ->
            if ready now j && j != l && j.base_rank < l.base_rank then
              j.blocked_slots <- j.blocked_slots + 1)
          lives;
        assert (l.steps.(l.pc) = Tick);
        l.pc <- l.pc + 1;
        (* Completion exactly at the end of the last tick. *)
        ignore (settle (now + 1) l))
  done;
  let outcomes =
    Array.to_list lives
    |> List.map (fun l ->
           let met =
             match l.finished_at with
             | Some f -> f <= l.abs_deadline
             | None -> l.abs_deadline > horizon
           in
           {
             process = l.name;
             release = l.release;
             finish = l.finished_at;
             abs_deadline = l.abs_deadline;
             met;
             blocked_slots = l.blocked_slots;
           })
  in
  let max_blocking =
    List.fold_left
      (fun acc o ->
        let cur = Option.value ~default:0 (List.assoc_opt o.process acc) in
        (o.process, max cur o.blocked_slots) :: List.remove_assoc o.process acc)
      [] outcomes
    |> List.sort compare
  in
  {
    jobs = outcomes;
    misses = List.length (List.filter (fun o -> not o.met) outcomes);
    max_blocking;
    deadlocked = !deadlocked;
  }
