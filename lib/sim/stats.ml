type summary = {
  constraint_name : string;
  invocations : int;
  completed : int;
  min_response : int;
  max_response : int;
  mean_response : float;
  jitter : int;
  misses : int;
}

let summarize (r : Runtime.report) =
  let by_name : (string, Runtime.invocation list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (i : Runtime.invocation) ->
      let cur =
        Option.value ~default:[] (Hashtbl.find_opt by_name i.constraint_name)
      in
      Hashtbl.replace by_name i.constraint_name (i :: cur))
    r.Runtime.invocations;
  Hashtbl.fold
    (fun name invs acc ->
      let responses =
        List.filter_map (fun (i : Runtime.invocation) -> i.response) invs
      in
      let completed = List.length responses in
      let misses =
        List.length (List.filter (fun (i : Runtime.invocation) -> not i.met) invs)
      in
      let min_r = List.fold_left min max_int responses in
      let max_r = List.fold_left max 0 responses in
      let mean =
        if completed = 0 then 0.0
        else
          float_of_int (List.fold_left ( + ) 0 responses)
          /. float_of_int completed
      in
      {
        constraint_name = name;
        invocations = List.length invs;
        completed;
        min_response = (if completed = 0 then 0 else min_r);
        max_response = max_r;
        mean_response = mean;
        jitter = (if completed = 0 then 0 else max_r - min_r);
        misses;
      }
      :: acc)
    by_name []
  |> List.sort (fun a b -> String.compare a.constraint_name b.constraint_name)

let pp_summary fmt s =
  Format.fprintf fmt "%s: %d invocations, resp %d..%d (mean %.1f, jitter %d), %d misses"
    s.constraint_name s.invocations s.min_response s.max_response
    s.mean_response s.jitter s.misses

let worst_jitter summaries =
  List.fold_left
    (fun acc s ->
      if s.completed = 0 then acc
      else
        match acc with
        | Some (_, j) when j >= s.jitter -> acc
        | _ -> Some (s.constraint_name, s.jitter))
    None summaries
