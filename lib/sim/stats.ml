type summary = {
  constraint_name : string;
  invocations : int;
  completed : int;
  min_response : int option;
  max_response : int option;
  mean_response : float;
  p95_response : int option;
  p99_response : int option;
  jitter : int option;
  misses : int;
}

(* Nearest-rank percentile over a sorted sample: the smallest value
   with at least q% of the sample at or below it. *)
let percentile_sorted sorted ~q =
  match sorted with
  | [] -> None
  | _ ->
      let n = List.length sorted in
      let rank =
        let r = (q * n + 99) / 100 in
        if r < 1 then 1 else r
      in
      Some (List.nth sorted (rank - 1))

let summary_of_responses ~name ~invocations ~misses responses =
  let sorted = List.sort compare responses in
  let completed = List.length sorted in
  let min_r = match sorted with [] -> None | r :: _ -> Some r in
  let max_r =
    match sorted with [] -> None | _ -> Some (List.nth sorted (completed - 1))
  in
  let mean =
    if completed = 0 then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 sorted) /. float_of_int completed
  in
  {
    constraint_name = name;
    invocations;
    completed;
    min_response = min_r;
    max_response = max_r;
    mean_response = mean;
    p95_response = percentile_sorted sorted ~q:95;
    p99_response = percentile_sorted sorted ~q:99;
    jitter =
      (match (min_r, max_r) with
      | Some lo, Some hi -> Some (hi - lo)
      | _ -> None);
    misses;
  }

let group_by_name fold =
  let by_name : (string, int list * int * int) Hashtbl.t = Hashtbl.create 8 in
  fold (fun ~name ~response ~miss ->
      let responses, invocations, misses =
        Option.value ~default:([], 0, 0) (Hashtbl.find_opt by_name name)
      in
      let responses =
        match response with None -> responses | Some r -> r :: responses
      in
      Hashtbl.replace by_name name
        (responses, invocations + 1, misses + if miss then 1 else 0));
  Hashtbl.fold
    (fun name (responses, invocations, misses) acc ->
      summary_of_responses ~name ~invocations ~misses responses :: acc)
    by_name []
  |> List.sort (fun a b -> String.compare a.constraint_name b.constraint_name)

let summarize (r : Runtime.report) =
  group_by_name (fun add ->
      List.iter
        (fun (i : Runtime.invocation) ->
          add ~name:i.constraint_name ~response:i.response ~miss:(not i.met))
        r.Runtime.invocations)

let summarize_robust (r : Robust_runtime.report) =
  group_by_name (fun add ->
      List.iter
        (fun (i : Robust_runtime.invocation) ->
          if not i.shed then
            add ~name:i.constraint_name ~response:i.response ~miss:(not i.met))
        r.Robust_runtime.invocations)

let pp_response fmt = function
  | None -> Format.pp_print_string fmt "-"
  | Some r -> Format.pp_print_int fmt r

let pp_summary fmt s =
  Format.fprintf fmt
    "%s: %d invocations, resp %a..%a (mean %.1f, p95 %a, p99 %a, jitter %a), \
     %d misses"
    s.constraint_name s.invocations pp_response s.min_response pp_response
    s.max_response s.mean_response pp_response s.p95_response pp_response
    s.p99_response pp_response s.jitter s.misses

let worst_jitter summaries =
  List.fold_left
    (fun acc s ->
      match s.jitter with
      | None -> acc
      | Some j -> (
          match acc with
          | Some (_, j') when j' >= j -> acc
          | _ -> Some (s.constraint_name, j)))
    None summaries

(* ------------------------------------------------------------------ *)
(* Per-criticality rollups over robust replays                         *)
(* ------------------------------------------------------------------ *)

type criticality_summary = {
  level : Rt_core.Criticality.level;
  total : int;
  served : int;
  level_misses : int;
  level_shed : int;
  miss_ratio : float;
}

let by_criticality (r : Robust_runtime.report) =
  List.map
    (fun level ->
      let here =
        List.filter
          (fun (i : Robust_runtime.invocation) -> i.criticality = level)
          r.Robust_runtime.invocations
      in
      let total = List.length here in
      let shed =
        List.length
          (List.filter (fun (i : Robust_runtime.invocation) -> i.shed) here)
      in
      let misses =
        List.length
          (List.filter
             (fun (i : Robust_runtime.invocation) -> (not i.shed) && not i.met)
             here)
      in
      let served = total - shed in
      {
        level;
        total;
        served;
        level_misses = misses;
        level_shed = shed;
        miss_ratio =
          (if served = 0 then 0.0
           else float_of_int misses /. float_of_int served);
      })
    Rt_core.Criticality.all_levels

(* ------------------------------------------------------------------ *)
(* Per-processor rollups over distributed replays                      *)
(* ------------------------------------------------------------------ *)

type processor_summary = {
  processor : int;
  proc_invocations : int;
  proc_misses : int;
  proc_shed : int;
  busy : int;
  idle : int;
  preemptions : int;
  proc_p95 : int option;
  proc_p99 : int option;
}

let by_processor g (r : Dist_runtime.report) =
  List.init (Array.length r.Dist_runtime.realized) (fun proc ->
      let slots =
        Rt_core.Schedule.slots r.Dist_runtime.realized.(proc)
      in
      let busy = ref 0 and preemptions = ref 0 in
      (* Progress of the in-flight execution per element: an element
         completes an execution on accruing its full weight; losing the
         processor before that is a preemption. *)
      let acc = Array.make (Rt_core.Comm_graph.n_elements g) 0 in
      Array.iteri
        (fun t slot ->
          match slot with
          | Rt_core.Schedule.Idle -> ()
          | Rt_core.Schedule.Run e ->
              incr busy;
              acc.(e) <- acc.(e) + 1;
              if acc.(e) >= Rt_core.Comm_graph.weight g e then acc.(e) <- 0
              else if
                t + 1 >= Array.length slots
                || slots.(t + 1) <> Rt_core.Schedule.Run e
              then incr preemptions)
        slots;
      let here =
        List.filter
          (fun (i : Dist_runtime.invocation) -> i.processor = proc)
          r.Dist_runtime.invocations
      in
      let shed =
        List.length
          (List.filter (fun (i : Dist_runtime.invocation) -> i.shed) here)
      in
      let misses =
        List.length
          (List.filter
             (fun (i : Dist_runtime.invocation) -> (not i.shed) && not i.met)
             here)
      in
      let responses =
        List.filter_map (fun (i : Dist_runtime.invocation) -> i.response) here
        |> List.sort compare
      in
      {
        processor = proc;
        proc_invocations = List.length here;
        proc_misses = misses;
        proc_shed = shed;
        busy = !busy;
        idle = Array.length slots - !busy;
        preemptions = !preemptions;
        proc_p95 = percentile_sorted responses ~q:95;
        proc_p99 = percentile_sorted responses ~q:99;
      })

let pp_processor_summary fmt p =
  Format.fprintf fmt
    "p%d: %d invocations (%d missed, %d shed), busy %d / idle %d, %d \
     preemptions, p95 %a, p99 %a"
    p.processor p.proc_invocations p.proc_misses p.proc_shed p.busy p.idle
    p.preemptions pp_response p.proc_p95 pp_response p.proc_p99

let pp_criticality_summary fmt c =
  Format.fprintf fmt
    "%a: %d invocations (%d served, %d shed), %d misses (ratio %.3f)"
    Rt_core.Criticality.pp_level c.level c.total c.served c.level_shed
    c.level_misses c.miss_ratio
