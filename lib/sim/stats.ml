type summary = {
  constraint_name : string;
  invocations : int;
  completed : int;
  min_response : int option;
  max_response : int option;
  mean_response : float;
  p95_response : int option;
  p99_response : int option;
  jitter : int option;
  misses : int;
}

(* Nearest-rank percentile over a sorted sample: the smallest value
   with at least q% of the sample at or below it. *)
let percentile_sorted sorted ~q =
  match sorted with
  | [] -> None
  | _ ->
      let n = List.length sorted in
      let rank =
        let r = (q * n + 99) / 100 in
        if r < 1 then 1 else r
      in
      Some (List.nth sorted (rank - 1))

let summary_of_responses ~name ~invocations ~misses responses =
  let sorted = List.sort compare responses in
  let completed = List.length sorted in
  let min_r = match sorted with [] -> None | r :: _ -> Some r in
  let max_r =
    match sorted with [] -> None | _ -> Some (List.nth sorted (completed - 1))
  in
  let mean =
    if completed = 0 then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 sorted) /. float_of_int completed
  in
  {
    constraint_name = name;
    invocations;
    completed;
    min_response = min_r;
    max_response = max_r;
    mean_response = mean;
    p95_response = percentile_sorted sorted ~q:95;
    p99_response = percentile_sorted sorted ~q:99;
    jitter =
      (match (min_r, max_r) with
      | Some lo, Some hi -> Some (hi - lo)
      | _ -> None);
    misses;
  }

let group_by_name fold =
  let by_name : (string, int list * int * int) Hashtbl.t = Hashtbl.create 8 in
  fold (fun ~name ~response ~miss ->
      let responses, invocations, misses =
        Option.value ~default:([], 0, 0) (Hashtbl.find_opt by_name name)
      in
      let responses =
        match response with None -> responses | Some r -> r :: responses
      in
      Hashtbl.replace by_name name
        (responses, invocations + 1, misses + if miss then 1 else 0));
  Hashtbl.fold
    (fun name (responses, invocations, misses) acc ->
      summary_of_responses ~name ~invocations ~misses responses :: acc)
    by_name []
  |> List.sort (fun a b -> String.compare a.constraint_name b.constraint_name)

let summarize (r : Runtime.report) =
  group_by_name (fun add ->
      List.iter
        (fun (i : Runtime.invocation) ->
          add ~name:i.constraint_name ~response:i.response ~miss:(not i.met))
        r.Runtime.invocations)

let summarize_robust (r : Robust_runtime.report) =
  group_by_name (fun add ->
      List.iter
        (fun (i : Robust_runtime.invocation) ->
          if not i.shed then
            add ~name:i.constraint_name ~response:i.response ~miss:(not i.met))
        r.Robust_runtime.invocations)

let pp_response fmt = function
  | None -> Format.pp_print_string fmt "-"
  | Some r -> Format.pp_print_int fmt r

let pp_summary fmt s =
  Format.fprintf fmt
    "%s: %d invocations, resp %a..%a (mean %.1f, p95 %a, p99 %a, jitter %a), \
     %d misses"
    s.constraint_name s.invocations pp_response s.min_response pp_response
    s.max_response s.mean_response pp_response s.p95_response pp_response
    s.p99_response pp_response s.jitter s.misses

let worst_jitter summaries =
  List.fold_left
    (fun acc s ->
      match s.jitter with
      | None -> acc
      | Some j -> (
          match acc with
          | Some (_, j') when j' >= j -> acc
          | _ -> Some (s.constraint_name, j)))
    None summaries

(* ------------------------------------------------------------------ *)
(* Per-criticality rollups over robust replays                         *)
(* ------------------------------------------------------------------ *)

type criticality_summary = {
  level : Rt_core.Criticality.level;
  total : int;
  served : int;
  level_misses : int;
  level_shed : int;
  miss_ratio : float;
}

let by_criticality (r : Robust_runtime.report) =
  List.map
    (fun level ->
      let here =
        List.filter
          (fun (i : Robust_runtime.invocation) -> i.criticality = level)
          r.Robust_runtime.invocations
      in
      let total = List.length here in
      let shed =
        List.length
          (List.filter (fun (i : Robust_runtime.invocation) -> i.shed) here)
      in
      let misses =
        List.length
          (List.filter
             (fun (i : Robust_runtime.invocation) -> (not i.shed) && not i.met)
             here)
      in
      let served = total - shed in
      {
        level;
        total;
        served;
        level_misses = misses;
        level_shed = shed;
        miss_ratio =
          (if served = 0 then 0.0
           else float_of_int misses /. float_of_int served);
      })
    Rt_core.Criticality.all_levels

let pp_criticality_summary fmt c =
  Format.fprintf fmt
    "%a: %d invocations (%d served, %d shed), %d misses (ratio %.3f)"
    Rt_core.Criticality.pp_level c.level c.total c.served c.level_shed
    c.level_misses c.miss_ratio
