(** Invocation-time (arrival) sequences for asynchronous constraints.

    An asynchronous constraint [(C, p, d)] "can be invoked at any
    integral time instant t with the provision that two successive
    invocations of the same timing constraint must be at least p time
    units apart".  These generators produce legal arrival sequences
    inside a horizon; the adversarial ones are used to stress the
    run-time executor. *)

val max_rate : horizon:int -> separation:int -> int list
(** Arrivals at [0, p, 2p, ...] — the densest legal sequence (the
    worst case for processor demand). *)

val single : at:int -> horizon:int -> int list
(** One arrival at [at] (if inside the horizon). *)

val random :
  Rt_graph.Prng.t -> horizon:int -> separation:int -> density:float -> int list
(** [random g ~horizon ~separation ~density] draws arrivals with mean
    inter-arrival time [separation /. density] (clamped to the legal
    minimum [separation]); [density] in [(0, 1]]. *)

val adversarial_phases :
  Rt_graph.Prng.t -> horizon:int -> separation:int -> int list
(** Arrivals at maximal rate but with a random initial phase — the
    latency condition must hold for every phase, so phase randomization
    probes window alignments the periodic pattern misses. *)

val legal : separation:int -> int list -> bool
(** Whether a sequence is sorted, non-negative and respects the minimum
    separation. *)
