(** Execution-time budget monitoring at slot granularity.

    Every execution of a functional element carries a computation-time
    budget — the element's weight, which the whole offline analysis
    assumed.  The watchdog observes the running execution at a
    configurable check period and flags any execution that has consumed
    its budget without completing ({e overrun}), escalating to a stall
    verdict when the overshoot exceeds [stall_limit] (a stuck element).

    The analyzed detection bound is [check_period - 1] slots: a
    violation comes into existence the instant the budget is exhausted
    without completion, and the next check instant is at most
    [check_period - 1] slots away.  {!Robust_runtime} measures the
    realized latency of every detection so experiments can confront the
    bound with observations. *)

type config = {
  check_period : int;
      (** Slots between checks; checks happen at instants [t] with
          [t mod check_period = 0].  Must be [> 0]. *)
  stall_limit : int;
      (** Overshoot (slots past the budget) at which an overrun is
          reclassified as a stall.  Must be [> 0]. *)
}

val default_config : config
(** [{check_period = 1; stall_limit = 16}] — check every slot. *)

val detection_bound : config -> int
(** [check_period - 1]: the worst-case detection latency in slots. *)

type detection = {
  elem : int;  (** Offending element. *)
  start : int;  (** Start slot of the offending execution. *)
  nominal_finish : int;
      (** Instant at which the budget was exhausted — when the
          execution should have completed. *)
  detected_at : int;  (** Check instant that flagged it. *)
  latency : int;  (** [detected_at - nominal_finish]. *)
}

type verdict =
  | Clean  (** Not a check instant, or within budget. *)
  | Detected of detection  (** First check to see this overrun. *)
  | Stalled of detection
      (** Overshoot reached [stall_limit]; the caller must kill the
          execution. *)

type t
(** Mutable monitor state (per run). *)

val create : config -> t
(** Raises [Invalid_argument] on non-positive configuration fields. *)

val check :
  t ->
  now:int ->
  elem:int ->
  start:int ->
  nominal_finish:int ->
  consumed:int ->
  budget:int ->
  verdict
(** [check t ~now ...] is called at the end of a slot for the
    still-incomplete execution in flight.  Returns {!Detected} at the
    first check instant at which [consumed >= budget] (once per
    execution), {!Stalled} when [consumed >= budget + stall_limit],
    {!Clean} otherwise. *)

val detections : t -> detection list
(** Every detection so far, in order of occurrence. *)

val pp_detection : Format.formatter -> detection -> unit
