(** Heartbeat-based crash detection with an analyzed bound.

    Every processor transmits a heartbeat in the slots [t] with
    [t mod hb_period = 0] (the bus reservation for heartbeats is
    outside this module's scope — one slot per processor per period is
    the usual provision).  A monitor declares a processor dead after
    [miss_threshold] consecutive missed heartbeats, and alive again at
    its first heartbeat after a declaration.

    The detection latency is bounded: the worst case is a crash in the
    slot just after a heartbeat, so the dead processor stays silent for
    [hb_period - 1] slots before its first missed beat, and
    [miss_threshold] beats must be missed —

    {v detection_bound = hb_period * miss_threshold - 1 v}

    slots from crash to declaration, which {!Dist_runtime} feeds to
    {!Rt_multiproc.Contingency.synthesize} as [detect_bound]. *)

type config = {
  hb_period : int;  (** Slots between heartbeats; [> 0]. *)
  miss_threshold : int;  (** Consecutive misses before declaring; [> 0]. *)
}

val default : config
(** [{hb_period = 5; miss_threshold = 2}]. *)

val validate : config -> (config, string) result

val detection_bound : config -> int
(** [hb_period * miss_threshold - 1]; raises [Invalid_argument] on an
    invalid config. *)

type event = Died of int | Recovered of int  (** Processor id. *)

type state

val make : config -> n_procs:int -> state
(** All processors initially believed alive.  Raises
    [Invalid_argument] on an invalid config or [n_procs <= 0]. *)

val observe : state -> t:int -> alive:(int -> bool) -> event list
(** Advance the monitor to slot [t]: on heartbeat slots each
    processor's beat is received iff [alive] says it is up, and the
    declarations that flip are returned (deterministic order by
    processor id).  Non-heartbeat slots return [[]].  Call once per
    slot with increasing [t]. *)

val believed_alive : state -> int -> bool
(** The monitor's current belief for a processor. *)
