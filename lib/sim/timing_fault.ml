open Rt_core

type window = { from : int; until : int }

type kind = Overrun of int | Transient | Stuck

type fault = { elem : int; window : window; kind : kind }

type plan = fault list

let in_window w t = t >= w.from && t < w.until

let overrun ~elem ~from ~until ~extra =
  { elem; window = { from; until }; kind = Overrun extra }

let transient ~elem ~from ~until =
  { elem; window = { from; until }; kind = Transient }

let stuck ~elem ~from ~until = { elem; window = { from; until }; kind = Stuck }

let validate comm plan =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun f ->
      if f.elem < 0 || f.elem >= Comm_graph.n_elements comm then
        err "fault names unknown element id %d" f.elem;
      if f.window.from < 0 then
        err "fault window starts before time 0 (%d)" f.window.from;
      if f.window.until <= f.window.from then
        err "empty fault window [%d, %d)" f.window.from f.window.until;
      match f.kind with
      | Overrun extra when extra <= 0 -> err "overrun extra must be > 0"
      | _ -> ())
    plan;
  if !errs = [] then Ok () else Error (List.rev !errs)

let demand plan ~weight ~elem ~start =
  List.fold_left
    (fun acc f ->
      if f.elem = elem && in_window f.window start then
        match f.kind with
        | Overrun extra -> if acc = max_int then acc else acc + extra
        | Stuck -> max_int
        | Transient -> acc
      else acc)
    weight plan

let yields_output plan ~elem ~start =
  not
    (List.exists
       (fun f ->
         f.elem = elem && f.kind = Transient && in_window f.window start)
       plan)

let max_extra plan =
  List.fold_left
    (fun acc f -> match f.kind with Overrun e -> max acc e | _ -> acc)
    0 plan

let last_active plan =
  List.fold_left (fun acc f -> max acc f.window.until) 0 plan

let kind_to_string = function
  | Overrun extra -> Printf.sprintf "overrun(+%d)" extra
  | Transient -> "transient"
  | Stuck -> "stuck"

let of_string comm s =
  (* KIND:ELEM:FROM-UNTIL[:+EXTRA], e.g. "overrun:f_s:40-80:+3". *)
  let fields = String.split_on_char ':' (String.trim s) in
  let window spec =
    match String.index_opt spec '-' with
    | None -> Error (Printf.sprintf "bad fault window %S (want FROM-UNTIL)" spec)
    | Some i -> (
        let a = String.sub spec 0 i
        and b = String.sub spec (i + 1) (String.length spec - i - 1) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some from, Some until -> Ok (from, until)
        | _ -> Error (Printf.sprintf "bad fault window %S" spec))
  in
  let elem name =
    match Comm_graph.find_opt comm name with
    | Some e -> Ok e.Element.id
    | None -> Error (Printf.sprintf "unknown element %S in fault spec" name)
  in
  let check f =
    match validate comm [ f ] with
    | Ok () -> Ok f
    | Error (e :: _) -> Error e
    | Error [] -> Ok f
  in
  match fields with
  | [ "overrun"; name; w; extra_s ] -> (
      let extra_s =
        if String.length extra_s > 0 && extra_s.[0] = '+' then
          String.sub extra_s 1 (String.length extra_s - 1)
        else extra_s
      in
      match
        (elem name, window w, int_of_string_opt extra_s)
      with
      | Ok e, Ok (from, until), Some extra ->
          check (overrun ~elem:e ~from ~until ~extra)
      | (Error _ as err), _, _ | _, (Error _ as err), _ -> err
      | _, _, None -> Error (Printf.sprintf "bad overrun extra %S" extra_s))
  | [ "transient"; name; w ] -> (
      match (elem name, window w) with
      | Ok e, Ok (from, until) -> check (transient ~elem:e ~from ~until)
      | (Error _ as err), _ | _, (Error _ as err) -> err)
  | [ "stuck"; name; w ] -> (
      match (elem name, window w) with
      | Ok e, Ok (from, until) -> check (stuck ~elem:e ~from ~until)
      | (Error _ as err), _ | _, (Error _ as err) -> err)
  | _ ->
      Error
        (Printf.sprintf
           "bad fault spec %S (want overrun:ELEM:FROM-UNTIL:+K, \
            transient:ELEM:FROM-UNTIL or stuck:ELEM:FROM-UNTIL)"
           s)

let pp comm fmt f =
  Format.fprintf fmt "%s on %s during [%d, %d)"
    (kind_to_string f.kind)
    (Comm_graph.element comm f.elem).Element.name
    f.window.from f.window.until

let pp_plan comm fmt plan =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list (pp comm))
    plan
