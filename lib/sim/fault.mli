(** Fault injection for value-carrying simulations.

    Wrappers around element interpretations that corrupt their output
    during chosen intervals — the experimental side of the paper's
    fault-tolerance direction: inject a fault, let the edge assertions
    localize it, and check that the architecture (voters, limiters)
    masks it.  All injectors are deterministic. *)

type interp = now:int -> float array -> float
(** The interpretation type of [Data.config]. *)

type window = { from : int; until : int }
(** Fault active during completion times [from <= now < until]. *)

val stuck_at : window -> float -> interp -> interp
(** [stuck_at w v f] outputs the constant [v] inside the window and
    behaves as [f] outside. *)

val offset_by : window -> float -> interp -> interp
(** [offset_by w delta f] adds a bias [delta] inside the window
    (sensor drift). *)

val spike : at:int -> float -> interp -> interp
(** [spike ~at v f] replaces the single completion at time [>= at]
    closest to [at] — the first one evaluated — by [v] (a transient
    glitch); every other completion, including later ones at the same
    instant on other elements, behaves as [f].  The injector is
    stateful: build a fresh one per simulation run. *)

val dropout : window -> interp -> interp
(** [dropout w f] freezes the output at the last pre-window value
    inside the window (a stale-sensor fault); before any value was
    produced it outputs 0. *)

val chain : (interp -> interp) list -> interp -> interp
(** [chain [i1; i2; ...] f] composes injectors left to right. *)
