(** Value-carrying simulation: execute a static schedule with real data
    flowing along the communication edges.

    This implements the research direction sketched in the paper's
    conclusion: "we can pose the problems of maintaining the logical
    integrity of real-time systems in terms of relations on the data
    values that are being passed along the edges of the communication
    graph of our model".  Edge {e assertions} are exactly such
    relations; the simulator checks them on every transmission.

    Semantics: each functional element has an interpretation, a function
    of the latest values on its incoming communication edges (ordered by
    source element id) and of the completion time.  When an execution of
    the element completes (its [weight]-th slot), the interpretation
    fires and the result is transmitted along all outgoing edges.
    Elements without incoming edges are {e sources}: their
    interpretation receives the empty array and typically samples an
    external signal indexed by time.  Edge values start at 0.0. *)

type config = {
  interps : (string * (now:int -> float array -> float)) list;
      (** Element name -> interpretation; elements without one compute
          the sum of their inputs. *)
  assertions : (string * string * (float -> bool)) list;
      (** (source, sink, predicate): a relation on every value
          transmitted along that communication edge. *)
}

type transmission = {
  time : int;  (** Completion time of the producing execution. *)
  source : string;
  sink : string;
  value : float;
}

type violation = { transmission : transmission; index : int }
(** A failed assertion; [index] points into [config.assertions]. *)

type result = {
  transmissions : transmission list;  (** Chronological. *)
  violations : violation list;  (** Chronological. *)
  final_edge_values : ((string * string) * float) list;
  outputs : (int * string * float) list;
      (** Values produced by sink elements (no outgoing edges), with
          completion times — the system's observable output signal. *)
}

val run :
  Rt_core.Model.t -> Rt_core.Schedule.t -> config -> steps:int -> result
(** [run m sched config ~steps] executes [steps] slots of the round-
    robin trace.  Raises [Invalid_argument] if [config] names unknown
    elements or edges. *)
