(* Binary min-heap over (time, seq); seq breaks ties by insertion order. *)

type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty q = q.len = 0

let size q = q.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less q.data.(i) q.data.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && less q.data.(l) q.data.(!smallest) then smallest := l;
  if r < q.len && less q.data.(r) q.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time value =
  if q.len = Array.length q.data then begin
    let cap = max 16 (2 * Array.length q.data) in
    let bigger =
      Array.make cap { time = 0; seq = 0; value }
    in
    Array.blit q.data 0 bigger 0 q.len;
    q.data <- bigger
  end;
  q.data.(q.len) <- { time; seq = q.next_seq; value };
  q.next_seq <- q.next_seq + 1;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let peek q =
  if q.len = 0 then None else Some (q.data.(0).time, q.data.(0).value)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    Some (top.time, top.value)
  end

let pop_until q t =
  let rec go acc =
    match peek q with
    | Some (time, _) when time <= t -> (
        match pop q with Some e -> go (e :: acc) | None -> List.rev acc)
    | _ -> List.rev acc
  in
  go []

let clear q = q.len <- 0
