(** Render replayed schedules onto the tracer's virtual timeline.

    The sim runtimes call these helpers (all no-ops when tracing is
    disabled) to emit slot-level complete events on {!Rt_obs.Tracer}'s
    simulation pid: one track per processor, one schedule slot scaled to
    {!Rt_obs.Tracer.slot_us} microseconds, so a replayed run opens in
    Perfetto as a Gantt chart of who ran when.  Consecutive slots of the
    same element merge into one span. *)

open Rt_core

val track : tid:int -> string -> unit
(** Label a virtual-time track (e.g. ["p0"], ["cpu"]). *)

val schedule : Comm_graph.t -> Schedule.t -> tid:int -> horizon:int -> unit
(** Emit the first [horizon] slots of [sched] (unrolled cyclically) as
    merged element spans on track [tid]. *)

val executions : Comm_graph.t -> tid:int -> (int * int * int) list -> unit
(** Emit explicit [(elem, start, finish)] execution records as recorded
    by {!Robust_runtime} — [finish] is the last busy slot (inclusive),
    so the span covers [finish - start + 1] slots. *)

val instant : tid:int -> at:int -> string -> unit
(** Flag a simulation event (miss, fault, detection) at slot [at]. *)
