(** A mutable binary min-heap keyed by integer time, the discrete-event
    backbone of the simulators.  Ties are served in insertion order so
    simulations are deterministic. *)

type 'a t
(** A queue of events carrying values of type ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val is_empty : 'a t -> bool
(** Whether no event is pending. *)

val size : 'a t -> int
(** Number of pending events. *)

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time v] schedules [v] at [time]. *)

val peek : 'a t -> (int * 'a) option
(** The earliest event, without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event ([None] when empty). *)

val pop_until : 'a t -> int -> (int * 'a) list
(** [pop_until q t] removes and returns, in order, every event with time
    [<= t]. *)

val clear : 'a t -> unit
(** Drop all pending events. *)
