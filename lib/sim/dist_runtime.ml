open Rt_core
module Mp = Rt_multiproc

type crash = { proc : int; at : int; return_at : int option }

type policy = No_failover | Failover

type config_tag = Nominal | Scenario of int

type event =
  | Crashed of { proc : int; at : int }
  | Returned of { proc : int; at : int }
  | Detected of { proc : int; at : int; latency : int }
  | Failover_complete of { proc : int; at : int }
  | Failover_unavailable of { proc : int; at : int; reason : string }
  | Readmitted of { proc : int; at : int }

type invocation = {
  constraint_name : string;
  criticality : Criticality.level;
  arrival : int;
  deadline : int;
  processor : int;
  completion : int option;
  response : int option;
  met : bool;
  shed : bool;
  config : config_tag;
}

type report = {
  invocations : invocation list;
  events : event list;
  realized : Schedule.t array;
  bus_retransmissions : int;
  misses : int;
  shed : int;
  config_switches : int;
  detection_bound : int;
  reconfig_bound : int;
  final_config : config_tag;
}

(* One pending ARQ transmission on the bus. *)
type bus_item = {
  b_name : string;
  b_release : int;
  b_deadline : int;
  b_src_proc : int;
  mutable b_remaining : int;
}

(* A released invocation, evaluated against the realized logs at the
   end of the replay. *)
type pending = {
  p_name : string;
  p_crit : Criticality.level;
  p_arrival : int;
  p_deadline : int;
  p_proc : int;
  p_plan : Mp.Decompose.plan option;  (** [None] when shed. *)
  p_msg_real : int;
  p_config : config_tag;
}

let plan_deadline (plan : Mp.Decompose.plan) =
  match List.rev plan.Mp.Decompose.pieces with
  | [] -> 0
  | last :: _ -> last.Mp.Decompose.end_off

let plan_owner (plan : Mp.Decompose.plan) =
  (* The constraint's "owner" is the processor of its final segment
     (where the end-to-end result materializes). *)
  List.fold_left
    (fun acc (w : Mp.Decompose.windowed) ->
      match w.Mp.Decompose.piece with
      | Mp.Decompose.Segment s -> s.processor
      | Mp.Decompose.Message _ -> acc)
    0 plan.Mp.Decompose.pieces

let result_of table = function
  | Nominal -> table.Mp.Contingency.nominal
  | Scenario d -> (
      match table.Mp.Contingency.scenarios.(d) with
      | Ok s -> s.Mp.Contingency.result
      | Error _ -> assert false (* switches only target feasible scenarios *))

let validate_crashes ~n_procs crashes =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if c.proc < 0 || c.proc >= n_procs then
        invalid_arg
          (Printf.sprintf "Dist_runtime.run: crash of processor %d out of range"
             c.proc);
      if c.at < 0 then invalid_arg "Dist_runtime.run: negative crash slot";
      (match c.return_at with
      | Some r when r <= c.at ->
          invalid_arg "Dist_runtime.run: return_at must follow the crash"
      | _ -> ());
      if Hashtbl.mem seen c.proc then
        invalid_arg
          (Printf.sprintf "Dist_runtime.run: two crashes for processor %d"
             c.proc);
      Hashtbl.add seen c.proc ())
    crashes

let run ?crit ?(crashes = []) ?(net_faults = []) ?(policy = Failover)
    ?(heartbeat = Heartbeat.default) ~horizon (m : Model.t)
    (table : Mp.Contingency.table) =
  if horizon <= 0 then invalid_arg "Dist_runtime.run: horizon must be positive";
  let nominal = table.Mp.Contingency.nominal in
  let n_procs = nominal.Mp.Msched.partition.Mp.Partition.n_procs in
  validate_crashes ~n_procs crashes;
  let detection_bound = Heartbeat.detection_bound heartbeat in
  if detection_bound > table.Mp.Contingency.detect_bound then
    invalid_arg
      (Printf.sprintf
         "Dist_runtime.run: heartbeat detection bound %d exceeds the \
          contingency table's detect_bound %d"
         detection_bound table.Mp.Contingency.detect_bound);
  let alive proc t =
    not
      (List.exists
         (fun c ->
           c.proc = proc && c.at <= t
           && match c.return_at with None -> true | Some r -> t < r)
         crashes)
  in
  let crash_slot proc =
    match List.find_opt (fun c -> c.proc = proc) crashes with
    | Some c -> c.at
    | None -> 0
  in
  (* Margin: in-flight invocations (arrival < horizon) are replayed to
     the end of their windows. *)
  let margin =
    let of_result r =
      List.fold_left
        (fun acc p -> max acc (plan_deadline p))
        0 r.Mp.Msched.plans
    in
    Array.fold_left
      (fun acc -> function
        | Ok s -> max acc (of_result s.Mp.Contingency.result)
        | Error _ -> acc)
      (of_result nominal) table.Mp.Contingency.scenarios
  in
  let span = horizon + margin in
  let exec = Array.make_matrix n_procs span Schedule.Idle in
  let bus_log = Array.make span None in
  let bus_pending = ref [] in
  let retrans = ref 0 in
  let events = ref [] in
  let emit e = events := e :: !events in
  let switches = ref 0 in
  let current = ref Nominal in
  let pending_switch = ref None in
  let hb = Heartbeat.make heartbeat ~n_procs in
  let invs = ref [] in
  let level_of name =
    match crit with
    | None -> Criticality.High
    | Some a -> Criticality.level_of a name
  in
  let nominal_plans =
    List.map (fun (p : Mp.Decompose.plan) -> (p.constraint_name, p))
      nominal.Mp.Msched.plans
  in
  let next_release =
    List.map (fun (name, _) -> (name, ref 0)) nominal_plans
  in
  for t = 0 to span - 1 do
    (* 1. Physical crash / return instants (log only; the system learns
       of them through heartbeats). *)
    List.iter
      (fun c ->
        if c.at = t then emit (Crashed { proc = c.proc; at = t });
        match c.return_at with
        | Some r when r = t -> emit (Returned { proc = c.proc; at = t })
        | _ -> ())
      crashes;
    (* 2. Heartbeat monitoring and failover decisions. *)
    List.iter
      (function
        | Heartbeat.Died p -> (
            emit (Detected { proc = p; at = t; latency = t - crash_slot p });
            if policy = Failover then
              match !current with
              | Scenario q ->
                  emit
                    (Failover_unavailable
                       {
                         proc = p;
                         at = t;
                         reason =
                           Printf.sprintf
                             "already failed over for processor %d" q;
                       })
              | Nominal -> (
                  match table.Mp.Contingency.scenarios.(p) with
                  | Ok _ ->
                      pending_switch :=
                        Some
                          ( t + 1 + table.Mp.Contingency.migration,
                            Scenario p,
                            p )
                  | Error reason ->
                      emit (Failover_unavailable { proc = p; at = t; reason })))
        | Heartbeat.Recovered p -> (
            match !current with
            | Scenario q when q = p && policy = Failover ->
                pending_switch :=
                  Some (t + 1 + table.Mp.Contingency.migration, Nominal, p)
            | _ -> ()))
      (Heartbeat.observe hb ~t ~alive:(fun p -> alive p t));
    (* 3. Table swap: pending traffic of the old configuration is
       cleared so stale messages cannot steal verified bus slots. *)
    (match !pending_switch with
    | Some (s, target, proc) when s = t ->
        current := target;
        bus_pending := [];
        incr switches;
        (match target with
        | Scenario _ -> emit (Failover_complete { proc; at = t })
        | Nominal -> emit (Readmitted { proc; at = t }));
        pending_switch := None;
        (* The new table is verified for releases at absolute multiples
           of its plan periods; when a period changed (stretched
           degradation), the next release rounds up to the next
           verified phase.  High-criticality constraints are never
           stretched, so their rhythm is untouched. *)
        let cfg = result_of table target in
        List.iter
          (fun (name, next) ->
            List.iter
              (fun (p : Mp.Decompose.plan) ->
                if p.constraint_name = name then begin
                  let period = p.Mp.Decompose.period in
                  if !next mod period <> 0 then
                    next := ((!next / period) + 1) * period
                end)
              cfg.Mp.Msched.plans)
          next_release
    | _ -> ());
    let cfg = result_of table !current in
    (* 4. Releases: the plan in force governs the invocation's windows
       and its next release; shed constraints keep the nominal rhythm. *)
    if t < horizon then
      List.iter
        (fun (name, next) ->
          if !next = t then begin
            let cfg_plan =
              List.find_opt
                (fun (p : Mp.Decompose.plan) -> p.constraint_name = name)
                cfg.Mp.Msched.plans
            in
            match cfg_plan with
            | Some plan ->
                invs :=
                  {
                    p_name = name;
                    p_crit = level_of name;
                    p_arrival = t;
                    p_deadline = plan_deadline plan;
                    p_proc = plan_owner plan;
                    p_plan = Some plan;
                    p_msg_real = cfg.Mp.Msched.msg_cost;
                    p_config = !current;
                  }
                  :: !invs;
                List.iteri
                  (fun i (w : Mp.Decompose.windowed) ->
                    match w.Mp.Decompose.piece with
                    | Mp.Decompose.Message msg
                      when msg.cost > 0 && cfg.Mp.Msched.msg_cost > 0 ->
                        bus_pending :=
                          {
                            b_name = Printf.sprintf "%s@%d/%d" name t i;
                            b_release = t + w.Mp.Decompose.start_off;
                            b_deadline = t + w.Mp.Decompose.end_off;
                            b_src_proc =
                              cfg.Mp.Msched.partition.Mp.Partition.assignment
                                .(msg.src);
                            b_remaining = cfg.Mp.Msched.msg_cost;
                          }
                          :: !bus_pending
                    | _ -> ())
                  plan.Mp.Decompose.pieces;
                next := t + plan.Mp.Decompose.period
            | None ->
                let nom = List.assoc name nominal_plans in
                invs :=
                  {
                    p_name = name;
                    p_crit = level_of name;
                    p_arrival = t;
                    p_deadline = plan_deadline nom;
                    p_proc = plan_owner nom;
                    p_plan = None;
                    p_msg_real = 0;
                    p_config = !current;
                  }
                  :: !invs;
                next := t + nom.Mp.Decompose.period
          end)
        next_release;
    (* 5. Every live processor runs its slot of the table in force
       (absolute time modulo the table's hyperperiod: no phase
       alignment on swap). *)
    for p = 0 to n_procs - 1 do
      if alive p t then
        exec.(p).(t) <-
          Schedule.slot
            cfg.Mp.Msched.processor_schedules.(p)
            (t mod cfg.Mp.Msched.hyperperiod)
    done;
    (* 6. Bus: EDF over pending transmissions whose source is up; a
       faulty slot wastes the unit (ARQ retransmits). *)
    let ready =
      List.fold_left
        (fun acc it ->
          if
            it.b_remaining > 0 && it.b_release <= t && it.b_deadline > t
            && alive it.b_src_proc t
          then
            match acc with
            | Some best
              when (best.b_deadline, best.b_release, best.b_name)
                   <= (it.b_deadline, it.b_release, it.b_name) ->
                acc
            | _ -> Some it
          else acc)
        None !bus_pending
    in
    match ready with
    | None -> ()
    | Some it ->
        if Net_fault.faulty net_faults t then incr retrans
        else begin
          it.b_remaining <- it.b_remaining - 1;
          bus_log.(t) <- Some it.b_name
        end
  done;
  (* Evaluate every invocation against the realized logs, with the same
     window-by-window matching as the offline verifier. *)
  let evaluate p =
    match p.p_plan with
    | None ->
        {
          constraint_name = p.p_name;
          criticality = p.p_crit;
          arrival = p.p_arrival;
          deadline = p.p_deadline;
          processor = p.p_proc;
          completion = None;
          response = None;
          met = false;
          shed = true;
          config = p.p_config;
        }
    | Some plan ->
        let ok = ref true in
        let completion = ref p.p_arrival in
        List.iteri
          (fun i (w : Mp.Decompose.windowed) ->
            let w0 = p.p_arrival + w.Mp.Decompose.start_off
            and w1 = min (p.p_arrival + w.Mp.Decompose.end_off) span in
            match w.Mp.Decompose.piece with
            | Mp.Decompose.Segment s ->
                let cursor = ref w0 in
                List.iter
                  (fun e ->
                    let needed = ref (Comm_graph.weight m.comm e) in
                    while !needed > 0 && !cursor < w1 do
                      (if exec.(s.processor).(!cursor) = Schedule.Run e then
                         decr needed);
                      incr cursor
                    done;
                    if !needed > 0 then begin
                      ok := false;
                      cursor := w1
                    end)
                  s.ops;
                completion := max !completion !cursor
            | Mp.Decompose.Message msg ->
                if msg.cost > 0 && p.p_msg_real > 0 then begin
                  let name =
                    Printf.sprintf "%s@%d/%d" p.p_name p.p_arrival i
                  in
                  let needed = ref p.p_msg_real in
                  let cursor = ref w0 in
                  while !needed > 0 && !cursor < w1 do
                    (if bus_log.(!cursor) = Some name then decr needed);
                    incr cursor
                  done;
                  if !needed > 0 then begin
                    ok := false;
                    cursor := w1
                  end;
                  completion := max !completion !cursor
                end)
          plan.Mp.Decompose.pieces;
        {
          constraint_name = p.p_name;
          criticality = p.p_crit;
          arrival = p.p_arrival;
          deadline = p.p_deadline;
          processor = p.p_proc;
          completion = (if !ok then Some !completion else None);
          response = (if !ok then Some (!completion - p.p_arrival) else None);
          met = !ok;
          shed = false;
          config = p.p_config;
        }
  in
  let invocations =
    List.rev_map evaluate !invs
    |> List.sort (fun a b ->
           compare (a.arrival, a.constraint_name) (b.arrival, b.constraint_name))
  in
  let realized =
    Array.map (fun row -> Schedule.of_slots (Array.to_list row)) exec
  in
  if Rt_obs.Tracer.enabled () then begin
    (* One virtual-time track per processor: the realized (post-failover)
       logs, with crash/detection/failover events flagged on the lane of
       the processor concerned. *)
    Array.iteri
      (fun p sched ->
        Obs_emit.track ~tid:p (Printf.sprintf "p%d" p);
        Obs_emit.schedule m.Model.comm sched ~tid:p
          ~horizon:(Schedule.length sched))
      realized;
    List.iter
      (fun ev ->
        let proc, at, label =
          match ev with
          | Crashed { proc; at } -> (proc, at, "crash")
          | Returned { proc; at } -> (proc, at, "return")
          | Detected { proc; at; latency } ->
              (proc, at, Printf.sprintf "detected(+%d)" latency)
          | Failover_complete { proc; at } -> (proc, at, "failover")
          | Failover_unavailable { proc; at; reason } ->
              (proc, at, "failover-unavailable:" ^ reason)
          | Readmitted { proc; at } -> (proc, at, "readmit")
        in
        Obs_emit.instant ~tid:proc ~at label)
      (List.rev !events)
  end;
  {
    invocations;
    events = List.rev !events;
    realized;
    bus_retransmissions = !retrans;
    misses =
      List.length
        (List.filter
           (fun (i : invocation) -> (not i.shed) && not i.met)
           invocations);
    shed =
      List.length (List.filter (fun (i : invocation) -> i.shed) invocations);
    config_switches = !switches;
    detection_bound;
    reconfig_bound = table.Mp.Contingency.reconfig_bound;
    final_config = !current;
  }

let pp_event fmt = function
  | Crashed { proc; at } ->
      Format.fprintf fmt "[%4d] processor %d crashed" at proc
  | Returned { proc; at } ->
      Format.fprintf fmt "[%4d] processor %d returned" at proc
  | Detected { proc; at; latency } ->
      Format.fprintf fmt "[%4d] crash of processor %d detected (latency %d)"
        at proc latency
  | Failover_complete { proc; at } ->
      Format.fprintf fmt
        "[%4d] failover complete: contingency table for processor %d in force"
        at proc
  | Failover_unavailable { proc; at; reason } ->
      Format.fprintf fmt "[%4d] no failover for processor %d: %s" at proc
        reason
  | Readmitted { proc; at } ->
      Format.fprintf fmt
        "[%4d] processor %d back: nominal table re-admitted" at proc

let pp_config_tag fmt = function
  | Nominal -> Format.pp_print_string fmt "nominal"
  | Scenario d -> Format.fprintf fmt "contingency(p%d)" d

let pp_report fmt r =
  let served =
    List.length
      (List.filter (fun (i : invocation) -> (not i.shed) && i.met) r.invocations)
  in
  Format.fprintf fmt
    "@[<v>invocations: %d (met %d, missed %d, shed %d)@,\
     bus retransmissions: %d@,\
     configuration switches: %d (final: %a)@,\
     detection bound: %d, reconfiguration bound: %d@,"
    (List.length r.invocations)
    served r.misses r.shed r.bus_retransmissions r.config_switches
    pp_config_tag r.final_config r.detection_bound r.reconfig_bound;
  List.iter (fun e -> Format.fprintf fmt "%a@," pp_event e) r.events;
  Format.fprintf fmt "@]"
