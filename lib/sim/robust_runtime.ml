open Rt_core

type policy =
  | Abort_job
  | Skip_next
  | Retry of { max_attempts : int; backoff : int }
  | Degrade_to of string

let pp_policy fmt = function
  | Abort_job -> Format.pp_print_string fmt "abort"
  | Skip_next -> Format.pp_print_string fmt "skip-next"
  | Retry { max_attempts; backoff } ->
      Format.fprintf fmt "retry(max %d, backoff %d)" max_attempts backoff
  | Degrade_to m -> Format.fprintf fmt "degrade-to %s" m

type event =
  | Overrun_detected of Watchdog.detection
  | Stall_killed of { elem : int; start : int; at : int }
  | Aborted of { elem : int; start : int; at : int; wasted : int }
  | Output_lost of { elem : int; start : int; at : int }
  | Retry_scheduled of { elem : int; at : int; attempt : int }
  | Gave_up of { elem : int; at : int }
  | Skip_scheduled of { elem : int; at : int }
  | Degraded of { at : int; to_mode : string }
  | Readmitted of { at : int }

type invocation = {
  constraint_name : string;
  criticality : Criticality.level;
  arrival : int;
  deadline : int;
  completion : int option;
  response : int option;
  met : bool;
  shed : bool;
  mode : string;
}

type report = {
  invocations : invocation list;
  events : event list;
  detections : Watchdog.detection list;
  executions : (int * int * int) list;
  misses : int;
  shed : int;
  mode_switches : int;
  degraded_slots : int;
  final_mode : string;
}

(* ------------------------------------------------------------------ *)
(* Completion search over the realized execution log                   *)
(*                                                                     *)
(* The realized log is not a round-robin trace (overruns stretch       *)
(* executions, aborts lose them), so the static-trace machinery of     *)
(* [Trace]/[Latency] does not apply; the same backtracking matching is *)
(* reimplemented over explicit (elem, start, finish) execution         *)
(* records.                                                            *)
(* ------------------------------------------------------------------ *)

let executes_within ~insts_of (tg : Task_graph.t) ~t0 ~t1 =
  let order = Task_graph.topological_order tg in
  let n = Task_graph.size tg in
  let preds = Array.make n [] in
  List.iter
    (fun (u, v) -> preds.(v) <- u :: preds.(v))
    (Task_graph.edges tg);
  let finish_of = Array.make n 0 in
  let used = Hashtbl.create 8 in
  let rec go = function
    | [] -> true
    | v :: rest ->
        let e = Task_graph.element_of_node tg v in
        let earliest =
          List.fold_left (fun acc u -> max acc finish_of.(u)) t0 preds.(v)
        in
        let rec try_cands = function
          | [] -> false
          | (s, f) :: cands ->
              if s > t1 then false
              else if
                s >= earliest && f <= t1 && not (Hashtbl.mem used (e, s))
              then begin
                Hashtbl.add used (e, s) ();
                finish_of.(v) <- f;
                if go rest then true
                else begin
                  Hashtbl.remove used (e, s);
                  try_cands cands
                end
              end
              else try_cands cands
        in
        try_cands (insts_of e)
  in
  go order

let next_completion ~insts_of ~finishes (tg : Task_graph.t) ~from =
  (* Finish instants ascending: the first window [from, f] containing a
     full execution gives the earliest completion. *)
  List.find_opt
    (fun f -> f > from && executes_within ~insts_of tg ~t0:from ~t1:f)
    finishes

(* ------------------------------------------------------------------ *)
(* The replay engine                                                   *)
(* ------------------------------------------------------------------ *)

type exec = {
  e_start : int;
  e_demand : int;
  e_output : bool;
  mutable e_consumed : int;
  mutable e_nominal_finish : int option;
}

let find_constraint (m : Model.t) name =
  List.find_opt (fun (c : Timing.t) -> c.name = name) m.constraints

let run ?(crit = []) ?(faults = []) ?(policy = Abort_job)
    ?(watchdog = Watchdog.default_config) ?readmit_after ~horizon ~arrivals
    (modes : Modes.mode list) =
  (* -------------------------- validation ------------------------- *)
  let modes =
    match modes with
    | [] -> invalid_arg "Robust_runtime.run: no modes"
    | _ -> Array.of_list modes
  in
  let primary = modes.(0) in
  let m0 = primary.Modes.plan.Synthesis.model_used in
  let comm = m0.Model.comm in
  Array.iter
    (fun (md : Modes.mode) ->
      if not (Comm_graph.equal md.plan.Synthesis.model_used.Model.comm comm)
      then
        invalid_arg
          ("Robust_runtime.run: mode " ^ md.Modes.name
         ^ " uses a different communication graph"))
    modes;
  (match Timing_fault.validate comm faults with
  | Ok () -> ()
  | Error errs ->
      invalid_arg ("Robust_runtime.run: bad fault plan: " ^ List.hd errs));
  let target_mode =
    match policy with
    | Degrade_to name -> (
        match
          Array.to_list modes
          |> List.mapi (fun i md -> (i, md))
          |> List.find_opt (fun (_, (md : Modes.mode)) -> md.name = name)
        with
        | Some (i, _) when i > 0 -> Some i
        | Some _ ->
            invalid_arg "Robust_runtime.run: cannot degrade to the primary mode"
        | None ->
            invalid_arg ("Robust_runtime.run: unknown degraded mode " ^ name))
    | _ -> None
  in
  List.iter
    (fun (name, times) ->
      let c =
        match find_constraint m0 name with
        | Some c -> c
        | None ->
            invalid_arg ("Robust_runtime.run: unknown constraint " ^ name)
      in
      if not (Timing.is_asynchronous c) then
        invalid_arg
          ("Robust_runtime.run: arrivals given for periodic constraint " ^ name);
      if not (Arrivals.legal ~separation:c.period times) then
        invalid_arg ("Robust_runtime.run: illegal arrival sequence for " ^ name);
      if List.exists (fun t -> t >= horizon) times then
        invalid_arg ("Robust_runtime.run: arrival beyond horizon for " ^ name))
    arrivals;
  let max_cycle =
    Array.fold_left
      (fun acc (md : Modes.mode) ->
        max acc (Schedule.length md.plan.Synthesis.schedule))
      1 modes
  in
  let readmit_after =
    match readmit_after with Some k -> max 1 k | None -> 2 * max_cycle
  in
  (* Margin so completions answering late arrivals stay observable even
     when overruns and recovery stretch the tail. *)
  let margin =
    List.fold_left
      (fun acc (c : Timing.t) ->
        max acc
          ((Timing.computation_time comm c + Task_graph.size c.graph + 3)
          * max_cycle))
      0 m0.Model.constraints
    + ((Timing_fault.max_extra faults + watchdog.Watchdog.stall_limit + 2)
      * 4)
  in
  let total = horizon + margin in
  (* ---------------------------- state ---------------------------- *)
  let n = Comm_graph.n_elements comm in
  let inflight : exec option array = Array.make n None in
  let cooldown = Array.make n 0 in
  let attempts = Array.make n 0 in
  let hog = ref (-1) in
  let mode_idx = ref 0 in
  let mode_of_slot = Array.make (total + 1) 0 in
  let last_dirty = ref 0 in
  let wd = Watchdog.create watchdog in
  let events = ref [] in
  let push ev = events := ev :: !events in
  let executions = ref [] in
  let mode_switches = ref 0 in
  let clear_partial_work () =
    Array.fill inflight 0 n None;
    Array.fill cooldown 0 n 0;
    hog := -1
  in
  let switch_to idx ~at:_ =
    clear_partial_work ();
    mode_idx := idx;
    incr mode_switches
  in
  let abort e (ex : exec) ~at =
    inflight.(e) <- None;
    if !hog = e then hog := -1;
    push (Aborted { elem = e; start = ex.e_start; at; wasted = ex.e_consumed })
  in
  let budget_of e = Comm_graph.weight comm e in
  (* Reaction shared by overruns (watchdog) and output losses
     (acceptance test at completion). *)
  let react_retry e ~at =
    if attempts.(e) >= (match policy with
                       | Retry { max_attempts; _ } -> max_attempts
                       | _ -> 0)
    then begin
      attempts.(e) <- 0;
      push (Gave_up { elem = e; at })
    end
    else begin
      attempts.(e) <- attempts.(e) + 1;
      (match policy with
      | Retry { backoff; _ } -> cooldown.(e) <- cooldown.(e) + backoff
      | _ -> ());
      push (Retry_scheduled { elem = e; at; attempt = attempts.(e) })
    end
  in
  let react_degrade ~at =
    match target_mode with
    | Some idx when !mode_idx <> idx ->
        switch_to idx ~at;
        push (Degraded { at; to_mode = modes.(idx).Modes.name });
        true
    | _ -> false
  in
  (* ------------------------- the slot loop ----------------------- *)
  for t = 0 to total - 1 do
    mode_of_slot.(t) <- !mode_idx;
    let md = modes.(!mode_idx) in
    let sched = md.Modes.plan.Synthesis.schedule in
    let now = t + 1 in
    let running =
      if !hog >= 0 then Some !hog
      else
        (* Tables are indexed by absolute time, as in a time-triggered
           cyclic executive with a global clock: each mode's cycle is
           the hyperperiod of its retained constraints, so their
           absolute periodic releases stay phase-aligned with the table
           no matter when the mode is entered — in particular the
           primary resumes in phase after re-admission. *)
        match Schedule.slot sched t with
        | Schedule.Idle -> None
        | Schedule.Run e ->
            if cooldown.(e) > 0 then begin
              cooldown.(e) <- cooldown.(e) - 1;
              None
            end
            else Some e
    in
    (match running with
    | None -> ()
    | Some e ->
        let ex =
          match inflight.(e) with
          | Some ex -> ex
          | None ->
              let weight = budget_of e in
              let ex =
                {
                  e_start = t;
                  e_demand =
                    Timing_fault.demand faults ~weight ~elem:e ~start:t;
                  e_output = Timing_fault.yields_output faults ~elem:e ~start:t;
                  e_consumed = 0;
                  e_nominal_finish = None;
                }
              in
              inflight.(e) <- Some ex;
              ex
        in
        ex.e_consumed <- ex.e_consumed + 1;
        if ex.e_consumed >= ex.e_demand then begin
          (* Completion. *)
          inflight.(e) <- None;
          if !hog = e then hog := -1;
          if ex.e_output then begin
            executions := (e, ex.e_start, now) :: !executions;
            attempts.(e) <- 0
          end
          else begin
            last_dirty := now;
            push (Output_lost { elem = e; start = ex.e_start; at = now });
            match policy with
            | Retry _ -> react_retry e ~at:now
            | Degrade_to _ -> ignore (react_degrade ~at:now)
            | Abort_job | Skip_next -> ()
          end
        end
        else begin
          if ex.e_consumed = budget_of e && ex.e_nominal_finish = None
          then begin
            (* Budget exhausted without completing: from here the job
               no longer yields at slot boundaries — it hogs the
               processor until it finishes or is killed. *)
            ex.e_nominal_finish <- Some now;
            hog := e
          end;
          match ex.e_nominal_finish with
          | None -> ()
          | Some nf -> (
              match
                Watchdog.check wd ~now ~elem:e ~start:ex.e_start
                  ~nominal_finish:nf ~consumed:ex.e_consumed
                  ~budget:(budget_of e)
              with
              | Watchdog.Clean -> ()
              | Watchdog.Stalled d ->
                  last_dirty := now;
                  push
                    (Stall_killed { elem = e; start = d.start; at = now });
                  abort e ex ~at:now
              | Watchdog.Detected d -> (
                  last_dirty := now;
                  push (Overrun_detected d);
                  match policy with
                  | Abort_job -> abort e ex ~at:now
                  | Skip_next ->
                      (* Tolerate the overrun to completion, then skip
                         the element's next execution to repay the
                         stolen slots. *)
                      cooldown.(e) <- cooldown.(e) + budget_of e;
                      push (Skip_scheduled { elem = e; at = now })
                  | Retry _ ->
                      abort e ex ~at:now;
                      react_retry e ~at:now
                  | Degrade_to _ ->
                      if not (react_degrade ~at:now) then abort e ex ~at:now))
        end);
    (* Re-admission to the primary mode after a quiet period. *)
    if !mode_idx <> 0 && now - !last_dirty >= readmit_after then begin
      switch_to 0 ~at:now;
      push (Readmitted { at = now })
    end
  done;
  mode_of_slot.(total) <- !mode_idx;
  (* ---------------------- invocation accounting ------------------ *)
  let executions = List.rev !executions in
  let by_elem = Array.make n [] in
  List.iter
    (fun (e, s, f) -> by_elem.(e) <- (s, f) :: by_elem.(e))
    (List.rev executions);
  let insts_of e = by_elem.(e) in
  let finishes =
    List.map (fun (_, _, f) -> f) executions
    |> List.sort_uniq compare
  in
  let invocation_of (c0 : Timing.t) arrival =
    let mode_i = mode_of_slot.(arrival) in
    let md = modes.(mode_i) in
    let level = Criticality.level_of crit c0.name in
    match find_constraint md.Modes.plan.Synthesis.model_used c0.name with
    | None ->
        {
          constraint_name = c0.name;
          criticality = level;
          arrival;
          deadline = c0.deadline;
          completion = None;
          response = None;
          met = false;
          shed = true;
          mode = md.Modes.name;
        }
    | Some c ->
        let completion =
          next_completion ~insts_of ~finishes c0.graph ~from:arrival
        in
        let response = Option.map (fun f -> f - arrival) completion in
        {
          constraint_name = c0.name;
          criticality = level;
          arrival;
          deadline = c.deadline;
          completion;
          response;
          met =
            (match response with Some r -> r <= c.deadline | None -> false);
          shed = false;
          mode = md.Modes.name;
        }
  in
  let async_invocations =
    List.concat_map
      (fun (name, times) ->
        let c0 = Option.get (find_constraint m0 name) in
        List.map (invocation_of c0) times)
      arrivals
  in
  let periodic_invocations =
    List.concat_map
      (fun (c0 : Timing.t) ->
        (* Releases are driven by the period in force at each release:
           a degraded mode that stretches the period slows the task
           down while it lasts. *)
        let rec go r acc =
          if r >= horizon then List.rev acc
          else
            let inv = invocation_of c0 r in
            let period =
              match
                find_constraint
                  modes.(mode_of_slot.(r)).Modes.plan.Synthesis.model_used
                  c0.name
              with
              | Some c -> c.period
              | None -> c0.period
            in
            go (r + period) (inv :: acc)
        in
        go c0.offset [])
      (Model.periodic m0)
  in
  let invocations =
    List.sort
      (fun a b ->
        compare (a.arrival, a.constraint_name) (b.arrival, b.constraint_name))
      (async_invocations @ periodic_invocations)
  in
  let misses =
    List.length (List.filter (fun (i : invocation) -> (not i.shed) && not i.met) invocations)
  in
  let shed = List.length (List.filter (fun (i : invocation) -> i.shed) invocations) in
  let degraded_slots = ref 0 in
  for t = 0 to horizon - 1 do
    if mode_of_slot.(t) <> 0 then incr degraded_slots
  done;
  if Rt_obs.Tracer.enabled () then begin
    (* Virtual-time Gantt of the realized (not nominal) execution log,
       with one flag per runtime event. *)
    Obs_emit.track ~tid:0 "cpu";
    Obs_emit.executions comm ~tid:0 executions;
    List.iter
      (fun ev ->
        let at, label =
          match ev with
          | Overrun_detected (d : Watchdog.detection) ->
              (d.detected_at, "overrun-detected")
          | Stall_killed { at; _ } -> (at, "stall-killed")
          | Aborted { at; _ } -> (at, "aborted")
          | Output_lost { at; _ } -> (at, "output-lost")
          | Retry_scheduled { at; _ } -> (at, "retry")
          | Gave_up { at; _ } -> (at, "gave-up")
          | Skip_scheduled { at; _ } -> (at, "skip")
          | Degraded { at; to_mode } -> (at, "degrade:" ^ to_mode)
          | Readmitted { at } -> (at, "readmit")
        in
        Obs_emit.instant ~tid:0 ~at label)
      (List.rev !events)
  end;
  {
    invocations;
    events = List.rev !events;
    detections = Watchdog.detections wd;
    executions;
    misses;
    shed;
    mode_switches = !mode_switches;
    degraded_slots = !degraded_slots;
    final_mode = modes.(mode_of_slot.(horizon)).Modes.name;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let elem_name comm e = (Comm_graph.element comm e).Element.name

let pp_event comm fmt = function
  | Overrun_detected d ->
      Format.fprintf fmt "t=%-4d overrun of %s (exec@%d) detected, latency %d"
        d.Watchdog.detected_at
        (elem_name comm d.Watchdog.elem)
        d.Watchdog.start d.Watchdog.latency
  | Stall_killed { elem; start; at } ->
      Format.fprintf fmt "t=%-4d stalled %s (exec@%d) killed" at
        (elem_name comm elem) start
  | Aborted { elem; start; at; wasted } ->
      Format.fprintf fmt "t=%-4d aborted %s (exec@%d, %d slot(s) wasted)" at
        (elem_name comm elem) start wasted
  | Output_lost { elem; start; at } ->
      Format.fprintf fmt "t=%-4d %s (exec@%d) completed without output" at
        (elem_name comm elem) start
  | Retry_scheduled { elem; at; attempt } ->
      Format.fprintf fmt "t=%-4d retry %d of %s scheduled" at attempt
        (elem_name comm elem)
  | Gave_up { elem; at } ->
      Format.fprintf fmt "t=%-4d gave up retrying %s" at (elem_name comm elem)
  | Skip_scheduled { elem; at } ->
      Format.fprintf fmt "t=%-4d next execution of %s will be skipped" at
        (elem_name comm elem)
  | Degraded { at; to_mode } ->
      Format.fprintf fmt "t=%-4d MODE SWITCH -> %s" at to_mode
  | Readmitted { at } ->
      Format.fprintf fmt "t=%-4d MODE SWITCH -> primary (re-admitted)" at

let pp_report comm fmt r =
  Format.fprintf fmt
    "@[<v>invocations: %d, misses: %d, shed: %d, mode switches: %d, degraded \
     slots: %d, final mode: %s@,"
    (List.length r.invocations)
    r.misses r.shed r.mode_switches r.degraded_slots r.final_mode;
  List.iter (fun ev -> Format.fprintf fmt "%a@," (pp_event comm) ev) r.events;
  Format.fprintf fmt "@]"
