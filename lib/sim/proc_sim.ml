type policy =
  | Edf
  | Fixed of Rt_process.Fixed_priority.assignment
  | Llf
  | Kernelized of int

type job_result = {
  process : string;
  release : int;
  finish : int option;
  abs_deadline : int;
  met : bool;
}

type result = {
  jobs : job_result list;
  misses : int;
  idle : int;
  preemptions : int;
}

type live = {
  process : Rt_process.Process.t;
  release : int;
  abs_deadline : int;
  prio_rank : int; (* for fixed-priority policies *)
  mutable remaining : int;
  mutable finished_at : int option;
}

let simulate ?arrivals policy procs ~horizon =
  let arrivals = Option.value ~default:[] arrivals in
  let releases_of (p : Rt_process.Process.t) =
    match p.kind with
    | Rt_process.Process.Periodic_process ->
        let rec go t acc =
          if t >= horizon then List.rev acc else go (t + p.p) (t :: acc)
        in
        go 0 []
    | Rt_process.Process.Sporadic_process -> (
        match List.assoc_opt p.name arrivals with
        | Some times ->
            if not (Arrivals.legal ~separation:p.p times) then
              invalid_arg
                ("Proc_sim.simulate: illegal arrival sequence for " ^ p.name);
            List.filter (fun t -> t < horizon) times
        | None -> Arrivals.max_rate ~horizon ~separation:p.p)
  in
  (match policy with
  | Kernelized q when q < 1 ->
      invalid_arg "Proc_sim.simulate: quantum must be >= 1"
  | _ -> ());
  let rank =
    let order =
      match policy with
      | Fixed a -> Rt_process.Fixed_priority.priorities a procs
      | Edf | Llf | Kernelized _ -> procs
    in
    fun (p : Rt_process.Process.t) ->
      let rec idx i = function
        | [] -> i
        | (q : Rt_process.Process.t) :: rest -> if q.name = p.name then i else idx (i + 1) rest
      in
      idx 0 order
  in
  let jobs =
    List.concat_map
      (fun p ->
        List.map
          (fun t ->
            {
              process = p;
              release = t;
              abs_deadline = t + p.Rt_process.Process.d;
              prio_rank = rank p;
              remaining = p.Rt_process.Process.c;
              finished_at = None;
            })
          (releases_of p))
      procs
  in
  let jobs =
    List.sort (fun a b -> compare (a.release, a.process.Rt_process.Process.name) (b.release, b.process.Rt_process.Process.name)) jobs
  in
  let arr = Array.of_list jobs in
  let idle = ref 0 in
  let preemptions = ref 0 in
  let last_running = ref None in
  for t = 0 to horizon - 1 do
    let key j =
      match policy with
      | Edf | Kernelized _ ->
          (j.abs_deadline, j.release, j.process.Rt_process.Process.name)
      | Fixed _ -> (j.prio_rank, j.release, j.process.Rt_process.Process.name)
      | Llf -> (j.abs_deadline - t - j.remaining, j.release, j.process.Rt_process.Process.name)
    in
    let best = ref None in
    Array.iter
      (fun j ->
        if j.release <= t && j.remaining > 0 then
          match !best with
          | None -> best := Some j
          | Some b -> if key j < key b then best := Some j)
      arr;
    (* Kernelized dispatching: between quantum boundaries the previous
       job keeps the processor as long as it has work. *)
    (match policy with
    | Kernelized q when t mod q <> 0 -> (
        match !last_running with
        | Some prev when prev.remaining > 0 -> best := Some prev
        | _ -> ())
    | _ -> ());
    (match !best with
    | None ->
        incr idle;
        last_running := None
    | Some j ->
        (match !last_running with
        | Some prev when prev != j && prev.remaining > 0 -> incr preemptions
        | _ -> ());
        j.remaining <- j.remaining - 1;
        if j.remaining = 0 then begin
          j.finished_at <- Some (t + 1);
          last_running := None
        end
        else last_running := Some j)
  done;
  let results =
    Array.to_list arr
    |> List.map (fun j ->
           let met =
             match j.finished_at with
             | Some f -> f <= j.abs_deadline
             | None -> j.abs_deadline > horizon
           in
           {
             process = j.process.Rt_process.Process.name;
             release = j.release;
             finish = j.finished_at;
             abs_deadline = j.abs_deadline;
             met;
           })
  in
  {
    jobs = results;
    misses = List.length (List.filter (fun r -> not r.met) results);
    idle = !idle;
    preemptions = !preemptions;
  }

let schedulable_by_simulation policy procs =
  match procs with
  | [] -> true
  | _ -> (
      match Rt_process.Process.hyperperiod procs with
      | exception Rt_graph.Intmath.Overflow -> false
      | h ->
          let max_d =
            List.fold_left (fun acc (p : Rt_process.Process.t) -> max acc p.d) 0 procs
          in
          let r = simulate policy procs ~horizon:(h + max_d) in
          r.misses = 0)
