(** The overrun-aware run-time scheduler: injection -> detection ->
    recovery.

    {!Runtime} replays a static schedule under the assumption that the
    offline analysis holds — every execution fits its computation-time
    bound.  This engine drops that assumption: a {!Timing_fault.plan}
    makes chosen executions overrun, stall, or complete without output;
    a {!Watchdog} detects budget violations at slot granularity; and a
    recovery {!policy} decides what happens next, up to switching the
    whole system onto a pre-synthesized degraded schedule
    ({!Rt_core.Modes}) and re-admitting the primary mode once the fault
    clears.

    {2 Execution semantics}

    The dispatcher is a time-triggered table: slot [t] of the mode in
    force runs its scheduled element.  An execution accrues one slot of
    work whenever its element is dispatched; within its budget (the
    element weight) it yields at every slot boundary, so pipelined
    executions interleave exactly as in the nominal semantics.  The
    moment an execution exhausts its budget without completing it stops
    yielding: it {e hogs} every subsequent slot — displacing the table
    — until it completes or is killed.  This is precisely the failure
    the offline analysis cannot see and the watchdog exists to bound.

    Completed executions that produce output are recorded as
    [(element, start, finish)] records; invocation response times are
    measured against this realized log with the same
    execution-within-a-window matching as the offline analysis.
    Aborted executions and transient (no-output) completions serve no
    invocation.

    {2 Recovery policies}

    - {!Abort_job}: kill the overrunning execution at detection; its
      work is lost, the table resumes immediately.
    - {!Skip_next}: tolerate the overrun to completion (the work is
      kept), then skip the element's next execution to repay the stolen
      slots; stalls are still killed at the watchdog's [stall_limit].
    - {!Retry}: kill and re-execute, after [backoff] scheduled slots of
      cool-down, at most [max_attempts] consecutive times.
    - {!Degrade_to}: switch to a named degraded mode at the next slot
      boundary; the primary mode is re-admitted after [readmit_after]
      consecutive fault-free slots. *)

type policy =
  | Abort_job
  | Skip_next
  | Retry of { max_attempts : int; backoff : int }
  | Degrade_to of string  (** Name of a mode in the supplied mode list. *)

type event =
  | Overrun_detected of Watchdog.detection
  | Stall_killed of { elem : int; start : int; at : int }
  | Aborted of { elem : int; start : int; at : int; wasted : int }
  | Output_lost of { elem : int; start : int; at : int }
  | Retry_scheduled of { elem : int; at : int; attempt : int }
  | Gave_up of { elem : int; at : int }
  | Skip_scheduled of { elem : int; at : int }
  | Degraded of { at : int; to_mode : string }
  | Readmitted of { at : int }  (** Back to the primary mode. *)

type invocation = {
  constraint_name : string;
  criticality : Rt_core.Criticality.level;
  arrival : int;
  deadline : int;  (** Relative deadline in force at arrival. *)
  completion : int option;
  response : int option;
  met : bool;
  shed : bool;
      (** Arrived while a degraded mode had shed the constraint; not
          served and not counted as a miss. *)
  mode : string;  (** Mode in force at arrival. *)
}

type report = {
  invocations : invocation list;  (** Ordered by arrival, then name. *)
  events : event list;  (** Chronological fault/recovery log. *)
  detections : Watchdog.detection list;
  executions : (int * int * int) list;
      (** Realized good executions [(elem, start, finish)]. *)
  misses : int;  (** Non-shed invocations whose deadline was missed. *)
  shed : int;
  mode_switches : int;
  degraded_slots : int;  (** Slots before the horizon spent degraded. *)
  final_mode : string;  (** Mode in force at the horizon. *)
}

val run :
  ?crit:Rt_core.Criticality.assignment ->
  ?faults:Timing_fault.plan ->
  ?policy:policy ->
  ?watchdog:Watchdog.config ->
  ?readmit_after:int ->
  horizon:int ->
  arrivals:(string * int list) list ->
  Rt_core.Modes.mode list ->
  report
(** [run modes ~horizon ~arrivals] replays the head of [modes] (the
    primary) for [horizon] slots plus an internal margin.  All modes
    must share one communication graph (guaranteed when they come from
    {!Rt_core.Modes.derive}).  [readmit_after] defaults to twice the
    longest mode cycle.  Arrivals follow the same contract as
    {!Runtime.run}; periodic releases are generated dynamically, at the
    period in force at each release.  Raises [Invalid_argument] on an
    empty mode list, a fault plan that fails {!Timing_fault.validate},
    a [Degrade_to] target that is missing or is the primary, or illegal
    arrivals. *)

val pp_policy : Format.formatter -> policy -> unit

val pp_event :
  Rt_core.Comm_graph.t -> Format.formatter -> event -> unit

val pp_report :
  Rt_core.Comm_graph.t -> Format.formatter -> report -> unit
(** Counters followed by the chronological event log. *)
