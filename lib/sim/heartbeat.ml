type config = { hb_period : int; miss_threshold : int }

let default = { hb_period = 5; miss_threshold = 2 }

let validate c =
  if c.hb_period <= 0 then Error "heartbeat period must be positive"
  else if c.miss_threshold <= 0 then Error "miss threshold must be positive"
  else Ok c

let detection_bound c =
  match validate c with
  | Error e -> invalid_arg ("Heartbeat.detection_bound: " ^ e)
  | Ok c -> (c.hb_period * c.miss_threshold) - 1

type event = Died of int | Recovered of int

type state = {
  config : config;
  misses : int array;  (** Consecutive missed beats per processor. *)
  declared_dead : bool array;
}

let make config ~n_procs =
  (match validate config with
  | Error e -> invalid_arg ("Heartbeat.make: " ^ e)
  | Ok _ -> ());
  if n_procs <= 0 then invalid_arg "Heartbeat.make: n_procs must be positive";
  { config; misses = Array.make n_procs 0; declared_dead = Array.make n_procs false }

let observe st ~t ~alive =
  if t mod st.config.hb_period <> 0 then []
  else begin
    let events = ref [] in
    for proc = Array.length st.misses - 1 downto 0 do
      if alive proc then begin
        st.misses.(proc) <- 0;
        if st.declared_dead.(proc) then begin
          st.declared_dead.(proc) <- false;
          events := Recovered proc :: !events
        end
      end
      else begin
        st.misses.(proc) <- st.misses.(proc) + 1;
        if
          (not st.declared_dead.(proc))
          && st.misses.(proc) >= st.config.miss_threshold
        then begin
          st.declared_dead.(proc) <- true;
          events := Died proc :: !events
        end
      end
    done;
    !events
  end

let believed_alive st proc = not st.declared_dead.(proc)
