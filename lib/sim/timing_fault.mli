(** Deterministic timing-fault injection.

    {!Fault} corrupts the {e values} flowing along communication edges;
    this module corrupts {e time}: it makes executions of a chosen
    functional element overrun their computation-time bound, complete
    without producing a usable output, or stall indefinitely, during a
    chosen window of the simulation.  The injectors are interpreted by
    {!Robust_runtime}, which couples them with watchdog detection and
    recovery policies.

    A fault applies to an execution iff the execution's {e start} slot
    falls inside the fault window, so a given schedule and fault plan
    always reproduce the same divergence — experiments are exactly
    replayable. *)

type window = { from : int; until : int }
(** Active for executions starting at slots [from <= t < until]. *)

type kind =
  | Overrun of int
      (** The execution needs [weight + k] slots instead of [weight]. *)
  | Transient
      (** The execution completes on time but produces no usable
          output; the work must be redone by a later execution. *)
  | Stuck
      (** The execution never completes on its own; only the watchdog
          (or a mode switch) gets rid of it. *)

type fault = { elem : int; window : window; kind : kind }

type plan = fault list
(** A set of independent faults; several may target the same element. *)

val overrun : elem:int -> from:int -> until:int -> extra:int -> fault
val transient : elem:int -> from:int -> until:int -> fault
val stuck : elem:int -> from:int -> until:int -> fault

val validate : Rt_core.Comm_graph.t -> plan -> (unit, string list) result
(** Checks element ids, window sanity ([0 <= from < until]) and
    positive overrun extras; returns all diagnostics on failure. *)

val demand : plan -> weight:int -> elem:int -> start:int -> int
(** Slots an execution of [elem] starting at [start] actually needs:
    [weight], plus the extras of every overrun window containing
    [start] (they add up), or [max_int] if a stuck window applies. *)

val yields_output : plan -> elem:int -> start:int -> bool
(** Whether the execution produces a usable output — [false] iff a
    transient window contains [start]. *)

val max_extra : plan -> int
(** The largest single overrun extra (0 if none) — used to size
    simulation margins. *)

val last_active : plan -> int
(** One past the last slot at which any fault window is active. *)

val of_string :
  Rt_core.Comm_graph.t -> string -> (fault, string) result
(** Parses the CLI syntax: [overrun:ELEM:FROM-UNTIL:+K],
    [transient:ELEM:FROM-UNTIL], [stuck:ELEM:FROM-UNTIL] — e.g.
    ["overrun:f_s:40-80:+3"].  Element names are resolved against the
    communication graph. *)

val kind_to_string : kind -> string

val pp : Rt_core.Comm_graph.t -> Format.formatter -> fault -> unit
val pp_plan : Rt_core.Comm_graph.t -> Format.formatter -> plan -> unit
