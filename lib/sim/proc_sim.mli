(** Preemptive single-processor simulation of process sets under EDF,
    fixed-priority, or least-laxity-first dispatching.

    Complements the analytical tests in [rt_process]: the acceptance-
    ratio experiment (E6) uses the simulator as ground truth over one
    hyperperiod with synchronous release (the critical instant for all
    three policies on independent periodic processes). *)

type policy =
  | Edf  (** Earliest absolute deadline first. *)
  | Fixed of Rt_process.Fixed_priority.assignment
      (** Static priorities (rate- or deadline-monotonic). *)
  | Llf  (** Least laxity first (dynamic, unit-grain re-evaluation). *)
  | Kernelized of int
      (** [MOK 83]'s kernelized monitor: EDF, but the dispatcher may
          only switch jobs at quantum boundaries of size [q >= 1].
          Picking [q] at least as large as the longest critical section
          lets monitors be elided entirely — a running job cannot be
          preempted mid-section — at the price of up to [q - 1] slots of
          blocking for urgent arrivals. *)

type job_result = {
  process : string;
  release : int;
  finish : int option;  (** [None] when unfinished at the horizon. *)
  abs_deadline : int;
  met : bool;
}

type result = {
  jobs : job_result list;  (** Release order. *)
  misses : int;
  idle : int;  (** Idle slots over the horizon. *)
  preemptions : int;  (** Times a running job was displaced. *)
}

val simulate :
  ?arrivals:(string * int list) list ->
  policy ->
  Rt_process.Process.t list ->
  horizon:int ->
  result
(** [simulate policy procs ~horizon] dispatches all jobs released before
    [horizon] and reports per-job outcomes.  Jobs still running at the
    horizon count as misses if their deadline is [<= horizon], otherwise
    they are reported unfinished but not counted.  Periodic processes
    release at [0, p, ...]; sporadic ones at the instants given in
    [arrivals] (default: their maximal rate).  Deterministic tie-breaks
    (policy key, then release, then name). *)

val schedulable_by_simulation : policy -> Rt_process.Process.t list -> bool
(** Simulate over one hyperperiod plus the largest deadline with
    synchronous release and report absence of misses.  Exact for EDF
    and fixed priorities on periodic sets with constrained deadlines;
    for LLF it is the standard empirical check. *)
