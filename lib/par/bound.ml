type t = int Atomic.t

let no_bound = max_int
let create () = Atomic.make no_bound
let get = Atomic.get
let found t = Atomic.get t <> no_bound

let rec update_min t v =
  let cur = Atomic.get t in
  if v < cur && not (Atomic.compare_and_set t cur v) then update_min t v

let reset t = Atomic.set t no_bound
