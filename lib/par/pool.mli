(** A fixed-size pool of OCaml 5 domains with deterministic fan-out/join.

    The pool owns [jobs - 1] worker domains; the caller's domain is the
    remaining lane, so a pool of size [j] computes on [j] domains total.
    Fan-outs are {e deterministic}: [parallel_map] preserves index order
    exactly, and [parallel_find_first] returns the result of the
    lowest-index success regardless of which domain finishes first, so
    every combinator returns bit-identical results to its sequential
    counterpart (provided the task function is pure per index).

    Pools of size 1 never spawn a domain and run everything inline, so
    a pool created with [RTSYN_JOBS=1] is exactly the sequential
    engine.  Nested fan-outs (a task that itself calls into the pool)
    are detected and run inline on the calling lane — the pool never
    deadlocks on re-entry, it just declines to over-subscribe. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] lanes ([jobs - 1] worker
    domains).  [jobs] defaults to {!default_jobs}[ ()] and is clamped
    to [\[1, 64\]]. *)

val jobs : t -> int
(** Number of lanes (worker domains + the caller). *)

val default_jobs : unit -> int
(** The [RTSYN_JOBS] environment variable if set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)

val shutdown : t -> unit
(** Join and release the worker domains.  Idempotent.  The pool must
    not be used afterwards. *)

val iter : t -> n:int -> (int -> unit) -> unit
(** [iter p ~n f] runs [f 0 .. f (n-1)], distributing indices over the
    pool's lanes, and returns once every call has finished.  Indices
    are claimed dynamically (an atomic cursor), so per-index work may
    be irregular.  If some [f i] raises, the first exception (in
    completion order) is re-raised after the join; remaining indices
    are abandoned. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map p f a] is [Array.map f a] computed on the pool; the
    result preserves index order. *)

val parallel_find_first : t -> ('a -> 'b option) -> 'a array -> 'b option
(** [parallel_find_first p f a] is the deterministic first success:
    the [f a.(i)] with the smallest [i] that returns [Some _] — the
    same answer a left-to-right sequential scan would give.  Indices
    greater than an already-found success are skipped (their [f] may
    never run), so [f] must not be relied on for effects. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, applies [f], and always shuts the
    pool down (also on exceptions). *)
