type t = {
  lanes : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable job_n : int;
  mutable job_seq : int;  (* bumped once per fan-out so workers never
                             re-enter a job they already drained *)
  next : int Atomic.t;
  mutable running : int;  (* workers currently inside the job *)
  mutable busy : bool;  (* a fan-out is in flight (re-entry guard) *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "RTSYN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.lanes

(* Claim indices until the cursor runs off the end. *)
let drain t f n =
  let rec go () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < n then begin
      f i;
      go ()
    end
  in
  go ()

let rec worker t seen =
  Mutex.lock t.mutex;
  while (not t.stop) && t.job_seq = seen do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let seq = t.job_seq in
    match t.job with
    | None ->
        (* Woke after the caller already completed and cleared this
           fan-out; remember the sequence number and wait for the next. *)
        Mutex.unlock t.mutex;
        worker t seq
    | Some f ->
        let n = t.job_n in
        t.running <- t.running + 1;
        Mutex.unlock t.mutex;
        drain t f n;
        Mutex.lock t.mutex;
        t.running <- t.running - 1;
        if t.running = 0 then Condition.broadcast t.work_done;
        Mutex.unlock t.mutex;
        worker t seq
  end

let create ?jobs () =
  let requested = match jobs with Some j -> j | None -> default_jobs () in
  let lanes = max 1 (min requested 64) in
  let t =
    {
      lanes;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      job_n = 0;
      job_seq = 0;
      next = Atomic.make 0;
      running = 0;
      busy = false;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (lanes - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let iter t ~n f =
  if n > 0 then
    if t.lanes = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let nested =
        Mutex.lock t.mutex;
        let b = t.busy in
        if not b then t.busy <- true;
        Mutex.unlock t.mutex;
        b
      in
      if nested then
        (* Fan-out from inside a task: run inline rather than deadlock
           or over-subscribe. *)
        for i = 0 to n - 1 do
          f i
        done
      else begin
        let first_exn : exn option Atomic.t = Atomic.make None in
        let guarded i =
          if Atomic.get first_exn = None then
            try f i
            with e ->
              ignore (Atomic.compare_and_set first_exn None (Some e))
        in
        Mutex.lock t.mutex;
        t.job <- Some guarded;
        t.job_n <- n;
        Atomic.set t.next 0;
        t.job_seq <- t.job_seq + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mutex;
        drain t guarded n;
        Mutex.lock t.mutex;
        (* Clearing the job stops late-waking workers from joining;
           anyone already inside is counted in [running]. *)
        t.job <- None;
        while t.running > 0 do
          Condition.wait t.work_done t.mutex
        done;
        t.busy <- false;
        Mutex.unlock t.mutex;
        match Atomic.get first_exn with Some e -> raise e | None -> ()
      end
    end

let parallel_map t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    iter t ~n (fun i -> out.(i) <- Some (f a.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_find_first t f a =
  let n = Array.length a in
  if n = 0 then None
  else begin
    let best = Atomic.make max_int in
    let out = Array.make n None in
    iter t ~n (fun i ->
        (* Skip indices strictly above an already-found success: the
           lower-index result wins regardless of what they would say. *)
        if Atomic.get best > i then
          match f a.(i) with
          | Some _ as r ->
              out.(i) <- r;
              let rec lower () =
                let cur = Atomic.get best in
                if i < cur && not (Atomic.compare_and_set best cur i) then
                  lower ()
              in
              lower ()
          | None -> ());
    let rec scan i =
      if i >= n then None
      else match out.(i) with Some _ as r -> r | None -> scan (i + 1)
    in
    scan 0
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
