(** An atomic best-known-bound cell shared between search branches.

    The cell holds the least value published so far (a branch index, an
    incumbent schedule length, ...).  Branches poll {!get} and abandon
    work that can no longer beat the incumbent; publication is a
    lock-free monotone minimum, so concurrent updates never lose the
    best value and never go backwards. *)

type t

val create : unit -> t
(** A fresh cell holding {!no_bound}. *)

val no_bound : int
(** The initial value, [max_int]: nothing has been found yet. *)

val get : t -> int
(** Current best-known value ({!no_bound} when nothing was published). *)

val found : t -> bool
(** [found c] is [get c <> no_bound]. *)

val update_min : t -> int -> unit
(** [update_min c v] lowers the cell to [v] if [v] beats the incumbent;
    otherwise leaves it unchanged.  Safe under any concurrency. *)

val reset : t -> unit
(** Back to {!no_bound}. *)
