(** A sharded, lock-striped hash table for facts shared across domains.

    The game-engine solvers ({!Rt_core.Game}) memoize *path-independent*
    facts — "this state is dead" — in a table read and written
    concurrently by every lane of a {!Pool}.  A single mutex-protected
    [Hashtbl] would serialize the lanes on every probe; [Shard_tbl]
    stripes the key space over many small tables, each behind its own
    mutex, so lanes only contend when they hash into the same shard at
    the same instant.

    Each shard is an open-addressing flat table: occupied slots keep
    their (nonzero-tagged) hash code in a contiguous [int array] probed
    linearly, and the boxed binding is touched only on a code match.
    Deletion (eviction) uses backward-shift compaction so probe chains
    never cross stale holes — no tombstones accumulate.

    Unlike [Hashtbl.Make] the hash and equality functions are supplied
    at {!create} time, so one polymorphic implementation serves every
    key type without a functor application per instantiation.

    Semantics are those of a set-of-facts / memo table:
    - {!add} is last-write-wins ([replace] semantics, no duplicate
      bindings per key);
    - a fact observed by {!find_opt}/{!mem} was fully published by the
      writing domain (the shard mutex orders the accesses);
    - facts are never removed explicitly (there is no [remove]), but a
      table created with [?max_entries] {e evicts} old bindings to stay
      within its cap.  This is still sound for the solvers because every
      fact stored here is re-derivable — losing one costs a repeated
      computation (a transposition-table miss), never a wrong answer.
      Without [?max_entries] nothing is ever dropped and long runs grow
      without bound; cap callers that solve adversarial instances.

    All operations are thread-safe and non-blocking in the sense that a
    shard mutex is held only for the duration of one bucket probe or
    resize. *)

module Int_array : sig
  (** Hash/equality instance for [int array] keys — game-engine states
      are integer vectors (budgets, trace residues).  Suitable as a
      [Hashtbl.HashedType], so branch-local tables
      ([Hashtbl.Make (Shard_tbl.Int_array)]) and the shared table hash
      identically and the cost is paid (and measured) once. *)

  type t = int array

  val equal : t -> t -> bool
  (** Element-wise equality (lengths must match). *)

  val hash : t -> int
  (** FNV-1a over the elements; positive, suitable for both [Hashtbl]
      and {!Shard_tbl} bucket selection. *)
end

type ('k, 'v) t

val create :
  ?shards:int ->
  ?max_entries:int ->
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  int ->
  ('k, 'v) t
(** [create ?shards ?max_entries ~hash ~equal capacity] makes an empty
    table.  [shards] (default 32, rounded up to a power of two, clamped
    to 1..1024) is the number of independently locked stripes;
    [capacity] is the initial bucket count {e per shard} hint.  [hash]
    must be consistent with [equal] and must not raise.

    [max_entries], when given, caps the {e total} binding count: the cap
    is split evenly across shards (rounded up, at least 1 per shard),
    and an insert into a full shard first evicts the binding at that
    shard's rotating slot cursor — approximate FIFO, O(cluster) per
    eviction (backward-shift compaction), counted by {!evictions}.
    Omitting [max_entries] keeps the historical never-drop behavior
    bit-identical. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Current binding of the key, if any. *)

val mem : ('k, 'v) t -> 'k -> bool

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Publish a binding, replacing any previous binding of the same key
    ([Hashtbl.replace] semantics — at most one binding per key). *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k mk] returns the existing binding of [k], or
    atomically (within [k]'s shard) inserts and returns [mk ()].
    [mk] runs with the shard lock held and must not touch [t]. *)

val length : ('k, 'v) t -> int
(** Total bindings across shards (each shard's count is exact; the sum
    is a snapshot, not a linearizable point, under concurrent use). *)

val evictions : ('k, 'v) t -> int
(** Bindings dropped so far to respect [max_entries]; always 0 for an
    uncapped table. *)
