type counter = int Atomic.t

let windows_checked : counter = Atomic.make 0
let cache_hits : counter = Atomic.make 0
let cache_misses : counter = Atomic.make 0
let dfs_nodes : counter = Atomic.make 0
let schedules_built : counter = Atomic.make 0
let game_states : counter = Atomic.make 0
let table_hits : counter = Atomic.make 0
let table_misses : counter = Atomic.make 0
let dominance_kills : counter = Atomic.make 0

let all_counters =
  [
    ("windows_checked", windows_checked);
    ("cache_hits", cache_hits);
    ("cache_misses", cache_misses);
    ("dfs_nodes", dfs_nodes);
    ("schedules_built", schedules_built);
    ("game_states", game_states);
    ("table_hits", table_hits);
    ("table_misses", table_misses);
    ("dominance_kills", dominance_kills);
  ]

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

(* Stage accumulators: nanoseconds in an atomic int per stage name.
   The stage set is tiny and fixed in practice; creation is guarded by
   a mutex, addition is lock-free. *)
let stages : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8
let stages_mutex = Mutex.create ()

let stage_cell name =
  Mutex.lock stages_mutex;
  let cell =
    match Hashtbl.find_opt stages name with
    | Some c -> c
    | None ->
        let c = Atomic.make 0 in
        Hashtbl.add stages name c;
        c
  in
  Mutex.unlock stages_mutex;
  cell

let time name f =
  let cell = stage_cell name in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      add cell (int_of_float (dt *. 1e9)))
    f

let stage_seconds () =
  Mutex.lock stages_mutex;
  let l =
    Hashtbl.fold
      (fun name cell acc -> (name, float_of_int (Atomic.get cell) /. 1e9) :: acc)
      stages []
  in
  Mutex.unlock stages_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let snapshot () = List.map (fun (n, c) -> (n, Atomic.get c)) all_counters

let reset () =
  List.iter (fun (_, c) -> Atomic.set c 0) all_counters;
  Mutex.lock stages_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c 0) stages;
  Mutex.unlock stages_mutex

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-18s %d@," name v)
    (snapshot ());
  List.iter
    (fun (name, s) -> Format.fprintf fmt "%-18s %.4fs (wall)@," name s)
    (stage_seconds ());
  Format.fprintf fmt "@]"
