(* Thin compatibility facade over Rt_obs.Metrics.

   The counters below used to be a hard-coded list of atomics here; they
   are now registered cells in the Rt_obs.Metrics registry under the same
   names, so the engines keep their zero-migration [Perf.incr] call sites
   while rtsyn --stats / bench --json / new tooling can read everything
   (including dynamically added metrics) from one place. *)

module Metrics = Rt_obs.Metrics

type counter = Metrics.counter

let windows_checked = Metrics.counter "windows_checked"
let cache_hits = Metrics.counter "cache_hits"
let cache_misses = Metrics.counter "cache_misses"
let dfs_nodes = Metrics.counter "dfs_nodes"
let schedules_built = Metrics.counter "schedules_built"
let game_states = Metrics.counter "game_states"
let table_hits = Metrics.counter "table_hits"
let table_misses = Metrics.counter "table_misses"
let dominance_kills = Metrics.counter "dominance_kills"
let decompose_components = Metrics.counter "decompose/components"
let decompose_component_solves = Metrics.counter "decompose/component_solves"
let decompose_component_reuses = Metrics.counter "decompose/component_reuses"

let all_counters =
  [
    ("windows_checked", windows_checked);
    ("cache_hits", cache_hits);
    ("cache_misses", cache_misses);
    ("dfs_nodes", dfs_nodes);
    ("schedules_built", schedules_built);
    ("game_states", game_states);
    ("table_hits", table_hits);
    ("table_misses", table_misses);
    ("dominance_kills", dominance_kills);
    ("decompose/components", decompose_components);
    ("decompose/component_solves", decompose_component_solves);
    ("decompose/component_reuses", decompose_component_reuses);
  ]

let incr = Metrics.incr
let add = Metrics.add
let value = Metrics.value

let stage_prefix = "stage/"

(* Stage timing lives on registry histograms now: one observation per
   completed span, nanoseconds.  Histogram cells are atomic, so spans
   completing concurrently on pool domains never tear or drop time, and
   the p50/p95/p99 of individual span durations come for free.  Each
   span is also emitted to the tracer (category "stage") when tracing is
   on. *)
(* Stage-name -> histogram cell memo: [Metrics.histogram] takes the
   registry mutex on every call, which shows up on microsecond-scale
   solves ([time] sits on the game engine's entry path).  The memo is an
   immutable assoc list behind an [Atomic] — lock-free reads, CAS
   insert on first use; [Metrics.reset] zeroes cells in place so cached
   cells never go stale. *)
let stage_cells : (string * Metrics.histogram) list Atomic.t = Atomic.make []

let stage_cell name =
  let rec find = function
    | (n, h) :: tl -> if String.equal n name then Some h else find tl
    | [] -> None
  in
  match find (Atomic.get stage_cells) with
  | Some h -> h
  | None ->
      let h = Metrics.histogram (stage_prefix ^ name) in
      let rec publish () =
        let cur = Atomic.get stage_cells in
        match find cur with
        | Some h -> h
        | None ->
            if Atomic.compare_and_set stage_cells cur ((name, h) :: cur) then
              h
            else publish ()
      in
      publish ()

let time name f =
  let h = stage_cell name in
  let t0 = Unix.gettimeofday () in
  Rt_obs.Tracer.span ~cat:"stage" name (fun () ->
      Fun.protect
        ~finally:(fun () ->
          let dt = Unix.gettimeofday () -. t0 in
          Metrics.observe h (int_of_float (dt *. 1e9)))
        f)

let stage_seconds () =
  List.filter_map
    (function
      | Metrics.Histogram_v { name; sum; _ }
        when String.starts_with ~prefix:stage_prefix name ->
          let stage =
            String.sub name (String.length stage_prefix)
              (String.length name - String.length stage_prefix)
          in
          Some (stage, float_of_int sum /. 1e9)
      | _ -> None)
    (Metrics.snapshot ())

let snapshot () = List.map (fun (n, c) -> (n, Metrics.value c)) all_counters
let reset () = Metrics.reset ()

(* Registry metrics beyond the fixed counter list and the stage
   histograms — e.g. the game engine's game/alloc_words gauge,
   game/antichain_evictions counter and game/antichain_probe_len
   histogram.  Shown by [pp] (rtsyn --stats) but deliberately not part
   of [all_counters], which the bench JSON counter gates pin. *)
let extras () =
  let fixed = List.map fst all_counters in
  List.filter
    (fun s ->
      match s with
      | Metrics.Counter_v { name; _ } -> not (List.mem name fixed)
      | Metrics.Gauge_v _ -> true
      | Metrics.Histogram_v { name; _ } ->
          not (String.starts_with ~prefix:stage_prefix name))
    (Metrics.snapshot ())

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-18s %d@," name v)
    (snapshot ());
  List.iter
    (fun s ->
      match s with
      | Metrics.Counter_v { name; value } ->
          Format.fprintf fmt "%-18s %d@," name value
      | Metrics.Gauge_v { name; value } ->
          Format.fprintf fmt "%-18s %d@," name value
      | Metrics.Histogram_v { name; count; p50; p95; max; _ } ->
          if count > 0 then
            Format.fprintf fmt "%-18s n=%d p50=%d p95=%d max=%d@," name count
              p50 p95 max)
    (extras ());
  List.iter
    (fun (name, s) -> Format.fprintf fmt "%-18s %.4fs (wall)@," name s)
    (stage_seconds ());
  Format.fprintf fmt "@]"
