(** A score-bucketed dominance antichain over integer vectors, shared
    lock-free across pool domains.

    The game engines ({!Rt_core.Game}) prune the state space with dead
    facts ordered by a domination relation: a live state [v] can be
    killed when some recorded dead state [d] {e subsumes} it.  The
    structure below replaces the former flat [int array list] (O(n)
    linear scan per query {e and} per insert, plus an O(n)
    [List.length] on every insert to enforce the cap) with buckets
    indexed by a caller-supplied {e score} that is monotone with respect
    to subsumption:

      [subsumed v d] implies [score v <= score d].

    A cover of [v] can therefore only live in buckets
    [score v .. max_score], and an insert of [d] can only make entries
    in buckets [0 .. score d] redundant — both operations touch a score
    interval, not the whole set.  For budget-vector states the score is
    the component sum; for trace residues it is the count of productive
    slots.  Entries are maintained as a true antichain: inserting a
    vector drops every entry it subsumes.

    Concurrency: the whole structure is an immutable snapshot behind one
    [Atomic] root.  Queries ({!covered}) read the snapshot and never
    lock, block, or retry; inserts build a new snapshot and CAS it in,
    retrying on contention.  Pool lanes therefore pay zero
    synchronization on the (hot) query path.

    The cap is enforced exactly: when an insert would exceed it, entries
    are evicted lowest-score-first (they dominate the fewest states) and
    counted — {!evictions} replaces the old silent drop. *)

type t

val create :
  ?cap:int ->
  ?on_probe:(int -> unit) ->
  subsumed:(int array -> int array -> bool) ->
  score:(int array -> int) ->
  max_score:int ->
  unit ->
  t
(** [create ?cap ?on_probe ~subsumed ~score ~max_score ()] makes an
    empty antichain.  [score] must map every vector into
    [0..max_score] and be monotone for [subsumed] as described above
    (vectors scoring outside the range are clamped, which keeps the
    structure sound but degrades bucketing).  [cap] (default 512)
    bounds the entry count.  [on_probe], when given, receives a sampled
    probe length (entries tested by one query) roughly every 128th
    query — wire it to a metrics histogram without taxing the hot
    path. *)

val covered : t -> int array -> bool
(** [covered t v] is true iff some recorded entry subsumes [v].
    Lock-free and wait-free on the reader side. *)

val add : t -> int array -> bool
(** [add t d] records dead vector [d].  Returns [false] (no change) if
    [d] is already covered by an existing entry; otherwise inserts [d],
    drops every entry that [d] subsumes, evicts lowest-score entries if
    the cap would be exceeded, and returns [true]. *)

val size : t -> int
(** Current number of entries (snapshot). *)

val evictions : t -> int
(** Entries dropped so far to respect the cap. *)

val probes : t -> int
(** Total {!covered}/{!add} dominance queries answered (each [add] runs
    one query first). *)

val probe_entries : t -> int
(** Total entries tested across all queries — [probe_entries / probes]
    is the mean probe length the bucketing is there to minimize. *)
