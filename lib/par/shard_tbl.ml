module Int_array = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0

  (* FNV-1a folded over the elements.  Each int is mixed byte-wise-ish
     by two rounds so that small nonnegative values (the common case:
     budgets, element ids) still diffuse into the high bits. *)
  let hash (a : int array) =
    (* Offset basis truncated to OCaml's 63-bit int range. *)
    let fnv_prime = 0x100000001b3 in
    let h = ref 0x3bf29ce484222325 in
    for i = 0 to Array.length a - 1 do
      let v = Array.unsafe_get a i in
      h := (!h lxor (v land 0xffff)) * fnv_prime;
      h := (!h lxor ((v asr 16) land 0xffff)) * fnv_prime
    done;
    !h land max_int
end

type ('k, 'v) shard = {
  lock : Mutex.t;
  mutable buckets : ('k * 'v) list array;
  mutable count : int;
  mutable evict_cursor : int;
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mask : int; (* shard count - 1; shard count is a power of two *)
  shards : ('k, 'v) shard array;
  shard_cap : int; (* max bindings per shard; max_int when uncapped *)
  evicted : int Atomic.t;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 32) ?max_entries ~hash ~equal capacity =
  let n = pow2_at_least (max 1 (min shards 1024)) 1 in
  let cap = max 16 capacity in
  let shard_cap =
    match max_entries with
    | None -> max_int
    | Some m -> max 1 ((max 1 m + n - 1) / n)
  in
  {
    hash;
    equal;
    mask = n - 1;
    shard_cap;
    evicted = Atomic.make 0;
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            buckets = Array.make cap [];
            count = 0;
            evict_cursor = 0;
          });
  }

(* The shard index uses the high-ish bits, the bucket index the low
   bits, so the two selections stay independent even for weak hashes. *)
let shard_of t h = t.shards.(((h lsr 16) lxor h) land t.mask)
let bucket_of s h = h land (Array.length s.buckets - 1)

let resize t s =
  let old = s.buckets in
  let n = Array.length old * 2 in
  let fresh = Array.make n [] in
  Array.iter
    (fun chain ->
      List.iter
        (fun ((k, _) as kv) ->
          let i = t.hash k land (n - 1) in
          fresh.(i) <- kv :: fresh.(i))
        chain)
    old;
  s.buckets <- fresh

let with_shard t k f =
  let h = t.hash k in
  let s = shard_of t h in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s h)

let find_opt t k =
  with_shard t k (fun s h ->
      let rec go = function
        | [] -> None
        | (k', v) :: tl -> if t.equal k k' then Some v else go tl
      in
      go s.buckets.(bucket_of s h))

let mem t k = find_opt t k <> None

(* Drop the oldest binding (chain tail) of the first nonempty bucket at
   or after the rotating cursor.  Runs with the shard lock held.  Facts
   in this table are memoized re-derivables, so losing one costs a
   recomputation, never soundness. *)
let evict_one t s =
  let n = Array.length s.buckets in
  let rec drop_last = function
    | [] | [ _ ] -> []
    | kv :: tl -> kv :: drop_last tl
  in
  let rec go tries i =
    if tries >= n then ()
    else
      match s.buckets.(i) with
      | [] -> go (tries + 1) ((i + 1) land (n - 1))
      | chain ->
          s.buckets.(i) <- drop_last chain;
          s.count <- s.count - 1;
          s.evict_cursor <- (i + 1) land (n - 1);
          Atomic.incr t.evicted
  in
  go 0 (s.evict_cursor land (n - 1))

let insert t s h k v =
  if s.count >= t.shard_cap then evict_one t s;
  let i = bucket_of s h in
  s.buckets.(i) <- (k, v) :: s.buckets.(i);
  s.count <- s.count + 1;
  if s.count > 2 * Array.length s.buckets then resize t s

let add t k v =
  with_shard t k (fun s h ->
      let i = bucket_of s h in
      let chain = s.buckets.(i) in
      if List.exists (fun (k', _) -> t.equal k k') chain then
        s.buckets.(i) <-
          (k, v) :: List.filter (fun (k', _) -> not (t.equal k k')) chain
      else insert t s h k v)

let find_or_add t k mk =
  with_shard t k (fun s h ->
      let rec go = function
        | [] ->
            let v = mk () in
            insert t s h k v;
            v
        | (k', v) :: tl -> if t.equal k k' then v else go tl
      in
      go s.buckets.(bucket_of s h))

let length t = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

let evictions t = Atomic.get t.evicted
