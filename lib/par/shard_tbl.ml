module Int_array = struct
  type t = int array

  let equal (a : int array) (b : int array) =
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
    go 0

  (* FNV-1a folded over the elements.  Each int is mixed byte-wise-ish
     by two rounds so that small nonnegative values (the common case:
     budgets, element ids) still diffuse into the high bits. *)
  let hash (a : int array) =
    (* Offset basis truncated to OCaml's 63-bit int range. *)
    let fnv_prime = 0x100000001b3 in
    let h = ref 0x3bf29ce484222325 in
    for i = 0 to Array.length a - 1 do
      let v = Array.unsafe_get a i in
      h := (!h lxor (v land 0xffff)) * fnv_prime;
      h := (!h lxor ((v asr 16) land 0xffff)) * fnv_prime
    done;
    !h land max_int
end

(* Each shard is an open-addressing table: a flat [codes] int array
   (0 = empty slot; an occupied slot stores [hash lor min_int], which is
   never 0) probed linearly, with the boxed key/value pair held in a
   parallel [slots] array that is only dereferenced on a code match.
   Probing therefore scans a contiguous int array — no chain pointers,
   no per-binding cons cells. *)
type ('k, 'v) shard = {
  lock : Mutex.t;
  mutable codes : int array;
  mutable slots : ('k * 'v) option array;
  mutable count : int;
  mutable evict_cursor : int;
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mask : int; (* shard count - 1; shard count is a power of two *)
  shards : ('k, 'v) shard array;
  shard_cap : int; (* max bindings per shard; max_int when uncapped *)
  evicted : int Atomic.t;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 32) ?max_entries ~hash ~equal capacity =
  let n = pow2_at_least (max 1 (min shards 1024)) 1 in
  let cap = pow2_at_least (max 16 capacity) 16 in
  let shard_cap =
    match max_entries with
    | None -> max_int
    | Some m -> max 1 ((max 1 m + n - 1) / n)
  in
  {
    hash;
    equal;
    mask = n - 1;
    shard_cap;
    evicted = Atomic.make 0;
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            codes = Array.make cap 0;
            slots = Array.make cap None;
            count = 0;
            evict_cursor = 0;
          });
  }

(* The shard index uses the high-ish bits, the slot index the low bits,
   so the two selections stay independent even for weak hashes. *)
let shard_of t h = t.shards.(((h lsr 16) lxor h) land t.mask)
let code_of h = h lor min_int
let home_of code mask = code land max_int land mask

(* Index of the key's slot, or of the empty slot where it belongs. *)
let probe t s code k =
  let mask = Array.length s.codes - 1 in
  let i = ref (home_of code mask) in
  let res = ref (-1) in
  while !res < 0 do
    let c = Array.unsafe_get s.codes !i in
    if c = 0 then res := !i
    else if
      c = code
      &&
      match Array.unsafe_get s.slots !i with
      | Some (k', _) -> t.equal k k'
      | None -> false
    then res := !i
    else i := (!i + 1) land mask
  done;
  !res

let resize t s =
  let old_codes = s.codes and old_slots = s.slots in
  let n = Array.length old_codes * 2 in
  let mask = n - 1 in
  s.codes <- Array.make n 0;
  s.slots <- Array.make n None;
  for i = 0 to Array.length old_codes - 1 do
    let c = old_codes.(i) in
    if c <> 0 then begin
      let j = ref (home_of c mask) in
      while s.codes.(!j) <> 0 do
        j := (!j + 1) land mask
      done;
      s.codes.(!j) <- c;
      s.slots.(!j) <- old_slots.(i)
    end
  done;
  ignore t

(* Backward-shift deletion: close the gap at [i] by walking the cluster
   forward and pulling back any entry whose home position lies at or
   before the gap, so linear probes never cross a spurious hole. *)
let remove_at s i =
  let mask = Array.length s.codes - 1 in
  s.codes.(i) <- 0;
  s.slots.(i) <- None;
  s.count <- s.count - 1;
  let gap = ref i in
  let k = ref ((i + 1) land mask) in
  let scanning = ref true in
  while !scanning do
    let c = s.codes.(!k) in
    if c = 0 then scanning := false
    else begin
      let home = home_of c mask in
      (* distance from home to k vs. from gap to k, cyclically: the
         entry may move back iff its home is not inside (gap, k] *)
      if (!k - home) land mask >= (!k - !gap) land mask then begin
        s.codes.(!gap) <- c;
        s.slots.(!gap) <- s.slots.(!k);
        s.codes.(!k) <- 0;
        s.slots.(!k) <- None;
        gap := !k
      end;
      k := (!k + 1) land mask
    end
  done

let with_shard t k f =
  let h = t.hash k in
  let s = shard_of t h in
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s (code_of h))

let find_opt t k =
  with_shard t k (fun s code ->
      let i = probe t s code k in
      if s.codes.(i) = 0 then None
      else match s.slots.(i) with Some (_, v) -> Some v | None -> None)

let mem t k = find_opt t k <> None

(* Drop the binding in the first occupied slot at or after the rotating
   cursor.  Runs with the shard lock held.  Facts in this table are
   memoized re-derivables, so losing one costs a recomputation, never
   soundness. *)
let evict_one t s =
  let n = Array.length s.codes in
  let rec go tries i =
    if tries >= n then ()
    else if s.codes.(i) <> 0 then begin
      remove_at s i;
      s.evict_cursor <- (i + 1) land (n - 1);
      Atomic.incr t.evicted
    end
    else go (tries + 1) ((i + 1) land (n - 1))
  in
  go 0 (s.evict_cursor land (n - 1))

let insert t s code k v =
  if s.count >= t.shard_cap then evict_one t s;
  (* 3/4 load-factor growth keeps probe clusters short; the cap check
     above means a capped shard stops growing once it can hold its cap. *)
  if 4 * (s.count + 1) > 3 * Array.length s.codes then resize t s;
  let i = probe t s code k in
  s.codes.(i) <- code;
  s.slots.(i) <- Some (k, v);
  s.count <- s.count + 1

let add t k v =
  with_shard t k (fun s code ->
      let i = probe t s code k in
      if s.codes.(i) <> 0 then s.slots.(i) <- Some (k, v)
      else insert t s code k v)

let find_or_add t k mk =
  with_shard t k (fun s code ->
      let i = probe t s code k in
      if s.codes.(i) <> 0 then
        match s.slots.(i) with
        | Some (_, v) -> v
        | None -> assert false
      else begin
        let v = mk () in
        insert t s code k v;
        v
      end)

let length t = Array.fold_left (fun acc s -> acc + s.count) 0 t.shards

let evictions t = Atomic.get t.evicted
