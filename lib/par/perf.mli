(** Process-wide performance counters for the analysis engine.

    All counters are atomics, so they can be bumped from any domain of
    a {!Pool} without synchronization; numbers are exact under
    sequential runs and exact-up-to-races under parallel ones (the
    counters themselves never tear, but "nodes expanded" depends on how
    far each branch ran before pruning).

    Counters accumulate until {!reset}; [rtsyn --stats] and
    [bench --json] print a {!snapshot} after the work they measure. *)

type counter

val windows_checked : counter
(** Containment searches run ({!Rt_core.Latency}-level window checks). *)

val cache_hits : counter
(** Latency questions answered from the periodicity memo instead of a
    fresh containment search. *)

val cache_misses : counter
(** Latency questions that had to run the containment search and then
    seeded the memo. *)

val dfs_nodes : counter
(** Nodes expanded by the exact solvers' DFS. *)

val schedules_built : counter
(** EDF cyclic schedules constructed during synthesis candidate
    exploration. *)

val game_states : counter
(** States expanded by the game engine ({!Rt_core.Game}); the
    game-engine counterpart of {!dfs_nodes}. *)

val table_hits : counter
(** Game-engine probes answered by the shared transposition table
    ({!Shard_tbl}): a state some schedule prefix had already settled. *)

val table_misses : counter
(** Game-engine transposition probes that found no prior verdict. *)

val dominance_kills : counter
(** Game-engine states discarded because a recorded dead state
    dominates them (antichain pruning) without ever being expanded. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()] and adds its wall-clock duration to the
    accumulator for [stage].  Stages nest (e.g. ["verify"] inside
    ["synthesis"]); each accumulator counts its own spans only, so
    nested stages overlap rather than partition the total. *)

val stage_seconds : unit -> (string * float) list
(** Accumulated wall-clock seconds per stage, sorted by stage name. *)

val snapshot : unit -> (string * int) list
(** All counters by name, in a fixed order. *)

val reset : unit -> unit
(** Zero every counter and stage accumulator. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of {!snapshot} and {!stage_seconds}. *)
