(** Process-wide performance counters for the analysis engine.

    DEPRECATION PATH: this module is now a thin compatibility facade
    over {!Rt_obs.Metrics} — each counter below is the registry cell of
    the same name, [time] records onto a registry histogram
    (["stage/<name>"]) and emits a tracer span, and {!reset} resets the
    whole registry.  Existing call sites keep working unchanged; new
    instrumentation should register its own metrics with
    {!Rt_obs.Metrics} directly, and this facade can be retired once the
    in-tree engines have migrated.

    All counters are atomics, so they can be bumped from any domain of
    a {!Pool} without synchronization; numbers are exact under
    sequential runs and exact-up-to-races under parallel ones (the
    counters themselves never tear, but "nodes expanded" depends on how
    far each branch ran before pruning).

    Counters accumulate until {!reset}; [rtsyn --stats] and
    [bench --json] print a {!snapshot} after the work they measure. *)

type counter

val windows_checked : counter
(** Containment searches run ({!Rt_core.Latency}-level window checks). *)

val cache_hits : counter
(** Latency questions answered from the periodicity memo instead of a
    fresh containment search. *)

val cache_misses : counter
(** Latency questions that had to run the containment search and then
    seeded the memo. *)

val dfs_nodes : counter
(** Nodes expanded by the exact solvers' DFS. *)

val schedules_built : counter
(** EDF cyclic schedules constructed during synthesis candidate
    exploration. *)

val game_states : counter
(** States expanded by the game engine ({!Rt_core.Game}); the
    game-engine counterpart of {!dfs_nodes}. *)

val table_hits : counter
(** Game-engine probes answered by the shared transposition table
    ({!Shard_tbl}): a state some schedule prefix had already settled. *)

val table_misses : counter
(** Game-engine transposition probes that found no prior verdict. *)

val dominance_kills : counter
(** Game-engine states discarded because a recorded dead state
    dominates them (antichain pruning) without ever being expanded. *)

val decompose_components : counter
(** Interaction components fanned out by a decomposition pass
    ({!Rt_core.Decompose}); bumped once per component per pass. *)

val decompose_component_solves : counter
(** Component submodels actually solved (synthesized or decided) by a
    decomposition pass — as opposed to answered from a cache. *)

val decompose_component_reuses : counter
(** Component solves answered from a component-schedule cache (the
    daemon's component-local re-admission path) without re-solving. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val time : string -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()] and records its wall-clock duration as
    one observation on the registry histogram ["stage/" ^ stage] (and as
    a tracer span of category ["stage"] when tracing is enabled).  The
    histogram cells are atomic, so spans completing concurrently on pool
    domains accumulate without tearing or dropping time.

    Nesting semantics: stages nest dynamically (e.g. ["verify"] inside
    ["synthesis"]); each stage's histogram counts its own spans only, so
    nested stages {e overlap} rather than partition the total — summing
    [stage_seconds] across stages double-counts nested time, and a stage
    entered concurrently on [k] domains accumulates up to [k] seconds of
    stage time per wall-clock second. *)

val stage_seconds : unit -> (string * float) list
(** Accumulated wall-clock seconds per stage, sorted by stage name. *)

val snapshot : unit -> (string * int) list
(** All counters by name, in a fixed order. *)

val reset : unit -> unit
(** Zero every counter and stage accumulator.  Since the cells live in
    the shared registry, this is {!Rt_obs.Metrics.reset} — it also
    zeroes any metrics registered outside this facade. *)

val pp : Format.formatter -> unit -> unit
(** Human-readable dump of {!snapshot} and {!stage_seconds}. *)
